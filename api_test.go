package goldfish_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"goldfish"
)

// fastConfig returns a small MLP client configuration matched to the given
// preset's data dimensions — quick enough to run every strategy's
// round-trip in one test.
func fastConfig(p goldfish.Preset) goldfish.Config {
	cfg := goldfish.DefaultConfig(goldfish.ModelConfig{
		Arch:    goldfish.ArchMLP,
		InC:     p.Spec.Channels,
		InH:     p.Spec.Size,
		InW:     p.Spec.Size,
		Classes: p.Spec.Classes,
		Seed:    1,
	})
	cfg.Opt.LR = 0.1
	cfg.BatchSize = 32
	cfg.LocalEpochs = 3
	return cfg
}

func TestNewDefaults(t *testing.T) {
	e, err := goldfish.New(goldfish.WithDataset("mnist", goldfish.ScaleTiny))
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy() != "goldfish" {
		t.Errorf("default strategy = %q, want goldfish", e.Strategy())
	}
	if e.NumClients() != 5 {
		t.Errorf("NumClients = %d, want the preset default 5", e.NumClients())
	}
	if e.DefaultRounds() <= 0 {
		t.Errorf("DefaultRounds = %d, want the preset budget", e.DefaultRounds())
	}
	if e.TrainData() == nil || e.TestData() == nil {
		t.Error("preset-backed engine should expose generated train/test data")
	}
	if len(e.Partitions()) != 5 {
		t.Errorf("Partitions = %d, want 5", len(e.Partitions()))
	}
	if e.Round() != 0 {
		t.Errorf("fresh engine Round = %d", e.Round())
	}
	if e.Client(99) != nil {
		t.Error("out-of-range Client should be nil, not panic")
	}
}

func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []goldfish.Option
		want string
	}{
		{"no data", nil, "no data"},
		{"nil option", []goldfish.Option{nil}, "nil option"},
		{"unknown dataset", []goldfish.Option{goldfish.WithDataset("bogus", goldfish.ScaleTiny)}, ""},
		{"empty dataset", []goldfish.Option{goldfish.WithDataset("", goldfish.ScaleTiny)}, "empty dataset"},
		{"unknown strategy", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithUnlearner("totally-bogus"),
		}, "unknown strategy"},
		{"bad clients", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithClients(0),
		}, "positive client count"},
		{"bad fraction", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithClientFraction(1.5),
		}, "out of [0,1]"},
		{"bad min clients", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithMinClients(0),
		}, "positive count"},
		{"min clients above count", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithClients(2),
			goldfish.WithMinClients(5),
		}, "exceeds client count"},
		{"negative timeout", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithRoundTimeout(-time.Second),
		}, "negative timeout"},
		{"nil aggregator", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithAggregator(nil),
		}, "nil aggregator"},
		{"nil transport", []goldfish.Option{
			goldfish.WithDataset("mnist", goldfish.ScaleTiny),
			goldfish.WithTransport(nil),
		}, "nil transport"},
		{"partitions without config", []goldfish.Option{
			goldfish.WithPartitions(make([]*goldfish.Dataset, 2)),
		}, "WithClientConfig"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := goldfish.New(tc.opts...)
			if err == nil {
				t.Fatalf("%s: accepted", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestUnlearnerRegistry(t *testing.T) {
	names := goldfish.Unlearners()
	for _, want := range []string{"goldfish", "retrain", "fisher", "incompetent-teacher"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry %v missing %q", names, want)
		}
	}
}

// TestAllStrategiesDeletionRoundTrip is the acceptance gate of the engine +
// strategy redesign: every registered unlearning method runs the same
// train → RequestDeletion → unlearn flow through goldfish.New, and the
// model's accuracy recovers.
func TestAllStrategiesDeletionRoundTrip(t *testing.T) {
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"goldfish", "retrain", "fisher", "incompetent-teacher"} {
		t.Run(name, func(t *testing.T) {
			parts, err := goldfish.PartitionIID(train, 3, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			cfg := fastConfig(p)
			if name == "fisher" {
				cfg.Opt.LR = 0.01 // preconditioned steps are larger; lower LR
			}
			var sawUnlearn bool
			e, err := goldfish.New(
				goldfish.WithPreset(p),
				goldfish.WithPartitions(parts),
				goldfish.WithClientConfig(cfg),
				goldfish.WithUnlearner(name),
				goldfish.WithRoundHook(func(rs goldfish.RoundStats) {
					sawUnlearn = sawUnlearn || rs.UnlearningRound
				}),
			)
			if err != nil {
				t.Fatal(err)
			}
			if e.Strategy() != name {
				t.Fatalf("Strategy() = %q, want %q", e.Strategy(), name)
			}
			ctx := context.Background()
			if err := e.Run(ctx, 6); err != nil {
				t.Fatal(err)
			}
			accBefore, err := e.TestAccuracy(nil)
			if err != nil {
				t.Fatal(err)
			}
			if accBefore < 0.35 {
				t.Fatalf("%s: trained accuracy %g too low for a meaningful round trip", name, accBefore)
			}
			if err := e.RequestDeletion(0, []int{0, 1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(ctx, 6); err != nil {
				t.Fatal(err)
			}
			if !sawUnlearn {
				t.Errorf("%s: deletion did not mark an unlearning round", name)
			}
			accAfter, err := e.TestAccuracy(nil)
			if err != nil {
				t.Fatal(err)
			}
			if accAfter < 0.3 {
				t.Errorf("%s: accuracy %g did not recover after unlearning (was %g)", name, accAfter, accBefore)
			}
		})
	}
}

// TestEngineClientFraction checks client sampling through the public API.
func TestEngineClientFraction(t *testing.T) {
	var perRound []int
	e, err := goldfish.New(
		goldfish.WithDataset("mnist", goldfish.ScaleTiny),
		goldfish.WithClients(4),
		goldfish.WithClientFraction(0.5),
		goldfish.WithSampleSeed(3),
		goldfish.WithRoundHook(func(rs goldfish.RoundStats) { perRound = append(perRound, len(rs.Updates)) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	for r, n := range perRound {
		if n != 2 {
			t.Errorf("round %d aggregated %d updates, want 2 (fraction 0.5 of 4)", r, n)
		}
	}
}
