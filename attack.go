package goldfish

import (
	"goldfish/internal/attack"
)

// Attack types re-exported from the pluggable attack-probe registry
// (internal/attack): an Attack deterministically poisons one client's
// partition before training and builds an AttackProber measuring the
// attack's success rate on the trained model — the verification probe the
// scenario engine sweeps as a matrix axis. The built-in registry names are
// "backdoor" (the paper's trigger patch), "label-flip" and "targeted-class".
type (
	// Attack is a pluggable unlearning-verification probe; select one in a
	// scenario spec's attack.type (or sweep several via attack.types) and
	// add custom probes with RegisterAttack.
	Attack = attack.Attack
	// AttackProber measures an attack's success rate on a trained model.
	AttackProber = attack.Prober
	// AttackConfig is the shared knob set every attack type reads its
	// parameters from.
	AttackConfig = attack.Config
)

// RegisterAttack adds an attack factory to the attack-probe registry under
// name — the attack-axis counterpart of RegisterUnlearner. Registering a
// name twice panics — pick a unique name per probe. Scenario specs then
// select it via attack.type or attack.types.
func RegisterAttack(name string, factory func() Attack) {
	attack.Register(name, factory)
}

// AttackTypes lists the registered attack-probe names, sorted.
func AttackTypes() []string { return attack.Types() }

// NewAttack returns a fresh instance of the named attack probe.
func NewAttack(name string) (Attack, error) { return attack.New(name) }
