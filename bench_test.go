// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs one registered experiment end to end (data generation,
// federated training, unlearning, metric computation) and reports the key
// reproduced quantities as custom metrics.
//
// The default scale is tiny so `go test -bench=.` finishes in minutes; set
// GOLDFISH_BENCH_SCALE=small|medium|paper for larger runs, e.g.
//
//	GOLDFISH_BENCH_SCALE=small go test -bench=BenchmarkTable3 -benchtime=1x
//
// Setting GOLDFISH_BENCH_JSON=<path> makes TestWriteBenchJSON run the
// performance suite (op-level kernel GFLOP/s serial vs parallel, per-round
// engine wall time, end-to-end experiment time) and persist the
// machine-readable report, mirroring `goldfish-bench -exp perf -json`:
//
//	GOLDFISH_BENCH_JSON=BENCH_1.json go test -run TestWriteBenchJSON
package goldfish_test

import (
	"io"
	"os"
	"testing"

	"goldfish/internal/bench"
	"goldfish/internal/data"
)

// benchScale resolves the experiment scale for benchmarks.
func benchScale() data.Scale {
	if s := os.Getenv("GOLDFISH_BENCH_SCALE"); s != "" {
		return data.Scale(s)
	}
	return data.ScaleTiny
}

// benchVerbose reports whether reports should be rendered to stderr.
func benchVerbose() bool { return os.Getenv("GOLDFISH_BENCH_VERBOSE") != "" }

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Scale: benchScale(), Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var w io.Writer = io.Discard
			if benchVerbose() {
				w = os.Stderr
			}
			report.Render(w)
			b.ReportMetric(float64(len(report.Tables)), "tables")
			b.ReportMetric(float64(len(report.Figures)), "figures")
		}
	}
}

// TestWriteBenchJSON persists the performance report when
// GOLDFISH_BENCH_JSON names a destination path; see the package comment.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("GOLDFISH_BENCH_JSON")
	if path == "" {
		t.Skip("set GOLDFISH_BENCH_JSON=<path> to write the performance report")
	}
	rep, err := bench.RunPerf(bench.PerfOptions{
		Options:     bench.Options{Scale: benchScale(), Seed: 1},
		Experiments: []string{"table3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, rep.RenderText())
}

// Fig. 4: retraining accuracy curves, ours vs B1 vs B2.
func BenchmarkFig4Retraining(b *testing.B) { runExperiment(b, "fig4") }

// Fig. 5: backdoor ASR vs deletion rate across dataset/model combos.
func BenchmarkFig5Backdoor(b *testing.B) { runExperiment(b, "fig5") }

// Table III: accuracy + backdoor ASR per deletion rate on MNIST.
func BenchmarkTable3MNIST(b *testing.B) { runExperiment(b, "table3") }

// Table IV: accuracy + backdoor ASR per deletion rate on FMNIST.
func BenchmarkTable4FMNIST(b *testing.B) { runExperiment(b, "table4") }

// Table V: accuracy + backdoor ASR per deletion rate on CIFAR-10.
func BenchmarkTable5CIFAR10(b *testing.B) { runExperiment(b, "table5") }

// Table VI: accuracy + backdoor ASR per deletion rate on CIFAR-100.
func BenchmarkTable6CIFAR100(b *testing.B) { runExperiment(b, "table6") }

// Table VII: JSD / L2 / t-test on MNIST.
func BenchmarkTable7Divergence(b *testing.B) { runExperiment(b, "table7") }

// Table VIII: JSD / L2 / t-test on FMNIST.
func BenchmarkTable8Divergence(b *testing.B) { runExperiment(b, "table8") }

// Table IX: JSD / L2 / t-test on CIFAR-10.
func BenchmarkTable9Divergence(b *testing.B) { runExperiment(b, "table9") }

// Table X: loss-component ablation.
func BenchmarkTable10Ablation(b *testing.B) { runExperiment(b, "table10") }

// Table XI: hard-loss compatibility (CE / Focal / NLL).
func BenchmarkTable11LossCompat(b *testing.B) { runExperiment(b, "table11") }

// Fig. 6: accuracy vs shard count.
func BenchmarkFig6Shards(b *testing.B) { runExperiment(b, "fig6") }

// Fig. 7: accuracy around a deletion event across shard counts.
func BenchmarkFig7ShardDeletion(b *testing.B) { runExperiment(b, "fig7") }

// Fig. 8: FedAvg vs adaptive weights under heterogeneous data.
func BenchmarkFig8Heterogeneous(b *testing.B) { runExperiment(b, "fig8") }

// Fig. 9: FedAvg vs adaptive weights under IID data.
func BenchmarkFig9IID(b *testing.B) { runExperiment(b, "fig9") }

// Table XII: heterogeneity statistics.
func BenchmarkTable12Heterogeneity(b *testing.B) { runExperiment(b, "table12") }

// Repo ablation: early-termination epoch savings.
func BenchmarkAblateEarlyTermination(b *testing.B) { runExperiment(b, "ablate-early") }

// Repo ablation: adaptive distillation temperature.
func BenchmarkAblateAdaptiveTemp(b *testing.B) { runExperiment(b, "ablate-temp") }
