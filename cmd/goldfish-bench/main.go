// Command goldfish-bench runs the paper-reproduction experiments and prints
// their tables and figures as text.
//
// Usage:
//
//	goldfish-bench -list
//	goldfish-bench -exp table3
//	goldfish-bench -exp fig5 -scale medium -seed 7
//	goldfish-bench -exp all -scale tiny
//	goldfish-bench -exp perf -scale tiny -json BENCH_1.json
//	goldfish-bench -exp scenario -config examples/scenarios/smoke.json
//
// Scales: tiny (seconds per experiment), small (default), medium, paper
// (hours; mirrors the paper's dimensions).
//
// The pseudo-experiment "perf" runs the performance suite: op-level matmul
// GFLOP/s serial vs parallel, per-round wall time of the federated engine,
// and end-to-end experiment time. With -json the machine-readable report is
// written to the given path (the repo persists these as BENCH_*.json);
// -json combined with regular experiments records their end-to-end wall
// times alongside the kernel and round measurements.
//
// The pseudo-experiment "scenario" runs a declarative experiment matrix
// from a -config spec file through goldfish.RunScenario, the same path the
// goldfish-scenario command uses; -json then writes the scenario report.
//
// The pseudo-experiment "serve" runs the unlearning-as-a-service SLO
// benchmark: a federation with the deletion-request service attached,
// driven by the deterministic -profile load generator (steady, burst,
// interleaved, idle, or serverless for the no-service baseline); -json
// writes the SLO report (the repo persists these as SLO_*.json):
//
//	goldfish-bench -exp serve -scale tiny -profile burst -json SLO_1.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"goldfish"
	"goldfish/internal/bench"
	"goldfish/internal/data"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale = flag.String("scale", "small", "experiment scale: tiny|small|medium|paper")
		seed  = flag.Int64("seed", 1, "random seed")
		round = flag.Int("rounds", 0, "override round budget (0 = per-scale default)")
		rates = flag.String("rates", "", "comma-separated deletion rates in percent (e.g. 2,6,12)")
		out   = flag.String("out", "", "also append reports to this file")
		jsonP = flag.String("json", "", "write the machine-readable performance report (BENCH_*.json) here")
		cfgP  = flag.String("config", "", "scenario spec file for -exp scenario")
		prof  = flag.String("profile", "steady",
			"load profile for -exp serve: steady|burst|interleaved|idle, or serverless for the no-service baseline")
		qcap   = flag.Int("queue-cap", 0, "deletion-queue capacity for -exp serve (0 = default)")
		traceP = flag.String("trace", "", "write a JSONL span trace of the run to this path (side channel; reports stay byte-identical)")
		obsOut = flag.String("obs", "", "write the metrics snapshot (counters/histograms JSON) to this path after the run")
		ver    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *ver {
		version.Fprint(os.Stdout, "goldfish-bench")
		return 0
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "goldfish-bench: -exp is required (or -list); e.g. -exp table3")
		return 2
	}

	observer, finish, oerr := setupObservability(*traceP, *obsOut)
	if oerr != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", oerr)
		return 1
	}
	defer finish()

	opts := bench.Options{Scale: data.Scale(*scale), Seed: *seed, Rounds: *round}
	if *rates != "" {
		for _, part := range strings.Split(*rates, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: bad -rates value %q: %v\n", part, err)
				return 2
			}
			opts.DeletionRates = append(opts.DeletionRates, v)
		}
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 1
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: closing %s: %v\n", *out, cerr)
			}
		}()
		sink = io.MultiWriter(os.Stdout, f)
	}

	var targets []bench.Experiment
	switch *exp {
	case "all":
		targets = bench.Experiments()
	case "perf":
		// Performance suite only; end-to-end timing covers table3 by
		// default so the report always carries an experiment-level number.
		return runPerf(sink, opts, []string{"table3"}, nil, *jsonP, observer)
	case "scenario":
		return runScenario(sink, *cfgP, *jsonP, observer)
	case "serve":
		return runServe(sink, opts, *prof, *qcap, *jsonP, observer)
	default:
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 2
		}
		targets = []bench.Experiment{e}
	}

	var measured []bench.ExperimentResult
	for _, e := range targets {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %s failed: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start)
		report.Render(sink)
		fmt.Fprintf(sink, "(%s completed in %v at scale %s)\n\n", e.ID, elapsed.Round(time.Millisecond), *scale)
		measured = append(measured, bench.ExperimentResult{
			ID:      e.ID,
			Scale:   *scale,
			Seconds: elapsed.Seconds(),
		})
	}
	if *jsonP != "" {
		// Reuse the timings just measured; only the kernel and round suites
		// run in addition.
		return runPerf(sink, opts, nil, measured, *jsonP, observer)
	}
	return 0
}

// runScenario runs a declarative experiment matrix through the public
// goldfish.RunScenario path, mirroring the goldfish-scenario command.
func runScenario(sink io.Writer, cfgPath, jsonPath string, observer *goldfish.Observer) int {
	if cfgPath == "" {
		fmt.Fprintln(os.Stderr, "goldfish-bench: -exp scenario requires -config file.json")
		return 2
	}
	spec, err := goldfish.LoadScenario(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
		return 2
	}
	start := time.Now()
	rep, err := goldfish.RunScenario(goldfish.WithObservability(context.Background(), observer), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
		return 1
	}
	rep.RenderText(sink)
	fmt.Fprintf(sink, "(scenario %s completed in %v)\n", spec.Name, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(sink, "wrote %s\n", jsonPath)
	}
	if err := rep.Complete(); err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: incomplete matrix: %v\n", err)
		return 1
	}
	return 0
}

// runServe executes the unlearning-as-a-service SLO benchmark, prints the
// text summary, and writes the JSON artifact when a path is given.
func runServe(sink io.Writer, opts bench.Options, profile string, queueCap int, jsonPath string, observer *goldfish.Observer) int {
	rep, err := bench.RunServe(bench.ServeOptions{
		Options:  opts,
		Profile:  profile,
		QueueCap: queueCap,
		Observer: observer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: serve: %v\n", err)
		return 1
	}
	fmt.Fprint(sink, rep.RenderText())
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(sink, "wrote %s\n", jsonPath)
	}
	return 0
}

// runPerf executes the performance suite (running and timing the experiment
// IDs in run, and folding in any pre-measured timings), prints the text
// summary, and writes the JSON artifact when a path is given.
func runPerf(sink io.Writer, opts bench.Options, run []string, measured []bench.ExperimentResult, jsonPath string, observer *goldfish.Observer) int {
	rep, err := bench.RunPerf(bench.PerfOptions{Options: opts, Experiments: run, Observer: observer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-bench: perf: %v\n", err)
		return 1
	}
	rep.Experiments = append(rep.Experiments, measured...)
	fmt.Fprint(sink, rep.RenderText())
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(sink, "wrote %s\n", jsonPath)
	}
	return 0
}

// setupObservability builds the run's Observer from the -trace/-obs flags
// (nil when both are empty — observability off). The returned finish flushes:
// it reports any trace-sink write error, closes the trace file and writes the
// -obs metrics snapshot.
func setupObservability(tracePath, obsPath string) (*goldfish.Observer, func(), error) {
	if tracePath == "" && obsPath == "" {
		return nil, func() {}, nil
	}
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("opening trace sink: %w", err)
		}
		traceFile = f
	}
	var tw io.Writer
	if traceFile != nil {
		tw = traceFile
	}
	observer := goldfish.NewObserver(tw)
	finish := func() {
		if err := observer.TraceErr(); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: closing %s: %v\n", tracePath, err)
			}
		}
		if obsPath != "" {
			f, err := os.Create(obsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
				return
			}
			if err := observer.WriteSnapshot(f); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: closing %s: %v\n", obsPath, err)
			}
		}
	}
	return observer, finish, nil
}
