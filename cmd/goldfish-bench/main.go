// Command goldfish-bench runs the paper-reproduction experiments and prints
// their tables and figures as text.
//
// Usage:
//
//	goldfish-bench -list
//	goldfish-bench -exp table3
//	goldfish-bench -exp fig5 -scale medium -seed 7
//	goldfish-bench -exp all -scale tiny
//
// Scales: tiny (seconds per experiment), small (default), medium, paper
// (hours; mirrors the paper's dimensions).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"goldfish/internal/bench"
	"goldfish/internal/data"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale = flag.String("scale", "small", "experiment scale: tiny|small|medium|paper")
		seed  = flag.Int64("seed", 1, "random seed")
		round = flag.Int("rounds", 0, "override round budget (0 = per-scale default)")
		rates = flag.String("rates", "", "comma-separated deletion rates in percent (e.g. 2,6,12)")
		out   = flag.String("out", "", "also append reports to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "goldfish-bench: -exp is required (or -list); e.g. -exp table3")
		return 2
	}

	opts := bench.Options{Scale: data.Scale(*scale), Seed: *seed, Rounds: *round}
	if *rates != "" {
		for _, part := range strings.Split(*rates, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: bad -rates value %q: %v\n", part, err)
				return 2
			}
			opts.DeletionRates = append(opts.DeletionRates, v)
		}
	}

	var targets []bench.Experiment
	if *exp == "all" {
		targets = bench.Experiments()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 2
		}
		targets = []bench.Experiment{e}
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %v\n", err)
			return 1
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "goldfish-bench: closing %s: %v\n", *out, cerr)
			}
		}()
		sink = io.MultiWriter(os.Stdout, f)
	}

	for _, e := range targets {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-bench: %s failed: %v\n", e.ID, err)
			return 1
		}
		report.Render(sink)
		fmt.Fprintf(sink, "(%s completed in %v at scale %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *scale)
	}
	return 0
}
