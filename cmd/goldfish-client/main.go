// Command goldfish-client joins a federation served by goldfish-server. It
// builds a Goldfish client over one partition of the dataset preset, trains
// locally every round, and optionally submits a deletion request for a
// fraction of its (backdoor-poisoned) data after a chosen round.
//
// Usage:
//
//	goldfish-client -addr localhost:7070 -id 0 -of 3 -dataset mnist -scale tiny
//	goldfish-client -addr localhost:7070 -id 1 -of 3 -poison 0.2 -delete-after 4
//
// The dataset/scale/seed flags must match the server's.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"goldfish"
	"goldfish/internal/core"
	"goldfish/internal/fed"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run())
}

// deletingTrainer wraps a Goldfish client and injects a deletion request
// after a configured round, demonstrating unlearning over the wire.
type deletingTrainer struct {
	client      *core.Client
	rows        []int
	deleteAfter int
	requested   bool
}

func (d *deletingTrainer) TrainRound(ctx context.Context, round int, global []float64) (fed.ModelUpdate, error) {
	if !d.requested && d.deleteAfter > 0 && round >= d.deleteAfter && len(d.rows) > 0 {
		if err := d.client.RequestDeletion(d.rows); err != nil {
			return fed.ModelUpdate{}, err
		}
		d.requested = true
		fmt.Printf("round %d: submitted deletion request for %d rows\n", round, len(d.rows))
	}
	return d.client.TrainRound(ctx, round, global)
}

func run() int {
	var (
		addr        = flag.String("addr", "localhost:7070", "server address")
		id          = flag.Int("id", 0, "this client's index (0-based)")
		of          = flag.Int("of", 2, "total number of clients in the federation")
		dataset     = flag.String("dataset", "mnist", "dataset preset: mnist|fmnist|cifar10|cifar100")
		scale       = flag.String("scale", "tiny", "experiment scale: tiny|small|medium|paper")
		seed        = flag.Int64("seed", 1, "random seed (must match server)")
		poison      = flag.Float64("poison", 0, "fraction of local data to backdoor-poison (0 disables)")
		deleteAfter = flag.Int("delete-after", 0, "submit a deletion request for poisoned rows after this round (0 disables)")
		ver         = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *ver {
		version.Fprint(os.Stdout, "goldfish-client")
		return 0
	}

	if *id < 0 || *id >= *of {
		fmt.Fprintf(os.Stderr, "goldfish-client: -id %d out of range [0,%d)\n", *id, *of)
		return 2
	}
	p, err := goldfish.NewPreset(*dataset, goldfish.Scale(*scale), *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
		return 2
	}
	train, _, err := p.Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
		return 1
	}
	// Deterministic partition: every client derives the same split and
	// takes its own slice.
	parts, err := goldfish.PartitionIID(train, *of, rand.New(rand.NewSource(*seed*7717)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
		return 1
	}
	local := parts[*id]

	var poisonedRows []int
	if *poison > 0 {
		bd := goldfish.DefaultBackdoor()
		poisonedRows, err = bd.Poison(local, *poison, rand.New(rand.NewSource(*seed*13+int64(*id))))
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
			return 1
		}
		fmt.Printf("poisoned %d of %d local samples\n", len(poisonedRows), local.Len())
	}

	client, err := core.NewClient(*id, p.ClientConfig(), local)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
		return 1
	}
	trainer := &deletingTrainer{client: client, rows: poisonedRows, deleteAfter: *deleteAfter}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("goldfish-client %d/%d: connecting to %s (%d local samples)\n", *id, *of, *addr, local.Len())
	final, err := fed.RunClient(ctx, *addr, trainer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-client: %v\n", err)
		return 1
	}
	fmt.Printf("federation finished; received final global model (%d values)\n", len(final))
	return 0
}
