// Command goldfish-scenario runs a declarative unlearning experiment matrix
// from a JSON spec file: dataset and partitioner, optional attack injection
// (a single attack.type, or an attack.types axis sweeping several probe
// styles — "backdoor", "label-flip", "targeted-class"), a deletion schedule
// (sample-, class- or client-level requests at given rounds), and the
// strategy × seed × shard × attack axes. Cells execute concurrently and the
// structured report is deterministic — two runs of the same spec produce
// byte-identical JSON.
//
// Usage:
//
//	goldfish-scenario -config examples/scenarios/smoke.json
//	goldfish-scenario -config spec.json -json report.json
//	goldfish-scenario -config spec.json -validate
//	goldfish-scenario -config spec.json -trace trace.jsonl -obs metrics.json
//
// A matrix can be split across machines and recombined: -shard i/n runs a
// deterministic subset (each "retrain" reference cell stays co-located with
// the cells compared against it, so vs_retrain is populated in every
// partial), and -merge recombines partial reports into JSON byte-identical
// to a single-machine run:
//
//	goldfish-scenario -config spec.json -shard 1/2 -json part1.json
//	goldfish-scenario -config spec.json -shard 2/2 -json part2.json
//	goldfish-scenario -merge -json report.json part1.json part2.json
//
// A committed baseline report gates regressions: -baseline diffs the fresh
// report against it cell-by-cell with Welch t-tests across the seed axis and
// exits non-zero on any statistically significant accuracy/ASR/membership
// worsening or newly failing cell:
//
//	goldfish-scenario -config spec.json -baseline examples/scenarios/baselines/smoke.json
//
// On SIGINT/SIGTERM the finished cells are not discarded: with -json the
// partial report is written (marked incomplete) before exiting non-zero. To
// resume, re-run the same invocation and merge both reports — rows finished
// in both runs are byte-identical (determinism) and -merge dedupes them when
// an input is marked incomplete, while still rejecting any other overlap.
//
// The command exits non-zero when the spec is invalid, when any matrix cell
// is missing from or failed in the report, or when -baseline finds a
// regression, so CI can gate on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"goldfish"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		config   = flag.String("config", "", "scenario spec file (JSON, required unless -merge)")
		jsonP    = flag.String("json", "", "write the structured report to this path")
		workers  = flag.Int("workers", 0, "override the spec's worker-pool bound (0 = spec/default)")
		validate = flag.Bool("validate", false, "parse and validate the spec, then exit")
		shard    = flag.String("shard", "", "run only machine shard i/n of the matrix (e.g. 1/2)")
		merge    = flag.Bool("merge", false, "merge the partial reports given as arguments instead of running")
		baseline = flag.String("baseline", "", "diff the report against this baseline report; exit non-zero on significant regressions")
		alpha    = flag.Float64("alpha", 0, "baseline diff significance level (default 0.05)")
		minDelta = flag.Float64("min-delta", 0, "baseline diff practical-significance floor on metric deltas")
		traceP   = flag.String("trace", "", "write a JSONL span trace of the run to this path (side channel; the report stays byte-identical)")
		obsP     = flag.String("obs", "", "write the metrics snapshot (counters/histograms JSON) to this path after the run")
		showVer  = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *showVer {
		version.Fprint(os.Stdout, "goldfish-scenario")
		return 0
	}

	var rep *goldfish.ScenarioReport
	switch {
	case *merge:
		if *config != "" || *shard != "" || *validate {
			fmt.Fprintln(os.Stderr, "goldfish-scenario: -merge takes report files as arguments and is exclusive with -config/-shard/-validate")
			return 2
		}
		paths := flag.Args()
		if len(paths) < 2 {
			fmt.Fprintln(os.Stderr, "goldfish-scenario: -merge needs at least two partial report files")
			return 2
		}
		parts := make([]*goldfish.ScenarioReport, len(paths))
		for i, p := range paths {
			var err error
			if parts[i], err = goldfish.LoadScenarioReport(p); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
				return 2
			}
		}
		var err error
		if rep, err = goldfish.MergeScenarioReports(parts...); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 1
		}

	case *config == "":
		fmt.Fprintln(os.Stderr, "goldfish-scenario: -config is required; e.g. -config examples/scenarios/smoke.json")
		return 2

	case *shard != "" && *baseline != "":
		// A shard covers only part of the matrix; diffing it against a full
		// baseline would silently skip every uncovered cell. Merge the
		// shards first, then gate the merged report.
		fmt.Fprintln(os.Stderr, "goldfish-scenario: -baseline needs the full matrix; merge the shards first, then diff (-merge ... -baseline)")
		return 2

	default:
		spec, err := goldfish.LoadScenario(*config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 2
		}
		if *validate {
			// RunScenarioShard re-validates on the run path; this branch
			// exists to surface resolved-preset and shard errors without
			// training.
			if err := goldfish.ValidateScenario(spec); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
				return 2
			}
			cells := spec.Cells()
			axes := fmt.Sprintf("%d strategies × %d seeds × %d shard counts",
				len(spec.Strategies), len(spec.SeedList()), len(spec.ShardList()))
			if spec.Attack != nil {
				axes += fmt.Sprintf(" × %d attack types", len(spec.AttackList()))
			}
			fmt.Printf("%s: valid (%s = %d cells)\n", *config, axes, len(cells))
			if *shard != "" {
				ref, err := goldfish.ParseScenarioShard(*shard)
				if err != nil {
					fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
					return 2
				}
				sub, err := spec.ShardCells(ref)
				if err != nil {
					fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
					return 2
				}
				fmt.Printf("shard %s: %d of %d cells\n", ref, len(sub), len(cells))
			}
			return 0
		}
		if *workers > 0 {
			spec.Workers = *workers
		}

		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()

		observer, finish, oerr := setupObservability(*traceP, *obsP)
		if oerr != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", oerr)
			return 1
		}
		defer finish()
		ctx = goldfish.WithObservability(ctx, observer)

		rep, err = goldfish.RunScenarioShard(ctx, spec, *shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			if rep == nil {
				return 1
			}
			// Interrupted mid-matrix: persist the finished cells (marked
			// incomplete) instead of discarding them, so the run can be
			// resumed and merged later.
			rep.RenderText(os.Stdout)
			if *jsonP != "" {
				if werr := rep.WriteJSON(*jsonP); werr != nil {
					fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", werr)
				} else {
					fmt.Printf("wrote partial report (%d finished cells) to %s\n", len(rep.Cells), *jsonP)
				}
			}
			return 1
		}
	}

	rep.RenderText(os.Stdout)
	if *jsonP != "" {
		if err := rep.WriteJSON(*jsonP); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonP)
	}
	if err := rep.Complete(); err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-scenario: incomplete matrix: %v\n", err)
		return 1
	}
	if *baseline != "" {
		old, err := goldfish.LoadScenarioReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 2
		}
		diff, err := goldfish.DiffScenarioReports(old, rep, goldfish.ScenarioDiffOptions{Alpha: *alpha, MinDelta: *minDelta})
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 1
		}
		diff.RenderText(os.Stdout)
		if diff.HasRegressions() {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %d significant regressions and %d newly failing cells vs %s\n",
				len(diff.Regressions()), len(diff.NewlyFailing), *baseline)
			return 1
		}
		fmt.Printf("no significant regressions vs %s\n", *baseline)
	}
	return 0
}

// setupObservability builds the run's Observer from the -trace/-obs flags
// (nil when both are empty — observability off). The returned finish flushes:
// it reports any trace-sink write error, closes the trace file and writes the
// -obs metrics snapshot, so it runs even when the matrix exits early.
func setupObservability(tracePath, obsPath string) (*goldfish.Observer, func(), error) {
	if tracePath == "" && obsPath == "" {
		return nil, func() {}, nil
	}
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("opening trace sink: %w", err)
		}
		traceFile = f
	}
	var tw io.Writer
	if traceFile != nil {
		tw = traceFile
	}
	observer := goldfish.NewObserver(tw)
	finish := func() {
		if err := observer.TraceErr(); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: closing %s: %v\n", tracePath, err)
			}
		}
		if obsPath != "" {
			f, err := os.Create(obsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
				return
			}
			if err := observer.WriteSnapshot(f); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-scenario: closing %s: %v\n", obsPath, err)
			}
		}
	}
	return observer, finish, nil
}
