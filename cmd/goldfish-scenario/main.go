// Command goldfish-scenario runs a declarative unlearning experiment matrix
// from a JSON spec file: dataset and partitioner, optional backdoor
// injection, a deletion schedule (sample-, class- or client-level requests
// at given rounds), and the strategy × seed × shard axes. Cells execute
// concurrently and the structured report is deterministic — two runs of the
// same spec produce byte-identical JSON.
//
// Usage:
//
//	goldfish-scenario -config examples/scenarios/smoke.json
//	goldfish-scenario -config spec.json -json report.json
//	goldfish-scenario -config spec.json -validate
//
// The command exits non-zero when the spec is invalid or when any matrix
// cell is missing from or failed in the report, so CI can gate on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"goldfish"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		config   = flag.String("config", "", "scenario spec file (JSON, required)")
		jsonP    = flag.String("json", "", "write the structured report to this path")
		workers  = flag.Int("workers", 0, "override the spec's worker-pool bound (0 = spec/default)")
		validate = flag.Bool("validate", false, "parse and validate the spec, then exit")
	)
	flag.Parse()

	if *config == "" {
		fmt.Fprintln(os.Stderr, "goldfish-scenario: -config is required; e.g. -config examples/scenarios/smoke.json")
		return 2
	}
	spec, err := goldfish.LoadScenario(*config)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
		return 2
	}
	if *validate {
		cells := spec.Cells()
		fmt.Printf("%s: valid (%d strategies × %d seeds × %d shard counts = %d cells)\n",
			*config, len(spec.Strategies), len(spec.SeedList()), len(spec.ShardList()), len(cells))
		return 0
	}
	if *workers > 0 {
		spec.Workers = *workers
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := goldfish.RunScenario(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
		return 1
	}
	rep.RenderText(os.Stdout)
	if *jsonP != "" {
		if err := rep.WriteJSON(*jsonP); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-scenario: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonP)
	}
	if err := rep.Complete(); err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-scenario: incomplete matrix: %v\n", err)
		return 1
	}
	return 0
}
