// Command goldfish-server runs a federation server over TCP. Clients
// (cmd/goldfish-client) connect, receive the global model each round, train
// locally and upload updates; the server aggregates with FedAvg or the
// paper's adaptive-weight scheme and finally prints the global model's test
// accuracy.
//
// Usage:
//
//	goldfish-server -addr :7070 -clients 3 -rounds 8 -dataset mnist -scale tiny
//	goldfish-server -addr :7070 -clients 3 -agg adaptive
//	goldfish-server -addr :7070 -clients 3 -obs-addr 127.0.0.1:9090
//	goldfish-server -serve -obs-addr 127.0.0.1:9090 -dataset mnist -scale tiny
//
// The dataset/scale/seed flags must match the clients' so both sides build
// identical architectures and evaluation data.
//
// With -serve the server instead runs as a long-lived unlearning service:
// an in-process federation (no TCP clients) trains the preset while
// deletion requests posted to the -obs-addr mux fold into the model in
// coalesced batches at round boundaries:
//
//	POST /unlearn               {"kind":"sample","client":0,"rows":[3,5]}
//	POST /unlearn               {"kind":"class","class":7}
//	POST /unlearn               {"kind":"client","client":2}
//	GET  /unlearn/stats         queue depth and forgetting-latency quantiles
//	GET  /unlearn/requests/{id} one ticket's lifecycle state
//
// A full queue answers 429 with a Retry-After estimated from the round
// cadence. -strategy, -queue-cap and -recovery-rounds tune the service.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"goldfish"
	"goldfish/internal/fed"
	"goldfish/internal/metrics"
	"goldfish/internal/obs"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		clients = flag.Int("clients", 2, "number of clients to wait for")
		rounds  = flag.Int("rounds", 0, "global rounds (0 = preset default)")
		dataset = flag.String("dataset", "mnist", "dataset preset: mnist|fmnist|cifar10|cifar100")
		scale   = flag.String("scale", "tiny", "experiment scale: tiny|small|medium|paper")
		seed    = flag.Int64("seed", 1, "random seed (must match clients)")
		agg     = flag.String("agg", "fedavg", "aggregator: fedavg|adaptive")
		timeout = flag.Duration("round-timeout", time.Minute,
			"per-round straggler bound; slower clients are dropped for the round (0 = wait forever)")
		obsAddr = flag.String("obs-addr", "",
			"serve /healthz, /debug/vars and /debug/pprof on this address (observability HTTP is off when empty)")
		serveMode = flag.Bool("serve", false,
			"run as a long-lived unlearning service: in-process federation with the /unlearn deletion API on -obs-addr")
		strategy = flag.String("strategy", "goldfish",
			"unlearning strategy for -serve: goldfish|retrain|fisher|incompetent-teacher")
		queueCap = flag.Int("queue-cap", 0, "deletion-queue capacity for -serve (0 = default)")
		recovery = flag.Int("recovery-rounds", 0, "rounds after application until a deletion counts as forgotten (0 = default)")
		ver      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *ver {
		version.Fprint(os.Stdout, "goldfish-server")
		return 0
	}

	if *serveMode {
		return runService(*dataset, *scale, *strategy, *obsAddr, *clients, *rounds, *queueCap, *recovery, *seed)
	}

	p, err := goldfish.NewPreset(*dataset, goldfish.Scale(*scale), *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	if *rounds <= 0 {
		*rounds = p.Rounds
	}
	_, test, err := p.Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	initNet, err := goldfish.BuildModel(p.Model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}

	var stateErrOnce sync.Once
	cfg := fed.ServerConfig{
		Rounds:       *rounds,
		NumClients:   *clients,
		RoundTimeout: *timeout,
		Initial:      initNet.StateVector(),
		OnRound: func(ri fed.RoundInfo) {
			if err := initNet.SetStateVector(ri.Global); err != nil {
				// A length mismatch here is structural and would repeat
				// every round; report it once instead of staying silent.
				stateErrOnce.Do(func() {
					fmt.Fprintf(os.Stderr, "goldfish-server: round %d: loading global state for evaluation: %v\n",
						ri.Round, err)
				})
				return
			}
			acc := metrics.Accuracy(initNet, test, 0)
			fmt.Printf("round %d: %d updates, global accuracy %.2f%%\n",
				ri.Round, len(ri.Updates), acc*100)
		},
	}
	switch *agg {
	case "fedavg":
		cfg.Aggregator = fed.FedAvg{}
	case "adaptive":
		cfg.Aggregator = fed.AdaptiveWeight{}
		eval, err := goldfish.BuildModel(p.Model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
			return 1
		}
		// Pooled replicas: the engine scores a round's updates concurrently.
		cfg.Scorer = fed.ScorerFunc(metrics.NewMSEScorer(eval, test, 0))
	default:
		fmt.Fprintf(os.Stderr, "goldfish-server: unknown aggregator %q\n", *agg)
		return 2
	}

	srv, err := fed.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	fmt.Printf("goldfish-server: listening on %s, waiting for %d clients (%s/%s, %d rounds, %s)\n",
		ln.Addr(), *clients, *dataset, *scale, *rounds, *agg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	observer := goldfish.NewObserver(nil)
	ctx = goldfish.WithObservability(ctx, observer)
	if *obsAddr != "" {
		obsSrv, obsLn, err := startObsServer(*obsAddr, observer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
			return 1
		}
		fmt.Printf("goldfish-server: observability on http://%s (/healthz /debug/vars /debug/pprof)\n", obsLn.Addr())
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := obsSrv.Shutdown(shutCtx); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-server: obs shutdown: %v\n", err)
			}
		}()
	}

	final, err := srv.Serve(ctx, ln)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	if err := initNet.SetStateVector(final); err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	fmt.Printf("final global accuracy: %.2f%%\n", goldfish.Accuracy(initNet, test)*100)
	return 0
}

// runService is the -serve mode: an in-process federation of the preset
// with the deletion-request service attached, its /unlearn API co-hosted on
// the observability mux. Runs until the round budget or an interrupt.
func runService(dataset, scale, strategy, obsAddr string, clients, rounds, queueCap, recovery int, seed int64) int {
	if obsAddr == "" {
		fmt.Fprintln(os.Stderr, "goldfish-server: -serve requires -obs-addr (the /unlearn API is served there)")
		return 2
	}
	var eng *goldfish.Engine
	eng, err := goldfish.New(
		goldfish.WithDataset(dataset, goldfish.Scale(scale)),
		goldfish.WithSeed(seed),
		goldfish.WithClients(clients),
		goldfish.WithUnlearner(strategy),
		goldfish.WithRoundHook(func(rs goldfish.RoundStats) {
			line := fmt.Sprintf("round %d: %d updates", rs.Round, len(rs.Updates))
			if rs.UnlearningRound {
				line += " (unlearning)"
			}
			if acc, aerr := eng.TestAccuracy(eng.TestData()); aerr == nil {
				line += fmt.Sprintf(", global accuracy %.2f%%", acc*100)
			}
			fmt.Println(line)
		}),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	if rounds <= 0 {
		rounds = eng.DefaultRounds()
	}

	observer := goldfish.NewObserver(nil)
	svc, err := eng.NewDeletionService(goldfish.DeletionServiceConfig{
		QueueCap:       queueCap,
		RecoveryRounds: recovery,
		Observer:       observer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	obsSrv, obsLn, err := startObsServer(obsAddr, observer, svc.Mount)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := obsSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-server: obs shutdown: %v\n", err)
		}
	}()
	fmt.Printf("goldfish-server: unlearning service on http://%s (/unlearn, /unlearn/stats), %s/%s, strategy %s, %d clients, %d rounds\n",
		obsLn.Addr(), dataset, scale, strategy, eng.NumClients(), rounds)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runErr := eng.Run(goldfish.WithObservability(ctx, observer), rounds)
	svc.Settle()

	stats := svc.Stats()
	fmt.Printf("service: %d accepted, %d rejected, %d coalesced, %d applied, %d recovered, %d failed; rounds-to-forget p50 %.1f p99 %.1f\n",
		stats.Accepted, stats.Rejected, stats.Coalesced, stats.Applied, stats.Recovered, stats.Failed,
		stats.RoundsToForget.P50, stats.RoundsToForget.P99)
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) {
			fmt.Println("interrupted; shutting down")
			return 0
		}
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", runErr)
		return 1
	}
	if acc, err := eng.TestAccuracy(eng.TestData()); err == nil {
		fmt.Printf("final global accuracy: %.2f%%\n", acc*100)
	}
	return 0
}

// startObsServer exposes the observer's metrics (plus health and pprof
// endpoints) over HTTP on addr and serves in the background, with any extra
// mounts co-hosted on the same mux (-serve adds the /unlearn API). The
// returned server is shut down gracefully by the caller; the listener
// reports the bound address (useful with ":0").
func startObsServer(addr string, o *goldfish.Observer, mounts ...func(*http.ServeMux)) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs endpoint: %w", err)
	}
	srv := &http.Server{Handler: obs.Handler("goldfish-server "+version.Version, o.Registry(), mounts...)}
	//goldfish:goleakok — joined by the caller's deferred srv.Shutdown: Serve returns ErrServerClosed on graceful shutdown and the goroutine exits
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "goldfish-server: obs endpoint: %v\n", err)
		}
	}()
	return srv, ln, nil
}
