// Command goldfish-server runs a federation server over TCP. Clients
// (cmd/goldfish-client) connect, receive the global model each round, train
// locally and upload updates; the server aggregates with FedAvg or the
// paper's adaptive-weight scheme and finally prints the global model's test
// accuracy.
//
// Usage:
//
//	goldfish-server -addr :7070 -clients 3 -rounds 8 -dataset mnist -scale tiny
//	goldfish-server -addr :7070 -clients 3 -agg adaptive
//	goldfish-server -addr :7070 -clients 3 -obs-addr 127.0.0.1:9090
//
// The dataset/scale/seed flags must match the clients' so both sides build
// identical architectures and evaluation data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goldfish"
	"goldfish/internal/fed"
	"goldfish/internal/metrics"
	"goldfish/internal/obs"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		clients = flag.Int("clients", 2, "number of clients to wait for")
		rounds  = flag.Int("rounds", 0, "global rounds (0 = preset default)")
		dataset = flag.String("dataset", "mnist", "dataset preset: mnist|fmnist|cifar10|cifar100")
		scale   = flag.String("scale", "tiny", "experiment scale: tiny|small|medium|paper")
		seed    = flag.Int64("seed", 1, "random seed (must match clients)")
		agg     = flag.String("agg", "fedavg", "aggregator: fedavg|adaptive")
		timeout = flag.Duration("round-timeout", time.Minute,
			"per-round straggler bound; slower clients are dropped for the round (0 = wait forever)")
		obsAddr = flag.String("obs-addr", "",
			"serve /healthz, /debug/vars and /debug/pprof on this address (observability HTTP is off when empty)")
		ver = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *ver {
		version.Fprint(os.Stdout, "goldfish-server")
		return 0
	}

	p, err := goldfish.NewPreset(*dataset, goldfish.Scale(*scale), *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	if *rounds <= 0 {
		*rounds = p.Rounds
	}
	_, test, err := p.Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	initNet, err := goldfish.BuildModel(p.Model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}

	cfg := fed.ServerConfig{
		Rounds:       *rounds,
		NumClients:   *clients,
		RoundTimeout: *timeout,
		Initial:      initNet.StateVector(),
		OnRound: func(ri fed.RoundInfo) {
			if err := initNet.SetStateVector(ri.Global); err != nil {
				return
			}
			acc := metrics.Accuracy(initNet, test, 0)
			fmt.Printf("round %d: %d updates, global accuracy %.2f%%\n",
				ri.Round, len(ri.Updates), acc*100)
		},
	}
	switch *agg {
	case "fedavg":
		cfg.Aggregator = fed.FedAvg{}
	case "adaptive":
		cfg.Aggregator = fed.AdaptiveWeight{}
		eval, err := goldfish.BuildModel(p.Model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
			return 1
		}
		// Pooled replicas: the engine scores a round's updates concurrently.
		cfg.Scorer = fed.ScorerFunc(metrics.NewMSEScorer(eval, test, 0))
	default:
		fmt.Fprintf(os.Stderr, "goldfish-server: unknown aggregator %q\n", *agg)
		return 2
	}

	srv, err := fed.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	fmt.Printf("goldfish-server: listening on %s, waiting for %d clients (%s/%s, %d rounds, %s)\n",
		ln.Addr(), *clients, *dataset, *scale, *rounds, *agg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	observer := goldfish.NewObserver(nil)
	ctx = goldfish.WithObservability(ctx, observer)
	if *obsAddr != "" {
		obsSrv, obsLn, err := startObsServer(*obsAddr, observer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
			return 1
		}
		fmt.Printf("goldfish-server: observability on http://%s (/healthz /debug/vars /debug/pprof)\n", obsLn.Addr())
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := obsSrv.Shutdown(shutCtx); err != nil {
				fmt.Fprintf(os.Stderr, "goldfish-server: obs shutdown: %v\n", err)
			}
		}()
	}

	final, err := srv.Serve(ctx, ln)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	if err := initNet.SetStateVector(final); err != nil {
		fmt.Fprintf(os.Stderr, "goldfish-server: %v\n", err)
		return 1
	}
	fmt.Printf("final global accuracy: %.2f%%\n", goldfish.Accuracy(initNet, test)*100)
	return 0
}

// startObsServer exposes the observer's metrics (plus health and pprof
// endpoints) over HTTP on addr and serves in the background. The returned
// server is shut down gracefully by the caller; the listener reports the
// bound address (useful with ":0").
func startObsServer(addr string, o *goldfish.Observer) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs endpoint: %w", err)
	}
	srv := &http.Server{Handler: obs.Handler("goldfish-server "+version.Version, o.Registry())}
	//goldfish:goleakok — joined by the caller's deferred srv.Shutdown: Serve returns ErrServerClosed on graceful shutdown and the goroutine exits
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "goldfish-server: obs endpoint: %v\n", err)
		}
	}()
	return srv, ln, nil
}
