package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"goldfish"
	"goldfish/internal/obs"
	"goldfish/internal/version"
)

// TestObsEndpoints boots the server's observability listener on an ephemeral
// port and hits the endpoints a deployment would probe: /healthz must report
// liveness with the version banner, /debug/vars must serve the live metrics
// snapshot.
func TestObsEndpoints(t *testing.T) {
	observer := goldfish.NewObserver(nil)
	observer.Counter("fed.rounds").Add(3)

	srv, ln, err := startObsServer("127.0.0.1:0", observer)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", resp.StatusCode)
	}
	if want := "ok goldfish-server " + version.Version; !strings.HasPrefix(string(body), want) {
		t.Errorf("/healthz body = %q, want prefix %q", body, want)
	}

	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status = %d, want 200", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/vars is not snapshot JSON: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "fed.rounds" || snap.Counters[0].Value != 3 {
		t.Errorf("/debug/vars counters = %+v, want fed.rounds=3", snap.Counters)
	}
}
