// Command goldfishlint runs the repo's static-analysis suite (internal/lint)
// over package patterns, multichecker-style: every analyzer on every
// matched package, diagnostics printed one per line (-json switches to
// newline-delimited JSON), non-zero exit when any fire. CI runs
// `go run ./cmd/goldfishlint ./...` so a PR that breaks a determinism,
// registry, error-wrapping, error-discard, concurrency, goroutine-leak,
// hot-path-allocation, context-flow, lock-order, deletion-taint or
// API-surface contract fails before any golden fixture or determinism gate
// does. `goldfishlint -fix` applies the analyzers' mechanical suggested
// fixes atomically per file (`-fix -dry-run` prints them as a diff and
// exits 1 while any are pending — the CI gate). `goldfishlint -api` prints
// the canonical exported surface of package goldfish that the apisurface
// analyzer gates on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"goldfish/internal/lint"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("goldfishlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		showVersion = fs.Bool("version", false, "print the goldfishlint version and exit")
		listRules   = fs.Bool("lint-rules", false, "print the enabled analyzers and their docs, then exit")
		jsonOut     = fs.Bool("json", false, "print diagnostics as JSON, one object per line")
		apiOut      = fs.Bool("api", false, "print the canonical exported API surface of package goldfish and exit")
		applyFix    = fs.Bool("fix", false, "apply the analyzers' suggested mechanical fixes to the source files")
		dryRun      = fs.Bool("dry-run", false, "with -fix: print the fixes as a diff instead of applying them; exit 1 if any are pending")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: goldfishlint [flags] [packages]\n\n"+
			"Runs the goldfish static-analysis suite on the given package patterns\n"+
			"(default ./...). Exits 1 when any diagnostic fires.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dryRun && !*applyFix {
		fmt.Fprintln(stderr, "goldfishlint: -dry-run requires -fix")
		return 2
	}
	if *showVersion {
		version.Fprint(stdout, "goldfishlint")
		return 0
	}
	if *listRules {
		printRules(stdout)
		return 0
	}
	if *apiOut {
		return printAPI(stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, lint.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	if *applyFix {
		return runFix(diags, *dryRun, stdout, stderr)
	}
	if perr := printDiags(stdout, diags, *jsonOut); perr != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", perr)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "goldfishlint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// runFix drives the -fix engine over the diagnostics: dry-run renders the
// planned edits as a deterministic diff and exits 1 while any mechanical fix
// is pending (the CI gate), apply mode rewrites the files atomically and
// exits 1 only when unfixable diagnostics remain.
func runFix(diags []lint.Diagnostic, dryRun bool, stdout, stderr io.Writer) int {
	plan := lint.PlanFixes(diags)
	unfixable := 0
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			unfixable++
			fmt.Fprintln(stdout, d)
		}
	}
	if dryRun {
		if !plan.Empty() {
			diff, err := plan.Diff()
			if err != nil {
				fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
				return 2
			}
			if _, err := stdout.Write(diff); err != nil {
				fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "goldfishlint: %d mechanical fix edit(s) pending in %d file(s); run goldfishlint -fix\n",
				plan.NumEdits(), plan.NumFiles())
			return 1
		}
		if unfixable > 0 {
			fmt.Fprintf(stderr, "goldfishlint: %d violation(s) without a mechanical fix\n", unfixable)
			return 1
		}
		return 0
	}
	changed, err := plan.Apply()
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	if changed > 0 {
		fmt.Fprintf(stderr, "goldfishlint: applied %d fix edit(s) across %d file(s)\n", plan.NumEdits(), changed)
	}
	if unfixable > 0 {
		fmt.Fprintf(stderr, "goldfishlint: %d violation(s) need manual fixes\n", unfixable)
		return 1
	}
	return 0
}

// jsonDiag is the -json wire shape: one object per line carrying the stable
// subset of a Diagnostic that scripts and editors consume.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printDiags writes the diagnostics either in the human file:line:col form or
// as newline-delimited JSON (each Encode terminates its object with a
// newline, giving the one-object-per-line stream). Both formats are pinned
// by CLI tests. lint.Run already sorted the diagnostics by analyzer name
// then position, so both streams are deterministic for CI diffing.
func printDiags(w io.Writer, diags []lint.Diagnostic, asJSON bool) error {
	if !asJSON {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}); err != nil {
			return fmt.Errorf("encoding diagnostic: %w", err)
		}
	}
	return nil
}

// printAPI renders the root package's canonical exported surface — the exact
// bytes the apisurface analyzer compares against api/goldfish.txt — so the
// golden can be inspected, diffed, or regenerated by hand
// (`goldfishlint -api > api/goldfish.txt`).
func printAPI(stdout, stderr io.Writer) int {
	moduleDir, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir, "goldfish")
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load("goldfish")
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	if len(pkgs) != 1 {
		fmt.Fprintf(stderr, "goldfishlint: pattern \"goldfish\" matched %d packages, want 1\n", len(pkgs))
		return 2
	}
	if _, err := io.WriteString(stdout, lint.Surface(pkgs[0])); err != nil {
		fmt.Fprintf(stderr, "goldfishlint: writing API surface: %v\n", err)
		return 2
	}
	return 0
}

// printRules writes the analyzer roster sorted by analyzer name — the
// deterministic order the satellite CLI test pins, so CI diffs of
// -lint-rules output are stable: name, one-line summary, full doc.
func printRules(w io.Writer) {
	suite := append([]*lint.Analyzer(nil), lint.Suite()...)
	sort.Slice(suite, func(i, j int) bool { return suite[i].Name < suite[j].Name })
	fmt.Fprintf(w, "goldfishlint analyzers (%d):\n\n", len(suite))
	for _, a := range suite {
		fmt.Fprintf(w, "%s: %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		for _, line := range strings.Split(a.Doc, "\n")[1:] {
			fmt.Fprintf(w, "    %s\n", line)
		}
		fmt.Fprintln(w)
	}
}

// moduleRoot locates the enclosing module's directory, so goldfishlint works
// from any subdirectory of the repo.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("locating go.mod: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("goldfishlint must run inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
