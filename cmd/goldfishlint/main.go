// Command goldfishlint runs the repo's static-analysis suite (internal/lint)
// over package patterns, multichecker-style: every analyzer on every
// matched package, diagnostics printed one per line, non-zero exit when any
// fire. CI runs `go run ./cmd/goldfishlint ./...` so a PR that breaks a
// determinism, registry, error-wrapping or concurrency contract fails
// before any golden fixture or determinism gate does.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"goldfish/internal/lint"
	"goldfish/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("goldfishlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		showVersion = fs.Bool("version", false, "print the goldfishlint version and exit")
		listRules   = fs.Bool("lint-rules", false, "print the enabled analyzers and their docs, then exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: goldfishlint [flags] [packages]\n\n"+
			"Runs the goldfish static-analysis suite on the given package patterns\n"+
			"(default ./...). Exits 1 when any diagnostic fires.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Fprint(stdout, "goldfishlint")
		return 0
	}
	if *listRules {
		printRules(stdout)
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, lint.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "goldfishlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "goldfishlint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// printRules writes the analyzer roster: name, one-line summary, full doc —
// the -lint-rules introspection a CLI test pins against lint.Suite().
func printRules(w io.Writer) {
	suite := lint.Suite()
	fmt.Fprintf(w, "goldfishlint analyzers (%d):\n\n", len(suite))
	for _, a := range suite {
		fmt.Fprintf(w, "%s: %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		for _, line := range strings.Split(a.Doc, "\n")[1:] {
			fmt.Fprintf(w, "    %s\n", line)
		}
		fmt.Fprintln(w)
	}
}

// moduleRoot locates the enclosing module's directory, so goldfishlint works
// from any subdirectory of the repo.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("locating go.mod: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("goldfishlint must run inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
