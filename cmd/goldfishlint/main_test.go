package main

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldfish/internal/lint"
	"goldfish/internal/version"
)

// TestLintRulesMatchesSuite asserts the -lint-rules introspection lists
// exactly the registered analyzer suite, each with its one-line summary, so
// the CLI's self-description cannot drift from lint.Suite().
func TestLintRulesMatchesSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-lint-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-lint-rules exited %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	suite := lint.Suite()
	if want := fmt.Sprintf("goldfishlint analyzers (%d):", len(suite)); !strings.Contains(out, want) {
		t.Errorf("-lint-rules output missing header %q:\n%s", want, out)
	}
	for _, a := range suite {
		summary := strings.SplitN(a.Doc, "\n", 2)[0]
		if want := a.Name + ": " + summary; !strings.Contains(out, want) {
			t.Errorf("-lint-rules output missing %q:\n%s", want, out)
		}
	}
	// No analyzer outside the suite may be listed: every roster line has the
	// unindented "name: summary" shape.
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, " ") || strings.HasPrefix(line, "goldfishlint analyzers") {
			continue
		}
		name, _, ok := strings.Cut(line, ": ")
		if !ok || !known[name] {
			t.Errorf("-lint-rules lists %q, which is not in lint.Suite()", line)
		}
	}
}

// TestLintRulesSortedByName pins the -lint-rules roster order: analyzer
// names ascending, regardless of the suite's logical registration order, so
// the output is stable for CI diffing.
func TestLintRulesSortedByName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-lint-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-lint-rules exited %d, stderr: %s", code, stderr.String())
	}
	var names []string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if line == "" || strings.HasPrefix(line, " ") || strings.HasPrefix(line, "goldfishlint analyzers") {
			continue
		}
		if name, _, ok := strings.Cut(line, ": "); ok {
			names = append(names, name)
		}
	}
	if len(names) != len(lint.Suite()) {
		t.Fatalf("-lint-rules listed %d analyzers, want %d", len(names), len(lint.Suite()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("-lint-rules roster not sorted by name: %q before %q", names[i-1], names[i])
		}
	}
}

// TestDiagnosticSortOrder pins the shared output ordering: analyzer name
// first, then filename, line, column, message — so every output mode groups
// by rule and CI diffs are deterministic.
func TestDiagnosticSortOrder(t *testing.T) {
	diags := []lint.Diagnostic{
		{Analyzer: "registry", Pos: token.Position{Filename: "a.go", Line: 1}},
		{Analyzer: "determinism", Pos: token.Position{Filename: "z.go", Line: 9}},
		{Analyzer: "determinism", Pos: token.Position{Filename: "a.go", Line: 5, Column: 2}, Message: "b"},
		{Analyzer: "determinism", Pos: token.Position{Filename: "a.go", Line: 5, Column: 2}, Message: "a"},
		{Analyzer: "determinism", Pos: token.Position{Filename: "a.go", Line: 5, Column: 1}},
	}
	lint.SortDiagnostics(diags)
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = fmt.Sprintf("%s/%s:%d:%d:%s", d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	}
	want := []string{
		"determinism/a.go:5:1:",
		"determinism/a.go:5:2:a",
		"determinism/a.go:5:2:b",
		"determinism/z.go:9:0:",
		"registry/a.go:1:0:",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDryRunRequiresFix pins that -dry-run without -fix is a usage error.
func TestDryRunRequiresFix(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dry-run"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-dry-run without -fix exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-dry-run requires -fix") {
		t.Errorf("stderr = %q, want the -dry-run usage message", stderr.String())
	}
}

// TestFixDryRunCleanPackage pins the CI gate's success path: a clean package
// has no pending mechanical fixes, so -fix -dry-run exits 0 silently.
func TestFixDryRunCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list -export")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fix", "-dry-run", "./internal/stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix -dry-run on clean package exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean -fix -dry-run printed output:\n%s", stdout.String())
	}
}

// TestSuiteRoster pins the full analyzer roster in order, so growing or
// shrinking the suite is an explicit, reviewed change rather than a silent
// side effect of a refactor.
func TestSuiteRoster(t *testing.T) {
	want := []string{
		"determinism", "registry", "errwrap", "errdrop", "concurrency",
		"goleak", "hotpathalloc", "ctxflow", "lockorder", "deletedflow",
		"apisurface",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("lint.Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("lint.Suite()[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

// TestDiagnosticFormats pins both output modes on a fabricated diagnostic:
// the human file:line:col one-per-line form (the default) and the -json
// one-object-per-line form.
func TestDiagnosticFormats(t *testing.T) {
	diags := []lint.Diagnostic{{
		Analyzer: "hotpathalloc",
		Pos:      token.Position{Filename: "internal/tensor/ops.go", Line: 42, Column: 7},
		Message:  "make allocates in a hot path",
	}}

	var human bytes.Buffer
	printDiags(&human, diags, false)
	if got, want := human.String(), "internal/tensor/ops.go:42:7: make allocates in a hot path [hotpathalloc]\n"; got != want {
		t.Errorf("human format = %q, want %q", got, want)
	}

	var js bytes.Buffer
	printDiags(&js, diags, true)
	want := `{"file":"internal/tensor/ops.go","line":42,"analyzer":"hotpathalloc","message":"make allocates in a hot path"}` + "\n"
	if got := js.String(); got != want {
		t.Errorf("json format = %q, want %q", got, want)
	}
}

// TestAPIModePrintsGolden pins `goldfishlint -api` to the committed golden:
// the CLI renders exactly the bytes the apisurface analyzer gates on, so
// `goldfishlint -api > api/goldfish.txt` is a valid regeneration path.
func TestAPIModePrintsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list -export")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-api"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-api exited %d, stderr: %s", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "api", "goldfish.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("-api output diverges from committed api/goldfish.txt:\n%s", stdout.String())
	}
}

// TestVersionFlag pins the -version banner to the shared version stamp.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "goldfishlint "+version.Version) {
		t.Errorf("-version printed %q, want prefix %q", stdout.String(), "goldfishlint "+version.Version)
	}
}

// TestRunCleanRepo runs the real multichecker over a single known-clean
// package and expects a silent zero exit.
func TestRunCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list -export")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("lint on ./internal/stats exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// TestBadFlag pins the usage exit code.
func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
