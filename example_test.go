package goldfish_test

import (
	"context"
	"fmt"
	"math/rand"

	"goldfish"
)

// ExampleNewPreset shows how to resolve the paper's configuration for a
// dataset and inspect its dimensions.
func ExampleNewPreset() {
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(p.Dataset, p.Spec.Classes, p.Clients)
	// Output: mnist 10 5
}

// ExampleNewFederation trains a minimal two-client federation and evaluates
// the global model.
func ExampleNewFederation() {
	p, _ := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	train, test, _ := p.Generate()
	parts, _ := goldfish.PartitionIID(train, 2, rand.New(rand.NewSource(1)))

	fed, err := goldfish.NewFederation(goldfish.FederationConfig{Client: p.ClientConfig()}, parts)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := fed.Run(context.Background(), 6, nil); err != nil {
		fmt.Println(err)
		return
	}
	net, _ := fed.GlobalNet()
	fmt.Println(goldfish.Accuracy(net, test) > 0.3)
	// Output: true
}

// ExampleFederation_RequestDeletion demonstrates the right-to-be-forgotten
// flow: after the deletion request, the next rounds unlearn the rows.
func ExampleFederation_RequestDeletion() {
	p, _ := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	train, _, _ := p.Generate()
	parts, _ := goldfish.PartitionIID(train, 2, rand.New(rand.NewSource(1)))

	fed, _ := goldfish.NewFederation(goldfish.FederationConfig{Client: p.ClientConfig()}, parts)
	ctx := context.Background()
	_ = fed.Run(ctx, 2, nil)

	if err := fed.RequestDeletion(0, []int{0, 1, 2}); err != nil {
		fmt.Println(err)
		return
	}
	var unlearned bool
	_ = fed.Run(ctx, 1, func(rs goldfish.RoundStats) { unlearned = rs.UnlearningRound })
	fmt.Println(unlearned, fed.Client(0).NumActive() == parts[0].Len()-3)
	// Output: true true
}

// ExampleBackdoorConfig shows the trigger-patch attack used to probe
// unlearning validity.
func ExampleBackdoorConfig() {
	p, _ := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	train, _, _ := p.Generate()

	bd := goldfish.DefaultBackdoor()
	rows, err := bd.Poison(train, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(rows) == train.Len()/10, train.Y[rows[0]] == bd.TargetLabel)
	// Output: true true
}
