package goldfish_test

import (
	"context"
	"fmt"
	"math/rand"

	"goldfish"
)

// ExampleNewPreset shows how to resolve the paper's configuration for a
// dataset and inspect its dimensions.
func ExampleNewPreset() {
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(p.Dataset, p.Spec.Classes, p.Clients)
	// Output: mnist 10 5
}

// ExampleNew trains a minimal two-client federation through the options API
// and evaluates the global model.
func ExampleNew() {
	e, err := goldfish.New(
		goldfish.WithDataset("mnist", goldfish.ScaleTiny),
		goldfish.WithClients(2),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := e.Run(context.Background(), 6); err != nil {
		fmt.Println(err)
		return
	}
	acc, _ := e.TestAccuracy(nil)
	fmt.Println(acc > 0.3)
	// Output: true
}

// ExampleEngine_RequestDeletion demonstrates the right-to-be-forgotten
// flow: after the deletion request, the next rounds unlearn the rows.
func ExampleEngine_RequestDeletion() {
	var unlearned bool
	e, _ := goldfish.New(
		goldfish.WithDataset("mnist", goldfish.ScaleTiny),
		goldfish.WithClients(2),
		goldfish.WithRoundHook(func(rs goldfish.RoundStats) { unlearned = unlearned || rs.UnlearningRound }),
	)
	ctx := context.Background()
	_ = e.Run(ctx, 2)

	if err := e.RequestDeletion(0, []int{0, 1, 2}); err != nil {
		fmt.Println(err)
		return
	}
	before := e.Partitions()[0].Len()
	_ = e.Run(ctx, 1)
	fmt.Println(unlearned, e.Client(0).NumActive() == before-3)
	// Output: true true
}

// ExampleWithUnlearner selects a baseline strategy from the Unlearner
// registry.
func ExampleWithUnlearner() {
	e, err := goldfish.New(
		goldfish.WithDataset("mnist", goldfish.ScaleTiny),
		goldfish.WithClients(2),
		goldfish.WithUnlearner("retrain"),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(e.Strategy(), e.NumClients())
	// Output: retrain 2
}

// ExampleBackdoorConfig shows the trigger-patch attack used to probe
// unlearning validity.
func ExampleBackdoorConfig() {
	p, _ := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	train, _, _ := p.Generate()

	bd := goldfish.DefaultBackdoor()
	rows, err := bd.Poison(train, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(rows) == train.Len()/10, train.Y[rows[0]] == bd.TargetLabel)
	// Output: true true
}
