// Backdoor: a fuller unlearning study on one deletion rate — compares the
// contaminated origin model, Goldfish unlearning ("ours"), and retraining
// from scratch without the poisoned rows (the B1 reference), reporting
// accuracy, attack success rate, and the model-similarity statistics the
// paper uses (JSD, L2, Welch t-test).
//
// Run with:
//
//	go run ./examples/backdoor
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"goldfish"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "backdoor: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 2)
	if err != nil {
		return err
	}
	train, test, err := p.Generate()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	parts, err := goldfish.PartitionIID(train, 4, rng)
	if err != nil {
		return err
	}
	bd := goldfish.DefaultBackdoor()
	poisoned, err := bd.Poison(parts[0], 0.3, rng)
	if err != nil {
		return err
	}
	triggered, err := bd.TriggerCopy(test)
	if err != nil {
		return err
	}

	// Origin + ours share one engine running the paper's procedure.
	fedr, err := goldfish.New(
		goldfish.WithPreset(p),
		goldfish.WithPartitions(parts),
		goldfish.WithUnlearner("goldfish"),
	)
	if err != nil {
		return err
	}
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		return err
	}
	origin, err := fedr.GlobalNet()
	if err != nil {
		return err
	}
	if err := fedr.RequestDeletion(0, poisoned); err != nil {
		return err
	}
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		return err
	}
	ours, err := fedr.GlobalNet()
	if err != nil {
		return err
	}

	// B1 reference: the "retrain" strategy from the Unlearner registry runs
	// the same train → delete → recover flow, dropping the poisoned rows
	// and retraining from scratch.
	ref, err := goldfish.New(
		goldfish.WithPreset(p),
		goldfish.WithPartitions(parts),
		goldfish.WithUnlearner("retrain"),
	)
	if err != nil {
		return err
	}
	if err := ref.Run(ctx, p.Rounds); err != nil {
		return err
	}
	if err := ref.RequestDeletion(0, poisoned); err != nil {
		return err
	}
	if err := ref.Run(ctx, p.Rounds); err != nil {
		return err
	}
	b1, err := ref.GlobalNet()
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %-10s %-10s\n", "model", "acc", "backdoor")
	for _, row := range []struct {
		name string
		net  *goldfish.Network
	}{
		{"origin (poisoned)", origin},
		{"ours (unlearned)", ours},
		{"retrain from scratch", b1},
	} {
		fmt.Printf("%-22s %-10.3f %-10.3f\n", row.name,
			goldfish.Accuracy(row.net, test),
			goldfish.AttackSuccessRate(row.net, triggered, bd.TargetLabel))
	}

	div, err := goldfish.ModelDivergence(ours, b1, test)
	if err != nil {
		return err
	}
	tt, err := goldfish.ConfidenceTTest(ours, origin, test)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("ours vs retrain-from-scratch: JSD %.3f, L2 %.3f (small = indistinguishable)\n", div.JSD, div.L2)
	fmt.Printf("ours vs origin t-test:        p = %.3f (small = prediction patterns differ)\n", tt.P)
	return nil
}
