// Heterogeneous: the extension module's adaptive-weight aggregation
// (paper Eqs. 12–13, Fig. 8). When clients hold very uneven local datasets,
// weighting uploads by their MSE on the server's test set stabilizes the
// global model compared to FedAvg.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"goldfish"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "heterogeneous: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 5)
	if err != nil {
		return err
	}
	train, test, err := p.Generate()
	if err != nil {
		return err
	}

	const clients = 8
	parts, err := goldfish.PartitionHeterogeneous(train, clients, 0.15, rand.New(rand.NewSource(5)))
	if err != nil {
		return err
	}
	sizes := make([]int, clients)
	for i, part := range parts {
		sizes[i] = part.Len()
	}
	fmt.Printf("%d clients with heterogeneous local datasets: sizes %v\n\n", clients, sizes)

	type run struct {
		name string
		agg  goldfish.Aggregator
	}
	results := map[string][]float64{}
	for _, r := range []run{
		{"fedavg", goldfish.FedAvg{}},
		{"adaptive (Eq.12-13)", goldfish.AdaptiveWeight{}},
	} {
		var accs []float64
		var fedr *goldfish.Engine
		var hookErr error
		fedr, err := goldfish.New(
			goldfish.WithPreset(p),
			goldfish.WithPartitions(parts),
			goldfish.WithAggregator(r.agg),
			goldfish.WithServerTest(test),
			goldfish.WithRoundHook(func(rs goldfish.RoundStats) {
				net, nerr := fedr.GlobalNet()
				if nerr != nil {
					hookErr = nerr
					return
				}
				accs = append(accs, goldfish.Accuracy(net, test))
			}),
		)
		if err != nil {
			return err
		}
		if err := fedr.Run(ctx, p.Rounds); err != nil {
			return err
		}
		if hookErr != nil {
			return hookErr
		}
		results[r.name] = accs
	}

	fmt.Printf("%-8s %-12s %-20s\n", "round", "fedavg", "adaptive (Eq.12-13)")
	for i := range results["fedavg"] {
		fmt.Printf("%-8d %-12.3f %-20.3f\n", i+1, results["fedavg"][i], results["adaptive (Eq.12-13)"][i])
	}
	fmt.Println()
	fmt.Println("adaptive weighting favours uploads that score well on the server test")
	fmt.Println("set, damping the noise that tiny or skewed clients inject early on.")
	return nil
}
