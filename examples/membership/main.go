// Membership: dynamic federation membership (the paper's §V outlook) plus a
// membership-inference validity check. A client joins mid-training, another
// leaves with full unlearning of its contribution, and the confidence-gap
// metric verifies the departed client's data is no longer "remembered".
//
// Run with:
//
//	go run ./examples/membership
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"goldfish"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "membership: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 4)
	if err != nil {
		return err
	}
	train, test, err := p.Generate()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(4))
	parts, err := goldfish.PartitionIID(train, 4, rng)
	if err != nil {
		return err
	}

	// Start with three clients; the fourth joins later. Client 2's data is
	// made distinctive (a backdoor) so its departure is observable.
	bd := goldfish.DefaultBackdoor()
	poisoned, err := bd.Poison(parts[2], 0.4, rng)
	if err != nil {
		return err
	}
	_ = poisoned
	triggered, err := bd.TriggerCopy(test)
	if err != nil {
		return err
	}

	fedr, err := goldfish.New(
		goldfish.WithPreset(p),
		goldfish.WithPartitions(parts[:3]),
	)
	if err != nil {
		return err
	}
	if err := fedr.Run(ctx, 4); err != nil {
		return err
	}
	report := func(stage string) error {
		net, err := fedr.GlobalNet()
		if err != nil {
			return err
		}
		fmt.Printf("%-34s clients=%d acc=%.2f backdoor=%.2f\n",
			stage, fedr.NumClients(),
			goldfish.Accuracy(net, test),
			goldfish.AttackSuccessRate(net, triggered, bd.TargetLabel))
		return nil
	}
	if err := report("after initial training (3 clients)"); err != nil {
		return err
	}

	// A new client joins with fresh data.
	if _, err := fedr.AddClient(parts[3]); err != nil {
		return err
	}
	if err := fedr.Run(ctx, 3); err != nil {
		return err
	}
	if err := report("after client 3 joined"); err != nil {
		return err
	}

	// Client 2 (the poisoned one, at index 2) leaves WITH unlearning: the
	// global model is reinitialized and the remaining clients rebuild it by
	// distillation, so the departed data's influence — including its
	// backdoor — is actively forgotten.
	if err := fedr.RemoveClient(2, true); err != nil {
		return err
	}
	if err := fedr.Run(ctx, 6); err != nil {
		return err
	}
	if err := report("after client 2 left (unlearned)"); err != nil {
		return err
	}

	// Validity check: the model should not be more confident on the
	// departed client's data than on unseen test data.
	net, err := fedr.GlobalNet()
	if err != nil {
		return err
	}
	gap := goldfish.MembershipGap(net, parts[2], test)
	fmt.Printf("\nmembership-inference gap on departed data: %+.4f (≈0 means forgotten)\n", gap)
	return nil
}
