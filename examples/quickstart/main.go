// Quickstart: train a federated model, poison one client with a backdoor,
// then exercise the right to be forgotten — Goldfish unlearns the poisoned
// data and the backdoor disappears while test accuracy survives.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"goldfish"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Resolve the MNIST-like preset at tiny scale (seconds on a laptop).
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		return err
	}
	train, test, err := p.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d train / %d test samples, %d classes\n",
		train.Len(), test.Len(), train.Classes)

	// 2. Split across four clients and backdoor 30%% of client 0's data.
	rng := rand.New(rand.NewSource(1))
	parts, err := goldfish.PartitionIID(train, 4, rng)
	if err != nil {
		return err
	}
	bd := goldfish.DefaultBackdoor()
	poisoned, err := bd.Poison(parts[0], 0.3, rng)
	if err != nil {
		return err
	}
	triggered, err := bd.TriggerCopy(test)
	if err != nil {
		return err
	}
	fmt.Printf("client 0: %d of %d samples backdoored (target class %d)\n",
		len(poisoned), parts[0].Len(), bd.TargetLabel)

	// 3. Federated training (the backdoor contaminates the global model).
	fedr, err := goldfish.New(
		goldfish.WithPreset(p),
		goldfish.WithPartitions(parts),
		goldfish.WithUnlearner("goldfish"),
	)
	if err != nil {
		return err
	}
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		return err
	}
	net, err := fedr.GlobalNet()
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %d rounds of training:\n", p.Rounds)
	fmt.Printf("  test accuracy:        %.1f%%\n", goldfish.Accuracy(net, test)*100)
	fmt.Printf("  backdoor success:     %.1f%%  <-- the attack works\n",
		goldfish.AttackSuccessRate(net, triggered, bd.TargetLabel)*100)

	// 4. Client 0 asks for its poisoned rows to be forgotten.
	if err := fedr.RequestDeletion(0, poisoned); err != nil {
		return err
	}
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		return err
	}
	net, err = fedr.GlobalNet()
	if err != nil {
		return err
	}
	fmt.Printf("\nafter unlearning (%d more rounds):\n", p.Rounds)
	fmt.Printf("  test accuracy:        %.1f%%\n", goldfish.Accuracy(net, test)*100)
	fmt.Printf("  backdoor success:     %.1f%%  <-- forgotten\n",
		goldfish.AttackSuccessRate(net, triggered, bd.TargetLabel)*100)
	return nil
}
