// Sharding: the SISA-style data-partition optimization (paper §III-B,
// Figs. 2–3, 6–7). A client splits its data into shards with one model per
// shard; when a deletion lands in few shards, only those retrain (from the
// Eq. 9 checkpoint), so the model barely loses accuracy and the deletion
// round is cheap. With one monolithic model (τ=1) every deletion triggers a
// full reinitialization.
//
// Run with:
//
//	go run ./examples/sharding
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"goldfish"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sharding: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		return err
	}
	train, test, err := p.Generate()
	if err != nil {
		return err
	}

	fmt.Println("single client; a small deletion request arrives after round 3")
	fmt.Println()
	fmt.Printf("%-8s %-10s %-12s %-13s %-13s %-10s\n",
		"shards", "affected", "pre-del acc", "post-del acc", "recovered", "del time")

	for _, tau := range []int{1, 6} {
		cfg := p.ClientConfig()
		cfg.Shards = tau

		local := train.Clone()
		fedr, err := goldfish.New(
			goldfish.WithPreset(p),
			goldfish.WithClientConfig(cfg),
			goldfish.WithPartitions([]*goldfish.Dataset{local}),
		)
		if err != nil {
			return err
		}
		if err := fedr.Run(ctx, 3); err != nil {
			return err
		}
		pre, err := fedr.TestAccuracy(test)
		if err != nil {
			return err
		}

		// Build a deletion of ~2% of the data. For the sharded client we
		// take rows from a single shard's territory — the favourable case
		// the paper's Fig. 7a shows; a random spread at high rates touches
		// every shard and loses the advantage (Fig. 7c).
		n := local.Len() / 50
		if n < 1 {
			n = 1
		}
		var rows []int
		affected := "1/1"
		if mgr := fedr.Client(0).Shards(); mgr != nil {
			rows = append(rows, mgr.Shard(2).Indices[:n]...)
			affected = fmt.Sprintf("%d/%d", len(mgr.AffectedShards(rows)), tau)
		} else {
			rows = rand.New(rand.NewSource(7)).Perm(local.Len())[:n]
		}

		if err := fedr.RequestDeletion(0, rows); err != nil {
			return err
		}
		start := time.Now()
		if err := fedr.Run(ctx, 1); err != nil {
			return err
		}
		delTime := time.Since(start)
		post, err := fedr.TestAccuracy(test)
		if err != nil {
			return err
		}
		if err := fedr.Run(ctx, 3); err != nil {
			return err
		}
		rec, err := fedr.TestAccuracy(test)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-10s %-12.3f %-13.3f %-13.3f %-10s\n",
			tau, affected, pre, post, rec, delTime.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("τ=6: only the affected shard retrains from the Eq. 9 checkpoint, so the")
	fmt.Println("deletion round is fast and accuracy holds. τ=1: the whole model restarts.")
	fmt.Println("(More shards also mean weaker individual models — Fig. 6's trade-off.)")
	return nil
}
