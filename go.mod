module goldfish

go 1.24
