// Package goldfish is the public API of this reproduction of "Goldfish: An
// Efficient Federated Unlearning Framework" (Wang, Zhu, Chen,
// Esteves-Veríssimo; DSN 2024). It lets a user train a federated model over
// synthetic vision datasets, submit deletion requests, and unlearn them
// efficiently via the paper's four modules: knowledge-distillation basic
// model, composite loss (hard + confusion + distillation), optimization
// (early termination, SISA data sharding) and extension (adaptive
// distillation temperature, adaptive-weight aggregation).
//
// Quick start:
//
//	p, _ := goldfish.NewPreset("mnist", goldfish.ScaleSmall, 1)
//	train, test, _ := p.Generate()
//	parts, _ := goldfish.PartitionIID(train, 4, rand.New(rand.NewSource(1)))
//	fed, _ := goldfish.NewFederation(goldfish.FederationConfig{Client: p.ClientConfig()}, parts)
//	_ = fed.Run(ctx, 8, nil)                    // train
//	_ = fed.RequestDeletion(0, rowsToForget)    // right to be forgotten
//	_ = fed.Run(ctx, 8, nil)                    // unlearn + recover
//
// See the examples/ directory for runnable scenarios and internal/bench for
// the paper's full experiment suite.
package goldfish

import (
	"math/rand"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/optim"
	"goldfish/internal/persist"
	"goldfish/internal/preset"
	"goldfish/internal/stats"
)

// Core framework types (see internal/core for details).
type (
	// Config configures a Goldfish client: model, loss, optimizer, local
	// epochs, early termination, sharding.
	Config = core.Config
	// FederationConfig configures the server side of Algorithm 1.
	FederationConfig = core.FederationConfig
	// Federation orchestrates clients and deletion requests.
	Federation = core.Federation
	// Client is one federation participant.
	Client = core.Client
	// RoundStats summarizes a completed round for callbacks.
	RoundStats = core.RoundStats
)

// Data types.
type (
	// Dataset is a labelled image set in NCHW layout.
	Dataset = data.Dataset
	// Scale selects experiment sizes (ScaleTiny … ScalePaper).
	Scale = data.Scale
	// BackdoorConfig describes the trigger-patch attack used to probe
	// unlearning.
	BackdoorConfig = data.BackdoorConfig
	// Preset bundles a ready-to-run dataset/model/hyperparameter set.
	Preset = preset.Preset
)

// Model types.
type (
	// ModelConfig describes a network architecture to build.
	ModelConfig = model.Config
	// Arch names an architecture from the paper's model zoo.
	Arch = model.Arch
	// Network is a trainable neural network.
	Network = nn.Network
)

// Loss types.
type (
	// GoldfishLoss is the paper's composite objective (Eq. 6).
	GoldfishLoss = loss.Goldfish
	// HardLoss is a supervised loss plug-in (cross-entropy, focal, NLL).
	HardLoss = loss.Hard
)

// Aggregation types.
type (
	// Aggregator combines client updates into a global model.
	Aggregator = fed.Aggregator
	// FedAvg is sample-weighted averaging (McMahan et al.).
	FedAvg = fed.FedAvg
	// AdaptiveWeight is the paper's MSE-guided aggregation (Eqs. 12–13).
	AdaptiveWeight = fed.AdaptiveWeight
	// ModelUpdate is one client's upload.
	ModelUpdate = fed.ModelUpdate
)

// SGDConfig configures local stochastic gradient descent.
type SGDConfig = optim.SGDConfig

// Experiment scales, mirroring internal/data.
const (
	ScaleTiny   = data.ScaleTiny
	ScaleSmall  = data.ScaleSmall
	ScaleMedium = data.ScaleMedium
	ScalePaper  = data.ScalePaper
)

// Architectures of the paper's model zoo.
const (
	ArchLeNet5    = model.ArchLeNet5
	ArchLeNet5Mod = model.ArchLeNet5Mod
	ArchResNet32  = model.ArchResNet32
	ArchResNet56  = model.ArchResNet56
	ArchMLP       = model.ArchMLP
)

// NewPreset resolves the paper's configuration for a dataset ("mnist",
// "fmnist", "cifar10", "cifar100") at the given scale. seed 0 selects the
// default seed.
func NewPreset(dataset string, scale Scale, seed int64) (Preset, error) {
	return preset.For(dataset, "", scale, seed)
}

// NewPresetWithArch is NewPreset with an explicit architecture override
// (e.g. ResNet-32 on CIFAR-10 as in Fig. 4d).
func NewPresetWithArch(dataset string, arch Arch, scale Scale, seed int64) (Preset, error) {
	return preset.For(dataset, arch, scale, seed)
}

// DefaultConfig returns the paper's hyperparameters for a model
// configuration.
func DefaultConfig(m ModelConfig) Config { return core.DefaultConfig(m) }

// DefaultLoss returns the paper's composite loss defaults (µc=0.25, µd=1.0,
// T=3, cross-entropy hard loss).
func DefaultLoss() GoldfishLoss { return loss.NewGoldfish() }

// NewFederation creates a federation with one Goldfish client per dataset
// partition.
func NewFederation(cfg FederationConfig, parts []*Dataset) (*Federation, error) {
	return core.NewFederation(cfg, parts)
}

// BuildModel constructs a network from the model zoo.
func BuildModel(cfg ModelConfig) (*Network, error) { return model.Build(cfg) }

// PartitionIID splits a dataset uniformly across clients.
func PartitionIID(d *Dataset, parts int, rng *rand.Rand) ([]*Dataset, error) {
	return data.PartitionIID(d, parts, rng)
}

// PartitionHeterogeneous splits a dataset with uneven sizes and label skew
// (skew in (0,1]; smaller is more heterogeneous).
func PartitionHeterogeneous(d *Dataset, parts int, skew float64, rng *rand.Rand) ([]*Dataset, error) {
	return data.PartitionHeterogeneous(d, parts, skew, rng)
}

// DefaultBackdoor returns the trigger-patch attack used across the paper's
// experiments.
func DefaultBackdoor() BackdoorConfig { return data.DefaultBackdoor() }

// Accuracy evaluates a network's top-1 accuracy on a dataset.
func Accuracy(net *Network, d *Dataset) float64 { return metrics.Accuracy(net, d, 0) }

// AttackSuccessRate measures the fraction of trigger-stamped samples
// classified as the attack target.
func AttackSuccessRate(net *Network, triggered *Dataset, target int) float64 {
	return metrics.AttackSuccessRate(net, triggered, target, 0)
}

// Divergence holds model-similarity statistics (mean per-sample JSD and L2
// between predictive distributions).
type Divergence = metrics.Divergence

// ModelDivergence compares the predictive distributions of two models over
// a probe dataset.
func ModelDivergence(a, b *Network, probe *Dataset) (Divergence, error) {
	return metrics.ModelDivergence(a, b, probe, 0)
}

// MembershipGap estimates how much a model still "remembers" target
// samples: the difference between its mean top-confidence on them and on a
// held-out probe set. A memorizing model shows a positive gap; after
// successful unlearning the gap returns towards zero.
func MembershipGap(net *Network, target, probe *Dataset) float64 {
	return metrics.MembershipGap(net, target, probe, 0)
}

// TTestResult is the outcome of a Welch two-sample t-test.
type TTestResult = stats.TTestResult

// ConfidenceTTest tests whether two models' prediction-confidence patterns
// are statistically distinguishable.
func ConfidenceTTest(a, b *Network, probe *Dataset) (TTestResult, error) {
	return metrics.ConfidenceTTest(a, b, probe, 0)
}

// SaveCheckpoint stores a network's full state (parameters and BatchNorm
// running statistics) with an integrity checksum.
func SaveCheckpoint(path string, arch string, net *Network, meta map[string]string) error {
	return persist.SaveFile(path, arch, net.StateVector(), meta)
}

// LoadCheckpoint restores a checkpoint into a network built by the caller
// (the architecture must match the one saved).
func LoadCheckpoint(path string, net *Network) (meta map[string]string, err error) {
	cp, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := net.SetStateVector(cp.State); err != nil {
		return nil, err
	}
	return cp.Meta, nil
}
