// Package goldfish is the public API of this reproduction of "Goldfish: An
// Efficient Federated Unlearning Framework" (Wang, Zhu, Chen,
// Esteves-Veríssimo; DSN 2024). It lets a user train a federated model over
// synthetic vision datasets, submit deletion requests, and unlearn them
// efficiently via the paper's four modules: knowledge-distillation basic
// model, composite loss (hard + confusion + distillation), optimization
// (early termination, SISA data sharding) and extension (adaptive
// distillation temperature, adaptive-weight aggregation).
//
// The public surface is an engine + strategy design: goldfish.New builds a
// federated-unlearning engine from functional options, and the Unlearner
// registry makes the paper's procedure and its three baselines ("goldfish",
// "retrain", "fisher", "incompetent-teacher") interchangeable strategies
// over one shared federated runtime.
//
// Quick start:
//
//	e, _ := goldfish.New(
//		goldfish.WithDataset("mnist", goldfish.ScaleSmall),
//		goldfish.WithUnlearner("goldfish"),
//	)
//	_ = e.Run(ctx, 8)                         // train
//	_ = e.RequestDeletion(0, rowsToForget)    // right to be forgotten
//	_ = e.Run(ctx, 8)                         // unlearn + recover
//
// See the examples/ directory for runnable scenarios and internal/bench for
// the paper's full experiment suite.
package goldfish

import (
	"math/rand"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/optim"
	"goldfish/internal/persist"
	"goldfish/internal/preset"
	"goldfish/internal/stats"
	"goldfish/internal/unlearn"
)

// Core framework types (see internal/core and internal/unlearn for
// details).
type (
	// Config configures a Goldfish client: model, loss, optimizer, local
	// epochs, early termination, sharding.
	Config = core.Config
	// Client is one federation participant.
	Client = core.Client
	// RoundStats summarizes a completed round for callbacks.
	RoundStats = unlearn.RoundStats
	// Unlearner is a pluggable federated-unlearning strategy. The built-in
	// registry names are "goldfish" (the paper's procedure), "retrain"
	// (B1), "fisher" (B2) and "incompetent-teacher" (B3); select one with
	// WithUnlearner and add custom strategies with RegisterUnlearner.
	Unlearner = unlearn.Strategy
	// UnlearnerEnv is the federation setup an Unlearner builds its
	// trainers from.
	UnlearnerEnv = unlearn.Env
)

// Data types.
type (
	// Dataset is a labelled image set in NCHW layout.
	Dataset = data.Dataset
	// Scale selects experiment sizes (ScaleTiny … ScalePaper).
	Scale = data.Scale
	// BackdoorConfig describes the trigger-patch attack used to probe
	// unlearning.
	BackdoorConfig = data.BackdoorConfig
	// Preset bundles a ready-to-run dataset/model/hyperparameter set.
	Preset = preset.Preset
)

// Model types.
type (
	// ModelConfig describes a network architecture to build.
	ModelConfig = model.Config
	// Arch names an architecture from the paper's model zoo.
	Arch = model.Arch
	// Network is a trainable neural network.
	Network = nn.Network
)

// Loss types.
type (
	// GoldfishLoss is the paper's composite objective (Eq. 6).
	GoldfishLoss = loss.Goldfish
	// HardLoss is a supervised loss plug-in (cross-entropy, focal, NLL).
	HardLoss = loss.Hard
)

// Aggregation and runtime types.
type (
	// Aggregator combines client updates into a global model.
	Aggregator = fed.Aggregator
	// FedAvg is sample-weighted averaging (McMahan et al.).
	FedAvg = fed.FedAvg
	// AdaptiveWeight is the paper's MSE-guided aggregation (Eqs. 12–13).
	AdaptiveWeight = fed.AdaptiveWeight
	// ModelUpdate is one client's upload.
	ModelUpdate = fed.ModelUpdate
	// LocalTrainer is the client-side training logic an Unlearner builds
	// for each participant.
	LocalTrainer = fed.LocalTrainer
	// Transport dispatches one round of local training (in-process by
	// default; see WithTransport).
	Transport = fed.Transport
)

// SGDConfig configures local stochastic gradient descent.
type SGDConfig = optim.SGDConfig

// Experiment scales, mirroring internal/data.
const (
	ScaleTiny   = data.ScaleTiny
	ScaleSmall  = data.ScaleSmall
	ScaleMedium = data.ScaleMedium
	ScalePaper  = data.ScalePaper
)

// Architectures of the paper's model zoo.
const (
	ArchLeNet5    = model.ArchLeNet5
	ArchLeNet5Mod = model.ArchLeNet5Mod
	ArchResNet32  = model.ArchResNet32
	ArchResNet56  = model.ArchResNet56
	ArchMLP       = model.ArchMLP
)

// NewPreset resolves the paper's configuration for a dataset ("mnist",
// "fmnist", "cifar10", "cifar100") at the given scale. seed 0 selects the
// default seed.
func NewPreset(dataset string, scale Scale, seed int64) (Preset, error) {
	return preset.For(dataset, "", scale, seed)
}

// NewPresetWithArch is NewPreset with an explicit architecture override
// (e.g. ResNet-32 on CIFAR-10 as in Fig. 4d).
func NewPresetWithArch(dataset string, arch Arch, scale Scale, seed int64) (Preset, error) {
	return preset.For(dataset, arch, scale, seed)
}

// DefaultConfig returns the paper's hyperparameters for a model
// configuration.
func DefaultConfig(m ModelConfig) Config { return core.DefaultConfig(m) }

// DefaultLoss returns the paper's composite loss defaults (µc=0.25, µd=1.0,
// T=3, cross-entropy hard loss).
func DefaultLoss() GoldfishLoss { return loss.NewGoldfish() }

// RegisterUnlearner adds a strategy factory to the Unlearner registry under
// name; WithUnlearner(name) then selects it. Registering a name twice
// panics — pick a unique name per strategy.
func RegisterUnlearner(name string, factory func() Unlearner) {
	unlearn.Register(name, factory)
}

// Unlearners lists the registered unlearning-strategy names, sorted.
func Unlearners() []string { return unlearn.Names() }

// BuildModel constructs a network from the model zoo.
func BuildModel(cfg ModelConfig) (*Network, error) { return model.Build(cfg) }

// PartitionIID splits a dataset uniformly across clients.
func PartitionIID(d *Dataset, parts int, rng *rand.Rand) ([]*Dataset, error) {
	return data.PartitionIID(d, parts, rng)
}

// PartitionHeterogeneous splits a dataset with uneven sizes and label skew
// (skew in (0,1]; smaller is more heterogeneous).
func PartitionHeterogeneous(d *Dataset, parts int, skew float64, rng *rand.Rand) ([]*Dataset, error) {
	return data.PartitionHeterogeneous(d, parts, skew, rng)
}

// DefaultBackdoor returns the trigger-patch attack used across the paper's
// experiments.
func DefaultBackdoor() BackdoorConfig { return data.DefaultBackdoor() }

// Accuracy evaluates a network's top-1 accuracy on a dataset.
func Accuracy(net *Network, d *Dataset) float64 { return metrics.Accuracy(net, d, 0) }

// AttackSuccessRate measures the fraction of trigger-stamped samples
// classified as the attack target.
func AttackSuccessRate(net *Network, triggered *Dataset, target int) float64 {
	return metrics.AttackSuccessRate(net, triggered, target, 0)
}

// Divergence holds model-similarity statistics (mean per-sample JSD and L2
// between predictive distributions).
type Divergence = metrics.Divergence

// ModelDivergence compares the predictive distributions of two models over
// a probe dataset.
func ModelDivergence(a, b *Network, probe *Dataset) (Divergence, error) {
	return metrics.ModelDivergence(a, b, probe, 0)
}

// MembershipGap estimates how much a model still "remembers" target
// samples: the difference between its mean top-confidence on them and on a
// held-out probe set. A memorizing model shows a positive gap; after
// successful unlearning the gap returns towards zero.
func MembershipGap(net *Network, target, probe *Dataset) float64 {
	return metrics.MembershipGap(net, target, probe, 0)
}

// TTestResult is the outcome of a Welch two-sample t-test.
type TTestResult = stats.TTestResult

// ConfidenceTTest tests whether two models' prediction-confidence patterns
// are statistically distinguishable.
func ConfidenceTTest(a, b *Network, probe *Dataset) (TTestResult, error) {
	return metrics.ConfidenceTTest(a, b, probe, 0)
}

// SaveCheckpoint stores a network's full state (parameters and BatchNorm
// running statistics) with an integrity checksum.
func SaveCheckpoint(path string, arch string, net *Network, meta map[string]string) error {
	return persist.SaveFile(path, arch, net.StateVector(), meta)
}

// LoadCheckpoint restores a checkpoint into a network built by the caller
// (the architecture must match the one saved).
func LoadCheckpoint(path string, net *Network) (meta map[string]string, err error) {
	cp, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := net.SetStateVector(cp.State); err != nil {
		return nil, err
	}
	return cp.Meta, nil
}
