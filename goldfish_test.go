package goldfish_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"goldfish"
)

// TestFacadeQuickstart runs the README quick-start flow end to end through
// the public API: train → backdoor present → delete → backdoor gone.
func TestFacadeQuickstart(t *testing.T) {
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	parts, err := goldfish.PartitionIID(train, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	bd := goldfish.DefaultBackdoor()
	poisoned, err := bd.Poison(parts[0], 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	triggered, err := bd.TriggerCopy(test)
	if err != nil {
		t.Fatal(err)
	}

	fedr, err := goldfish.New(
		goldfish.WithPreset(p),
		goldfish.WithPartitions(parts),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		t.Fatal(err)
	}
	net, err := fedr.GlobalNet()
	if err != nil {
		t.Fatal(err)
	}
	accBefore := goldfish.Accuracy(net, test)
	asrBefore := goldfish.AttackSuccessRate(net, triggered, bd.TargetLabel)
	if accBefore < 0.4 {
		t.Fatalf("origin accuracy %g too low", accBefore)
	}
	if asrBefore < 0.4 {
		t.Fatalf("origin ASR %g too low for the demo to be meaningful", asrBefore)
	}

	if err := fedr.RequestDeletion(0, poisoned); err != nil {
		t.Fatal(err)
	}
	if err := fedr.Run(ctx, p.Rounds); err != nil {
		t.Fatal(err)
	}
	net, err = fedr.GlobalNet()
	if err != nil {
		t.Fatal(err)
	}
	asrAfter := goldfish.AttackSuccessRate(net, triggered, bd.TargetLabel)
	if asrAfter > asrBefore/2 {
		t.Errorf("unlearning left ASR at %g (was %g)", asrAfter, asrBefore)
	}
}

func TestFacadePresets(t *testing.T) {
	for _, name := range []string{"mnist", "fmnist", "cifar10", "cifar100"} {
		p, err := goldfish.NewPreset(name, goldfish.ScaleTiny, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid preset: %v", name, err)
		}
		if p.ClientConfig().Validate() != nil {
			t.Errorf("%s: invalid client config", name)
		}
	}
	if _, err := goldfish.NewPreset("bogus", goldfish.ScaleTiny, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Architecture override (Fig. 4d pairing).
	p, err := goldfish.NewPresetWithArch("cifar10", goldfish.ArchResNet32, goldfish.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.Arch != goldfish.ArchResNet32 {
		t.Errorf("arch override ignored: %s", p.Model.Arch)
	}
}

func TestFacadeModelAndMetrics(t *testing.T) {
	net, err := goldfish.BuildModel(goldfish.ModelConfig{
		Arch: goldfish.ArchMLP, InC: 1, InH: 6, InW: 6, Classes: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, test, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Self-divergence is zero; self-t-test is p=1.
	teach, err := goldfish.BuildModel(p.Model)
	if err != nil {
		t.Fatal(err)
	}
	div, err := goldfish.ModelDivergence(teach, teach, test)
	if err != nil {
		t.Fatal(err)
	}
	if div.JSD > 1e-10 {
		t.Errorf("self JSD = %g", div.JSD)
	}
	tt, err := goldfish.ConfidenceTTest(teach, teach, test)
	if err != nil {
		t.Fatal(err)
	}
	if tt.P != 1 {
		t.Errorf("self t-test p = %g, want 1", tt.P)
	}
	_ = net
}

func TestFacadeCheckpointRoundTrip(t *testing.T) {
	cfg := goldfish.ModelConfig{Arch: goldfish.ArchMLP, InC: 1, InH: 6, InW: 6, Classes: 3, Seed: 3}
	a, err := goldfish.BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := goldfish.SaveCheckpoint(path, "mlp", a, map[string]string{"round": "3"}); err != nil {
		t.Fatal(err)
	}
	b, err := goldfish.BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range b.Params() {
		p.W.Fill(0)
	}
	meta, err := goldfish.LoadCheckpoint(path, b)
	if err != nil {
		t.Fatal(err)
	}
	if meta["round"] != "3" {
		t.Errorf("meta = %v", meta)
	}
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("checkpoint round trip lost parameters")
		}
	}
}

func TestFacadeDefaults(t *testing.T) {
	cfg := goldfish.DefaultConfig(goldfish.ModelConfig{
		Arch: goldfish.ArchMLP, InC: 1, InH: 6, InW: 6, Classes: 3, Seed: 1,
	})
	if err := cfg.Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if cfg.Opt.LR != 0.001 || cfg.BatchSize != 100 {
		t.Errorf("DefaultConfig should carry the paper's hyperparameters, got %+v", cfg.Opt)
	}
	l := goldfish.DefaultLoss()
	if err := l.Validate(); err != nil {
		t.Errorf("DefaultLoss invalid: %v", err)
	}
	if l.MuC != 0.25 || l.MuD != 1.0 || l.Temp != 3 {
		t.Errorf("DefaultLoss = %+v, want paper defaults", l)
	}
}

func TestFacadePartitionHeterogeneous(t *testing.T) {
	p, err := goldfish.NewPreset("mnist", goldfish.ScaleTiny, 6)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	parts, err := goldfish.PartitionHeterogeneous(train, 5, 0.2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, part := range parts {
		total += part.Len()
	}
	if total != train.Len() {
		t.Errorf("partitions cover %d of %d samples", total, train.Len())
	}
}

func TestFacadeLoadCheckpointArchMismatch(t *testing.T) {
	small := goldfish.ModelConfig{Arch: goldfish.ArchMLP, InC: 1, InH: 4, InW: 4, Classes: 2, Seed: 1}
	big := goldfish.ModelConfig{Arch: goldfish.ArchMLP, InC: 1, InH: 8, InW: 8, Classes: 4, Seed: 1}
	a, err := goldfish.BuildModel(small)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := goldfish.SaveCheckpoint(path, "mlp-small", a, nil); err != nil {
		t.Fatal(err)
	}
	b, err := goldfish.BuildModel(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := goldfish.LoadCheckpoint(path, b); err == nil {
		t.Error("loading a mismatched architecture should fail")
	}
}
