// Package attack turns unlearning-verification probes into interchangeable
// attack implementations over one registry, mirroring the unlearner-strategy
// registry in internal/unlearn. An Attack deterministically poisons one
// client's partition before training and builds a Prober measuring the
// attack's success rate on the trained global model; the scenario engine
// sweeps registered attack types as a first-class matrix axis, so unlearning
// efficacy is verified against several poisoning styles — the paper's
// backdoor trigger patch plus label flipping and targeted-class feature
// poisoning — rather than a single trigger style.
package attack

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/nn"
)

// Config parameterizes one attack instance. It is the union of every
// registered type's knobs; each Attack reads the fields it declares and
// ignores the rest, so one Config can sweep several attack types.
type Config struct {
	// Fraction of the poisoned client's eligible rows to poison, in (0,1].
	Fraction float64
	// TargetLabel is the class the attack drives predictions towards.
	TargetLabel int
	// PatchSize is the backdoor trigger patch side length (0 = default).
	PatchSize int
	// PatchValue is the backdoor trigger pixel value (0 = default).
	PatchValue float64
	// SourceClass is the class the targeted-class attack perturbs.
	SourceClass int
	// Strength is the targeted-class feature blend in (0,1] (0 = default).
	Strength float64
}

// classLabel checks a class label against a dataset's class count. Poison
// and NewProber implementations use it so a label outside [0,classes) fails
// loudly even when a caller skips Validate — a probe whose target can never
// match a prediction would read as perfect unlearning.
func classLabel(name string, label, classes int) error {
	if label < 0 || label >= classes {
		return fmt.Errorf("attack: %s %d out of range [0,%d)", name, label, classes)
	}
	return nil
}

// validateCommon checks the knobs every attack type shares.
func (c Config) validateCommon() error {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return fmt.Errorf("attack: fraction %g out of (0,1]", c.Fraction)
	}
	if c.TargetLabel < 0 {
		return fmt.Errorf("attack: target label %d negative", c.TargetLabel)
	}
	return nil
}

// Attack is a pluggable unlearning-verification probe: it poisons one
// client's partition before training and measures how strongly the trained
// model still carries the poison. Implementations must be stateless — the
// same value may serve concurrent matrix cells — and fully deterministic
// given the Config and the rng.
type Attack interface {
	// Name is the attack's registry name.
	Name() string
	// Validate checks cfg statically; dataset-dependent errors (label out of
	// range, missing class) surface from Poison or NewProber instead.
	Validate(cfg Config) error
	// Poison poisons part in place, drawing all randomness from rng, and
	// returns the poisoned row indices — the deletion set Df an unlearning
	// schedule removes to verify the attack's signal disappears.
	Poison(part *data.Dataset, cfg Config, rng *rand.Rand) ([]int, error)
	// NewProber builds the attack's success-rate probe from the clean test
	// set. The probe must not alias test's backing storage mutably.
	NewProber(test *data.Dataset, cfg Config) (Prober, error)
}

// Prober measures one attack's success rate on a trained model. SuccessRate
// is deterministic for a fixed network and must be safe for concurrent calls
// on distinct networks, so matrix cells can probe in parallel.
type Prober interface {
	// SuccessRate returns the attack success rate in [0,1]: the fraction of
	// probe samples on which the model exhibits the attacker's objective.
	SuccessRate(net *nn.Network) float64
}

// Factory creates a fresh instance of an attack type.
type Factory func() Attack

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds an attack factory under name. Registering a name twice is a
// wiring bug, not a runtime condition, so it panics rather than silently
// replacing the earlier factory. The built-in names are "backdoor" (the
// paper's trigger patch), "label-flip" and "targeted-class".
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("attack: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("attack: Register called twice for attack type " + name)
	}
	registry[name] = f
}

// New returns a fresh instance of the named attack.
func New(name string) (Attack, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown attack type %q (registered: %v)", name, Types())
	}
	return f(), nil
}

// Types lists the registered attack type names, sorted.
func Types() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("backdoor", func() Attack { return backdoorAttack{} })
	Register("label-flip", func() Attack { return labelFlipAttack{} })
	Register("targeted-class", func() Attack { return targetedClassAttack{} })
}
