package attack

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"goldfish/internal/data"
	"goldfish/internal/nn"
	"goldfish/internal/tensor"
)

// tinySet builds an n-sample 1×4×4 dataset with labels cycling over classes,
// so every class is populated deterministically.
func tinySet(t *testing.T, n, classes int, seed int64) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 1, 4, 4).RandNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % classes
	}
	d, err := data.NewDataset(x, y, classes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// constNet builds a network that predicts class k for every input: zero
// weights, bias 10 on logit k.
func constNet(t *testing.T, in, classes, k int) *nn.Network {
	t.Helper()
	d := nn.NewDense(in, classes, rand.New(rand.NewSource(1)))
	for _, p := range d.Params() {
		p.W.Zero()
	}
	d.Params()[1].W.Data()[k] = 10
	return nn.NewNetwork(nn.NewFlatten(), d)
}

func validCfg() Config {
	return Config{Fraction: 0.3, TargetLabel: 0, SourceClass: 1}
}

func TestRegistry(t *testing.T) {
	types := Types()
	for _, want := range []string{"backdoor", "label-flip", "targeted-class"} {
		found := false
		for _, got := range types {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Types() = %v, missing %q", types, want)
		}
	}
	for _, name := range types {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
		if err := a.Validate(validCfg()); err != nil {
			t.Errorf("%s rejects the valid config: %v", name, err)
		}
	}
	if _, err := New("gradient-inversion"); err == nil || !strings.Contains(err.Error(), "unknown attack") {
		t.Errorf("New(unknown) = %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		attack string
		mutate func(*Config)
	}{
		{"zero fraction", "backdoor", func(c *Config) { c.Fraction = 0 }},
		{"fraction above one", "label-flip", func(c *Config) { c.Fraction = 1.5 }},
		{"negative target", "targeted-class", func(c *Config) { c.TargetLabel = -1 }},
		{"negative patch", "backdoor", func(c *Config) { c.PatchSize = -1 }},
		{"negative source", "targeted-class", func(c *Config) { c.SourceClass = -1 }},
		{"source equals target", "targeted-class", func(c *Config) { c.SourceClass = c.TargetLabel }},
		{"strength above one", "targeted-class", func(c *Config) { c.Strength = 1.5 }},
		{"negative strength", "targeted-class", func(c *Config) { c.Strength = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := New(tc.attack)
			if err != nil {
				t.Fatal(err)
			}
			cfg := validCfg()
			tc.mutate(&cfg)
			if err := a.Validate(cfg); err == nil {
				t.Errorf("%s accepted %+v", tc.attack, cfg)
			}
		})
	}
}

// TestPoisonDeterministicPerSeed: for every registered attack, the same seed
// poisons the same rows and produces byte-identical data; a different seed
// picks a different subset.
func TestPoisonDeterministicPerSeed(t *testing.T) {
	for _, name := range Types() {
		t.Run(name, func(t *testing.T) {
			a, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := validCfg()
			poison := func(seed int64) (*data.Dataset, []int) {
				d := tinySet(t, 40, 4, 7)
				rows, err := a.Poison(d, cfg, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				return d, rows
			}
			d1, r1 := poison(3)
			d2, r2 := poison(3)
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("same seed poisoned %v then %v", r1, r2)
			}
			if !reflect.DeepEqual(d1.X.Data(), d2.X.Data()) || !reflect.DeepEqual(d1.Y, d2.Y) {
				t.Error("same seed produced different poisoned data")
			}
			_, r3 := poison(4)
			if reflect.DeepEqual(r1, r3) {
				t.Errorf("seeds 3 and 4 poisoned identical rows %v", r1)
			}
			// Every poisoned row carries the target label.
			for _, r := range r1 {
				if d1.Y[r] != cfg.TargetLabel {
					t.Errorf("poisoned row %d has label %d, want %d", r, d1.Y[r], cfg.TargetLabel)
				}
			}
		})
	}
}

func TestLabelFlipOnlyRelabels(t *testing.T) {
	a, err := New("label-flip")
	if err != nil {
		t.Fatal(err)
	}
	d := tinySet(t, 40, 4, 7)
	before := append([]float64(nil), d.X.Data()...)
	yBefore := append([]int(nil), d.Y...)
	rows, err := a.Poison(d, validCfg(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, d.X.Data()) {
		t.Error("label-flip modified features")
	}
	// 0.3 of the 30 non-target rows.
	if len(rows) != 9 {
		t.Errorf("flipped %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if yBefore[r] == 0 {
			t.Errorf("row %d already had the target label", r)
		}
	}
}

func TestTargetedClassPerturbsTowardsCentroid(t *testing.T) {
	a, err := New("targeted-class")
	if err != nil {
		t.Fatal(err)
	}
	d := tinySet(t, 40, 4, 7)
	before := d.Clone()
	cfg := validCfg()
	cfg.Strength = 0.5
	rows, err := a.Poison(d, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Centroid of the UNPOISONED target rows.
	size := 16
	centroid := make([]float64, size)
	targets := before.RowsOfClass(cfg.TargetLabel)
	for _, r := range targets {
		for i, v := range before.X.Data()[r*size : (r+1)*size] {
			centroid[i] += v
		}
	}
	for i := range centroid {
		centroid[i] /= float64(len(targets))
	}
	poisoned := map[int]bool{}
	for _, r := range rows {
		poisoned[r] = true
		if before.Y[r] != cfg.SourceClass {
			t.Errorf("poisoned row %d was class %d, want source class %d", r, before.Y[r], cfg.SourceClass)
		}
		for i := 0; i < size; i++ {
			want := 0.5*before.X.Data()[r*size+i] + 0.5*centroid[i]
			got := d.X.Data()[r*size+i]
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("row %d feature %d = %g, want %g", r, i, got, want)
			}
		}
	}
	// Unpoisoned rows are untouched.
	for r := 0; r < d.Len(); r++ {
		if poisoned[r] {
			continue
		}
		for i := 0; i < size; i++ {
			if d.X.Data()[r*size+i] != before.X.Data()[r*size+i] {
				t.Fatalf("unpoisoned row %d was modified", r)
			}
		}
	}

	// Missing source or target class fails loudly.
	empty := tinySet(t, 8, 4, 1)
	for i := range empty.Y {
		empty.Y[i] = 0
	}
	if _, err := a.Poison(empty, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("poisoning a partition without the source class succeeded")
	}
}

// TestProberSemantics pins each probe's success-rate definition with
// constant-prediction models: a model that always predicts the target scores
// 1, a model that never does scores 0.
func TestProberSemantics(t *testing.T) {
	test := tinySet(t, 40, 4, 11)
	alwaysTarget := constNet(t, 16, 4, 0)
	neverTarget := constNet(t, 16, 4, 2)
	for _, name := range Types() {
		t.Run(name, func(t *testing.T) {
			a, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := a.NewProber(test, validCfg())
			if err != nil {
				t.Fatal(err)
			}
			if got := p.SuccessRate(alwaysTarget); got != 1 {
				t.Errorf("always-target model scored %g, want 1", got)
			}
			if got := p.SuccessRate(neverTarget); got != 0 {
				t.Errorf("never-target model scored %g, want 0", got)
			}
		})
	}
}

// TestProberRejectsOutOfRangeLabels: every attack's NewProber must surface
// dataset-dependent label errors instead of returning a probe that can never
// match a prediction (which would read as perfect unlearning).
func TestProberRejectsOutOfRangeLabels(t *testing.T) {
	test := tinySet(t, 20, 4, 11)
	for _, name := range Types() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int{test.Classes, -1} {
			cfg := validCfg()
			cfg.TargetLabel = target
			if _, err := a.NewProber(test, cfg); err == nil {
				t.Errorf("%s: target label %d accepted by NewProber", name, target)
			}
			if _, err := a.Poison(tinySet(t, 20, 4, 11), cfg, rand.New(rand.NewSource(1))); err == nil {
				t.Errorf("%s: target label %d accepted by Poison", name, target)
			}
		}
	}
	a, err := New("targeted-class")
	if err != nil {
		t.Fatal(err)
	}
	cfg := validCfg()
	cfg.SourceClass = test.Classes
	if _, err := a.NewProber(test, cfg); err == nil {
		t.Error("targeted-class: out-of-range source class accepted by NewProber")
	}
}

// TestProberUsesCleanProbes: building a prober must not mutate the test set,
// and the label-flip/targeted-class probes exclude the samples a success
// count would trivially miscount (true-target rows; non-source rows).
func TestProberUsesCleanProbes(t *testing.T) {
	test := tinySet(t, 40, 4, 11)
	before := append([]float64(nil), test.X.Data()...)
	yBefore := append([]int(nil), test.Y...)
	for _, name := range Types() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.NewProber(test, validCfg()); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(before, test.X.Data()) || !reflect.DeepEqual(yBefore, test.Y) {
		t.Error("building a prober mutated the test set")
	}
}

// mustPanic runs fn and fails the test unless it panics with a message
// containing wantMsg.
func mustPanic(t *testing.T, what, wantMsg string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: Register did not panic", what)
			return
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantMsg) {
			t.Errorf("%s: panic = %v, want message containing %q", what, r, wantMsg)
		}
	}()
	fn()
}

// TestRegisterMisusePanics pins the registry's wiring-bug contract: duplicate
// names, empty names and nil factories all panic instead of silently
// replacing or registering broken entries.
func TestRegisterMisusePanics(t *testing.T) {
	factory := func() Attack { return backdoorAttack{} }
	mustPanic(t, "duplicate name", "Register called twice", func() { Register("backdoor", factory) })
	mustPanic(t, "empty name", "empty name", func() { Register("", factory) })
	mustPanic(t, "nil factory", "nil factory", func() { Register("nil-factory-probe", nil) })
	if _, err := New("nil-factory-probe"); err == nil {
		t.Error("rejected registration still reachable via New")
	}
}

// TestUnknownTypeErrorListsTypes asserts the lookup-failure error names every
// registered attack type, so a typo in a scenario spec is self-diagnosing.
func TestUnknownTypeErrorListsTypes(t *testing.T) {
	_, err := New("no-such-attack")
	if err == nil {
		t.Fatal("New(unknown) succeeded")
	}
	for _, name := range Types() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-type error %q does not list registered type %q", err, name)
		}
	}
}
