package attack

import (
	"fmt"
	"math/rand"

	"goldfish/internal/data"
	"goldfish/internal/metrics"
	"goldfish/internal/nn"
)

// backdoorAttack is the paper's verification probe (§IV-A, following Wu et
// al. [34]): a bright square patch stamped in the image corner, with the
// poisoned rows relabeled to the target class. Success is the fraction of
// trigger-stamped clean test samples (true label ≠ target) the model
// classifies as the target.
type backdoorAttack struct{}

func (backdoorAttack) Name() string { return "backdoor" }

// config resolves the patch defaults the experiments use.
func (backdoorAttack) config(cfg Config) data.BackdoorConfig {
	bd := data.BackdoorConfig{
		TargetLabel: cfg.TargetLabel,
		PatchSize:   cfg.PatchSize,
		PatchValue:  cfg.PatchValue,
	}
	if bd.PatchSize == 0 {
		bd.PatchSize = data.DefaultBackdoor().PatchSize
	}
	if bd.PatchValue == 0 {
		bd.PatchValue = data.DefaultBackdoor().PatchValue
	}
	return bd
}

func (backdoorAttack) Validate(cfg Config) error {
	if err := cfg.validateCommon(); err != nil {
		return err
	}
	if cfg.PatchSize < 0 {
		return fmt.Errorf("attack: patch size %d negative", cfg.PatchSize)
	}
	return nil
}

func (b backdoorAttack) Poison(part *data.Dataset, cfg Config, rng *rand.Rand) ([]int, error) {
	return b.config(cfg).Poison(part, cfg.Fraction, rng)
}

func (b backdoorAttack) NewProber(test *data.Dataset, cfg Config) (Prober, error) {
	triggered, err := b.config(cfg).TriggerCopy(test)
	if err != nil {
		return nil, err
	}
	return predictionProber{probe: triggered, target: cfg.TargetLabel}, nil
}

// predictionProber is the probe shape all built-in attacks share: the success
// rate is the fraction of probe samples classified as the target label. The
// probe datasets differ per attack — trigger-stamped non-target samples for
// the backdoor, clean non-target samples for label flipping, clean
// source-class samples for targeted-class poisoning.
type predictionProber struct {
	probe  *data.Dataset
	target int
}

func (p predictionProber) SuccessRate(net *nn.Network) float64 {
	return metrics.AttackSuccessRate(net, p.probe, p.target, 0)
}
