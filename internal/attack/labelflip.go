package attack

import (
	"fmt"
	"math/rand"

	"goldfish/internal/data"
)

// labelFlipAttack relabels a random fraction of the poisoned client's
// non-target rows to the target label, leaving the features untouched — the
// classic data-poisoning probe of the federated-unlearning literature. A
// model trained on the flip over-predicts the target class; success is the
// fraction of clean test samples with a different true label the model
// classifies as the target, so a clean (or well-unlearned) model scores near
// zero.
type labelFlipAttack struct{}

func (labelFlipAttack) Name() string { return "label-flip" }

func (labelFlipAttack) Validate(cfg Config) error {
	return cfg.validateCommon()
}

func (labelFlipAttack) Poison(part *data.Dataset, cfg Config, rng *rand.Rand) ([]int, error) {
	if err := classLabel("target label", cfg.TargetLabel, part.Classes); err != nil {
		return nil, err
	}
	// Only rows whose label actually changes count as poison: flipping a row
	// already labelled target would be a no-op in the deletion set.
	var candidates []int
	for i, y := range part.Y {
		if y != cfg.TargetLabel {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("attack: every row already has the target label %d", cfg.TargetLabel)
	}
	n := int(float64(len(candidates)) * cfg.Fraction)
	if n == 0 {
		n = 1
	}
	perm := rng.Perm(len(candidates))[:n]
	rows := make([]int, n)
	for i, p := range perm {
		rows[i] = candidates[p]
		part.Y[candidates[p]] = cfg.TargetLabel
	}
	return rows, nil
}

func (labelFlipAttack) NewProber(test *data.Dataset, cfg Config) (Prober, error) {
	if err := classLabel("target label", cfg.TargetLabel, test.Classes); err != nil {
		return nil, err
	}
	var keep []int
	for i, y := range test.Y {
		if y != cfg.TargetLabel {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("attack: every test sample has the target label %d", cfg.TargetLabel)
	}
	return predictionProber{probe: test.Subset(keep), target: cfg.TargetLabel}, nil
}
