package attack

import (
	"fmt"
	"math/rand"

	"goldfish/internal/data"
)

// defaultStrength is the targeted-class feature blend used when the config
// leaves Strength unset.
const defaultStrength = 0.5

// targetedClassAttack poisons one source class towards the target: a random
// fraction of the client's source-class rows have their features blended
// towards the client's target-class centroid (x ← (1−s)·x + s·centroid) and
// are relabeled to the target — a feature-collision-style targeted poisoning.
// A model trained on the poison ties source-class features to the target
// label; success is the fraction of clean source-class test samples the
// model classifies as the target.
type targetedClassAttack struct{}

func (targetedClassAttack) Name() string { return "targeted-class" }

// strength resolves the blend factor default.
func (targetedClassAttack) strength(cfg Config) float64 {
	if cfg.Strength == 0 {
		return defaultStrength
	}
	return cfg.Strength
}

func (targetedClassAttack) Validate(cfg Config) error {
	if err := cfg.validateCommon(); err != nil {
		return err
	}
	if cfg.SourceClass < 0 {
		return fmt.Errorf("attack: source class %d negative", cfg.SourceClass)
	}
	if cfg.SourceClass == cfg.TargetLabel {
		return fmt.Errorf("attack: source class %d equals the target label", cfg.SourceClass)
	}
	if cfg.Strength < 0 || cfg.Strength > 1 {
		return fmt.Errorf("attack: strength %g out of [0,1] (0 selects the default %g)", cfg.Strength, defaultStrength)
	}
	return nil
}

func (t targetedClassAttack) Poison(part *data.Dataset, cfg Config, rng *rand.Rand) ([]int, error) {
	if err := classLabel("target label", cfg.TargetLabel, part.Classes); err != nil {
		return nil, err
	}
	if err := classLabel("source class", cfg.SourceClass, part.Classes); err != nil {
		return nil, err
	}
	targets := part.RowsOfClass(cfg.TargetLabel)
	if len(targets) == 0 {
		return nil, fmt.Errorf("attack: client has no rows of target class %d to derive the poison direction", cfg.TargetLabel)
	}
	sources := part.RowsOfClass(cfg.SourceClass)
	if len(sources) == 0 {
		return nil, fmt.Errorf("attack: client has no rows of source class %d to poison", cfg.SourceClass)
	}
	// The poison direction is the client's own target-class centroid,
	// computed before any perturbation (only source rows are modified).
	c, h, w := part.Shape()
	size := c * h * w
	xd := part.X.Data()
	centroid := make([]float64, size)
	for _, r := range targets {
		row := xd[r*size : (r+1)*size]
		for i, v := range row {
			centroid[i] += v
		}
	}
	for i := range centroid {
		centroid[i] /= float64(len(targets))
	}
	n := int(float64(len(sources)) * cfg.Fraction)
	if n == 0 {
		n = 1
	}
	s := t.strength(cfg)
	perm := rng.Perm(len(sources))[:n]
	rows := make([]int, n)
	for i, p := range perm {
		r := sources[p]
		rows[i] = r
		row := xd[r*size : (r+1)*size]
		for j := range row {
			// The explicit conversions force intermediate rounding so the
			// blend cannot compile to a fused multiply-add, which would make
			// poisoned bytes differ between FMA and non-FMA architectures.
			row[j] = float64((1-s)*row[j]) + float64(s*centroid[j])
		}
		part.Y[r] = cfg.TargetLabel
	}
	return rows, nil
}

func (targetedClassAttack) NewProber(test *data.Dataset, cfg Config) (Prober, error) {
	if err := classLabel("target label", cfg.TargetLabel, test.Classes); err != nil {
		return nil, err
	}
	if err := classLabel("source class", cfg.SourceClass, test.Classes); err != nil {
		return nil, err
	}
	keep := test.RowsOfClass(cfg.SourceClass)
	if len(keep) == 0 {
		return nil, fmt.Errorf("attack: no test samples of source class %d to probe", cfg.SourceClass)
	}
	return predictionProber{probe: test.Subset(keep), target: cfg.TargetLabel}, nil
}
