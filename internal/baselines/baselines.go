// Package baselines implements the three comparison systems of the paper's
// evaluation (§IV-A "Baselines"):
//
//   - B1 — retrain from scratch after dropping the removed data
//     (the reference unlearning procedure, as in Zhang et al. [23]);
//   - B2 — rapid retraining guided by diagonal Fisher information
//     (Liu et al. [21]; see DESIGN.md §4 for the substitution details);
//   - B3 — incompetent-teacher unlearning (Chundawat et al. [35]): distill
//     from the competent (original) teacher on remaining data and from a
//     randomly initialized incompetent teacher on removed data.
//
// Running B1 with no removals doubles as the "origin" model (train on
// everything, never unlearn).
//
// The trainer types (PlainTrainer, IncompetentTrainer) are exported so the
// unlearning-strategy registry (internal/unlearn) can drive the baselines
// through the same round engine as the Goldfish procedure; the package-level
// functions remain the one-shot experiment entry points.
package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/optim"
	"goldfish/internal/tensor"
)

// Scenario bundles the training setup shared by all baselines.
type Scenario struct {
	// Model is the architecture every participant trains.
	Model model.Config
	// Opt configures local SGD.
	Opt optim.SGDConfig
	// LocalEpochs is the number of local epochs per round.
	LocalEpochs int
	// BatchSize is the local mini-batch size.
	BatchSize int
	// Seed drives all baseline randomness.
	Seed int64
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	if err := s.Opt.Validate(); err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	if s.LocalEpochs <= 0 {
		return fmt.Errorf("baselines: LocalEpochs must be positive, got %d", s.LocalEpochs)
	}
	if s.BatchSize <= 0 {
		return fmt.Errorf("baselines: BatchSize must be positive, got %d", s.BatchSize)
	}
	return nil
}

// RoundHook observes the global state vector after each aggregated round.
type RoundHook func(round int, global []float64)

// dropRemoved returns client datasets without their removed rows.
func dropRemoved(parts []*data.Dataset, removed map[int][]int) []*data.Dataset {
	out := make([]*data.Dataset, len(parts))
	for i, p := range parts {
		if rows := removed[i]; len(rows) > 0 {
			out[i] = p.Remove(rows)
		} else {
			out[i] = p
		}
	}
	return out
}

// PlainTrainer is per-client local SGD on hard loss, optionally with
// diagonal-FIM preconditioning (the B2 rapid-retraining rule). It implements
// fed.LocalTrainer.
type PlainTrainer struct {
	id      int
	sc      Scenario
	ds      *data.Dataset
	net     *nn.Network
	opt     *optim.SGD
	hard    loss.Hard
	rng     *rand.Rand
	precond bool
	fim     []float64 // EMA of squared gradients (diagonal FIM estimate)
}

var _ fed.LocalTrainer = (*PlainTrainer)(nil)

// NewPlainTrainer builds a B1/B2 client over its local dataset. precond
// enables the B2 Fisher preconditioning.
func NewPlainTrainer(id int, sc Scenario, ds *data.Dataset, precond bool) (*PlainTrainer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("baselines: client %d has no data", id)
	}
	mcfg := sc.Model
	mcfg.Seed = sc.Model.Seed + int64(id)*977 + 13
	net, err := model.Build(mcfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	opt, err := optim.NewSGD(sc.Opt)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return &PlainTrainer{
		id:      id,
		sc:      sc,
		ds:      ds,
		net:     net,
		opt:     opt,
		hard:    loss.CrossEntropy{},
		rng:     rand.New(rand.NewSource(sc.Seed*7907 + int64(id))),
		precond: precond,
	}, nil
}

// NumSamples returns the client's current local dataset size.
func (p *PlainTrainer) NumSamples() int { return p.ds.Len() }

// Forget drops the given rows from the local dataset and resets the
// optimizer state (and the Fisher estimate), turning the next rounds into a
// from-scratch retrain over the remaining data. Rows index the current
// (post-previous-removals) dataset view.
func (p *PlainTrainer) Forget(rows []int) error {
	if len(rows) == 0 {
		return fmt.Errorf("baselines: client %d: empty deletion request", p.id)
	}
	for _, r := range rows {
		if r < 0 || r >= p.ds.Len() {
			return fmt.Errorf("baselines: client %d: row %d out of range [0,%d)", p.id, r, p.ds.Len())
		}
	}
	nd := p.ds.Remove(rows)
	if nd.Len() == 0 {
		return fmt.Errorf("baselines: client %d has no data after removal", p.id)
	}
	p.ds = nd
	return p.Reset()
}

// Reset discards the optimizer's momentum and the running Fisher estimate —
// state accumulated around the pre-deletion model that a from-scratch
// retrain must not inherit.
func (p *PlainTrainer) Reset() error {
	opt, err := optim.NewSGD(p.sc.Opt)
	if err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	p.opt = opt
	p.fim = nil
	return nil
}

// TrainRound implements fed.LocalTrainer.
func (p *PlainTrainer) TrainRound(ctx context.Context, round int, global []float64) (fed.ModelUpdate, error) {
	if err := p.net.SetStateVector(global); err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("baselines: client %d: %w", p.id, err)
	}
	idx := make([]int, p.ds.Len())
	for i := range idx {
		idx[i] = i
	}
	gl := loss.Goldfish{Hard: p.hard, ForgetScale: 1}
	var last core.EpochResult
	for e := 0; e < p.sc.LocalEpochs; e++ {
		if err := ctx.Err(); err != nil {
			return fed.ModelUpdate{}, err
		}
		res, err := p.trainEpoch(ctx, idx, gl)
		if err != nil {
			return fed.ModelUpdate{}, err
		}
		last = res
	}
	return fed.ModelUpdate{
		ClientID:   p.id,
		Round:      round,
		Params:     p.net.StateVector(),
		NumSamples: p.ds.Len(),
		TrainLoss:  last.HardLoss,
	}, nil
}

func (p *PlainTrainer) trainEpoch(ctx context.Context, idx []int, gl loss.Goldfish) (core.EpochResult, error) {
	if !p.precond {
		return core.TrainEpoch(ctx, p.net, nil, p.ds, idx, nil, gl, p.opt, p.sc.BatchSize, p.rng)
	}
	// B2: same batches, but gradients are rescaled by the inverse root of
	// the running diagonal Fisher estimate before each step — Liu et al.'s
	// curvature-guided fast recovery in first-order form.
	var res core.EpochResult
	params := p.net.Params()
	if p.fim == nil {
		p.fim = make([]float64, p.net.NumParams())
	}
	batches := data.BatchIndices(len(idx), p.sc.BatchSize, p.rng)
	const (
		decay = 0.9
		eps   = 1e-4
	)
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rows := make([]int, len(b))
		for i, j := range b {
			rows[i] = idx[j]
		}
		x := sliceX(p.ds, rows)
		logits := p.net.Forward(x, true)
		hardLoss, grad := gl.Hard.Compute(logits, p.ds.LabelsFor(rows))
		p.net.ZeroGrads()
		p.net.Backward(grad)

		off := 0
		for _, pr := range params {
			g := pr.G.Data()
			for j := range g {
				f := decay*p.fim[off] + (1-decay)*g[j]*g[j]
				p.fim[off] = f
				g[j] /= math.Sqrt(f) + eps
				off++
			}
		}
		p.opt.Step(params)
		res.HardLoss += hardLoss
		res.TotalLoss += hardLoss
	}
	if len(batches) > 0 {
		res.HardLoss /= float64(len(batches))
		res.TotalLoss /= float64(len(batches))
	}
	return res, nil
}

// runFederation drives trainers through a fed.Coordinator for the given
// number of rounds.
func runFederation(ctx context.Context, trainers []fed.LocalTrainer, initial []float64, rounds int, onRound RoundHook) ([]float64, error) {
	cfg := fed.CoordinatorConfig{Rounds: rounds}
	if onRound != nil {
		cfg.OnRound = func(ri fed.RoundInfo) { onRound(ri.Round, ri.Global) }
	}
	coord, err := fed.NewCoordinator(cfg, initial, trainers)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return coord.Run(ctx)
}

// RetrainFromScratch implements B1: drop the removed rows, reinitialize the
// global model and run plain FedAvg training for the given rounds. With an
// empty removal map it trains the "origin" model.
func RetrainFromScratch(ctx context.Context, sc Scenario, parts []*data.Dataset,
	removed map[int][]int, rounds int, onRound RoundHook) ([]float64, error) {
	return retrain(ctx, sc, parts, removed, rounds, false, onRound)
}

// RapidRetrain implements B2: like B1, but local updates are preconditioned
// by a running diagonal Fisher-information estimate, which speeds recovery.
func RapidRetrain(ctx context.Context, sc Scenario, parts []*data.Dataset,
	removed map[int][]int, rounds int, onRound RoundHook) ([]float64, error) {
	return retrain(ctx, sc, parts, removed, rounds, true, onRound)
}

// ReinitVector builds the freshly initialized global model a from-scratch
// retrain starts at.
func ReinitVector(sc Scenario, seedBump int64) ([]float64, error) {
	mcfg := sc.Model
	mcfg.Seed = sc.Seed + 4242 + seedBump // fresh initialization: this is a retrain
	initNet, err := model.Build(mcfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return initNet.StateVector(), nil
}

func retrain(ctx context.Context, sc Scenario, parts []*data.Dataset,
	removed map[int][]int, rounds int, precond bool, onRound RoundHook) ([]float64, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	clean := dropRemoved(parts, removed)
	trainers := make([]fed.LocalTrainer, len(clean))
	for i, ds := range clean {
		if ds.Len() == 0 {
			return nil, fmt.Errorf("baselines: client %d has no data after removal", i)
		}
		t, err := NewPlainTrainer(i, sc, ds, precond)
		if err != nil {
			return nil, err
		}
		trainers[i] = t
	}
	initial, err := ReinitVector(sc, 0)
	if err != nil {
		return nil, err
	}
	return runFederation(ctx, trainers, initial, rounds, onRound)
}

// IncompetentTrainer is the B3 client (Chundawat et al.): it distills from
// the competent (pre-deletion) teacher on its remaining data and from an
// incompetent random teacher on its removed data. Before any deletion it
// trains normally on hard loss. It implements fed.LocalTrainer.
type IncompetentTrainer struct {
	id          int
	sc          Scenario
	temp        float64
	dr          *data.Dataset
	df          *data.Dataset
	net         *nn.Network
	competent   *nn.Network
	incompetent *nn.Network
	opt         *optim.SGD
	rng         *rand.Rand
}

var _ fed.LocalTrainer = (*IncompetentTrainer)(nil)

// NewIncompetentTrainer builds a B3 client over its local dataset. The
// teachers are created when Forget is called.
func NewIncompetentTrainer(id int, sc Scenario, ds *data.Dataset, temp float64) (*IncompetentTrainer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if temp <= 0 {
		return nil, fmt.Errorf("baselines: distillation temperature must be positive, got %g", temp)
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("baselines: client %d has no data", id)
	}
	mcfg := sc.Model
	mcfg.Seed = sc.Model.Seed + int64(id)*881 + 3
	student, err := model.Build(mcfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	opt, err := optim.NewSGD(sc.Opt)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return &IncompetentTrainer{
		id:   id,
		sc:   sc,
		temp: temp,
		dr:   ds,
		net:  student,
		opt:  opt,
		rng:  rand.New(rand.NewSource(sc.Seed*3181 + int64(id))),
	}, nil
}

// NumSamples returns the client's remaining local dataset size.
func (t *IncompetentTrainer) NumSamples() int { return t.dr.Len() }

// Forget turns this client into the unlearning party: rows are split out as
// the forget set Df, the contaminated global model becomes the competent
// teacher, and a freshly initialized network of the same architecture the
// incompetent one.
func (t *IncompetentTrainer) Forget(rows []int, contaminated []float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("baselines: client %d: empty deletion request", t.id)
	}
	if len(contaminated) == 0 {
		return fmt.Errorf("baselines: B3 needs the contaminated global model")
	}
	for _, r := range rows {
		if r < 0 || r >= t.dr.Len() {
			return fmt.Errorf("baselines: client %d: row %d out of range [0,%d)", t.id, r, t.dr.Len())
		}
	}
	df := t.dr.Subset(rows)
	dr := t.dr.Remove(rows)
	if dr.Len() == 0 {
		return fmt.Errorf("baselines: client %d has no data after removal", t.id)
	}
	mcfg := t.sc.Model
	mcfg.Seed = t.sc.Model.Seed + int64(t.id)*881 + 3
	competent, err := model.Build(mcfg)
	if err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	if err := competent.SetStateVector(contaminated); err != nil {
		return fmt.Errorf("baselines: loading competent teacher: %w", err)
	}
	mcfg.Seed = t.sc.Seed + int64(t.id)*6151 + 99 // random incompetent teacher
	incompetent, err := model.Build(mcfg)
	if err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	if t.df != nil {
		merged, err := t.df.Concat(df)
		if err != nil {
			return fmt.Errorf("baselines: client %d: merging deletion requests: %w", t.id, err)
		}
		df = merged
	}
	t.dr, t.df = dr, df
	t.competent, t.incompetent = competent, incompetent
	return nil
}

// TrainRound implements fed.LocalTrainer.
func (t *IncompetentTrainer) TrainRound(ctx context.Context, round int, global []float64) (fed.ModelUpdate, error) {
	if err := t.net.SetStateVector(global); err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("baselines: client %d: %w", t.id, err)
	}
	params := t.net.Params()
	unlearning := t.df != nil && t.df.Len() > 0 && t.competent != nil
	var lastLoss float64
	for e := 0; e < t.sc.LocalEpochs; e++ {
		if err := ctx.Err(); err != nil {
			return fed.ModelUpdate{}, err
		}
		lastLoss = 0
		batches := data.BatchIndices(t.dr.Len(), t.sc.BatchSize, t.rng)
		for _, b := range batches {
			x := sliceX(t.dr, b)
			logits := t.net.Forward(x, true)
			var l float64
			var grad *tensor.Tensor
			if unlearning {
				// Chundawat et al.: the unlearning party distills the
				// competent teacher on its remaining data.
				tLogits := t.competent.Forward(x, false)
				l, grad = loss.Distillation(logits, tLogits, t.temp)
			} else {
				// Clients without removals train normally; distilling them
				// from the contaminated teacher would keep re-teaching the
				// very behaviour being unlearned.
				l, grad = (loss.CrossEntropy{}).Compute(logits, t.dr.LabelsFor(b))
			}
			t.net.ZeroGrads()
			t.net.Backward(grad)
			t.opt.Step(params)
			lastLoss += l
		}
		if len(batches) > 0 {
			lastLoss /= float64(len(batches))
		}
		if unlearning {
			// |Df| ≪ |Dr|, and in a federation only this client pushes
			// against the backdoor while every client's retain distillation
			// pulls towards the contaminated teacher. Repeat the forget
			// passes and distill sharply (T=1) so bad teaching wins.
			const forgetPasses = 3
			for pass := 0; pass < forgetPasses; pass++ {
				for _, b := range data.BatchIndices(t.df.Len(), t.sc.BatchSize, t.rng) {
					x := sliceX(t.df, b)
					logits := t.net.Forward(x, true)
					badLogits := t.incompetent.Forward(x, false)
					_, grad := loss.Distillation(logits, badLogits, 1)
					t.net.ZeroGrads()
					t.net.Backward(grad)
					t.opt.Step(params)
				}
			}
		}
	}
	return fed.ModelUpdate{
		ClientID:   t.id,
		Round:      round,
		Params:     t.net.StateVector(),
		NumSamples: t.dr.Len(),
		TrainLoss:  lastLoss,
	}, nil
}

// IncompetentTeacher implements B3. contaminated is the state vector of the
// original (pre-deletion) global model: it seeds the student and acts as the
// competent teacher; a randomly initialized network of the same architecture
// is the incompetent teacher for the removed data.
func IncompetentTeacher(ctx context.Context, sc Scenario, parts []*data.Dataset,
	removed map[int][]int, contaminated []float64, rounds int, temp float64, onRound RoundHook) ([]float64, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if temp <= 0 {
		return nil, fmt.Errorf("baselines: distillation temperature must be positive, got %g", temp)
	}
	if len(contaminated) == 0 {
		return nil, fmt.Errorf("baselines: B3 needs the contaminated global model")
	}
	trainers := make([]fed.LocalTrainer, len(parts))
	for i, p := range parts {
		t, err := NewIncompetentTrainer(i, sc, p, temp)
		if err != nil {
			return nil, err
		}
		if rows := removed[i]; len(rows) > 0 {
			if err := t.Forget(rows, contaminated); err != nil {
				return nil, err
			}
		}
		trainers[i] = t
	}
	// B3 starts from the contaminated model rather than from scratch.
	return runFederation(ctx, trainers, contaminated, rounds, onRound)
}

// sliceX extracts the given rows of a dataset as a batch tensor.
func sliceX(ds *data.Dataset, rows []int) *tensor.Tensor {
	return tensor.SliceRows(ds.X, rows)
}
