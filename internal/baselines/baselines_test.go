package baselines

import (
	"context"
	"math/rand"
	"testing"

	"goldfish/internal/data"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/optim"
)

func testScenario() Scenario {
	return Scenario{
		Model:       model.Config{Arch: model.ArchMLP, InC: 1, InH: 12, InW: 12, Classes: 10, Seed: 1},
		Opt:         optim.SGDConfig{LR: 0.1, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: 3,
		BatchSize:   32,
		Seed:        1,
	}
}

// poisonedSetup builds partitions with a backdoored client 0 and returns
// everything the baseline comparisons need.
func poisonedSetup(t *testing.T) (parts []*data.Dataset, removed map[int][]int,
	test, triggered *data.Dataset, bd data.BackdoorConfig) {
	t.Helper()
	spec, err := data.SpecMNIST(data.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	train, testSet, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parts, err = data.PartitionIID(train, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	bd = data.DefaultBackdoor()
	rows, err := bd.Poison(parts[0], 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	trig, err := bd.TriggerCopy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	return parts, map[int][]int{0: rows}, testSet, trig, bd
}

func evalState(t *testing.T, sc Scenario, state []float64, test *data.Dataset) float64 {
	t.Helper()
	net, err := model.Build(sc.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetStateVector(state); err != nil {
		t.Fatal(err)
	}
	return metrics.Accuracy(net, test, 0)
}

func evalASR(t *testing.T, sc Scenario, state []float64, triggered *data.Dataset, target int) float64 {
	t.Helper()
	net, err := model.Build(sc.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetStateVector(state); err != nil {
		t.Fatal(err)
	}
	return metrics.AttackSuccessRate(net, triggered, target, 0)
}

func TestScenarioValidate(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	bad := testScenario()
	bad.LocalEpochs = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 epochs accepted")
	}
	bad = testScenario()
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 batch accepted")
	}
	bad = testScenario()
	bad.Opt.LR = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid optimizer accepted")
	}
}

func TestOriginLearnsBackdoor(t *testing.T) {
	parts, _, test, triggered, bd := poisonedSetup(t)
	sc := testScenario()
	// Origin = B1 with no removals: trains on the poisoned data.
	state, err := RetrainFromScratch(context.Background(), sc, parts, nil, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := evalState(t, sc, state, test)
	asr := evalASR(t, sc, state, triggered, bd.TargetLabel)
	if acc < 0.35 {
		t.Errorf("origin accuracy %g too low", acc)
	}
	if asr < 0.4 {
		t.Errorf("origin ASR %g too low — backdoor should take hold", asr)
	}
}

func TestB1RemovesBackdoor(t *testing.T) {
	parts, removed, test, triggered, bd := poisonedSetup(t)
	sc := testScenario()
	var rounds int
	state, err := RetrainFromScratch(context.Background(), sc, parts, removed, 8,
		func(round int, global []float64) { rounds++ })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 8 {
		t.Errorf("round hook fired %d times, want 8", rounds)
	}
	acc := evalState(t, sc, state, test)
	asr := evalASR(t, sc, state, triggered, bd.TargetLabel)
	if acc < 0.35 {
		t.Errorf("B1 accuracy %g too low", acc)
	}
	if asr > 0.25 {
		t.Errorf("B1 ASR %g too high after retraining without poison", asr)
	}
}

func TestB2ConvergesAndRemovesBackdoor(t *testing.T) {
	parts, removed, test, triggered, bd := poisonedSetup(t)
	sc := testScenario()
	sc.Opt.LR = 0.01 // preconditioned steps are larger; lower LR
	state, err := RapidRetrain(context.Background(), sc, parts, removed, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := evalState(t, sc, state, test)
	asr := evalASR(t, sc, state, triggered, bd.TargetLabel)
	if acc < 0.35 {
		t.Errorf("B2 accuracy %g too low", acc)
	}
	if asr > 0.25 {
		t.Errorf("B2 ASR %g too high", asr)
	}
}

func TestB2FasterThanB1EarlyOn(t *testing.T) {
	parts, removed, test, _, _ := poisonedSetup(t)
	sc := testScenario()
	sc.Opt.LR = 0.01
	sc.LocalEpochs = 1
	b2, err := RapidRetrain(context.Background(), sc, parts, removed, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	scPlain := sc
	scPlain.Opt.LR = 0.01
	b1, err := RetrainFromScratch(context.Background(), scPlain, parts, removed, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	accB2 := evalState(t, sc, b2, test)
	accB1 := evalState(t, sc, b1, test)
	if accB2 <= accB1 {
		t.Errorf("FIM preconditioning should speed early recovery: B2 %g vs B1 %g", accB2, accB1)
	}
}

func TestB3UnlearnsFromContaminatedModel(t *testing.T) {
	parts, removed, test, triggered, bd := poisonedSetup(t)
	sc := testScenario()
	// Build the contaminated origin first.
	origin, err := RetrainFromScratch(context.Background(), sc, parts, nil, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	asrOrigin := evalASR(t, sc, origin, triggered, bd.TargetLabel)
	if asrOrigin < 0.4 {
		t.Fatalf("origin ASR %g too low for a meaningful B3 test", asrOrigin)
	}
	state, err := IncompetentTeacher(context.Background(), sc, parts, removed, origin, 8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := evalState(t, sc, state, test)
	asr := evalASR(t, sc, state, triggered, bd.TargetLabel)
	// B3 is the weakest unlearner in the paper's tables as well (its ASR
	// stays above B1's and ours); require a clear drop, not elimination.
	if asr > asrOrigin*0.6 {
		t.Errorf("B3 ASR %g did not drop enough from origin %g", asr, asrOrigin)
	}
	if acc < 0.3 {
		t.Errorf("B3 accuracy %g too low", acc)
	}
}

func TestBaselineErrors(t *testing.T) {
	parts, removed, _, _, _ := poisonedSetup(t)
	ctx := context.Background()
	bad := testScenario()
	bad.LocalEpochs = 0
	if _, err := RetrainFromScratch(ctx, bad, parts, removed, 2, nil); err == nil {
		t.Error("invalid scenario accepted")
	}
	sc := testScenario()
	// Removing everything from a client must fail.
	all := make([]int, parts[1].Len())
	for i := range all {
		all[i] = i
	}
	if _, err := RetrainFromScratch(ctx, sc, parts, map[int][]int{1: all}, 2, nil); err == nil {
		t.Error("client with no remaining data accepted")
	}
	if _, err := IncompetentTeacher(ctx, sc, parts, removed, nil, 2, 3, nil); err == nil {
		t.Error("B3 without contaminated model accepted")
	}
	if _, err := IncompetentTeacher(ctx, sc, parts, removed, []float64{1}, 2, 0, nil); err == nil {
		t.Error("B3 with zero temperature accepted")
	}
}

func TestBaselineCancellation(t *testing.T) {
	parts, removed, _, _, _ := poisonedSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RetrainFromScratch(ctx, testScenario(), parts, removed, 5, nil); err == nil {
		t.Error("cancelled run should fail")
	}
}
