package bench

import (
	"context"
	"fmt"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/loss"
	"goldfish/internal/model"
	"goldfish/internal/unlearn"
)

// lossVariant is one column of Table X / Table XI.
type lossVariant struct {
	name   string
	modify func(*core.Config)
}

// runLossVariants trains the poisoned origin once per variant, submits the
// deletion, and records accuracy and backdoor ASR at every unlearning-round
// checkpoint. It reproduces the Table X / XI protocol (CIFAR-10 + ResNet-32,
// 10% poisoning of client 0).
func runLossVariants(opts Options, variants []lossVariant, title string) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("cifar10", model.ArchResNet32, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Checkpoints mirror the paper's epoch grid {10,20,30,40}, scaled to the
	// available unlearning-round budget.
	checkpoints := []int{
		s.rounds / 4, s.rounds / 2, 3 * s.rounds / 4, s.rounds,
	}
	for i, c := range checkpoints {
		if c < 1 {
			checkpoints[i] = 1
		}
	}

	type cell struct{ acc, asr float64 }
	results := make([][]cell, len(variants)) // [variant][checkpoint]

	for vi, v := range variants {
		parts, err := s.partitionIID()
		if err != nil {
			return nil, err
		}
		bd := data.DefaultBackdoor()
		poisoned, err := s.poisonClient0(parts, bd, 10)
		if err != nil {
			return nil, err
		}
		triggered, err := bd.TriggerCopy(s.test)
		if err != nil {
			return nil, err
		}

		cfg := s.clientConfig()
		v.modify(&cfg)
		f, err := unlearn.NewFederation(unlearn.Config{Client: cfg}, parts)
		if err != nil {
			return nil, err
		}
		if err := f.Run(ctx, s.rounds, nil); err != nil {
			return nil, err
		}
		if err := f.RequestDeletion(0, poisoned); err != nil {
			return nil, err
		}

		cells := make([]cell, 0, len(checkpoints))
		var roundErr error
		round := 0
		if err := f.Run(ctx, s.rounds, func(rs unlearn.RoundStats) {
			round++
			for _, cp := range checkpoints {
				if cp == round {
					acc, aerr := s.accuracy(rs.Global)
					if aerr != nil {
						roundErr = aerr
						return
					}
					asr, aerr := s.asr(rs.Global, triggered, bd.TargetLabel)
					if aerr != nil {
						roundErr = aerr
						return
					}
					cells = append(cells, cell{acc: acc, asr: asr})
					break
				}
			}
		}); err != nil {
			return nil, err
		}
		if roundErr != nil {
			return nil, roundErr
		}
		results[vi] = cells
	}

	tbl := Table{Title: title, Columns: []string{"Round", "Metric"}}
	for _, v := range variants {
		tbl.Columns = append(tbl.Columns, v.name)
	}
	for ci, cp := range checkpoints {
		accRow := []string{fmt.Sprintf("%d", cp), "acc"}
		asrRow := []string{"", "backdoor"}
		for vi := range variants {
			if ci < len(results[vi]) {
				accRow = append(accRow, pct(results[vi][ci].acc))
				asrRow = append(asrRow, pct(results[vi][ci].asr))
			} else {
				accRow = append(accRow, "-")
				asrRow = append(asrRow, "-")
			}
		}
		tbl.Rows = append(tbl.Rows, accRow, asrRow)
	}
	return &Report{ID: "ablation", Title: title, Tables: []Table{tbl}}, nil
}

// RunTable10 regenerates Table X: the loss-component ablation — hard loss
// only, without distillation loss, without confusion loss, and the total
// loss.
func RunTable10(opts Options) (*Report, error) {
	variants := []lossVariant{
		{"Hard loss only", func(c *core.Config) { c.Loss.MuC = 0; c.Loss.MuD = 0 }},
		{"w/o Distillation", func(c *core.Config) { c.Loss.MuD = 0 }},
		{"w/o Confusion", func(c *core.Config) { c.Loss.MuC = 0 }},
		{"Total loss", func(c *core.Config) {}},
	}
	return runLossVariants(opts, variants, "Ablation study of the loss-function components (Table X)")
}

// RunTable11 regenerates Table XI: the hard-loss compatibility study —
// cross-entropy (α), focal loss (β) and NLL (γ) as the hard-loss plug-in of
// the total objective.
func RunTable11(opts Options) (*Report, error) {
	variants := []lossVariant{
		{"Total loss α (CE)", func(c *core.Config) { c.Loss.Hard = loss.CrossEntropy{} }},
		{"Total loss β (Focal)", func(c *core.Config) { c.Loss.Hard = loss.Focal{Gamma: 2} }},
		{"Total loss γ (NLL)", func(c *core.Config) { c.Loss.Hard = loss.NLL{} }},
	}
	return runLossVariants(opts, variants, "Compatibility study of different hard losses (Table XI)")
}

// RunAblateEarly measures this reproduction's early-termination mechanism:
// local epochs actually run and final accuracy with δ disabled versus
// enabled (DESIGN.md ablation).
func RunAblateEarly(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	tbl := Table{
		Title:   "Early-termination ablation: epochs used and accuracy",
		Columns: []string{"delta", "total local epochs", "final acc (%)"},
	}
	for _, delta := range []float64{0, 0.05, 0.2} {
		parts, err := s.partitionIID()
		if err != nil {
			return nil, err
		}
		cfg := s.clientConfig()
		cfg.LocalEpochs = 4
		cfg.EarlyDelta = delta
		f, err := unlearn.NewFederation(unlearn.Config{Client: cfg}, parts)
		if err != nil {
			return nil, err
		}
		totalEpochs := 0
		if err := f.Run(ctx, s.rounds, func(unlearn.RoundStats) {
			for i := 0; i < f.NumClients(); i++ {
				totalEpochs += f.Client(i).LastEpochs()
			}
		}); err != nil {
			return nil, err
		}
		acc, err := s.accuracy(f.Global())
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", delta),
			fmt.Sprintf("%d", totalEpochs),
			pct(acc),
		})
	}
	return &Report{ID: "ablate-early", Title: tbl.Title, Tables: []Table{tbl}}, nil
}

// RunAblateTemp compares fixed versus adaptive distillation temperature
// (Eq. 11) on the backdoor-unlearning pipeline (DESIGN.md ablation).
func RunAblateTemp(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	tbl := Table{
		Title:   "Adaptive-temperature ablation (Eq. 11)",
		Columns: []string{"temperature", "acc (%)", "backdoor (%)"},
	}
	for _, adaptive := range []bool{false, true} {
		parts, err := s.partitionIID()
		if err != nil {
			return nil, err
		}
		bd := data.DefaultBackdoor()
		poisoned, err := s.poisonClient0(parts, bd, 10)
		if err != nil {
			return nil, err
		}
		triggered, err := bd.TriggerCopy(s.test)
		if err != nil {
			return nil, err
		}
		cfg := s.clientConfig()
		cfg.AdaptiveTemp = adaptive
		f, err := unlearn.NewFederation(unlearn.Config{Client: cfg}, parts)
		if err != nil {
			return nil, err
		}
		if err := f.Run(ctx, s.rounds, nil); err != nil {
			return nil, err
		}
		if err := f.RequestDeletion(0, poisoned); err != nil {
			return nil, err
		}
		if err := f.Run(ctx, s.rounds, nil); err != nil {
			return nil, err
		}
		acc, err := s.accuracy(f.Global())
		if err != nil {
			return nil, err
		}
		asr, err := s.asr(f.Global(), triggered, bd.TargetLabel)
		if err != nil {
			return nil, err
		}
		name := "fixed T=3"
		if adaptive {
			name = "adaptive (Eq. 11)"
		}
		tbl.Rows = append(tbl.Rows, []string{name, pct(acc), pct(asr)})
	}
	return &Report{ID: "ablate-temp", Title: tbl.Title, Tables: []Table{tbl}}, nil
}
