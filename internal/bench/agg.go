package bench

import (
	"context"
	"fmt"
	"math/rand"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/optim"
	"goldfish/internal/unlearn"
)

// clientCounts is the paper's client-count sweep (§IV-A: C ∈ {5, 15, 25}).
var clientCounts = []int{5, 15, 25}

// heteroSkew is the heterogeneity level used by Fig. 8 / Table XII.
const heteroSkew = 0.2

// runAggregation trains one federation per aggregator over the given
// partitions, recording global accuracy per round, and (when probe is not
// nil) min/max local-model accuracy for the error bars of Fig. 8.
func runAggregation(s *setup, parts []*data.Dataset, agg fed.Aggregator, probe *data.Dataset) (global Series, minLocal, maxLocal Series, err error) {
	cfg := unlearn.Config{Client: s.clientConfig(), Aggregator: agg}
	if _, ok := agg.(fed.AdaptiveWeight); ok {
		cfg.ServerTest = s.test
	}
	f, err := unlearn.NewFederation(cfg, parts)
	if err != nil {
		return global, minLocal, maxLocal, err
	}
	global = Series{Name: agg.Name()}
	minLocal = Series{Name: agg.Name() + " min-local"}
	maxLocal = Series{Name: agg.Name() + " max-local"}
	var cbErr error
	err = f.Run(context.Background(), s.rounds, func(rs unlearn.RoundStats) {
		acc, aerr := s.accuracy(rs.Global)
		if aerr != nil {
			cbErr = aerr
			return
		}
		x := float64(rs.Round + 1)
		global.X = append(global.X, x)
		global.Y = append(global.Y, acc)
		if probe == nil {
			return
		}
		lo, hi := 1.0, 0.0
		for _, u := range rs.Updates {
			net, nerr := s.evalNet(u.Params)
			if nerr != nil {
				cbErr = nerr
				return
			}
			lacc := metrics.Accuracy(net, probe, 0)
			if lacc < lo {
				lo = lacc
			}
			if lacc > hi {
				hi = lacc
			}
		}
		minLocal.X = append(minLocal.X, x)
		minLocal.Y = append(minLocal.Y, lo)
		maxLocal.X = append(maxLocal.X, x)
		maxLocal.Y = append(maxLocal.Y, hi)
	})
	if err == nil {
		err = cbErr
	}
	return global, minLocal, maxLocal, err
}

// probeSubset bounds the per-client evaluation cost of the Fig. 8 error
// bars.
func probeSubset(test *data.Dataset, n int) *data.Dataset {
	if test.Len() <= n {
		return test
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return test.Subset(idx)
}

// RunFig8 regenerates Fig. 8: FedAvg versus the adaptive-weight aggregation
// under heterogeneous local data for 5/15/25 clients, with min/max local
// accuracy as error-bar series.
func RunFig8(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	probe := probeSubset(s.test, 200)
	report := &Report{ID: "fig8", Title: "FedAvg vs adaptive weights with heterogeneous local data"}
	for _, c := range clientCounts {
		parts, err := data.PartitionHeterogeneous(s.train, c, heteroSkew,
			rand.New(rand.NewSource(opts.Seed*131+int64(c))))
		if err != nil {
			return nil, err
		}
		fig := Figure{
			Title:  fmt.Sprintf("Fig.8 heterogeneous, %d clients", c),
			XLabel: "round",
			YLabel: "test accuracy",
		}
		for _, agg := range []fed.Aggregator{fed.FedAvg{}, fed.AdaptiveWeight{}} {
			global, lo, hi, err := runAggregation(s, parts, agg, probe)
			if err != nil {
				return nil, err
			}
			fig.Series = append(fig.Series, global, lo, hi)
		}
		report.Figures = append(report.Figures, fig)
	}
	return report, nil
}

// RunFig9 regenerates Fig. 9: FedAvg versus adaptive weights under IID data
// for 5/15/25 clients — the two should track each other closely.
func RunFig9(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		Title:  "Fig.9 IID local data",
		XLabel: "round",
		YLabel: "test accuracy",
	}
	for _, c := range clientCounts {
		parts, err := data.PartitionIID(s.train, c, rand.New(rand.NewSource(opts.Seed*157+int64(c))))
		if err != nil {
			return nil, err
		}
		for _, agg := range []fed.Aggregator{fed.FedAvg{}, fed.AdaptiveWeight{}} {
			global, _, _, err := runAggregation(s, parts, agg, nil)
			if err != nil {
				return nil, err
			}
			global.Name = fmt.Sprintf("%s C=%d", global.Name, c)
			fig.Series = append(fig.Series, global)
		}
	}
	return &Report{ID: "fig9", Title: fig.Title, Figures: []Figure{fig}}, nil
}

// RunTable12 regenerates Table XII: the heterogeneity statistics — the
// variance of local dataset sizes and the min/max test accuracy of models
// trained independently on each client's local data.
func RunTable12(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	tbl := Table{
		Title:   "Representation of data heterogeneity (Table XII)",
		Columns: []string{"Clients", "Variance", "Min acc (%)", "Max acc (%)"},
	}
	for _, c := range clientCounts {
		parts, err := data.PartitionHeterogeneous(s.train, c, heteroSkew,
			rand.New(rand.NewSource(opts.Seed*131+int64(c))))
		if err != nil {
			return nil, err
		}
		variance := data.SizeVariance(parts)
		lo, hi := 1.0, 0.0
		for i, p := range parts {
			acc, err := trainLocalOnly(ctx, s, p, int64(i))
			if err != nil {
				return nil, err
			}
			if acc < lo {
				lo = acc
			}
			if acc > hi {
				hi = acc
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%.3g", variance),
			pct(lo),
			pct(hi),
		})
	}
	return &Report{ID: "table12", Title: tbl.Title, Tables: []Table{tbl}}, nil
}

// trainLocalOnly trains a fresh model on one client's data alone (no
// federation) and returns its test accuracy.
func trainLocalOnly(ctx context.Context, s *setup, ds *data.Dataset, seed int64) (float64, error) {
	mcfg := s.mcfg
	mcfg.Seed = s.opts.Seed*257 + seed
	net, err := model.Build(mcfg)
	if err != nil {
		return 0, err
	}
	opt, err := optim.NewSGD(optim.SGDConfig{LR: s.lr, Momentum: 0.9, ClipNorm: 5})
	if err != nil {
		return 0, err
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	gl := loss.Goldfish{Hard: loss.CrossEntropy{}, ForgetScale: 1}
	rng := rand.New(rand.NewSource(seed + 911))
	epochs := s.rounds * s.epochs
	for e := 0; e < epochs; e++ {
		if _, err := core.TrainEpoch(ctx, net, nil, ds, idx, nil, gl, opt, s.batch, rng); err != nil {
			return 0, err
		}
	}
	return metrics.Accuracy(net, s.test, 0), nil
}
