package bench

import (
	"context"
	"fmt"

	"goldfish/internal/baselines"
	"goldfish/internal/data"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/optim"
	"goldfish/internal/unlearn"
)

// scenario converts a setup into the baseline Scenario.
func (s *setup) scenario() baselines.Scenario {
	return baselines.Scenario{
		Model:       s.mcfg,
		Opt:         optim.SGDConfig{LR: s.lr, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: s.epochs,
		BatchSize:   s.batch,
		Seed:        s.opts.Seed,
	}
}

// sweepPoint holds the final model states of every method at one deletion
// rate, plus the probe data needed to evaluate them.
type sweepPoint struct {
	Rate      int // percent
	Origin    []float64
	Ours      []float64
	B1        []float64
	B3        []float64
	Triggered *data.Dataset
	Target    int
}

// runBackdoorPoint executes the full origin → unlearn pipeline for one
// deletion rate: client 0 of 5 is poisoned at the given rate, the origin
// model is trained on the contaminated data, then Goldfish, B1 and B3 each
// unlearn the poisoned rows.
func (s *setup) runBackdoorPoint(ctx context.Context, rate int) (*sweepPoint, error) {
	parts, err := s.partitionIID()
	if err != nil {
		return nil, err
	}
	bd := data.DefaultBackdoor()
	poisoned, err := s.poisonClient0(parts, bd, rate)
	if err != nil {
		return nil, err
	}
	triggered, err := bd.TriggerCopy(s.test)
	if err != nil {
		return nil, err
	}
	removed := map[int][]int{0: poisoned}

	// Origin + Ours share one federation: train on poisoned data, snapshot,
	// then submit the deletion request and keep running (Algorithm 1).
	f, err := unlearn.NewFederation(unlearn.Config{Client: s.clientConfig()}, parts)
	if err != nil {
		return nil, err
	}
	if err := f.Run(ctx, s.rounds, nil); err != nil {
		return nil, err
	}
	origin := f.Global()
	if err := f.RequestDeletion(0, poisoned); err != nil {
		return nil, err
	}
	if err := f.Run(ctx, s.rounds, nil); err != nil {
		return nil, err
	}
	ours := f.Global()

	sc := s.scenario()
	b1, err := baselines.RetrainFromScratch(ctx, sc, parts, removed, s.rounds, nil)
	if err != nil {
		return nil, err
	}
	b3, err := baselines.IncompetentTeacher(ctx, sc, parts, removed, origin, s.rounds, 3, nil)
	if err != nil {
		return nil, err
	}
	return &sweepPoint{
		Rate:      rate,
		Origin:    origin,
		Ours:      ours,
		B1:        b1,
		B3:        b3,
		Triggered: triggered,
		Target:    bd.TargetLabel,
	}, nil
}

// poisonClient0 backdoors client 0's partition in place. The paper's
// deletion rate is a fraction of the whole training set, all of it held
// (and backdoored) by one client; translate it into a fraction of client
// 0's local data, capped so the client keeps a remainder to retrain on.
func (s *setup) poisonClient0(parts []*data.Dataset, bd data.BackdoorConfig, ratePct int) ([]int, error) {
	want := s.train.Len() * ratePct / 100
	if want < 1 {
		want = 1
	}
	if maxRows := parts[0].Len() * 4 / 5; want > maxRows {
		want = maxRows
	}
	frac := float64(want) / float64(parts[0].Len())
	return bd.Poison(parts[0], frac, s.rng)
}

// runBackdoorSweep runs runBackdoorPoint for every deletion rate.
func (s *setup) runBackdoorSweep(ctx context.Context) ([]*sweepPoint, error) {
	rates := s.opts.DeletionRates
	if len(rates) == 0 {
		rates = defaultRates(s.opts.Scale)
	}
	points := make([]*sweepPoint, 0, len(rates))
	for _, r := range rates {
		if r <= 0 || r >= 100 {
			return nil, fmt.Errorf("bench: deletion rate %d%% out of (0,100)", r)
		}
		p, err := s.runBackdoorPoint(ctx, r)
		if err != nil {
			return nil, fmt.Errorf("bench: rate %d%%: %w", r, err)
		}
		points = append(points, p)
	}
	return points, nil
}

// tableBackdoor builds the Run function for Tables III–VI: accuracy and
// backdoor ASR per deletion rate for origin/Ours/B1/B3 on one dataset.
func tableBackdoor(dataset string) func(Options) (*Report, error) {
	return func(opts Options) (*Report, error) {
		s, err := newSetup(dataset, archFor(dataset), opts)
		if err != nil {
			return nil, err
		}
		points, err := s.runBackdoorSweep(context.Background())
		if err != nil {
			return nil, err
		}
		tbl := Table{
			Title: fmt.Sprintf("Accuracy rate and backdoor attack success rate on the %s dataset (%%)", dataset),
			Columns: []string{"Rate",
				"origin acc", "origin backdoor",
				"ours acc", "ours backdoor",
				"B1 acc", "B1 backdoor",
				"B3 acc", "B3 backdoor"},
		}
		for _, p := range points {
			row := []string{fmt.Sprintf("%d", p.Rate)}
			for _, state := range [][]float64{p.Origin, p.Ours, p.B1, p.B3} {
				acc, err := s.accuracy(state)
				if err != nil {
					return nil, err
				}
				asr, err := s.asr(state, p.Triggered, p.Target)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(acc), pct(asr))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
		return &Report{ID: "table-" + dataset, Title: tbl.Title, Tables: []Table{tbl}}, nil
	}
}

// RunFig5 regenerates Fig. 5: backdoor ASR vs deletion rate, one sub-figure
// per dataset/model combination. Reduced scales run three combinations;
// medium/paper scales run all five of the paper's.
func RunFig5(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	combos := fig45Combos(opts.Scale)
	report := &Report{ID: "fig5", Title: "Backdoor attack success rate under different deletion rates"}
	for _, c := range combos {
		s, err := newSetup(c.dataset, c.arch, opts)
		if err != nil {
			return nil, err
		}
		points, err := s.runBackdoorSweep(context.Background())
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", c.dataset, c.arch, err)
		}
		fig := Figure{
			Title:  fmt.Sprintf("Fig.5 %s (%s)", c.dataset, c.arch),
			XLabel: "deletion rate (%)",
			YLabel: "backdoor success rate",
		}
		methods := []struct {
			name  string
			state func(*sweepPoint) []float64
		}{
			{"origin", func(p *sweepPoint) []float64 { return p.Origin }},
			{"ours", func(p *sweepPoint) []float64 { return p.Ours }},
			{"B1", func(p *sweepPoint) []float64 { return p.B1 }},
			{"B3", func(p *sweepPoint) []float64 { return p.B3 }},
		}
		for _, m := range methods {
			series := Series{Name: m.name}
			for _, p := range points {
				asr, err := s.asr(m.state(p), p.Triggered, p.Target)
				if err != nil {
					return nil, err
				}
				series.X = append(series.X, float64(p.Rate))
				series.Y = append(series.Y, asr)
			}
			fig.Series = append(fig.Series, series)
		}
		report.Figures = append(report.Figures, fig)
	}
	return report, nil
}

// fig45Combos lists the dataset/model pairings of Figs. 4 and 5.
type comboSpec struct {
	dataset string
	arch    model.Arch
}

func fig45Combos(scale data.Scale) []comboSpec {
	all := []comboSpec{
		{"mnist", model.ArchLeNet5},
		{"fmnist", model.ArchLeNet5},
		{"cifar10", model.ArchLeNet5Mod},
		{"cifar10", model.ArchResNet32},
		{"cifar100", model.ArchResNet56},
	}
	switch scale {
	case data.ScaleMedium, data.ScalePaper:
		return all
	default:
		// Keep one ResNet combination so residual models stay covered.
		return []comboSpec{all[0], all[2], all[3]}
	}
}

// tableDivergence builds the Run function for Tables VII–IX: JSD and L2 of
// Ours and B3 against the B1 reference, and the Welch t-test p-value of
// Ours and B3 against the origin model.
func tableDivergence(dataset string) func(Options) (*Report, error) {
	return func(opts Options) (*Report, error) {
		s, err := newSetup(dataset, archFor(dataset), opts)
		if err != nil {
			return nil, err
		}
		points, err := s.runBackdoorSweep(context.Background())
		if err != nil {
			return nil, err
		}
		tbl := Table{
			Title: fmt.Sprintf("Evaluation based on JSD, L2 and t-test on the %s dataset", dataset),
			Columns: []string{"Rate",
				"B3 JSD", "B3 L2", "B3 T-test",
				"Ours JSD", "Ours L2", "Ours T-test"},
		}
		for _, p := range points {
			ref, err := s.evalNet(p.B1)
			if err != nil {
				return nil, err
			}
			orig, err := s.evalNet(p.Origin)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d", p.Rate)}
			for _, state := range [][]float64{p.B3, p.Ours} {
				net, err := s.evalNet(state)
				if err != nil {
					return nil, err
				}
				div, err := metrics.ModelDivergence(net, ref, s.test, 0)
				if err != nil {
					return nil, err
				}
				tt, err := metrics.ConfidenceTTest(net, orig, s.test, 0)
				if err != nil {
					return nil, err
				}
				row = append(row,
					fmt.Sprintf("%.2f", div.JSD),
					fmt.Sprintf("%.2f", div.L2),
					fmt.Sprintf("%.2f", tt.P))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
		return &Report{ID: "divergence-" + dataset, Title: tbl.Title, Tables: []Table{tbl}}, nil
	}
}
