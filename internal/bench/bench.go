// Package bench regenerates every table and figure of the paper's
// evaluation (§IV) on the synthetic substrate. Each experiment is registered
// under the paper artifact's ID (table3 … table12, fig4 … fig9) plus two
// ablations of this reproduction's own design choices, and produces a Report
// of text tables and series that mirror the paper's rows and curves.
//
// Experiments accept an Options scale knob: the default ScaleSmall keeps
// pure-Go CPU runs tractable; ScalePaper mirrors the paper's dimensions.
// Absolute numbers differ from the paper (synthetic data, reduced scale);
// the shape — who wins, by how much, where crossovers fall — is the
// reproduction target. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"goldfish/internal/data"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects dataset/model sizes (default data.ScaleSmall).
	Scale data.Scale
	// Seed drives all experiment randomness (default 1).
	Seed int64
	// Rounds overrides the per-scale default round budget when positive.
	Rounds int
	// DeletionRates overrides the default percentage sweep when non-empty
	// (values are percentages, e.g. 2, 6, 12).
	DeletionRates []int
}

func (o Options) withDefaults() Options {
	if o.Scale == "" {
		o.Scale = data.ScaleSmall
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a paper-style results table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a paper-style plot rendered as text columns.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as an x-indexed column table, one column per
// series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel)
	// Collect the union of x values across series.
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4f", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	tbl := Table{Title: "", Columns: header, Rows: rows}
	tbl.Render(w)
}

// Report is the output of one experiment: tables and figures in paper
// order.
type Report struct {
	ID      string
	Title   string
	Tables  []Table
	Figures []Figure
}

// Render writes the whole report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	for i := range r.Tables {
		r.Tables[i].Render(w)
		fmt.Fprintln(w)
	}
	for i := range r.Figures {
		r.Figures[i].Render(w)
		fmt.Fprintln(w)
	}
}

// Experiment is one registered paper artifact.
type Experiment struct {
	// ID is the registry key ("table3", "fig5", …).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment.
	Run func(opts Options) (*Report, error)
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig4", Title: "Retraining accuracy curves: Ours vs B1 vs B2 (Fig. 4a–e)", Run: RunFig4},
		{ID: "fig5", Title: "Backdoor attack success rate vs deletion rate (Fig. 5a–e)", Run: RunFig5},
		{ID: "table3", Title: "Accuracy and backdoor ASR on MNIST (Table III)", Run: tableBackdoor("mnist")},
		{ID: "table4", Title: "Accuracy and backdoor ASR on FMNIST (Table IV)", Run: tableBackdoor("fmnist")},
		{ID: "table5", Title: "Accuracy and backdoor ASR on CIFAR-10 (Table V)", Run: tableBackdoor("cifar10")},
		{ID: "table6", Title: "Accuracy and backdoor ASR on CIFAR-100 (Table VI)", Run: tableBackdoor("cifar100")},
		{ID: "table7", Title: "JSD / L2 / t-test vs B1 on MNIST (Table VII)", Run: tableDivergence("mnist")},
		{ID: "table8", Title: "JSD / L2 / t-test vs B1 on FMNIST (Table VIII)", Run: tableDivergence("fmnist")},
		{ID: "table9", Title: "JSD / L2 / t-test vs B1 on CIFAR-10 (Table IX)", Run: tableDivergence("cifar10")},
		{ID: "table10", Title: "Loss-component ablation (Table X)", Run: RunTable10},
		{ID: "table11", Title: "Hard-loss compatibility: CE / Focal / NLL (Table XI)", Run: RunTable11},
		{ID: "fig6", Title: "Accuracy vs shard count (Fig. 6)", Run: RunFig6},
		{ID: "fig7", Title: "Accuracy around deletion for shard counts (Fig. 7a–c)", Run: RunFig7},
		{ID: "fig8", Title: "FedAvg vs adaptive weights under heterogeneity (Fig. 8a–c)", Run: RunFig8},
		{ID: "fig9", Title: "FedAvg vs adaptive weights, IID (Fig. 9)", Run: RunFig9},
		{ID: "table12", Title: "Heterogeneity statistics (Table XII)", Run: RunTable12},
		{ID: "ablate-early", Title: "Ablation: early termination epoch savings (this repo)", Run: RunAblateEarly},
		{ID: "ablate-temp", Title: "Ablation: adaptive distillation temperature (this repo)", Run: RunAblateTemp},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (see `goldfish-bench -list`)", id)
}
