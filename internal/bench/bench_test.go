package bench

import (
	"strings"
	"testing"

	"goldfish/internal/data"
)

func tinyOpts() Options {
	return Options{Scale: data.ScaleTiny, Seed: 1, Rounds: 4, DeletionRates: []int{6}}
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 16 {
		t.Fatalf("registry has %d experiments, want ≥16", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig4", "fig5", "table3", "table10", "fig6", "fig8", "table12"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := Figure{
		Title:  "Curve",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "s1", X: []float64{1, 2}, Y: []float64{0.5, 0.75}},
			{Name: "s2", X: []float64{2}, Y: []float64{0.25}},
		},
	}
	var sb strings.Builder
	fig.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Curve", "s1", "s2", "0.7500", "0.2500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != data.ScaleSmall || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestDefaultRates(t *testing.T) {
	if got := defaultRates(data.ScaleSmall); len(got) != 3 {
		t.Errorf("small rates = %v", got)
	}
	if got := defaultRates(data.ScalePaper); len(got) != 6 {
		t.Errorf("paper rates = %v", got)
	}
}

func TestArchMapping(t *testing.T) {
	if archFor("cifar100") != "resnet56" {
		t.Errorf("cifar100 arch = %s", archFor("cifar100"))
	}
	if archFor("mnist") != "lenet5" {
		t.Errorf("mnist arch = %s", archFor("mnist"))
	}
}

// Smoke tests: each experiment family runs end-to-end at tiny scale. These
// are integration tests of the entire stack.

func TestRunTable3Tiny(t *testing.T) {
	rep, err := tableBackdoor("mnist")(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if got := len(rep.Tables[0].Rows[0]); got != 9 {
		t.Errorf("row has %d cells, want 9", got)
	}
}

func TestRunFig6Tiny(t *testing.T) {
	opts := tinyOpts()
	rep, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 {
		t.Fatalf("want 1 figure, got %d", len(rep.Figures))
	}
	fig := rep.Figures[0]
	if len(fig.Series) != len(shardCounts(opts.Scale)) {
		t.Errorf("series = %d, want %d", len(fig.Series), len(shardCounts(opts.Scale)))
	}
	for _, srs := range fig.Series {
		if len(srs.Y) != opts.Rounds {
			t.Errorf("series %s has %d points, want %d", srs.Name, len(srs.Y), opts.Rounds)
		}
	}
}

func TestRunFig9Tiny(t *testing.T) {
	rep, err := RunFig9(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 || len(rep.Figures[0].Series) != 6 {
		t.Fatalf("want 6 series (2 aggregators × 3 client counts), got %+v", rep.Figures)
	}
}

func TestRunTable12Tiny(t *testing.T) {
	rep, err := RunTable12(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rep.Tables[0].Rows))
	}
}

func TestRunAblateEarlyTiny(t *testing.T) {
	rep, err := RunAblateEarly(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("want 3 delta rows, got %d", len(rep.Tables[0].Rows))
	}
}

func TestSpeedRow(t *testing.T) {
	series := []Series{
		{Name: "ours", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.5, 0.8}},
		{Name: "B2", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.3, 0.6}},
		{Name: "B1", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
	}
	row := speedRow("demo", series)
	// best = 0.8, threshold = 0.4: ours reaches at round 2, B2 at 3, B1 never.
	if row[2] != "2" || row[3] != "3" || row[4] != "-" {
		t.Errorf("speedRow = %v", row)
	}
}

func TestRunFig7Tiny(t *testing.T) {
	rep, err := RunFig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 3 {
		t.Fatalf("want 3 rate figures, got %d", len(rep.Figures))
	}
	for _, fig := range rep.Figures {
		if len(fig.Series) != 4 {
			t.Errorf("%s: %d series, want 4 shard counts", fig.Title, len(fig.Series))
		}
	}
}

func TestRunFig8Tiny(t *testing.T) {
	rep, err := RunFig8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 3 {
		t.Fatalf("want 3 client-count figures, got %d", len(rep.Figures))
	}
	// Each figure: global + min + max for both aggregators.
	if got := len(rep.Figures[0].Series); got != 6 {
		t.Errorf("series = %d, want 6", got)
	}
}

func TestRunTable11Tiny(t *testing.T) {
	rep, err := RunTable11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Columns) != 5 { // Round, Metric + 3 variants
		t.Errorf("columns = %v", tbl.Columns)
	}
	if len(tbl.Rows) != 8 { // 4 checkpoints × (acc, backdoor)
		t.Errorf("rows = %d, want 8", len(tbl.Rows))
	}
}

func TestRunTable7Tiny(t *testing.T) {
	rep, err := tableDivergence("mnist")(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Tables[0].Rows[0]
	if len(row) != 7 {
		t.Fatalf("row = %v, want 7 cells", row)
	}
}

func TestRunAblateTempTiny(t *testing.T) {
	rep, err := RunAblateTemp(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("want 2 rows (fixed, adaptive), got %d", len(rep.Tables[0].Rows))
	}
}

func TestBadDeletionRate(t *testing.T) {
	opts := tinyOpts()
	opts.DeletionRates = []int{0}
	if _, err := tableBackdoor("mnist")(opts); err == nil {
		t.Error("0%% deletion rate accepted")
	}
	opts.DeletionRates = []int{100}
	if _, err := tableBackdoor("mnist")(opts); err == nil {
		t.Error("100%% deletion rate accepted")
	}
}

func TestRunFig4Tiny(t *testing.T) {
	opts := tinyOpts()
	rep, err := RunFig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 3 {
		t.Fatalf("want 3 combo figures at tiny scale, got %d", len(rep.Figures))
	}
	for _, fig := range rep.Figures {
		if len(fig.Series) != 3 {
			t.Errorf("%s: %d series, want ours/B2/B1", fig.Title, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Y) != opts.Rounds {
				t.Errorf("%s/%s: %d points, want %d", fig.Title, s.Name, len(s.Y), opts.Rounds)
			}
		}
	}
	// The speed summary has one row per combo.
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 3 {
		t.Errorf("speed table shape wrong: %+v", rep.Tables)
	}
}

func TestRunFig5Tiny(t *testing.T) {
	rep, err := RunFig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 3 {
		t.Fatalf("want 3 combo figures, got %d", len(rep.Figures))
	}
	for _, fig := range rep.Figures {
		if len(fig.Series) != 4 {
			t.Errorf("%s: %d series, want origin/ours/B1/B3", fig.Title, len(fig.Series))
		}
	}
}
