package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"goldfish/internal/obs"
	"goldfish/internal/tensor"
	"goldfish/internal/unlearn"
)

// This file is the persisted performance benchmark behind
// `goldfish-bench -exp perf -json BENCH_N.json`: op-level kernel throughput
// (serial vs parallel), federated per-round wall time, and end-to-end
// experiment time. Every PR appends a BENCH_*.json so the repo carries a
// perf trajectory to compare against.

// KernelResult is one matmul micro-benchmark at one shape, measured in both
// execution modes.
type KernelResult struct {
	// Op names the kernel (MatMul, MatMulTransA, MatMulTransB).
	Op string `json:"op"`
	// M, K, N are the problem dimensions: (M,K)·(K,N) (transposes are
	// reported in their logical orientation).
	M int `json:"m"`
	K int `json:"k"`
	N int `json:"n"`
	// SerialNsPerOp / ParallelNsPerOp are mean wall times per call.
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	// SerialGFLOPS / ParallelGFLOPS are the 2·M·K·N flop rates.
	SerialGFLOPS   float64 `json:"serial_gflops"`
	ParallelGFLOPS float64 `json:"parallel_gflops"`
	// Speedup is SerialNsPerOp / ParallelNsPerOp.
	Speedup float64 `json:"speedup"`
}

// RoundResult times the shared federated round engine end to end (local
// training on every client, scoring, aggregation) at one scale.
type RoundResult struct {
	Dataset    string  `json:"dataset"`
	Scale      string  `json:"scale"`
	Clients    int     `json:"clients"`
	Rounds     int     `json:"rounds"`
	TotalSec   float64 `json:"total_sec"`
	SecPerRnd  float64 `json:"sec_per_round"`
	ModelSize  int     `json:"model_params"`
	TrainRows  int     `json:"train_rows"`
	Aggregator string  `json:"aggregator"`
	// Phases breaks the measured rounds down by engine phase (sample →
	// train → score → aggregate), from the round engine's fed.phase_us.*
	// observability counters.
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// PhaseTiming is one engine phase's share of the benchmarked rounds.
type PhaseTiming struct {
	// Phase is the engine phase name (sample, train, score, aggregate).
	Phase string `json:"phase"`
	// TotalSec is the phase's cumulative wall time across all rounds.
	TotalSec float64 `json:"total_sec"`
	// Share is TotalSec over the whole run's wall time, in [0,1].
	Share float64 `json:"share"`
}

// ExperimentResult is the end-to-end wall time of one registered paper
// experiment.
type ExperimentResult struct {
	ID      string  `json:"id"`
	Scale   string  `json:"scale"`
	Seconds float64 `json:"seconds"`
}

// PerfReport is the machine-readable benchmark artifact (BENCH_*.json).
type PerfReport struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`

	Kernels     []KernelResult     `json:"kernels"`
	Rounds      []RoundResult      `json:"rounds"`
	Experiments []ExperimentResult `json:"experiments,omitempty"`
}

// PerfOptions configures a benchmark run.
type PerfOptions struct {
	Options
	// KernelMinTime is the minimum measured wall time per kernel/mode
	// (default 100ms); reps adapt to reach it.
	KernelMinTime time.Duration
	// Experiments lists registered experiment IDs to run and time end to
	// end (empty: none).
	Experiments []string
	// Observer, when set, receives the run's spans and instruments (a CLI
	// -trace/-obs attachment). The phase breakdown works either way: with
	// no Observer a private metrics-only one supplies the counters.
	Observer *obs.Observer
}

// perfKernelShapes are the measured matmul problems. Batch dimensions are
// ≥64, matching the training shapes the acceptance benchmarks track.
var perfKernelShapes = []struct{ m, k, n int }{
	{64, 512, 512},
	{128, 512, 512},
	{64, 1152, 256}, // conv-style im2col panel (inC·k·k = 1152)
}

// RunPerf executes the benchmark suite and assembles the report.
func RunPerf(po PerfOptions) (*PerfReport, error) {
	opts := po.Options.withDefaults()
	if po.KernelMinTime <= 0 {
		po.KernelMinTime = 100 * time.Millisecond
	}
	rep := &PerfReport{
		SchemaVersion: 1,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}

	for _, s := range perfKernelShapes {
		rep.Kernels = append(rep.Kernels,
			benchKernel("MatMul", s.m, s.k, s.n, po.KernelMinTime),
			benchKernel("MatMulTransB", s.m, s.k, s.n, po.KernelMinTime),
			benchKernel("MatMulTransA", s.m, s.k, s.n, po.KernelMinTime),
		)
	}

	round, err := benchRound(opts, po.Observer)
	if err != nil {
		return nil, err
	}
	rep.Rounds = append(rep.Rounds, *round)

	for _, id := range po.Experiments {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := e.Run(opts); err != nil {
			return nil, fmt.Errorf("bench: perf: experiment %s: %w", id, err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentResult{
			ID:      id,
			Scale:   string(opts.Scale),
			Seconds: time.Since(start).Seconds(),
		})
	}
	return rep, nil
}

// benchKernel measures one kernel shape in serial and parallel modes.
func benchKernel(op string, m, k, n int, minTime time.Duration) KernelResult {
	rng := rand.New(rand.NewSource(99))
	var call func()
	switch op {
	case "MatMul":
		a := tensor.New(m, k).RandNormal(rng, 0, 1)
		b := tensor.New(k, n).RandNormal(rng, 0, 1)
		dst := tensor.New(m, n)
		call = func() { tensor.MatMulInto(dst, a, b) }
	case "MatMulTransB":
		a := tensor.New(m, k).RandNormal(rng, 0, 1)
		b := tensor.New(n, k).RandNormal(rng, 0, 1)
		dst := tensor.New(m, n)
		call = func() { tensor.MatMulTransBInto(dst, a, b) }
	case "MatMulTransA":
		a := tensor.New(k, m).RandNormal(rng, 0, 1)
		b := tensor.New(k, n).RandNormal(rng, 0, 1)
		dst := tensor.New(m, n)
		call = func() { tensor.MatMulTransAInto(dst, a, b) }
	default:
		panic("bench: unknown kernel " + op)
	}

	flops := 2 * float64(m) * float64(k) * float64(n)
	res := KernelResult{Op: op, M: m, K: k, N: n}

	prev := tensor.ForceSerial(true)
	res.SerialNsPerOp = timeCall(call, minTime)
	tensor.ForceSerial(false)
	res.ParallelNsPerOp = timeCall(call, minTime)
	tensor.ForceSerial(prev)

	res.SerialGFLOPS = flops / res.SerialNsPerOp
	res.ParallelGFLOPS = flops / res.ParallelNsPerOp
	res.Speedup = res.SerialNsPerOp / res.ParallelNsPerOp
	return res
}

// timeCall returns the mean ns/op of call, adapting repetitions until the
// measured window reaches minTime.
func timeCall(call func(), minTime time.Duration) float64 {
	call() // warm up (pool start, cache fill)
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			call()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(reps)
		}
		grow := 2 * reps
		if elapsed > 0 {
			// Jump straight to the estimated rep count, capped at 100×.
			est := int(float64(reps) * float64(minTime) / float64(elapsed))
			if est > grow {
				grow = est
			}
			if grow > 100*reps {
				grow = 100 * reps
			}
		}
		reps = grow
	}
}

// enginePhases are the round-engine phases broken out in the perf report,
// matching the fed.phase_us.* counter suffixes.
var enginePhases = []string{"sample", "train", "score", "aggregate"}

// benchRound times federated rounds of the paper's MNIST preset at the
// requested scale through the shared round engine, attributing the wall time
// to engine phases via the engine's observability counters.
func benchRound(opts Options, o *obs.Observer) (*RoundResult, error) {
	s, err := newSetup("mnist", archFor("mnist"), opts)
	if err != nil {
		return nil, err
	}
	parts, err := s.partitionIID()
	if err != nil {
		return nil, err
	}
	f, err := unlearn.NewFederation(unlearn.Config{Client: s.clientConfig()}, parts)
	if err != nil {
		return nil, err
	}
	rounds := s.rounds
	if rounds < 2 {
		rounds = 2
	}
	if o == nil {
		o = obs.New(nil) // metrics-only: the phase counters still accumulate
	}
	before := make([]int64, len(enginePhases))
	for i, p := range enginePhases {
		before[i] = o.Counter("fed.phase_us." + p).Value()
	}
	start := time.Now()
	if err := f.Run(obs.NewContext(context.Background(), o), rounds, nil); err != nil {
		return nil, err
	}
	total := time.Since(start)
	res := &RoundResult{
		Dataset:    "mnist",
		Scale:      string(s.opts.Scale),
		Clients:    s.clients,
		Rounds:     rounds,
		TotalSec:   total.Seconds(),
		SecPerRnd:  total.Seconds() / float64(rounds),
		ModelSize:  len(f.Global()),
		TrainRows:  s.train.Len(),
		Aggregator: "fedavg",
	}
	for i, p := range enginePhases {
		sec := float64(o.Counter("fed.phase_us."+p).Value()-before[i]) / 1e6
		var share float64
		if total > 0 {
			share = sec / total.Seconds()
		}
		res.Phases = append(res.Phases, PhaseTiming{Phase: p, TotalSec: sec, Share: share})
	}
	return res, nil
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *PerfReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding perf report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("bench: writing perf report: %w", err)
	}
	return nil
}

// RenderText writes a human-readable summary of the report.
func (r *PerfReport) RenderText() string {
	tbl := Table{
		Title:   fmt.Sprintf("Kernel throughput (GOMAXPROCS=%d, %s/%s, %s)", r.GOMAXPROCS, r.GOOS, r.GOARCH, r.GoVersion),
		Columns: []string{"op", "shape", "serial GFLOP/s", "parallel GFLOP/s", "speedup"},
	}
	for _, k := range r.Kernels {
		tbl.Rows = append(tbl.Rows, []string{
			k.Op,
			fmt.Sprintf("%dx%dx%d", k.M, k.K, k.N),
			fmt.Sprintf("%.2f", k.SerialGFLOPS),
			fmt.Sprintf("%.2f", k.ParallelGFLOPS),
			fmt.Sprintf("%.2fx", k.Speedup),
		})
	}
	var out strings.Builder
	tbl.Render(&out)
	for _, rd := range r.Rounds {
		fmt.Fprintf(&out, "round engine: %s@%s, %d clients, %d rounds: %.3fs/round (%d params, %d rows)\n",
			rd.Dataset, rd.Scale, rd.Clients, rd.Rounds, rd.SecPerRnd, rd.ModelSize, rd.TrainRows)
		if len(rd.Phases) > 0 {
			out.WriteString("  phase breakdown:")
			for _, p := range rd.Phases {
				fmt.Fprintf(&out, " %s %.1f%%", p.Phase, p.Share*100)
			}
			out.WriteByte('\n')
		}
	}
	for _, e := range r.Experiments {
		fmt.Fprintf(&out, "experiment %s@%s: %.2fs end to end\n", e.ID, e.Scale, e.Seconds)
	}
	return out.String()
}
