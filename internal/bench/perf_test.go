package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goldfish/internal/data"
)

func TestRunPerfProducesReport(t *testing.T) {
	rep, err := RunPerf(PerfOptions{
		Options:       Options{Scale: data.ScaleTiny, Seed: 1},
		KernelMinTime: 2 * time.Millisecond, // keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Kernels) != 3*len(perfKernelShapes) {
		t.Fatalf("got %d kernel results, want %d", len(rep.Kernels), 3*len(perfKernelShapes))
	}
	for _, k := range rep.Kernels {
		if k.SerialGFLOPS <= 0 || k.ParallelGFLOPS <= 0 {
			t.Errorf("%s %dx%dx%d: non-positive GFLOP/s (%g serial, %g parallel)",
				k.Op, k.M, k.K, k.N, k.SerialGFLOPS, k.ParallelGFLOPS)
		}
		if k.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup %g", k.Op, k.Speedup)
		}
	}
	if len(rep.Rounds) != 1 {
		t.Fatalf("got %d round results, want 1", len(rep.Rounds))
	}
	rd := rep.Rounds[0]
	if rd.SecPerRnd <= 0 || rd.Clients <= 0 || rd.ModelSize <= 0 {
		t.Errorf("implausible round benchmark %+v", rd)
	}
	if rep.GOMAXPROCS <= 0 || rep.GoVersion == "" {
		t.Errorf("missing environment metadata: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH json does not round-trip: %v", err)
	}
	if len(back.Kernels) != len(rep.Kernels) {
		t.Errorf("round-trip lost kernel entries: %d vs %d", len(back.Kernels), len(rep.Kernels))
	}

	if rep.RenderText() == "" {
		t.Error("empty text rendering")
	}
}
