package bench

import (
	"context"
	"fmt"

	"goldfish/internal/baselines"
	"goldfish/internal/unlearn"
)

// RunFig4 regenerates Fig. 4: test-accuracy curves while retraining after a
// deletion request, comparing Goldfish ("ours") against B1 (retrain from
// scratch) and B2 (FIM-guided rapid retraining), one sub-figure per
// dataset/model combination.
func RunFig4(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	report := &Report{ID: "fig4", Title: "Accuracy while retraining after deletion (ours vs B1 vs B2)"}
	speed := Table{
		Title:   "Retraining speed: rounds to reach the half-way accuracy mark (lower is faster)",
		Columns: []string{"combo", "threshold", "ours", "B2", "B1"},
	}
	for _, c := range fig45Combos(opts.Scale) {
		fig, err := runFig4Combo(c, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", c.dataset, c.arch, err)
		}
		report.Figures = append(report.Figures, *fig)
		speed.Rows = append(speed.Rows, speedRow(fmt.Sprintf("%s/%s", c.dataset, c.arch), fig.Series))
	}
	report.Tables = append(report.Tables, speed)
	return report, nil
}

// speedRow summarizes a Fig. 4 sub-figure as rounds-to-threshold, where the
// threshold is half the best accuracy any method reaches — the paper's
// efficiency claim in one number per method.
func speedRow(combo string, series []Series) []string {
	best := 0.0
	for _, s := range series {
		for _, y := range s.Y {
			if y > best {
				best = y
			}
		}
	}
	threshold := best / 2
	row := []string{combo, fmt.Sprintf("%.3f", threshold)}
	for _, name := range []string{"ours", "B2", "B1"} {
		cell := "-"
		for _, s := range series {
			if s.Name != name {
				continue
			}
			for i, y := range s.Y {
				if y >= threshold {
					cell = fmt.Sprintf("%.0f", s.X[i])
					break
				}
			}
		}
		row = append(row, cell)
	}
	return row
}

func runFig4Combo(c comboSpec, opts Options) (*Figure, error) {
	s, err := newSetup(c.dataset, c.arch, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	parts, err := s.partitionIID()
	if err != nil {
		return nil, err
	}
	// Delete 5% of client 0's data (plain rows; Fig. 4 studies retraining
	// speed, not backdoors).
	n := parts[0].Len() / 20
	if n == 0 {
		n = 1
	}
	rows := s.rng.Perm(parts[0].Len())[:n]
	removed := map[int][]int{0: rows}

	// Train the pre-deletion global model; it becomes Goldfish's teacher.
	f, err := unlearn.NewFederation(unlearn.Config{Client: s.clientConfig()}, parts)
	if err != nil {
		return nil, err
	}
	if err := f.Run(ctx, s.rounds, nil); err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  fmt.Sprintf("Fig.4 %s (%s)", c.dataset, c.arch),
		XLabel: "retraining round",
		YLabel: "test accuracy",
	}

	// Ours: continue the federation through the unlearning rounds.
	if err := f.RequestDeletion(0, rows); err != nil {
		return nil, err
	}
	ours := Series{Name: "ours"}
	err = f.Run(ctx, s.rounds, func(rs unlearn.RoundStats) {
		acc, aerr := s.accuracy(rs.Global)
		if aerr != nil {
			err = aerr
			return
		}
		ours.X = append(ours.X, float64(len(ours.X)+1))
		ours.Y = append(ours.Y, acc)
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, ours)

	// B2: rapid retraining (preconditioned updates want a smaller LR).
	scB2 := s.scenario()
	scB2.Opt.LR = s.lr / 5
	b2 := Series{Name: "B2"}
	if _, err := baselines.RapidRetrain(ctx, scB2, parts, removed, s.rounds, func(round int, global []float64) {
		acc, aerr := s.accuracy(global)
		if aerr != nil {
			err = aerr
			return
		}
		b2.X = append(b2.X, float64(round+1))
		b2.Y = append(b2.Y, acc)
	}); err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, b2)

	// B1: retrain from scratch.
	b1 := Series{Name: "B1"}
	if _, err := baselines.RetrainFromScratch(ctx, s.scenario(), parts, removed, s.rounds, func(round int, global []float64) {
		acc, aerr := s.accuracy(global)
		if aerr != nil {
			err = aerr
			return
		}
		b1.X = append(b1.X, float64(round+1))
		b1.Y = append(b1.Y, acc)
	}); err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, b1)
	return fig, nil
}
