package bench

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"goldfish/internal/obs"
	"goldfish/internal/serve"
	"goldfish/internal/unlearn"
)

// This file is the unlearning-as-a-service SLO benchmark behind
// `goldfish-bench -exp serve -profile burst -json SLO_N.json`: a federation
// run with the deletion-request service attached, driven by one of the
// deterministic load profiles (internal/serve), reporting sustained request
// throughput and p50/p99 forgetting latency alongside the training outcome.
// The "serverless" profile runs the identical federation with no service at
// all — its training section is the byte-identity baseline CI holds the
// "idle" profile to, proving an unloaded service never perturbs training.

// ServeOptions configures a service SLO run.
type ServeOptions struct {
	Options
	// Profile is a load profile name from serve.ProfileNames, or
	// "serverless" for the no-service baseline (default "steady").
	Profile string
	// QueueCap is the service's ingest-queue bound (default 8, small
	// enough that the burst profile exercises backpressure).
	QueueCap int
	// RecoveryRounds is the service's recovery window (default 1).
	RecoveryRounds int
	// Observer, when set, receives the run's spans and instruments (a CLI
	// -trace/-obs attachment); nil uses a private metrics-only observer.
	Observer *obs.Observer
}

// ServeTraining is the training outcome, stated so two runs can be diffed
// for byte-identity (the idle-service-vs-serverless CI gate).
type ServeTraining struct {
	Rounds int `json:"rounds"`
	// FinalStateSHA256 digests the final global state vector bit-exactly.
	FinalStateSHA256 string  `json:"final_state_sha256"`
	TestAccuracy     float64 `json:"test_accuracy"`
}

// ServeRequestStats is the request-side half of the SLO report.
type ServeRequestStats struct {
	// Generated counts requests the load profile produced; Retried counts
	// backpressure retries of those (each rejected request re-enters at the
	// next boundary until accepted).
	Generated int64 `json:"generated"`
	Retried   int64 `json:"retried"`
	// Dropped counts generated requests the service refused outright
	// (validation, e.g. a row a class deletion already consumed).
	Dropped int64 `json:"dropped"`
	// Lifetime service counters (serve.Stats).
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
	Applied   int64 `json:"applied"`
	Recovered int64 `json:"recovered"`
	Failed    int64 `json:"failed"`
	// RequestsPerSec is accepted requests over the run's wall time — the
	// sustained ingest throughput under this profile.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// RoundsToForget / TimeToForgetMs are the settled forgetting-latency
	// quantiles (p50/p99, bucket resolution).
	RoundsToForget serve.Quantiles `json:"rounds_to_forget"`
	TimeToForgetMs serve.Quantiles `json:"time_to_forget_ms"`
}

// ServeReport is the machine-readable SLO artifact (SLO_*.json).
type ServeReport struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`

	Dataset        string  `json:"dataset"`
	Scale          string  `json:"scale"`
	Profile        string  `json:"profile"`
	QueueCap       int     `json:"queue_cap,omitempty"`
	RecoveryRounds int     `json:"recovery_rounds,omitempty"`
	WallSec        float64 `json:"wall_sec"`

	Training ServeTraining `json:"training"`
	// Requests is absent for the serverless baseline.
	Requests *ServeRequestStats `json:"requests,omitempty"`
}

// RunServe executes one service SLO run and assembles the report.
func RunServe(so ServeOptions) (*ServeReport, error) {
	opts := so.Options.withDefaults()
	if so.Profile == "" {
		so.Profile = "steady"
	}
	if so.QueueCap <= 0 {
		so.QueueCap = 8
	}
	if so.RecoveryRounds <= 0 {
		so.RecoveryRounds = 1
	}
	o := so.Observer
	if o == nil {
		o = obs.New(nil)
	}

	s, err := newSetup("mnist", archFor("mnist"), opts)
	if err != nil {
		return nil, err
	}
	parts, err := s.partitionIID()
	if err != nil {
		return nil, err
	}
	f, err := unlearn.NewFederation(unlearn.Config{Client: s.clientConfig()}, parts)
	if err != nil {
		return nil, err
	}
	rounds := s.rounds
	if rounds < 4 {
		rounds = 4 // enough boundaries for burst + backlog retry + recovery
	}

	rep := &ServeReport{
		SchemaVersion:  1,
		CreatedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Dataset:        "mnist",
		Scale:          string(s.opts.Scale),
		Profile:        so.Profile,
		RecoveryRounds: so.RecoveryRounds,
	}
	ctx := obs.NewContext(context.Background(), o)

	if so.Profile == "serverless" {
		start := time.Now()
		if err := f.Run(ctx, rounds, nil); err != nil {
			return nil, err
		}
		rep.WallSec = time.Since(start).Seconds()
		rep.Training, err = serveTraining(s, f, rounds)
		return rep, err
	}
	rep.QueueCap = so.QueueCap

	svc, err := serve.New(serve.Config{
		Federation:     f,
		QueueCap:       so.QueueCap,
		RecoveryRounds: so.RecoveryRounds,
		Observer:       o,
	})
	if err != nil {
		return nil, err
	}
	rowsPer := make([]int, len(parts))
	for i, p := range parts {
		rowsPer[i] = p.Len()
	}
	gen, err := serve.NewProfile(so.Profile, serve.ProfileConfig{
		Clients:       len(parts),
		RowsPerClient: rowsPer,
		Classes:       s.mcfg.Classes,
		Seed:          opts.Seed,
		// The burst overflows the queue by half its capacity, so the run
		// demonstrates both a full sustained queue and backpressure retry.
		BurstSize: so.QueueCap + (so.QueueCap+1)/2,
	})
	if err != nil {
		return nil, err
	}

	// The load generator composes with the service's own round hook: profile
	// arrivals (plus the backpressure backlog) are submitted first, then the
	// service drains the queue into the round's batch. New installed the
	// service hook; SetBeforeRound replaces it, so the closure must chain.
	var (
		backlog []serve.Request
		st      ServeRequestStats
	)
	f.SetBeforeRound(func(ctx context.Context, round int) error {
		arrivals := gen.Requests(round)
		st.Generated += int64(len(arrivals))
		pending := append(backlog, arrivals...)
		backlog = nil // rebuilt below; pending owns the old backing array
		for _, req := range pending {
			switch _, err := svc.Enqueue(req); {
			case errors.Is(err, serve.ErrQueueFull):
				backlog = append(backlog, req)
				st.Retried++
			case err != nil:
				st.Dropped++
			}
		}
		return svc.BeforeRound(ctx, round)
	})

	start := time.Now()
	if err := f.Run(ctx, rounds, nil); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	svc.Settle()

	stats := svc.Stats()
	st.Accepted = stats.Accepted
	st.Rejected = stats.Rejected
	st.Coalesced = stats.Coalesced
	st.Applied = stats.Applied
	st.Recovered = stats.Recovered
	st.Failed = stats.Failed
	st.RoundsToForget = stats.RoundsToForget
	st.TimeToForgetMs = stats.TimeToForgetMs
	if wall > 0 {
		st.RequestsPerSec = float64(stats.Accepted) / wall.Seconds()
	}
	rep.WallSec = wall.Seconds()
	rep.Requests = &st
	rep.Training, err = serveTraining(s, f, rounds)
	return rep, err
}

// serveTraining digests the run's training outcome.
func serveTraining(s *setup, f *unlearn.Federation, rounds int) (ServeTraining, error) {
	acc, err := s.accuracy(f.Global())
	if err != nil {
		return ServeTraining{}, err
	}
	return ServeTraining{
		Rounds:           rounds,
		FinalStateSHA256: stateDigest(f.Global()),
		TestAccuracy:     acc,
	}, nil
}

// stateDigest hashes a state vector bit-exactly (little-endian float64
// bits), so two training outcomes can be compared without shipping the
// vectors.
func stateDigest(state []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range state {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// WriteJSON writes the report, pretty-printed, to path.
func (r *ServeReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding serve report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("bench: writing serve report: %w", err)
	}
	return nil
}

// RenderText writes a human-readable SLO summary.
func (r *ServeReport) RenderText() string {
	var out strings.Builder
	fmt.Fprintf(&out, "serve SLO: profile %s on %s@%s, %d rounds in %.2fs\n",
		r.Profile, r.Dataset, r.Scale, r.Training.Rounds, r.WallSec)
	fmt.Fprintf(&out, "  training: accuracy %.2f%%, state %s\n",
		r.Training.TestAccuracy*100, r.Training.FinalStateSHA256[:12])
	if r.Requests == nil {
		out.WriteString("  requests: none (serverless baseline)\n")
		return out.String()
	}
	q := r.Requests
	fmt.Fprintf(&out, "  queue: cap %d, recovery %d rounds\n", r.QueueCap, r.RecoveryRounds)
	fmt.Fprintf(&out, "  requests: %d generated, %d accepted (%.1f/s), %d retried, %d rejected, %d dropped\n",
		q.Generated, q.Accepted, q.RequestsPerSec, q.Retried, q.Rejected, q.Dropped)
	fmt.Fprintf(&out, "  outcomes: %d coalesced, %d applied, %d recovered, %d failed\n",
		q.Coalesced, q.Applied, q.Recovered, q.Failed)
	fmt.Fprintf(&out, "  rounds-to-forget: p50 %.1f, p99 %.1f (n=%d)\n",
		q.RoundsToForget.P50, q.RoundsToForget.P99, q.RoundsToForget.Count)
	fmt.Fprintf(&out, "  time-to-forget: p50 %.1fms, p99 %.1fms\n",
		q.TimeToForgetMs.P50, q.TimeToForgetMs.P99)
	return out.String()
}
