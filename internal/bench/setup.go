package bench

import (
	"fmt"
	"math/rand"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/preset"
)

// defaultRates returns the deletion-rate sweep (percent). The paper sweeps
// {2,4,6,8,10,12}; reduced scales use a three-point subset to bound CPU
// time.
func defaultRates(scale data.Scale) []int {
	switch scale {
	case data.ScaleMedium, data.ScalePaper:
		return []int{2, 4, 6, 8, 10, 12}
	default:
		return []int{2, 6, 12}
	}
}

// archFor maps the paper's dataset→model pairing.
func archFor(dataset string) model.Arch { return preset.ArchFor(dataset) }

// setup bundles everything a backdoor-style experiment starts from.
type setup struct {
	opts    Options
	p       preset.Preset
	train   *data.Dataset
	test    *data.Dataset
	mcfg    model.Config
	lr      float64
	batch   int
	epochs  int
	rounds  int
	clients int
	rng     *rand.Rand
}

// newSetup generates data and resolves configurations for one dataset/arch
// pair.
func newSetup(dataset string, arch model.Arch, opts Options) (*setup, error) {
	opts = opts.withDefaults()
	p, err := preset.For(dataset, arch, opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.Rounds > 0 {
		p.Rounds = opts.Rounds
	}
	train, test, err := p.Generate()
	if err != nil {
		return nil, err
	}
	return &setup{
		opts:    opts,
		p:       p,
		train:   train,
		test:    test,
		mcfg:    p.Model,
		lr:      p.LR,
		batch:   p.Batch,
		epochs:  p.Epochs,
		rounds:  p.Rounds,
		clients: p.Clients,
		rng:     rand.New(rand.NewSource(opts.Seed * 31337)),
	}, nil
}

// clientConfig returns the Goldfish client configuration for this setup.
func (s *setup) clientConfig() core.Config { return s.p.ClientConfig() }

// partitionIID splits the training data across the setup's clients.
func (s *setup) partitionIID() ([]*data.Dataset, error) {
	return data.PartitionIID(s.train, s.clients, s.rng)
}

// evalNet loads a state vector into a fresh network of this setup's
// architecture.
func (s *setup) evalNet(state []float64) (*nn.Network, error) {
	net, err := model.Build(s.mcfg)
	if err != nil {
		return nil, err
	}
	if err := net.SetStateVector(state); err != nil {
		return nil, fmt.Errorf("bench: loading state: %w", err)
	}
	return net, nil
}

// accuracy evaluates a state vector on the test set.
func (s *setup) accuracy(state []float64) (float64, error) {
	net, err := s.evalNet(state)
	if err != nil {
		return 0, err
	}
	return metrics.Accuracy(net, s.test, 0), nil
}

// asr evaluates the backdoor attack success rate of a state vector.
func (s *setup) asr(state []float64, triggered *data.Dataset, target int) (float64, error) {
	net, err := s.evalNet(state)
	if err != nil {
		return 0, err
	}
	return metrics.AttackSuccessRate(net, triggered, target, 0), nil
}

// pct formats a fraction as a percentage with two decimals, matching the
// paper's tables.
func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }
