package bench

import (
	"context"
	"fmt"

	"goldfish/internal/data"
	"goldfish/internal/model"
	"goldfish/internal/unlearn"
)

// shardCounts returns the τ sweep of Fig. 6 at the given scale. The paper
// sweeps {1,3,6,9,12,15,18}; tiny data cannot feed 18 useful shards per
// client, so reduced scales drop the tail.
func shardCounts(scale data.Scale) []int {
	switch scale {
	case data.ScaleMedium, data.ScalePaper:
		return []int{1, 3, 6, 9, 12, 15, 18}
	default:
		return []int{1, 3, 6, 9, 12}
	}
}

// RunFig6 regenerates Fig. 6: single-client training convergence on the
// MNIST stand-in under different shard counts τ. The client's uploaded
// model is the Eq. 8 aggregate of its shard models.
func RunFig6(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	fig := Figure{
		Title:  "Fig.6 accuracy vs shard count (MNIST stand-in)",
		XLabel: "round",
		YLabel: "test accuracy",
	}
	for _, tau := range shardCounts(opts.Scale) {
		cfg := s.clientConfig()
		cfg.Shards = tau
		f, err := unlearn.NewFederation(unlearn.Config{Client: cfg}, []*data.Dataset{s.train})
		if err != nil {
			return nil, err
		}
		series := Series{Name: fmt.Sprintf("shards=%d", tau)}
		var accErr error
		if err := f.Run(ctx, s.rounds, func(rs unlearn.RoundStats) {
			acc, aerr := s.accuracy(rs.Global)
			if aerr != nil {
				accErr = aerr
				return
			}
			series.X = append(series.X, float64(rs.Round+1))
			series.Y = append(series.Y, acc)
		}); err != nil {
			return nil, err
		}
		if accErr != nil {
			return nil, accErr
		}
		fig.Series = append(fig.Series, series)
	}
	return &Report{ID: "fig6", Title: fig.Title, Figures: []Figure{fig}}, nil
}

// RunFig7 regenerates Fig. 7: accuracy around a deletion event at 2%, 6%
// and 10% deletion rates across shard counts. Deletion happens after round
// 3 (the paper's red dashed line); sharded clients retrain only the
// affected shards from their checkpoints.
func RunFig7(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	s, err := newSetup("mnist", model.ArchLeNet5, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	const deletionRound = 3
	taus := []int{1, 3, 6, 9}
	report := &Report{ID: "fig7", Title: "Accuracy around deletion for shard counts (deletion after round 3)"}
	for _, ratePct := range []int{2, 6, 10} {
		fig := Figure{
			Title:  fmt.Sprintf("Fig.7 deletion rate %d%%", ratePct),
			XLabel: "round",
			YLabel: "test accuracy",
		}
		for _, tau := range taus {
			cfg := s.clientConfig()
			cfg.Shards = tau
			train := s.train.Clone()
			f, err := unlearn.NewFederation(unlearn.Config{Client: cfg}, []*data.Dataset{train})
			if err != nil {
				return nil, err
			}
			series := Series{Name: fmt.Sprintf("shards=%d", tau)}
			record := func(rs unlearn.RoundStats) {
				acc, aerr := s.accuracy(rs.Global)
				if aerr != nil {
					err = aerr
					return
				}
				series.X = append(series.X, float64(len(series.X)+1))
				series.Y = append(series.Y, acc)
			}
			if rerr := f.Run(ctx, deletionRound, record); rerr != nil {
				return nil, rerr
			}
			if err != nil {
				return nil, err
			}
			// Delete ratePct% of the client's rows.
			n := train.Len() * ratePct / 100
			if n == 0 {
				n = 1
			}
			rows := s.rng.Perm(train.Len())[:n]
			if rerr := f.RequestDeletion(0, rows); rerr != nil {
				return nil, rerr
			}
			if rerr := f.Run(ctx, s.rounds-deletionRound+2, record); rerr != nil {
				return nil, rerr
			}
			if err != nil {
				return nil, err
			}
			fig.Series = append(fig.Series, series)
		}
		report.Figures = append(report.Figures, fig)
	}
	return report, nil
}
