package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/optim"
	"goldfish/internal/shard"
)

// buildModel constructs a network from a model configuration, wrapping
// errors with package context.
func buildModel(cfg model.Config) (*nn.Network, error) {
	net, err := model.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building model: %w", err)
	}
	return net, nil
}

// Client is one federation participant: it owns local data, the local
// model (or per-shard models when sharding is enabled), and the unlearning
// state machine of Algorithm 1. Client implements fed.LocalTrainer.
//
// A client is in one of three modes for a round:
//
//   - normal: plain local training on active data (LocalTraining procedure);
//   - unlearn: a deletion is pending — run the Goldfish procedure with
//     teacher = previous global, student = the (reinitialized) incoming
//     global, forget steps on Df;
//   - retrain: another client deleted data — rebuild the own model by
//     distilling from the previous global on own data (Goldfish procedure
//     with empty Df).
type Client struct {
	id  int
	cfg Config

	mu         sync.Mutex
	dataset    *data.Dataset
	removed    map[int]bool  // rows logically deleted from dataset
	pendingDf  *data.Dataset // removed data awaiting the unlearning round
	pendingIdx []int
	retrain    bool // participate in KD retraining next round

	student    *nn.Network
	teacher    *nn.Network
	shards     *shard.Manager
	lastGlobal []float64
	lastUpload []float64
	lastEpochs int
	rng        *rand.Rand
}

var _ fed.LocalTrainer = (*Client)(nil)

// NewClient builds a client over its local dataset.
func NewClient(id int, cfg Config, ds *data.Dataset) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: client %d has no local data", id)
	}
	mcfg := cfg.Model
	mcfg.Seed = cfg.Model.Seed + int64(id)*1009 + 7
	student, err := buildModel(mcfg)
	if err != nil {
		return nil, err
	}
	teacher, err := buildModel(mcfg)
	if err != nil {
		return nil, err
	}
	c := &Client{
		id:      id,
		cfg:     cfg,
		dataset: ds,
		removed: make(map[int]bool),
		student: student,
		teacher: teacher,
		rng:     rand.New(rand.NewSource(cfg.Seed*100003 + int64(id))),
	}
	if cfg.Shards > 1 {
		mgr, err := shard.NewManager(student, ds.Len(), cfg.Shards, c.rng)
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", id, err)
		}
		c.shards = mgr
	}
	return c, nil
}

// ID returns the client identifier.
func (c *Client) ID() int { return c.id }

// NumActive returns the number of local rows not logically removed.
func (c *Client) NumActive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dataset.Len() - len(c.removed)
}

// LastEpochs reports how many local epochs the most recent round actually
// ran (shorter than LocalEpochs when early termination fired).
func (c *Client) LastEpochs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastEpochs
}

// LastUpload returns a copy of the most recently uploaded model state, or
// nil before the first round.
func (c *Client) LastUpload() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.lastUpload...)
}

// RequestDeletion marks the given local rows for removal. The data is
// excluded from all future training immediately; the next TrainRound runs
// the Goldfish unlearning procedure against it. Already-removed and
// out-of-range rows are rejected.
func (c *Client) RequestDeletion(rows []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(rows) == 0 {
		return fmt.Errorf("core: client %d: empty deletion request", c.id)
	}
	for _, r := range rows {
		if r < 0 || r >= c.dataset.Len() {
			return fmt.Errorf("core: client %d: row %d out of range [0,%d)", c.id, r, c.dataset.Len())
		}
		if c.removed[r] {
			return fmt.Errorf("core: client %d: row %d already removed", c.id, r)
		}
	}
	df := c.dataset.Subset(rows)
	if c.pendingDf != nil {
		merged, err := c.pendingDf.Concat(df)
		if err != nil {
			return fmt.Errorf("core: client %d: merging deletion requests: %w", c.id, err)
		}
		c.pendingDf = merged
		c.pendingIdx = append(c.pendingIdx, rows...)
	} else {
		c.pendingDf = df
		c.pendingIdx = append([]int(nil), rows...)
	}
	for _, r := range rows {
		c.removed[r] = true
	}
	return nil
}

// MarkRetrain asks the client to participate in the distillation-based
// retraining triggered by another client's deletion (Algorithm 1 line 15).
func (c *Client) MarkRetrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retrain = true
}

// activeRowsLocked returns indices of rows not logically removed.
func (c *Client) activeRowsLocked() []int {
	out := make([]int, 0, c.dataset.Len()-len(c.removed))
	for i := 0; i < c.dataset.Len(); i++ {
		if !c.removed[i] {
			out = append(out, i)
		}
	}
	return out
}

// TrainRound implements fed.LocalTrainer: one round of the client side of
// Algorithm 1.
func (c *Client) TrainRound(ctx context.Context, round int, global []float64) (fed.ModelUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	teacherVec := c.lastGlobal
	c.lastGlobal = append([]float64(nil), global...)

	var (
		update fed.ModelUpdate
		err    error
	)
	if c.shards != nil {
		update, err = c.trainShardedLocked(ctx, round, teacherVec)
	} else {
		update, err = c.trainPlainLocked(ctx, round, global, teacherVec)
	}
	// The client is idle until the next round: drop every batch-sized
	// activation cache and scratch buffer so waiting clients pin no memory.
	c.student.ReleaseActivations()
	c.teacher.ReleaseActivations()
	if c.shards != nil {
		for i := 0; i < c.shards.NumShards(); i++ {
			c.shards.Shard(i).Model.ReleaseActivations()
		}
	}
	if err != nil {
		return fed.ModelUpdate{}, err
	}
	c.pendingDf = nil
	c.pendingIdx = nil
	c.retrain = false
	c.lastUpload = append([]float64(nil), update.Params...)
	return update, nil
}

// trainPlainLocked is the non-sharded client round.
func (c *Client) trainPlainLocked(ctx context.Context, round int, global, teacherVec []float64) (fed.ModelUpdate, error) {
	if err := c.student.SetStateVector(global); err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("core: client %d: loading global model: %w", c.id, err)
	}

	gl := c.cfg.Loss
	df := c.pendingDf
	unlearning := df != nil && df.Len() > 0
	distill := unlearning || c.retrain

	var teacher *nn.Network
	if teacherVec != nil {
		if err := c.teacher.SetStateVector(teacherVec); err != nil {
			return fed.ModelUpdate{}, fmt.Errorf("core: client %d: loading teacher model: %w", c.id, err)
		}
		teacher = c.teacher
	}
	if !distill || teacher == nil {
		// Algorithm 1's LocalTraining: plain hard-loss descent. Distillation
		// only runs in the Goldfish procedure (deletion rounds).
		gl.MuD = 0
	}

	drIdx := c.activeRowsLocked()
	if len(drIdx) == 0 {
		return fed.ModelUpdate{}, fmt.Errorf("core: client %d: no remaining data", c.id)
	}

	if unlearning && c.cfg.AdaptiveTemp && gl.MuD > 0 {
		gl.Temp = AdaptiveTemperature(c.cfg.TempAlpha, c.cfg.Loss.Temp, len(drIdx), df.Len())
	}

	var stopper *optim.EarlyStopper
	if c.cfg.EarlyDelta > 0 && teacher != nil {
		ref := EvalHardLoss(teacher, c.dataset, drIdx, gl.Hard, c.cfg.BatchSize)
		es, err := optim.NewEarlyStopper(c.cfg.EarlyDelta, ref)
		if err != nil {
			return fed.ModelUpdate{}, fmt.Errorf("core: client %d: %w", c.id, err)
		}
		stopper = es
	}

	opt, err := optim.NewSGD(c.cfg.Opt)
	if err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("core: client %d: %w", c.id, err)
	}
	var dfTrain *data.Dataset
	if unlearning {
		dfTrain = df
	}
	last, epochs, err := TrainLocal(ctx, c.student, teacher, c.dataset, drIdx, dfTrain,
		gl, opt, c.cfg.BatchSize, c.cfg.LocalEpochs, stopper, c.rng)
	if err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("core: client %d: round %d: %w", c.id, round, err)
	}
	c.lastEpochs = epochs

	return fed.ModelUpdate{
		ClientID:   c.id,
		Round:      round,
		Params:     c.student.StateVector(),
		NumSamples: len(drIdx),
		TrainLoss:  last.TotalLoss,
	}, nil
}

// trainShardedLocked is the SISA-sharded client round. Shard models persist
// locally across rounds; on deletion only affected shards retrain from
// their checkpoints (Eq. 9), and the upload is always the Eq. 8 aggregate.
// Early termination is not applied per shard (fixed LocalEpochs), matching
// the paper's treatment of sharding as an independent optimization.
func (c *Client) trainShardedLocked(ctx context.Context, round int, teacherVec []float64) (fed.ModelUpdate, error) {
	gl := c.cfg.Loss
	df := c.pendingDf
	unlearning := df != nil && df.Len() > 0

	var toTrain []int
	dfByShard := make(map[int]*data.Dataset)
	if unlearning {
		affected := c.shards.AffectedShards(c.pendingIdx)
		// Per-shard removed rows, captured before deletion.
		rm := make(map[int]bool, len(c.pendingIdx))
		for _, r := range c.pendingIdx {
			rm[r] = true
		}
		for _, si := range affected {
			var rows []int
			for _, idx := range c.shards.Shard(si).Indices {
				if rm[idx] {
					rows = append(rows, idx)
				}
			}
			dfByShard[si] = c.dataset.Subset(rows)
		}
		c.shards.DeleteSamples(c.pendingIdx)
		toTrain = affected
	} else {
		toTrain = make([]int, c.shards.NumShards())
		for i := range toTrain {
			toTrain[i] = i
		}
		gl.MuD = 0 // plain local training between deletions
	}

	var teacher *nn.Network
	if unlearning && teacherVec != nil && gl.MuD > 0 {
		if err := c.teacher.SetStateVector(teacherVec); err != nil {
			return fed.ModelUpdate{}, fmt.Errorf("core: client %d: loading teacher model: %w", c.id, err)
		}
		teacher = c.teacher
	} else {
		gl.MuD = 0
	}
	if unlearning && c.cfg.AdaptiveTemp && gl.MuD > 0 {
		gl.Temp = AdaptiveTemperature(c.cfg.TempAlpha, c.cfg.Loss.Temp,
			c.shards.TotalSamples(), df.Len())
	}

	seedBase := c.rng.Int63()
	err := c.shards.RetrainAffected(toTrain, func(shardIdx int, m *nn.Network, indices []int) error {
		if len(indices) == 0 {
			return nil // shard fully emptied by the deletion
		}
		opt, err := optim.NewSGD(c.cfg.Opt)
		if err != nil {
			return err
		}
		var shardTeacher *nn.Network
		if teacher != nil {
			shardTeacher = teacher.Clone() // layer caches are not goroutine-safe
		}
		shardDf := dfByShard[shardIdx]
		rng := rand.New(rand.NewSource(seedBase + int64(shardIdx)*131))
		_, _, err = TrainLocal(ctx, m, shardTeacher, c.dataset, indices, shardDf,
			gl, opt, c.cfg.BatchSize, c.cfg.LocalEpochs, nil, rng)
		return err
	})
	if err != nil {
		return fed.ModelUpdate{}, fmt.Errorf("core: client %d: round %d: %w", c.id, round, err)
	}
	c.lastEpochs = c.cfg.LocalEpochs

	return fed.ModelUpdate{
		ClientID:   c.id,
		Round:      round,
		Params:     c.shards.Aggregate(),
		NumSamples: c.shards.TotalSamples(),
	}, nil
}

// Shards exposes the shard manager (nil when sharding is disabled); the
// sharding experiments inspect it.
func (c *Client) Shards() *shard.Manager { return c.shards }
