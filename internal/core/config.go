// Package core implements the Goldfish federated-unlearning framework
// (paper §III, Algorithm 1). It wires the four modules together:
//
//   - basic model: teacher/student knowledge distillation, where the
//     previous global model teaches a freshly initialized student on the
//     remaining data only;
//   - loss function: the composite objective of internal/loss (hard +
//     confusion + distillation);
//   - optimization: early termination guided by excess empirical risk
//     (Eq. 7) and SISA data sharding (Eqs. 8–10, internal/shard);
//   - extension: adaptive distillation temperature (Eq. 11) and
//     adaptive-weight aggregation (Eqs. 12–13, internal/fed).
//
// Each Client owns one participant's local data, models and unlearning
// state. Client implements fed.LocalTrainer, so clients run unchanged over
// the in-process transport, the TCP transport, and the strategy-driven
// Federation of internal/unlearn (which owns the server side: round loop,
// aggregation, deletion broadcasts).
package core

import (
	"fmt"
	"math"

	"goldfish/internal/loss"
	"goldfish/internal/model"
	"goldfish/internal/optim"
)

// Config configures a Goldfish client (shared by every client of a
// federation).
type Config struct {
	// Model describes the architecture every participant trains.
	Model model.Config
	// Loss is the composite Goldfish objective.
	Loss loss.Goldfish
	// Opt configures local SGD (paper: η=0.001, β=0.9).
	Opt optim.SGDConfig
	// LocalEpochs is n, the local epochs per round. Must be positive.
	LocalEpochs int
	// BatchSize is the local mini-batch size (paper: 100). Must be
	// positive.
	BatchSize int
	// EarlyDelta is δ of Eq. 7; 0 disables early termination.
	EarlyDelta float64
	// AdaptiveTemp enables the Eq. 11 adaptive distillation temperature.
	AdaptiveTemp bool
	// TempAlpha is α of Eq. 11 (default 1 when AdaptiveTemp is set).
	TempAlpha float64
	// Shards is τ, the number of local data shards; values ≤ 1 disable
	// sharding.
	Shards int
	// Seed drives all client-local randomness.
	Seed int64
}

// DefaultConfig returns the paper's hyperparameters (§IV-A) on the given
// model: batch size 100, η=0.001, β=0.9, T=3, µd=1.0, µc=0.25.
func DefaultConfig(m model.Config) Config {
	return Config{
		Model:       m,
		Loss:        loss.NewGoldfish(),
		Opt:         optim.SGDConfig{LR: 0.001, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: 2,
		BatchSize:   100,
		EarlyDelta:  0,
		TempAlpha:   1,
		Shards:      1,
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Loss.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Opt.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.LocalEpochs <= 0 {
		return fmt.Errorf("core: LocalEpochs must be positive, got %d", c.LocalEpochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.EarlyDelta < 0 {
		return fmt.Errorf("core: negative EarlyDelta %g", c.EarlyDelta)
	}
	if c.AdaptiveTemp && c.TempAlpha <= 0 {
		return fmt.Errorf("core: AdaptiveTemp requires positive TempAlpha, got %g", c.TempAlpha)
	}
	return nil
}

// AdaptiveTemperature implements Eq. 11:
//
//	T = α·T0·exp(−|Dr| / (|Dr| + |Df|))
//
// clamped below at 1, since the paper notes soft labels degrade into hard
// labels at T ≤ 1.
func AdaptiveTemperature(alpha, t0 float64, numRemaining, numRemoved int) float64 {
	total := numRemaining + numRemoved
	if total == 0 {
		return math.Max(1, alpha*t0)
	}
	t := alpha * t0 * math.Exp(-float64(numRemaining)/float64(total))
	if t < 1 {
		return 1
	}
	return t
}
