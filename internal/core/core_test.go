package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/optim"
)

// testConfig returns a fast configuration for tiny synthetic data.
func testConfig(classes int) Config {
	return Config{
		Model:       model.Config{Arch: model.ArchMLP, InC: 1, InH: 12, InW: 12, Classes: classes, Seed: 1},
		Loss:        loss.NewGoldfish(),
		Opt:         optim.SGDConfig{LR: 0.1, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: 3,
		BatchSize:   32,
		TempAlpha:   1,
		Seed:        1,
	}
}

func tinyMNIST(t *testing.T) (train, test *data.Dataset) {
	t.Helper()
	spec, err := data.SpecMNIST(data.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(10).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := testConfig(10)
	bad.LocalEpochs = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 epochs accepted")
	}
	bad = testConfig(10)
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 batch accepted")
	}
	bad = testConfig(10)
	bad.EarlyDelta = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative delta accepted")
	}
	bad = testConfig(10)
	bad.AdaptiveTemp = true
	bad.TempAlpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("adaptive temp without alpha accepted")
	}
}

func TestAdaptiveTemperature(t *testing.T) {
	// Eq. 11 at |Dr|=90, |Df|=10: T = α·T0·exp(−0.9).
	got := AdaptiveTemperature(1, 3, 90, 10)
	want := 3 * math.Exp(-0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("T = %g, want %g", got, want)
	}
	// Clamped at 1 when the formula would sharpen labels.
	if got := AdaptiveTemperature(1, 1, 100, 1); got != 1 {
		t.Errorf("T = %g, want clamp at 1", got)
	}
	// Larger removed fraction raises the temperature (more smoothing).
	small := AdaptiveTemperature(1, 5, 95, 5)
	large := AdaptiveTemperature(1, 5, 50, 50)
	if large <= small {
		t.Errorf("T should grow with removed fraction: %g vs %g", small, large)
	}
	// Empty data falls back to α·T0 (clamped).
	if got := AdaptiveTemperature(1, 3, 0, 0); got != 3 {
		t.Errorf("empty data T = %g, want 3", got)
	}
}

func TestNewClientErrors(t *testing.T) {
	train, _ := tinyMNIST(t)
	if _, err := NewClient(0, testConfig(10), nil); err == nil {
		t.Error("nil dataset accepted")
	}
	bad := testConfig(10)
	bad.BatchSize = 0
	if _, err := NewClient(0, bad, train); err == nil {
		t.Error("invalid config accepted")
	}
	shardCfg := testConfig(10)
	shardCfg.Shards = 10_000 // more shards than samples
	if _, err := NewClient(0, shardCfg, train); err == nil {
		t.Error("impossible shard count accepted")
	}
}

func TestRequestDeletionValidation(t *testing.T) {
	train, _ := tinyMNIST(t)
	c, err := NewClient(0, testConfig(10), train)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RequestDeletion(nil); err == nil {
		t.Error("empty request accepted")
	}
	if err := c.RequestDeletion([]int{-1}); err == nil {
		t.Error("negative row accepted")
	}
	if err := c.RequestDeletion([]int{train.Len()}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := c.RequestDeletion([]int{0, 1, 2}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if c.NumActive() != train.Len()-3 {
		t.Errorf("NumActive = %d, want %d", c.NumActive(), train.Len()-3)
	}
	if err := c.RequestDeletion([]int{1}); err == nil {
		t.Error("double removal accepted")
	}
	// A second, distinct request merges.
	if err := c.RequestDeletion([]int{5}); err != nil {
		t.Fatalf("second request rejected: %v", err)
	}
	if c.NumActive() != train.Len()-4 {
		t.Errorf("NumActive = %d after merge, want %d", c.NumActive(), train.Len()-4)
	}
}

func TestShardedClientDeletion(t *testing.T) {
	train, test := tinyMNIST(t)
	cfg := testConfig(10)
	cfg.Shards = 6
	c, err := NewClient(0, cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() == nil || c.Shards().NumShards() != 6 {
		t.Fatal("shard manager not created")
	}

	ctx := context.Background()
	initNet, err := buildModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	global := initNet.StateVector()
	u, err := c.TrainRound(ctx, 0, global)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSamples != train.Len() {
		t.Errorf("NumSamples = %d, want %d", u.NumSamples, train.Len())
	}

	// Delete a handful of rows from one shard's territory.
	victim := c.Shards().Shard(2).Indices[:3]
	rows := append([]int(nil), victim...)
	if err := c.RequestDeletion(rows); err != nil {
		t.Fatal(err)
	}
	affected := c.Shards().AffectedShards(rows)
	if len(affected) != 1 || affected[0] != 2 {
		t.Fatalf("AffectedShards = %v, want [2]", affected)
	}
	u, err = c.TrainRound(ctx, 1, u.Params)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSamples != train.Len()-3 {
		t.Errorf("post-deletion NumSamples = %d, want %d", u.NumSamples, train.Len()-3)
	}
	// Removed rows must be gone from every shard.
	for si := 0; si < c.Shards().NumShards(); si++ {
		for _, idx := range c.Shards().Shard(si).Indices {
			for _, r := range rows {
				if idx == r {
					t.Fatal("removed row still present in a shard")
				}
			}
		}
	}
	// The aggregate must still be a working model.
	if err := initNet.SetStateVector(u.Params); err != nil {
		t.Fatal(err)
	}
	if acc := metrics.Accuracy(initNet, test, 0); acc < 0.15 {
		t.Errorf("sharded aggregate accuracy %g suspiciously low", acc)
	}
}

func TestTrainEpochAndEvalHardLoss(t *testing.T) {
	train, _ := tinyMNIST(t)
	cfg := testConfig(10)
	net, err := buildModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	before := EvalHardLoss(net, train, idx, cfg.Loss.Hard, cfg.BatchSize)
	opt, err := optim.NewSGD(cfg.Opt)
	if err != nil {
		t.Fatal(err)
	}
	gl := cfg.Loss
	gl.MuD = 0
	rng := rand.New(rand.NewSource(7))
	for e := 0; e < 3; e++ {
		if _, err := TrainEpoch(context.Background(), net, nil, train, idx, nil, gl, opt, cfg.BatchSize, rng); err != nil {
			t.Fatal(err)
		}
	}
	after := EvalHardLoss(net, train, idx, cfg.Loss.Hard, cfg.BatchSize)
	if after >= before {
		t.Errorf("training did not reduce loss: %g → %g", before, after)
	}
	if got := EvalHardLoss(net, train, nil, cfg.Loss.Hard, cfg.BatchSize); got != 0 {
		t.Errorf("EvalHardLoss on no rows = %g, want 0", got)
	}
}

// TestClientAsFedTrainer exercises Client through the generic fed.Coordinator,
// confirming the interfaces compose.
func TestClientAsFedTrainer(t *testing.T) {
	train, _ := tinyMNIST(t)
	parts, err := data.PartitionIID(train, 2, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(10)
	var trainers []fed.LocalTrainer
	for i, p := range parts {
		c, err := NewClient(i, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		trainers = append(trainers, c)
	}
	initNet, err := buildModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fed.NewCoordinator(fed.CoordinatorConfig{Rounds: 2}, initNet.StateVector(), trainers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// randSource is a tiny helper for tests that need a seeded RNG.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
