package core

import (
	"context"
	"fmt"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/nn"
)

// buildModel constructs a network from a model configuration, wrapping
// errors with package context.
func buildModel(cfg model.Config) (*nn.Network, error) {
	net, err := model.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building model: %w", err)
	}
	return net, nil
}

// FederationConfig configures the server side of Algorithm 1.
type FederationConfig struct {
	// Client is the configuration shared by all clients.
	Client Config
	// Aggregator combines uploads; nil selects FedAvg. Use
	// fed.AdaptiveWeight together with ServerTest for the paper's
	// extension-module aggregation.
	Aggregator fed.Aggregator
	// ServerTest, when set, is the central test set used to score uploaded
	// models (MSE of Eq. 12) before adaptive-weight aggregation.
	ServerTest *data.Dataset
	// MinClients is the minimum number of successful client updates per
	// round; fewer aborts the round. Defaults to 1.
	MinClients int
}

// RoundStats summarizes one completed federation round for callbacks.
type RoundStats struct {
	// Round is the completed round index (monotonic across Run calls).
	Round int
	// Global is the aggregated state vector (callbacks must copy to
	// retain).
	Global []float64
	// Updates are the client uploads aggregated this round.
	Updates []fed.ModelUpdate
	// Dropped lists client IDs whose local training failed this round.
	Dropped []int
	// UnlearningRound is true when this round processed deletion requests.
	UnlearningRound bool
}

// Federation orchestrates Goldfish clients: the Efficient Federated
// Unlearning Framework procedure of Algorithm 1. It is not safe for
// concurrent use; drive it from one goroutine.
type Federation struct {
	cfg     FederationConfig
	clients []*Client
	evalNet *nn.Network
	global  []float64
	round   int
	reinit  bool
	reseed  int64
	nextID  int
}

// NewFederation creates a federation with one client per dataset partition.
func NewFederation(cfg FederationConfig, parts []*data.Dataset) (*Federation, error) {
	if err := cfg.Client.Validate(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no client partitions")
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = fed.FedAvg{}
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.MinClients > len(parts) {
		return nil, fmt.Errorf("core: MinClients %d exceeds client count %d", cfg.MinClients, len(parts))
	}
	clients := make([]*Client, len(parts))
	for i, p := range parts {
		c, err := NewClient(i, cfg.Client, p)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	initNet, err := buildModel(cfg.Client.Model)
	if err != nil {
		return nil, err
	}
	evalNet, err := buildModel(cfg.Client.Model)
	if err != nil {
		return nil, err
	}
	return &Federation{
		cfg:     cfg,
		clients: clients,
		evalNet: evalNet,
		global:  initNet.StateVector(),
		reseed:  cfg.Client.Model.Seed,
		nextID:  len(clients),
	}, nil
}

// NumClients returns the number of participants.
func (f *Federation) NumClients() int { return len(f.clients) }

// Client returns participant i.
func (f *Federation) Client(i int) *Client { return f.clients[i] }

// Round returns the number of completed rounds.
func (f *Federation) Round() int { return f.round }

// Global returns a copy of the current global state vector.
func (f *Federation) Global() []float64 { return append([]float64(nil), f.global...) }

// GlobalNet returns a fresh network loaded with the current global state.
func (f *Federation) GlobalNet() (*nn.Network, error) {
	net, err := buildModel(f.cfg.Client.Model)
	if err != nil {
		return nil, err
	}
	if err := net.SetStateVector(f.global); err != nil {
		return nil, fmt.Errorf("core: loading global state: %w", err)
	}
	return net, nil
}

// RequestDeletion submits a deletion request for rows of a client's local
// dataset (Algorithm 1 lines 8–17): the target client unlearns with the
// Goldfish procedure, all other clients rebuild by distillation, and the
// global model is reinitialized before the next round.
func (f *Federation) RequestDeletion(clientID int, rows []int) error {
	if clientID < 0 || clientID >= len(f.clients) {
		return fmt.Errorf("core: client %d out of range [0,%d)", clientID, len(f.clients))
	}
	if err := f.clients[clientID].RequestDeletion(rows); err != nil {
		return err
	}
	for i, c := range f.clients {
		if i != clientID {
			c.MarkRetrain()
		}
	}
	f.reinit = true
	return nil
}

// Run executes n federation rounds, invoking onRound (may be nil) after
// each. It honours ctx cancellation.
func (f *Federation) Run(ctx context.Context, n int, onRound func(RoundStats)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: cancelled before round %d: %w", f.round, err)
		}
		if err := f.runRound(ctx, onRound); err != nil {
			return err
		}
	}
	return nil
}

func (f *Federation) runRound(ctx context.Context, onRound func(RoundStats)) error {
	unlearning := f.reinit
	if f.reinit {
		// Algorithm 1 line 12: reinitialize the global model before the
		// unlearning round so the student starts without knowledge of Df.
		f.reseed += 7919
		mcfg := f.cfg.Client.Model
		mcfg.Seed = f.reseed
		fresh, err := buildModel(mcfg)
		if err != nil {
			return err
		}
		f.global = fresh.StateVector()
		f.reinit = false
	}

	type result struct {
		update fed.ModelUpdate
		err    error
	}
	results := make([]result, len(f.clients))
	var wg sync.WaitGroup
	for i, c := range f.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			global := append([]float64(nil), f.global...)
			u, err := c.TrainRound(ctx, f.round, global)
			results[i] = result{update: u, err: err}
		}(i, c)
	}
	wg.Wait()

	updates := make([]fed.ModelUpdate, 0, len(results))
	var dropped []int
	for i, r := range results {
		if r.err != nil {
			dropped = append(dropped, i)
			continue
		}
		updates = append(updates, r.update)
	}
	if len(updates) < f.cfg.MinClients {
		return fmt.Errorf("core: round %d: only %d/%d clients succeeded (min %d)",
			f.round, len(updates), len(f.clients), f.cfg.MinClients)
	}

	if _, adaptive := f.cfg.Aggregator.(fed.AdaptiveWeight); adaptive && f.cfg.ServerTest != nil {
		for i := range updates {
			if err := f.evalNet.SetStateVector(updates[i].Params); err != nil {
				return fmt.Errorf("core: round %d: scoring client %d: %w", f.round, updates[i].ClientID, err)
			}
			updates[i].MSE = metrics.MSE(f.evalNet, f.cfg.ServerTest, f.cfg.Client.BatchSize)
		}
	}

	global, err := f.cfg.Aggregator.Aggregate(updates)
	if err != nil {
		return fmt.Errorf("core: round %d: %w", f.round, err)
	}
	f.global = global
	f.round++

	if onRound != nil {
		onRound(RoundStats{
			Round:           f.round - 1,
			Global:          global,
			Updates:         updates,
			Dropped:         dropped,
			UnlearningRound: unlearning,
		})
	}
	return nil
}

// TestAccuracy evaluates the current global model on a dataset.
func (f *Federation) TestAccuracy(test *data.Dataset) (float64, error) {
	if err := f.evalNet.SetStateVector(f.global); err != nil {
		return 0, fmt.Errorf("core: loading global state: %w", err)
	}
	return metrics.Accuracy(f.evalNet, test, 0), nil
}
