package core

import (
	"fmt"

	"goldfish/internal/data"
)

// Dynamic membership implements the paper's §V outlook ("clients may join
// or leave"): the federation accepts new participants between rounds and
// removes departing ones, with an optional full unlearning of the departing
// client's contribution.

// AddClient registers a new participant holding the given local dataset and
// returns its client ID (unique across the federation's lifetime, even after
// removals). The client joins from the next round onward; it receives the
// current global model like any other participant.
func (f *Federation) AddClient(ds *data.Dataset) (int, error) {
	id := f.nextID
	c, err := NewClient(id, f.cfg.Client, ds)
	if err != nil {
		return 0, err
	}
	f.clients = append(f.clients, c)
	f.nextID++
	return id, nil
}

// RemoveClient removes a participant from the federation. When unlearn is
// true the removal is treated as a deletion request for the client's entire
// remaining dataset (Algorithm 1's flow: the global model is reinitialized
// and every remaining client rebuilds by distillation), so the departed
// client's contribution is actively forgotten rather than merely no longer
// aggregated.
func (f *Federation) RemoveClient(clientID int, unlearn bool) error {
	if clientID < 0 || clientID >= len(f.clients) {
		return fmt.Errorf("core: client %d out of range [0,%d)", clientID, len(f.clients))
	}
	if len(f.clients) == 1 {
		return fmt.Errorf("core: cannot remove the last client")
	}
	f.clients = append(f.clients[:clientID], f.clients[clientID+1:]...)
	if f.cfg.MinClients > len(f.clients) {
		f.cfg.MinClients = len(f.clients)
	}
	if unlearn {
		for _, c := range f.clients {
			c.MarkRetrain()
		}
		f.reinit = true
	}
	return nil
}
