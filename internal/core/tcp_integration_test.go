package core

import (
	"context"
	"net"
	"testing"
	"time"

	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/metrics"
)

// TestGoldfishClientsOverTCP runs real Goldfish clients against the TCP
// federation server: the full stack — local training, gob wire protocol,
// FedAvg aggregation — end to end.
func TestGoldfishClientsOverTCP(t *testing.T) {
	train, test := tinyMNIST(t)
	parts, err := data.PartitionIID(train, 2, randSource(31))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(10)
	initNet, err := buildModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fed.NewServer(fed.ServerConfig{
		Rounds:       4,
		NumClients:   2,
		Initial:      initNet.StateVector(),
		RoundTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	serverDone := make(chan struct{})
	var final []float64
	var serveErr error
	go func() {
		defer close(serverDone)
		final, serveErr = srv.Serve(ctx, ln)
	}()

	addr := ln.Addr().String()
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			client, err := NewClient(i, cfg, parts[i])
			if err != nil {
				clientErrs <- err
				return
			}
			_, err = fed.RunClient(ctx, addr, client)
			clientErrs <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatalf("client failed: %v", err)
		}
	}
	<-serverDone
	if serveErr != nil {
		t.Fatalf("server failed: %v", serveErr)
	}
	if err := initNet.SetStateVector(final); err != nil {
		t.Fatal(err)
	}
	if acc := metrics.Accuracy(initNet, test, 0); acc < 0.3 {
		t.Errorf("TCP-federated accuracy %g too low after 4 rounds", acc)
	}
}
