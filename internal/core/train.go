package core

import (
	"context"
	"math/rand"

	"goldfish/internal/data"
	"goldfish/internal/loss"
	"goldfish/internal/nn"
	"goldfish/internal/optim"
	"goldfish/internal/tensor"
)

// EpochResult reports one local epoch of Goldfish training.
type EpochResult struct {
	// HardLoss is the mean hard-loss component over remaining-data batches,
	// the quantity the early-termination rule (Eq. 7) compares.
	HardLoss float64
	// TotalLoss is the mean full objective over remaining-data batches.
	TotalLoss float64
}

// TrainEpoch runs one epoch of the Goldfish local procedure on student:
// retain steps over the remaining rows (drIdx into ds) with optional
// distillation from teacher, followed by forget steps over df (may be nil
// or empty). It returns the epoch's mean losses.
//
// This is the inner loop of both the Goldfish procedure and the
// LocalTraining procedure of Algorithm 1 (the latter is the special case
// teacher == nil, df == nil). Baselines reuse it with their own settings.
func TrainEpoch(ctx context.Context, student, teacher *nn.Network, ds *data.Dataset, drIdx []int,
	df *data.Dataset, gl loss.Goldfish, opt *optim.SGD, batchSize int, rng *rand.Rand) (EpochResult, error) {

	var res EpochResult
	params := student.Params()

	batches := data.BatchIndices(len(drIdx), batchSize, rng)
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rows := make([]int, len(b))
		for i, j := range b {
			rows[i] = drIdx[j]
		}
		x := tensor.SliceRows(ds.X, rows)
		labels := ds.LabelsFor(rows)

		logits := student.Forward(x, true)
		hardLoss, grad := gl.Hard.Compute(logits, labels)
		total := hardLoss
		if teacher != nil && gl.MuD > 0 {
			tLogits := teacher.Forward(x, false)
			ld, gd := loss.Distillation(logits, tLogits, gl.Temp)
			total += gl.MuD * ld
			grad.AXPY(gl.MuD, gd)
		}
		student.ZeroGrads()
		student.Backward(grad)
		opt.Step(params)

		res.HardLoss += hardLoss
		res.TotalLoss += total
	}
	if len(batches) > 0 {
		res.HardLoss /= float64(len(batches))
		res.TotalLoss /= float64(len(batches))
	}

	if df != nil && df.Len() > 0 {
		fBatches := data.BatchIndices(df.Len(), batchSize, rng)
		for _, b := range fBatches {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			x := tensor.SliceRows(df.X, b)
			labels := df.LabelsFor(b)
			logits := student.Forward(x, true)
			_, grad := gl.ForgetStep(logits, labels)
			student.ZeroGrads()
			student.Backward(grad)
			opt.Step(params)
		}
	}
	return res, nil
}

// EvalHardLoss evaluates the mean hard loss of net over the given dataset
// rows in evaluation mode — L(ω) as used by the early-termination reference
// of Eq. 7.
func EvalHardLoss(net *nn.Network, ds *data.Dataset, idx []int, h loss.Hard, batchSize int) float64 {
	if len(idx) == 0 {
		return 0
	}
	batches := data.BatchIndices(len(idx), batchSize, nil)
	var total float64
	for _, b := range batches {
		rows := make([]int, len(b))
		for i, j := range b {
			rows[i] = idx[j]
		}
		x := tensor.SliceRows(ds.X, rows)
		logits := net.Forward(x, false)
		l, _ := h.Compute(logits, ds.LabelsFor(rows))
		total += l * float64(len(b))
	}
	return total / float64(len(idx))
}

// TrainLocal runs up to maxEpochs epochs of TrainEpoch with optional early
// termination (stopper may be nil). It returns the last epoch's result and
// the number of epochs actually run.
func TrainLocal(ctx context.Context, student, teacher *nn.Network, ds *data.Dataset, drIdx []int,
	df *data.Dataset, gl loss.Goldfish, opt *optim.SGD, batchSize, maxEpochs int,
	stopper *optim.EarlyStopper, rng *rand.Rand) (EpochResult, int, error) {

	var last EpochResult
	epochs := 0
	for e := 0; e < maxEpochs; e++ {
		res, err := TrainEpoch(ctx, student, teacher, ds, drIdx, df, gl, opt, batchSize, rng)
		if err != nil {
			return last, epochs, err
		}
		last = res
		epochs++
		if stopper != nil {
			stopper.Observe(res.HardLoss)
			if stopper.ShouldStop() {
				break
			}
		}
	}
	return last, epochs, nil
}
