package data

import (
	"fmt"
	"math/rand"
)

// BackdoorConfig describes a square-patch backdoor trigger, the probe the
// paper uses to verify unlearning (§IV-A, following Wu et al. [34]): a small
// bright patch in the image corner causes a poisoned model to predict
// TargetLabel.
type BackdoorConfig struct {
	// TargetLabel is the class the trigger should elicit.
	TargetLabel int
	// PatchSize is the side length of the trigger patch in pixels.
	PatchSize int
	// PatchValue is the pixel value written into the patch; it should sit
	// well outside the data's usual range to be salient (default 3).
	PatchValue float64
}

// DefaultBackdoor returns the configuration used across the experiments: a
// 3-pixel patch of value 3 targeting class 0.
func DefaultBackdoor() BackdoorConfig {
	return BackdoorConfig{TargetLabel: 0, PatchSize: 3, PatchValue: 3}
}

// Validate reports configuration errors against a dataset.
func (b BackdoorConfig) Validate(d *Dataset) error {
	_, h, w := d.Shape()
	if b.PatchSize <= 0 || b.PatchSize > h || b.PatchSize > w {
		return fmt.Errorf("data: patch size %d invalid for %dx%d images", b.PatchSize, h, w)
	}
	if b.TargetLabel < 0 || b.TargetLabel >= d.Classes {
		return fmt.Errorf("data: target label %d out of range [0,%d)", b.TargetLabel, d.Classes)
	}
	return nil
}

// stamp writes the trigger patch into sample row i of d (bottom-right
// corner, all channels).
func (b BackdoorConfig) stamp(d *Dataset, i int) {
	c, h, w := d.Shape()
	area := h * w
	base := i * c * area
	xd := d.X.Data()
	for ch := 0; ch < c; ch++ {
		for py := h - b.PatchSize; py < h; py++ {
			for px := w - b.PatchSize; px < w; px++ {
				xd[base+ch*area+py*w+px] = b.PatchValue
			}
		}
	}
}

// Poison stamps the trigger on a random fraction of d's samples in place,
// relabels them to TargetLabel, and returns the poisoned row indices (the
// deletion set Df of the backdoor experiments).
func (b BackdoorConfig) Poison(d *Dataset, frac float64, rng *rand.Rand) ([]int, error) {
	if err := b.Validate(d); err != nil {
		return nil, err
	}
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("data: poison fraction %g out of (0,1]", frac)
	}
	n := int(float64(d.Len()) * frac)
	if n == 0 {
		n = 1
	}
	perm := rng.Perm(d.Len())[:n]
	for _, i := range perm {
		b.stamp(d, i)
		d.Y[i] = b.TargetLabel
	}
	out := append([]int(nil), perm...)
	return out, nil
}

// TriggerCopy returns a copy of d with the trigger stamped on every sample
// and the original labels preserved. Samples whose true label equals
// TargetLabel are excluded, so attack success can be measured without
// counting samples that would be classified as the target anyway.
func (b BackdoorConfig) TriggerCopy(d *Dataset) (*Dataset, error) {
	if err := b.Validate(d); err != nil {
		return nil, err
	}
	keep := make([]int, 0, d.Len())
	for i, y := range d.Y {
		if y != b.TargetLabel {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("data: every sample has the target label %d", b.TargetLabel)
	}
	out := d.Subset(keep)
	for i := range out.Y {
		b.stamp(out, i)
	}
	return out, nil
}
