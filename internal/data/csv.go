package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export lets downstream users bring their own data into the
// framework (and inspect generated datasets). The format is one sample per
// record: the label followed by C·H·W pixel values in NCHW order.

// ToCSV writes the dataset as CSV: label, pixel0, pixel1, …
func (d *Dataset) ToCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	c, h, wd := d.Shape()
	rowLen := c * h * wd
	record := make([]string, 1+rowLen)
	xd := d.X.Data()
	for i := 0; i < d.Len(); i++ {
		record[0] = strconv.Itoa(d.Y[i])
		for j, v := range xd[i*rowLen : (i+1)*rowLen] {
			record[1+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("data: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flushing CSV: %w", err)
	}
	return nil
}

// FromCSV reads a dataset written by ToCSV (or produced externally in the
// same layout) with the given sample shape and class count.
func FromCSV(r io.Reader, channels, height, width, classes int) (*Dataset, error) {
	if channels <= 0 || height <= 0 || width <= 0 {
		return nil, fmt.Errorf("data: invalid sample shape %dx%dx%d", channels, height, width)
	}
	rowLen := channels * height * width
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 1 + rowLen

	var (
		pixels []float64
		labels []int
	)
	for line := 1; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV line %d: %w", line, err)
		}
		label, err := strconv.Atoi(record[0])
		if err != nil {
			return nil, fmt.Errorf("data: CSV line %d: bad label %q: %w", line, record[0], err)
		}
		labels = append(labels, label)
		for j, field := range record[1:] {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: CSV line %d, pixel %d: %w", line, j, err)
			}
			pixels = append(pixels, v)
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("data: empty CSV input")
	}
	x := newTensorNCHW(pixels, len(labels), channels, height, width)
	return NewDataset(x, labels, classes)
}
