package data

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"goldfish/internal/tensor"
)

func tinySet(t *testing.T, n, classes int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 1, 4, 4).RandNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	d, err := NewDataset(x, y, classes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	x := tensor.New(3, 1, 2, 2)
	if _, err := NewDataset(x, []int{0, 1}, 2); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := NewDataset(x, []int{0, 1, 5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := NewDataset(x.Reshape(3, 4), []int{0, 1, 0}, 2); err == nil {
		t.Error("non-NCHW tensor accepted")
	}
	if _, err := NewDataset(x, []int{0, 0, 0}, 1); err == nil {
		t.Error("single class accepted")
	}
}

func TestSubsetRemove(t *testing.T) {
	d := tinySet(t, 10, 3, 1)
	sub := d.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if sub.Y[1] != d.Y[2] {
		t.Error("Subset labels wrong")
	}
	rest := d.Remove([]int{0, 2, 4})
	if rest.Len() != 7 {
		t.Fatalf("Remove len = %d", rest.Len())
	}
	// Remove tolerates duplicates and out-of-range indices.
	rest2 := d.Remove([]int{0, 0, -1, 99})
	if rest2.Len() != 9 {
		t.Fatalf("Remove with junk indices len = %d, want 9", rest2.Len())
	}
}

func TestSubsetIsCopy(t *testing.T) {
	d := tinySet(t, 4, 2, 2)
	sub := d.Subset([]int{0})
	sub.X.Data()[0] = 999
	if d.X.Data()[0] == 999 {
		t.Error("Subset aliases parent data")
	}
}

func TestConcat(t *testing.T) {
	a := tinySet(t, 4, 3, 3)
	b := tinySet(t, 6, 3, 4)
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	bad := tinySet(t, 2, 5, 5)
	if _, err := a.Concat(bad); err == nil {
		t.Error("class mismatch accepted")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := tinySet(t, 20, 4, 6)
	// Tag each sample's first pixel with its label so pairing is checkable.
	for i := range d.Y {
		d.X.Data()[i*16] = float64(d.Y[i])
	}
	d.Shuffle(rand.New(rand.NewSource(7)))
	for i := range d.Y {
		if int(d.X.Data()[i*16]) != d.Y[i] {
			t.Fatal("Shuffle broke image/label pairing")
		}
	}
}

func TestBatchIndices(t *testing.T) {
	batches := BatchIndices(10, 3, nil)
	if len(batches) != 4 {
		t.Fatalf("10/3 should give 4 batches, got %d", len(batches))
	}
	if len(batches[3]) != 1 {
		t.Errorf("last batch len = %d, want 1", len(batches[3]))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("covered %d indices, want 10", len(seen))
	}
	if BatchIndices(0, 3, nil) != nil {
		t.Error("empty input should give nil")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := SpecMNIST(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	tr1, te1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !tr1.X.ApproxEqual(tr2.X, 0) || !te1.X.ApproxEqual(te2.X, 0) {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, name := range []string{"mnist", "fmnist", "cifar10", "cifar100"} {
		spec, err := SpecByName(name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		train, test, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if train.Len() != spec.Train || test.Len() != spec.Test {
			t.Errorf("%s: sizes %d/%d, want %d/%d", name, train.Len(), test.Len(), spec.Train, spec.Test)
		}
		c, h, w := train.Shape()
		if c != spec.Channels || h != spec.Size || w != spec.Size {
			t.Errorf("%s: shape %dx%dx%d, want %dx%dx%d", name, c, h, w, spec.Channels, spec.Size, spec.Size)
		}
		counts := train.ClassCounts()
		for class, n := range counts {
			if n == 0 {
				t.Errorf("%s: class %d has no samples", name, class)
			}
		}
	}
	if _, err := SpecByName("bogus", ScaleTiny); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := SpecMNIST(Scale("bogus")); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestGenerateClassesAreSeparable(t *testing.T) {
	// Same-class samples should on average be closer than cross-class ones;
	// this is the learnability property the substitution relies on.
	spec, err := SpecMNIST(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[int][]int{}
	for i, y := range train.Y {
		byClass[y] = append(byClass[y], i)
	}
	dist := func(i, j int) float64 {
		a := train.Subset([]int{i}).X
		b := train.Subset([]int{j}).X
		return a.Sub(b).L2Norm()
	}
	var same, cross float64
	var ns, nc int
	for c := 0; c < 4; c++ {
		idx := byClass[c]
		other := byClass[c+4]
		for k := 0; k+1 < len(idx) && k < 8; k += 2 {
			same += dist(idx[k], idx[k+1])
			ns++
		}
		for k := 0; k < len(idx) && k < len(other) && k < 8; k++ {
			cross += dist(idx[k], other[k])
			nc++
		}
	}
	if ns == 0 || nc == 0 {
		t.Skip("not enough samples per class")
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Errorf("intra-class distance %g not below inter-class %g", same/float64(ns), cross/float64(nc))
	}
}

func TestPartitionIID(t *testing.T) {
	d := tinySet(t, 103, 5, 8)
	parts, err := PartitionIID(d, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() < 20 || p.Len() > 21 {
			t.Errorf("part size %d not near-equal", p.Len())
		}
	}
	if total != 103 {
		t.Errorf("parts cover %d samples, want 103", total)
	}
	if _, err := PartitionIID(d, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := PartitionIID(tinySet(t, 2, 2, 9), 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("more parts than samples accepted")
	}
}

func TestPartitionHeterogeneous(t *testing.T) {
	d := tinySet(t, 400, 5, 10)
	rng := rand.New(rand.NewSource(2))
	parts, err := PartitionHeterogeneous(d, 8, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		if p.Len() == 0 {
			t.Error("empty partition")
		}
		total += p.Len()
	}
	if total != 400 {
		t.Errorf("parts cover %d samples, want 400", total)
	}
	// Heterogeneous split must be more uneven than the IID split.
	iid, err := PartitionIID(d, 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if SizeVariance(parts) <= SizeVariance(iid) {
		t.Errorf("heterogeneous variance %g not above IID variance %g",
			SizeVariance(parts), SizeVariance(iid))
	}
	if _, err := PartitionHeterogeneous(d, 8, 0, rng); err == nil {
		t.Error("skew=0 accepted")
	}
	if _, err := PartitionHeterogeneous(d, 8, 1.5, rng); err == nil {
		t.Error("skew>1 accepted")
	}
}

// Property: every partition method covers all indices exactly once.
func TestQuickShardIndicesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		shards := 1 + rng.Intn(9)
		parts, err := ShardIndices(n, shards, rng)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		count := 0
		for _, shard := range parts {
			for _, i := range shard {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShardIndicesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ShardIndices(5, 0, rng); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := ShardIndices(2, 5, rng); err == nil {
		t.Error("more shards than samples accepted")
	}
}

func TestBackdoorPoison(t *testing.T) {
	d := tinySet(t, 50, 4, 11)
	cfg := BackdoorConfig{TargetLabel: 2, PatchSize: 2, PatchValue: 9}
	idx, err := cfg.Poison(d, 0.2, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 {
		t.Fatalf("poisoned %d samples, want 10", len(idx))
	}
	for _, i := range idx {
		if d.Y[i] != 2 {
			t.Error("poisoned sample not relabelled")
		}
		// Bottom-right 2x2 patch must be PatchValue.
		if d.X.At(i, 0, 3, 3) != 9 || d.X.At(i, 0, 2, 2) != 9 {
			t.Error("trigger patch not stamped")
		}
	}
	if _, err := cfg.Poison(d, 0, rand.New(rand.NewSource(4))); err == nil {
		t.Error("0 fraction accepted")
	}
	bad := BackdoorConfig{TargetLabel: 9, PatchSize: 2}
	if _, err := bad.Poison(d, 0.1, rand.New(rand.NewSource(4))); err == nil {
		t.Error("invalid target label accepted")
	}
}

func TestBackdoorTriggerCopy(t *testing.T) {
	d := tinySet(t, 30, 3, 12)
	cfg := BackdoorConfig{TargetLabel: 1, PatchSize: 2, PatchValue: 5}
	trig, err := cfg.TriggerCopy(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range trig.Y {
		if y == 1 {
			t.Error("target-label sample not excluded")
		}
		if trig.X.At(i, 0, 3, 3) != 5 {
			t.Error("trigger not stamped on copy")
		}
	}
	// Original untouched.
	for i := 0; i < d.Len(); i++ {
		if d.X.At(i, 0, 3, 3) == 5 && d.X.At(i, 0, 2, 2) == 5 {
			t.Error("TriggerCopy mutated the source dataset")
		}
	}
}

func TestClassCounts(t *testing.T) {
	d := tinySet(t, 40, 4, 13)
	counts := d.ClassCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 40 {
		t.Errorf("counts sum to %d, want 40", total)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := tinySet(t, 12, 3, 31)
	var buf bytes.Buffer
	if err := d.ToCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := FromCSV(&buf, 1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip len %d, want %d", got.Len(), d.Len())
	}
	if !got.X.ApproxEqual(d.X, 0) {
		t.Error("pixels differ after CSV round trip")
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Fatal("labels differ after CSV round trip")
		}
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader(""), 1, 2, 2, 2); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FromCSV(strings.NewReader("0,1,2,3,4"), 0, 2, 2, 2); err == nil {
		t.Error("invalid shape accepted")
	}
	// Wrong field count.
	if _, err := FromCSV(strings.NewReader("0,1,2\n"), 1, 2, 2, 2); err == nil {
		t.Error("short record accepted")
	}
	// Bad label.
	if _, err := FromCSV(strings.NewReader("x,1,2,3,4\n"), 1, 2, 2, 2); err == nil {
		t.Error("non-integer label accepted")
	}
	// Bad pixel.
	if _, err := FromCSV(strings.NewReader("0,1,zz,3,4\n"), 1, 2, 2, 2); err == nil {
		t.Error("non-numeric pixel accepted")
	}
	// Label out of class range surfaces through NewDataset.
	if _, err := FromCSV(strings.NewReader("9,1,2,3,4\n"), 1, 2, 2, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
}

// Property: Dirichlet partitions cover every row exactly once, for a sweep
// of seeds, part counts, and alphas.
func TestQuickPartitionDirichletCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 2 + rng.Intn(6)
		alpha := []float64{0.05, 0.3, 1, 10}[rng.Intn(4)]
		d := tinySet(t, parts*10+rng.Intn(40), 5, seed)
		out, err := PartitionDirichlet(d, parts, alpha, rng)
		if err != nil {
			return false
		}
		total := 0
		for _, p := range out {
			if p.Len() == 0 {
				return false
			}
			total += p.Len()
		}
		if total != d.Len() {
			return false
		}
		// Reconstruct the global histogram: coverage is exactly once iff the
		// partition histograms sum to the dataset's.
		sum := make([]int, d.Classes)
		for _, p := range out {
			for c, n := range p.ClassCounts() {
				sum[c] += n
			}
		}
		global := d.ClassCounts()
		for c := range sum {
			if sum[c] != global[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDirichletDeterministic(t *testing.T) {
	d := tinySet(t, 200, 6, 11)
	for _, alpha := range []float64{0.1, 1, 5} {
		a, err := PartitionDirichlet(d, 4, alpha, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := PartitionDirichlet(d, 4, alpha, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].Len() != b[i].Len() {
				t.Fatalf("alpha %g: partition %d sizes differ: %d vs %d", alpha, i, a[i].Len(), b[i].Len())
			}
			for j := range a[i].Y {
				if a[i].Y[j] != b[i].Y[j] {
					t.Fatalf("alpha %g: partition %d row %d differs", alpha, i, j)
				}
			}
			if !bytes.Equal(float64Bytes(a[i].X.Data()), float64Bytes(b[i].X.Data())) {
				t.Fatalf("alpha %g: partition %d pixels differ", alpha, i)
			}
		}
		// A distinct seed must produce a different split (overwhelmingly).
		c, err := PartitionDirichlet(d, 4, alpha, rand.New(rand.NewSource(43)))
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i].Len() != c[i].Len() {
				same = false
				break
			}
			for j := range a[i].Y {
				if a[i].Y[j] != c[i].Y[j] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("alpha %g: seeds 42 and 43 produced identical splits", alpha)
		}
	}
}

// Shrinking alpha must increase label skew: compare the mean LabelSkew over
// several seeds at alpha=10 (near IID) vs alpha=0.05 (heavily concentrated).
func TestPartitionDirichletSkewGrowsAsAlphaShrinks(t *testing.T) {
	d := tinySet(t, 400, 8, 3)
	mean := func(alpha float64) float64 {
		var total float64
		const runs = 8
		for s := int64(0); s < runs; s++ {
			parts, err := PartitionDirichlet(d, 5, alpha, rand.New(rand.NewSource(100+s)))
			if err != nil {
				t.Fatal(err)
			}
			total += LabelSkew(d, parts)
		}
		return total / runs
	}
	wide := mean(10)
	narrow := mean(0.05)
	if narrow <= wide {
		t.Errorf("skew did not grow as alpha shrank: alpha=0.05 → %.4f, alpha=10 → %.4f", narrow, wide)
	}
	// And the gap should be substantial, not noise.
	if narrow < wide+0.1 {
		t.Errorf("skew gap too small: alpha=0.05 → %.4f, alpha=10 → %.4f", narrow, wide)
	}
}

func TestPartitionDirichletErrors(t *testing.T) {
	d := tinySet(t, 20, 3, 1)
	if _, err := PartitionDirichlet(d, 0, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := PartitionDirichlet(d, 3, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := PartitionDirichlet(d, 3, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := PartitionDirichlet(d, 30, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("more parts than samples accepted")
	}
}

func TestRowsOfClass(t *testing.T) {
	d := tinySet(t, 50, 4, 9)
	for c := 0; c < d.Classes; c++ {
		rows := d.RowsOfClass(c)
		for i, r := range rows {
			if d.Y[r] != c {
				t.Fatalf("class %d: row %d has label %d", c, r, d.Y[r])
			}
			if i > 0 && rows[i-1] >= r {
				t.Fatalf("class %d: rows not ascending: %v", c, rows)
			}
		}
		if len(rows) != d.ClassCounts()[c] {
			t.Errorf("class %d: %d rows, histogram says %d", c, len(rows), d.ClassCounts()[c])
		}
	}
}

// float64Bytes views a float slice as raw bytes for exact comparison.
func float64Bytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}
