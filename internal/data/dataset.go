// Package data provides the dataset substrate for the Goldfish
// reproduction: a labelled image container, deterministic synthetic vision
// datasets standing in for MNIST / Fashion-MNIST / CIFAR-10 / CIFAR-100
// (this module is offline; see DESIGN.md §4 for the substitution argument),
// IID and heterogeneous client partitioning, batching, and the backdoor
// trigger machinery the paper uses to probe unlearning.
package data

import (
	"fmt"
	"math/rand"

	"goldfish/internal/tensor"
)

// Dataset is a labelled image set in NCHW layout. X has shape
// (N, C, H, W) and Y holds the class label of each row.
type Dataset struct {
	X       *tensor.Tensor
	Y       []int
	Classes int
}

// NewDataset validates and wraps the given tensors.
func NewDataset(x *tensor.Tensor, y []int, classes int) (*Dataset, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("data: X must be NCHW, got %v", x.Shape())
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("data: %d images but %d labels", x.Dim(0), len(y))
	}
	if classes < 2 {
		return nil, fmt.Errorf("data: need ≥2 classes, got %d", classes)
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("data: label[%d]=%d out of range [0,%d)", i, label, classes)
		}
	}
	return &Dataset{X: x, Y: y, Classes: classes}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Shape returns (channels, height, width) of one sample.
func (d *Dataset) Shape() (c, h, w int) { return d.X.Dim(1), d.X.Dim(2), d.X.Dim(3) }

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		X:       d.X.Clone(),
		Y:       append([]int(nil), d.Y...),
		Classes: d.Classes,
	}
}

// Subset returns a new dataset containing the selected rows (copied).
// Indices may repeat; they must be in range.
func (d *Dataset) Subset(idx []int) *Dataset {
	y := make([]int, len(idx))
	for i, r := range idx {
		y[i] = d.Y[r]
	}
	return &Dataset{X: tensor.SliceRows(d.X, idx), Y: y, Classes: d.Classes}
}

// Remove returns a new dataset without the given rows. Out-of-range and
// duplicate indices are ignored.
func (d *Dataset) Remove(idx []int) *Dataset {
	drop := make(map[int]bool, len(idx))
	for _, r := range idx {
		if r >= 0 && r < d.Len() {
			drop[r] = true
		}
	}
	keep := make([]int, 0, d.Len()-len(drop))
	for i := 0; i < d.Len(); i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return d.Subset(keep)
}

// Concat appends other's samples to d's, returning a new dataset. Sample
// shapes and class counts must match.
func (d *Dataset) Concat(other *Dataset) (*Dataset, error) {
	if d.Classes != other.Classes {
		return nil, fmt.Errorf("data: class count mismatch %d vs %d", d.Classes, other.Classes)
	}
	c1, h1, w1 := d.Shape()
	c2, h2, w2 := other.Shape()
	if c1 != c2 || h1 != h2 || w1 != w2 {
		return nil, fmt.Errorf("data: sample shape mismatch %dx%dx%d vs %dx%dx%d", c1, h1, w1, c2, h2, w2)
	}
	y := make([]int, 0, d.Len()+other.Len())
	y = append(y, d.Y...)
	y = append(y, other.Y...)
	return &Dataset{X: tensor.Concat(d.X, other.X), Y: y, Classes: d.Classes}, nil
}

// Shuffle permutes the dataset in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	perm := rng.Perm(d.Len())
	d.X = tensor.SliceRows(d.X, perm)
	y := make([]int, len(perm))
	for i, p := range perm {
		y[i] = d.Y[p]
	}
	d.Y = y
}

// BatchIndices splits [0,n) into shuffled batches of at most batchSize.
// The final batch may be smaller. rng may be nil for sequential order.
func BatchIndices(n, batchSize int, rng *rand.Rand) [][]int {
	if n <= 0 || batchSize <= 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var out [][]int
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		out = append(out, order[start:end])
	}
	return out
}

// LabelsFor returns the labels of the given rows.
func (d *Dataset) LabelsFor(idx []int) []int {
	out := make([]int, len(idx))
	for i, r := range idx {
		out[i] = d.Y[r]
	}
	return out
}

// RowsOfClass returns the (ascending) indices of all rows labelled class.
func (d *Dataset) RowsOfClass(class int) []int {
	var out []int
	for i, y := range d.Y {
		if y == class {
			out = append(out, i)
		}
	}
	return out
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// newTensorNCHW wraps a flat pixel slice as an NCHW tensor (helper for the
// CSV importer).
func newTensorNCHW(pixels []float64, n, c, h, w int) *tensor.Tensor {
	return tensor.FromSlice(pixels, n, c, h, w)
}
