package data

import (
	"fmt"
	"math/rand"

	"goldfish/internal/stats"
)

// PartitionIID splits the dataset uniformly at random into parts of (nearly)
// equal size, mirroring the paper's "uniformly assigned the data ... to all
// clients" setup.
func PartitionIID(d *Dataset, parts int, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: need ≥1 partition, got %d", parts)
	}
	if d.Len() < parts {
		return nil, fmt.Errorf("data: cannot split %d samples into %d parts", d.Len(), parts)
	}
	perm := rng.Perm(d.Len())
	out := make([]*Dataset, parts)
	base := d.Len() / parts
	rem := d.Len() % parts
	off := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = d.Subset(perm[off : off+size])
		off += size
	}
	return out, nil
}

// PartitionHeterogeneous splits the dataset into parts with uneven sizes and
// skewed label distributions, the paper's Fig. 8 / Table XII setting.
// skew ∈ (0,1]: 1 keeps the split almost IID, values near 0 concentrate
// sizes and classes heavily.
func PartitionHeterogeneous(d *Dataset, parts int, skew float64, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: need ≥1 partition, got %d", parts)
	}
	if skew <= 0 || skew > 1 {
		return nil, fmt.Errorf("data: skew must be in (0,1], got %g", skew)
	}
	if d.Len() < parts {
		return nil, fmt.Errorf("data: cannot split %d samples into %d parts", d.Len(), parts)
	}

	// Uneven part weights: w_i ∝ skew + (1−skew)·U[0,1)³. Cubing drives
	// weights apart as skew → 0.
	weights := make([]float64, parts)
	var wsum float64
	for i := range weights {
		u := rng.Float64()
		weights[i] = skew + (1-skew)*u*u*u
		wsum += weights[i]
	}

	// Per-part class preference: each part prefers a random subset of
	// classes; with small skew, off-preference classes are heavily
	// downweighted.
	pref := make([][]float64, parts)
	for i := range pref {
		pref[i] = make([]float64, d.Classes)
		for c := range pref[i] {
			if rng.Float64() < 0.3 {
				pref[i][c] = 1
			} else {
				pref[i][c] = skew
			}
		}
	}

	// Assign each sample to a part with probability ∝ weight · preference.
	idx := make([][]int, parts)
	probs := make([]float64, parts)
	for s := 0; s < d.Len(); s++ {
		var total float64
		for i := 0; i < parts; i++ {
			probs[i] = weights[i] * pref[i][d.Y[s]]
			total += probs[i]
		}
		r := rng.Float64() * total
		chosen := parts - 1
		for i := 0; i < parts; i++ {
			if r < probs[i] {
				chosen = i
				break
			}
			r -= probs[i]
		}
		idx[chosen] = append(idx[chosen], s)
	}

	// Guarantee non-empty parts by stealing from the largest.
	for i := range idx {
		for len(idx[i]) == 0 {
			largest := 0
			for j := range idx {
				if len(idx[j]) > len(idx[largest]) {
					largest = j
				}
			}
			if len(idx[largest]) <= 1 {
				return nil, fmt.Errorf("data: not enough samples to populate %d parts", parts)
			}
			n := len(idx[largest])
			idx[i] = append(idx[i], idx[largest][n-1])
			idx[largest] = idx[largest][:n-1]
		}
	}

	out := make([]*Dataset, parts)
	for i := range idx {
		out[i] = d.Subset(idx[i])
	}
	return out, nil
}

// SizeVariance returns the variance of partition sizes, the heterogeneity
// statistic of the paper's Table XII.
func SizeVariance(parts []*Dataset) float64 {
	sizes := make([]float64, len(parts))
	for i, p := range parts {
		sizes[i] = float64(p.Len())
	}
	return stats.PopulationVariance(sizes)
}

// ShardIndices partitions [0,n) into `shards` contiguous-free random shards
// of near-equal size (SISA-style, paper Fig. 2). Every index appears in
// exactly one shard.
func ShardIndices(n, shards int, rng *rand.Rand) ([][]int, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("data: need ≥1 shard, got %d", shards)
	}
	if n < shards {
		return nil, fmt.Errorf("data: cannot shard %d samples into %d shards", n, shards)
	}
	perm := rng.Perm(n)
	out := make([][]int, shards)
	base := n / shards
	rem := n % shards
	off := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}
