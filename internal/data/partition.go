package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"goldfish/internal/stats"
)

// PartitionIID splits the dataset uniformly at random into parts of (nearly)
// equal size, mirroring the paper's "uniformly assigned the data ... to all
// clients" setup.
func PartitionIID(d *Dataset, parts int, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: need ≥1 partition, got %d", parts)
	}
	if d.Len() < parts {
		return nil, fmt.Errorf("data: cannot split %d samples into %d parts", d.Len(), parts)
	}
	perm := rng.Perm(d.Len())
	out := make([]*Dataset, parts)
	base := d.Len() / parts
	rem := d.Len() % parts
	off := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = d.Subset(perm[off : off+size])
		off += size
	}
	return out, nil
}

// PartitionHeterogeneous splits the dataset into parts with uneven sizes and
// skewed label distributions, the paper's Fig. 8 / Table XII setting.
// skew ∈ (0,1]: 1 keeps the split almost IID, values near 0 concentrate
// sizes and classes heavily.
func PartitionHeterogeneous(d *Dataset, parts int, skew float64, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: need ≥1 partition, got %d", parts)
	}
	if skew <= 0 || skew > 1 {
		return nil, fmt.Errorf("data: skew must be in (0,1], got %g", skew)
	}
	if d.Len() < parts {
		return nil, fmt.Errorf("data: cannot split %d samples into %d parts", d.Len(), parts)
	}

	// Uneven part weights: w_i ∝ skew + (1−skew)·U[0,1)³. Cubing drives
	// weights apart as skew → 0.
	weights := make([]float64, parts)
	var wsum float64
	for i := range weights {
		u := rng.Float64()
		weights[i] = skew + (1-skew)*u*u*u
		wsum += weights[i]
	}

	// Per-part class preference: each part prefers a random subset of
	// classes; with small skew, off-preference classes are heavily
	// downweighted.
	pref := make([][]float64, parts)
	for i := range pref {
		pref[i] = make([]float64, d.Classes)
		for c := range pref[i] {
			if rng.Float64() < 0.3 {
				pref[i][c] = 1
			} else {
				pref[i][c] = skew
			}
		}
	}

	// Assign each sample to a part with probability ∝ weight · preference.
	idx := make([][]int, parts)
	probs := make([]float64, parts)
	for s := 0; s < d.Len(); s++ {
		var total float64
		for i := 0; i < parts; i++ {
			probs[i] = weights[i] * pref[i][d.Y[s]]
			total += probs[i]
		}
		r := rng.Float64() * total
		chosen := parts - 1
		for i := 0; i < parts; i++ {
			if r < probs[i] {
				chosen = i
				break
			}
			r -= probs[i]
		}
		idx[chosen] = append(idx[chosen], s)
	}

	// Guarantee non-empty parts by stealing from the largest.
	for i := range idx {
		for len(idx[i]) == 0 {
			largest := 0
			for j := range idx {
				if len(idx[j]) > len(idx[largest]) {
					largest = j
				}
			}
			if len(idx[largest]) <= 1 {
				return nil, fmt.Errorf("data: not enough samples to populate %d parts", parts)
			}
			n := len(idx[largest])
			idx[i] = append(idx[i], idx[largest][n-1])
			idx[largest] = idx[largest][:n-1]
		}
	}

	out := make([]*Dataset, parts)
	for i := range idx {
		out[i] = d.Subset(idx[i])
	}
	return out, nil
}

// PartitionDirichlet splits the dataset with per-class Dirichlet label skew,
// the standard non-IID benchmark partitioner of the federated-learning
// literature: for every class a proportion vector p ~ Dir(alpha·1) over the
// parts decides how that class's samples spread. Small alpha concentrates
// each class on few clients; large alpha approaches an IID split. Every row
// lands in exactly one partition and no partition is left empty.
func PartitionDirichlet(d *Dataset, parts int, alpha float64, rng *rand.Rand) ([]*Dataset, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("data: need ≥1 partition, got %d", parts)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("data: Dirichlet alpha must be positive, got %g", alpha)
	}
	if d.Len() < parts {
		return nil, fmt.Errorf("data: cannot split %d samples into %d parts", d.Len(), parts)
	}

	// Group row indices by class and shuffle within each class.
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	idx := make([][]int, parts)
	for _, rows := range byClass {
		if len(rows) == 0 {
			continue
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })

		// p ~ Dir(alpha·1): normalized Gamma(alpha) draws.
		p := make([]float64, parts)
		var sum float64
		for i := range p {
			p[i] = gammaSample(rng, alpha)
			sum += p[i]
		}
		// Degenerate draw (all ~0 underflows): fall back to uniform.
		if sum <= 0 {
			for i := range p {
				p[i] = 1
			}
			sum = float64(parts)
		}

		// Split the class's rows at cumulative-proportion boundaries.
		off := 0
		var cum float64
		for i := 0; i < parts; i++ {
			cum += p[i] / sum
			end := int(cum * float64(len(rows)))
			if i == parts-1 {
				end = len(rows) // absorb rounding; every row lands somewhere
			}
			if end > len(rows) {
				end = len(rows)
			}
			if end > off {
				idx[i] = append(idx[i], rows[off:end]...)
				off = end
			}
		}
	}

	// Guarantee non-empty parts by stealing from the largest.
	for i := range idx {
		for len(idx[i]) == 0 {
			largest := 0
			for j := range idx {
				if len(idx[j]) > len(idx[largest]) {
					largest = j
				}
			}
			if len(idx[largest]) <= 1 {
				return nil, fmt.Errorf("data: not enough samples to populate %d parts", parts)
			}
			n := len(idx[largest])
			idx[i] = append(idx[i], idx[largest][n-1])
			idx[largest] = idx[largest][:n-1]
		}
	}

	out := make([]*Dataset, parts)
	for i := range idx {
		sort.Ints(idx[i])
		out[i] = d.Subset(idx[i])
	}
	return out, nil
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method,
// boosted for shape < 1 via Gamma(a) = Gamma(a+1)·U^(1/a).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LabelSkew measures how far a partitioning deviates from the global label
// distribution: the mean (over partitions) total-variation distance between a
// partition's label histogram and the full dataset's. 0 is perfectly IID;
// the maximum approaches 1 as each partition collapses onto few classes.
func LabelSkew(d *Dataset, parts []*Dataset) float64 {
	if len(parts) == 0 || d.Len() == 0 {
		return 0
	}
	global := d.ClassCounts()
	gp := make([]float64, len(global))
	for c, n := range global {
		gp[c] = float64(n) / float64(d.Len())
	}
	var total float64
	for _, p := range parts {
		counts := p.ClassCounts()
		var tv float64
		for c, n := range counts {
			tv += math.Abs(float64(n)/float64(p.Len()) - gp[c])
		}
		total += tv / 2
	}
	return total / float64(len(parts))
}

// SizeVariance returns the variance of partition sizes, the heterogeneity
// statistic of the paper's Table XII.
func SizeVariance(parts []*Dataset) float64 {
	sizes := make([]float64, len(parts))
	for i, p := range parts {
		sizes[i] = float64(p.Len())
	}
	return stats.PopulationVariance(sizes)
}

// ShardIndices partitions [0,n) into `shards` contiguous-free random shards
// of near-equal size (SISA-style, paper Fig. 2). Every index appears in
// exactly one shard.
func ShardIndices(n, shards int, rng *rand.Rand) ([][]int, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("data: need ≥1 shard, got %d", shards)
	}
	if n < shards {
		return nil, fmt.Errorf("data: cannot shard %d samples into %d shards", n, shards)
	}
	perm := rng.Perm(n)
	out := make([][]int, shards)
	base := n / shards
	rem := n % shards
	off := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}
