package data

import (
	"fmt"
	"math/rand"

	"goldfish/internal/tensor"
)

// SyntheticSpec describes a deterministic synthetic vision dataset. Each
// class has a smooth prototype pattern; samples are the prototype plus
// Gaussian pixel noise and a small random translation, so convolutional
// models must learn translation-tolerant class structure — the property the
// paper's unlearning experiments exercise.
type SyntheticSpec struct {
	Name     string
	Channels int
	Size     int // height == width
	Classes  int
	Noise    float64 // pixel noise standard deviation
	Shift    int     // maximum |translation| in pixels
	Train    int     // training samples
	Test     int     // test samples
	Seed     int64
}

// Validate reports spec errors.
func (s SyntheticSpec) Validate() error {
	if s.Channels <= 0 || s.Size <= 1 {
		return fmt.Errorf("data: invalid sample shape %dx%dx%d", s.Channels, s.Size, s.Size)
	}
	if s.Classes < 2 {
		return fmt.Errorf("data: need ≥2 classes, got %d", s.Classes)
	}
	if s.Noise < 0 {
		return fmt.Errorf("data: negative noise %g", s.Noise)
	}
	if s.Shift < 0 || s.Shift >= s.Size {
		return fmt.Errorf("data: shift %d out of range for size %d", s.Shift, s.Size)
	}
	if s.Train <= 0 || s.Test <= 0 {
		return fmt.Errorf("data: need positive sample counts, got train=%d test=%d", s.Train, s.Test)
	}
	return nil
}

// Scale selects an experiment size. The paper trains 50–60k-sample datasets
// on GPUs; this pure-Go reproduction defaults to ScaleSmall and exposes
// larger scales for longer runs.
type Scale string

// Scales supported by the built-in specs.
const (
	// ScaleTiny is for unit tests: 8×8 inputs, hundreds of samples.
	ScaleTiny Scale = "tiny"
	// ScaleSmall is the default bench scale: 14×14 inputs (16×16 for the
	// CIFAR stand-ins), a few thousand samples.
	ScaleSmall Scale = "small"
	// ScaleMedium raises inputs to near-paper resolution for longer runs.
	ScaleMedium Scale = "medium"
	// ScalePaper mirrors the paper's dimensions (28×28 / 32×32, tens of
	// thousands of samples). Expect long CPU runs.
	ScalePaper Scale = "paper"
)

func scaleParams(s Scale) (sizeMNIST, sizeCIFAR, train, test int, err error) {
	switch s {
	case ScaleTiny:
		return 12, 12, 240, 120, nil
	case ScaleSmall, "":
		return 14, 16, 1500, 500, nil
	case ScaleMedium:
		return 20, 24, 6000, 1500, nil
	case ScalePaper:
		return 28, 32, 60000, 10000, nil
	default:
		return 0, 0, 0, 0, fmt.Errorf("data: unknown scale %q", s)
	}
}

// SpecMNIST returns the MNIST stand-in: 1 channel, 10 classes, low noise.
func SpecMNIST(s Scale) (SyntheticSpec, error) {
	size, _, train, test, err := scaleParams(s)
	if err != nil {
		return SyntheticSpec{}, err
	}
	return SyntheticSpec{
		Name: "mnist", Channels: 1, Size: size, Classes: 10,
		Noise: 0.35, Shift: 1, Train: train, Test: test, Seed: 101,
	}, nil
}

// SpecFMNIST returns the Fashion-MNIST stand-in: like MNIST but noisier
// (FMNIST is empirically harder than MNIST).
func SpecFMNIST(s Scale) (SyntheticSpec, error) {
	size, _, train, test, err := scaleParams(s)
	if err != nil {
		return SyntheticSpec{}, err
	}
	return SyntheticSpec{
		Name: "fmnist", Channels: 1, Size: size, Classes: 10,
		Noise: 0.55, Shift: 1, Train: train, Test: test, Seed: 202,
	}, nil
}

// SpecCIFAR10 returns the CIFAR-10 stand-in: 3 channels, 10 classes, high
// noise.
func SpecCIFAR10(s Scale) (SyntheticSpec, error) {
	_, size, train, test, err := scaleParams(s)
	if err != nil {
		return SyntheticSpec{}, err
	}
	if s == ScalePaper {
		train, test = 50000, 10000
	}
	return SyntheticSpec{
		Name: "cifar10", Channels: 3, Size: size, Classes: 10,
		Noise: 0.75, Shift: 2, Train: train, Test: test, Seed: 303,
	}, nil
}

// SpecCIFAR100 returns the CIFAR-100 stand-in: 3 channels, 100 classes.
func SpecCIFAR100(s Scale) (SyntheticSpec, error) {
	_, size, train, test, err := scaleParams(s)
	if err != nil {
		return SyntheticSpec{}, err
	}
	if s == ScalePaper {
		train, test = 50000, 10000
	}
	classes := 100
	if s == ScaleTiny || s == ScaleSmall || s == "" {
		// Keep per-class sample counts meaningful at reduced scale.
		classes = 20
	}
	return SyntheticSpec{
		Name: "cifar100", Channels: 3, Size: size, Classes: classes,
		Noise: 0.8, Shift: 2, Train: train, Test: test, Seed: 404,
	}, nil
}

// SpecByName resolves "mnist", "fmnist", "cifar10" or "cifar100" at the
// given scale.
func SpecByName(name string, s Scale) (SyntheticSpec, error) {
	switch name {
	case "mnist":
		return SpecMNIST(s)
	case "fmnist":
		return SpecFMNIST(s)
	case "cifar10":
		return SpecCIFAR10(s)
	case "cifar100":
		return SpecCIFAR100(s)
	default:
		return SyntheticSpec{}, fmt.Errorf("data: unknown dataset %q", name)
	}
}

// Generate materializes the train and test splits of a synthetic dataset.
// Generation is fully deterministic in the spec (including Seed).
func Generate(spec SyntheticSpec) (train, test *Dataset, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	protos := makePrototypes(spec, rng)
	train = sample(spec, protos, spec.Train, rng)
	test = sample(spec, protos, spec.Test, rng)
	return train, test, nil
}

// makePrototypes builds one smooth pattern per class: a coarse random grid
// bilinearly upsampled to the full resolution, per channel. Smoothness makes
// classes separable by convolutions yet non-trivial under noise and shift.
func makePrototypes(spec SyntheticSpec, rng *rand.Rand) []*tensor.Tensor {
	const coarse = 4
	protos := make([]*tensor.Tensor, spec.Classes)
	for class := range protos {
		p := tensor.New(spec.Channels, spec.Size, spec.Size)
		for ch := 0; ch < spec.Channels; ch++ {
			grid := make([]float64, coarse*coarse)
			for i := range grid {
				grid[i] = rng.NormFloat64()
			}
			upsampleBilinear(grid, coarse, p.Data()[ch*spec.Size*spec.Size:(ch+1)*spec.Size*spec.Size], spec.Size)
		}
		protos[class] = p
	}
	return protos
}

// upsampleBilinear resizes a coarse×coarse grid to size×size.
func upsampleBilinear(grid []float64, coarse int, dst []float64, size int) {
	scale := float64(coarse-1) / float64(size-1)
	for y := 0; y < size; y++ {
		fy := float64(y) * scale
		y0 := int(fy)
		y1 := y0 + 1
		if y1 >= coarse {
			y1 = coarse - 1
		}
		wy := fy - float64(y0)
		for x := 0; x < size; x++ {
			fx := float64(x) * scale
			x0 := int(fx)
			x1 := x0 + 1
			if x1 >= coarse {
				x1 = coarse - 1
			}
			wx := fx - float64(x0)
			top := grid[y0*coarse+x0]*(1-wx) + grid[y0*coarse+x1]*wx
			bot := grid[y1*coarse+x0]*(1-wx) + grid[y1*coarse+x1]*wx
			dst[y*size+x] = top*(1-wy) + bot*wy
		}
	}
}

// sample draws n labelled samples: prototype of a random class, shifted by
// up to spec.Shift pixels and perturbed with Gaussian noise.
func sample(spec SyntheticSpec, protos []*tensor.Tensor, n int, rng *rand.Rand) *Dataset {
	x := tensor.New(n, spec.Channels, spec.Size, spec.Size)
	y := make([]int, n)
	area := spec.Size * spec.Size
	for i := 0; i < n; i++ {
		class := rng.Intn(spec.Classes)
		y[i] = class
		dy := 0
		dx := 0
		if spec.Shift > 0 {
			dy = rng.Intn(2*spec.Shift+1) - spec.Shift
			dx = rng.Intn(2*spec.Shift+1) - spec.Shift
		}
		proto := protos[class].Data()
		dst := x.Data()[i*spec.Channels*area : (i+1)*spec.Channels*area]
		for ch := 0; ch < spec.Channels; ch++ {
			for py := 0; py < spec.Size; py++ {
				sy := py + dy
				for px := 0; px < spec.Size; px++ {
					sx := px + dx
					var v float64
					if sy >= 0 && sy < spec.Size && sx >= 0 && sx < spec.Size {
						v = proto[ch*area+sy*spec.Size+sx]
					}
					dst[ch*area+py*spec.Size+px] = v + rng.NormFloat64()*spec.Noise
				}
			}
		}
	}
	return &Dataset{X: x, Y: y, Classes: spec.Classes}
}
