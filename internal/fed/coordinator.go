package fed

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// LocalTrainer is the client-side training logic plugged into the federated
// runtime — the Goldfish local procedure, a baseline, or plain local SGD.
type LocalTrainer interface {
	// TrainRound performs one round of local training starting from the
	// given global parameters and returns the client's update. The global
	// slice must not be retained or mutated.
	TrainRound(ctx context.Context, round int, global []float64) (ModelUpdate, error)
}

// Scorer measures the quality of an uploaded parameter vector on data the
// server holds (the paper evaluates each client's MSE on the central test
// set, Eq. 12). Lower is better.
type Scorer interface {
	Score(params []float64) (float64, error)
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(params []float64) (float64, error)

// Score implements Scorer.
func (f ScorerFunc) Score(params []float64) (float64, error) { return f(params) }

// RoundInfo is passed to the coordinator's per-round callback.
type RoundInfo struct {
	// Round is the completed round index.
	Round int
	// Global is the aggregated parameter vector after the round. Callbacks
	// must copy it if they retain it.
	Global []float64
	// Updates are the client updates that went into the aggregate.
	Updates []ModelUpdate
	// Dropped lists client indices whose training failed this round.
	Dropped []int
}

// CoordinatorConfig configures an in-process federation.
type CoordinatorConfig struct {
	// Aggregator combines updates; defaults to FedAvg.
	Aggregator Aggregator
	// Scorer, when set, fills each update's MSE before aggregation.
	Scorer Scorer
	// Rounds is the number of global rounds. Must be positive.
	Rounds int
	// MinClients is the minimum number of successful updates per round;
	// fewer aborts the run. Defaults to 1.
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of
	// clients each round (standard federated client sampling, McMahan et
	// al.); 0 or 1 trains everyone. At least one client is always sampled.
	ClientFraction float64
	// RoundTimeout bounds one round of local training; stragglers whose
	// context expires are dropped for the round like crashed clients.
	// 0 disables the bound.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// OnRound, when set, is invoked after every aggregation.
	OnRound func(RoundInfo)
}

// Coordinator runs a federation fully in-process: every round it fans the
// global model out to all trainers in parallel, gathers their updates,
// scores and aggregates them. Failed trainers are dropped for the round
// (crash-stop model); the run aborts only when fewer than MinClients
// updates arrive.
type Coordinator struct {
	cfg      CoordinatorConfig
	trainers []LocalTrainer
	global   []float64
	sampler  *rand.Rand
}

// NewCoordinator validates the configuration and initial parameters.
func NewCoordinator(cfg CoordinatorConfig, initial []float64, trainers []LocalTrainer) (*Coordinator, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: rounds must be positive, got %d", cfg.Rounds)
	}
	if len(trainers) == 0 {
		return nil, fmt.Errorf("fed: need at least one trainer")
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("fed: empty initial parameters")
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.MinClients > len(trainers) {
		return nil, fmt.Errorf("fed: MinClients %d exceeds trainer count %d", cfg.MinClients, len(trainers))
	}
	if cfg.ClientFraction < 0 || cfg.ClientFraction > 1 {
		return nil, fmt.Errorf("fed: ClientFraction %g out of [0,1]", cfg.ClientFraction)
	}
	return &Coordinator{
		cfg:      cfg,
		trainers: trainers,
		global:   append([]float64(nil), initial...),
		sampler:  rand.New(rand.NewSource(cfg.SampleSeed + 1)),
	}, nil
}

// sampleRound returns the trainer indices participating in a round.
func (c *Coordinator) sampleRound() []int {
	n := len(c.trainers)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	f := c.cfg.ClientFraction
	if f == 0 || f == 1 {
		return all
	}
	k := int(float64(n) * f)
	if k < 1 {
		k = 1
	}
	c.sampler.Shuffle(n, func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := all[:k]
	return picked
}

// Global returns a copy of the current global parameters.
func (c *Coordinator) Global() []float64 { return append([]float64(nil), c.global...) }

// Run executes all configured rounds and returns the final global
// parameters. It honours ctx cancellation between and during rounds.
func (c *Coordinator) Run(ctx context.Context) ([]float64, error) {
	for round := 0; round < c.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fed: cancelled before round %d: %w", round, err)
		}
		if err := c.runRound(ctx, round); err != nil {
			return nil, err
		}
	}
	return c.Global(), nil
}

func (c *Coordinator) runRound(ctx context.Context, round int) error {
	type result struct {
		idx    int
		update ModelUpdate
		err    error
	}
	participants := c.sampleRound()
	roundCtx := ctx
	if c.cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		roundCtx, cancel = context.WithTimeout(ctx, c.cfg.RoundTimeout)
		defer cancel()
	}
	results := make([]result, len(participants))
	var wg sync.WaitGroup
	for k, idx := range participants {
		wg.Add(1)
		go func(k, idx int) {
			defer wg.Done()
			// Each trainer receives its own copy of the global vector.
			global := append([]float64(nil), c.global...)
			u, err := c.trainers[idx].TrainRound(roundCtx, round, global)
			results[k] = result{idx: idx, update: u, err: err}
		}(k, idx)
	}
	wg.Wait()

	updates := make([]ModelUpdate, 0, len(results))
	var dropped []int
	for _, r := range results {
		if r.err != nil {
			dropped = append(dropped, r.idx)
			continue
		}
		updates = append(updates, r.update)
	}
	minOK := c.cfg.MinClients
	if minOK > len(participants) {
		minOK = len(participants)
	}
	if len(updates) < minOK {
		return fmt.Errorf("fed: round %d: only %d/%d sampled clients succeeded (min %d)",
			round, len(updates), len(participants), minOK)
	}

	if c.cfg.Scorer != nil {
		for i := range updates {
			mse, err := c.cfg.Scorer.Score(updates[i].Params)
			if err != nil {
				return fmt.Errorf("fed: round %d: scoring client %d: %w", round, updates[i].ClientID, err)
			}
			updates[i].MSE = mse
		}
	}

	global, err := c.cfg.Aggregator.Aggregate(updates)
	if err != nil {
		return fmt.Errorf("fed: round %d: %w", round, err)
	}
	c.global = global

	if c.cfg.OnRound != nil {
		c.cfg.OnRound(RoundInfo{Round: round, Global: global, Updates: updates, Dropped: dropped})
	}
	return nil
}
