package fed

import (
	"context"
	"fmt"
	"time"
)

// LocalTrainer is the client-side training logic plugged into the federated
// runtime — the Goldfish local procedure, a baseline, or plain local SGD.
type LocalTrainer interface {
	// TrainRound performs one round of local training starting from the
	// given global parameters and returns the client's update. The global
	// slice must not be retained or mutated.
	TrainRound(ctx context.Context, round int, global []float64) (ModelUpdate, error)
}

// Scorer measures the quality of an uploaded parameter vector on data the
// server holds (the paper evaluates each client's MSE on the central test
// set, Eq. 12). Lower is better.
//
// The round engine scores the updates of a round concurrently (they are
// independent), so implementations must be safe for concurrent Score calls —
// evaluate on per-call model replicas (e.g. a sync.Pool of cloned networks)
// rather than one shared mutable network.
type Scorer interface {
	Score(params []float64) (float64, error)
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(params []float64) (float64, error)

// Score implements Scorer.
func (f ScorerFunc) Score(params []float64) (float64, error) { return f(params) }

// RoundInfo is passed to the engine's per-round callback.
type RoundInfo struct {
	// Round is the completed round index.
	Round int
	// Global is a copy of the aggregated parameter vector after the round.
	Global []float64
	// Updates are the client updates that went into the aggregate.
	Updates []ModelUpdate
	// Dropped lists client indices whose training failed this round.
	Dropped []int
}

// CoordinatorConfig configures an in-process federation.
type CoordinatorConfig struct {
	// Aggregator combines updates; defaults to FedAvg.
	Aggregator Aggregator
	// Scorer, when set, fills each update's MSE before aggregation.
	Scorer Scorer
	// Rounds is the number of global rounds. Must be positive.
	Rounds int
	// MinClients is the minimum number of successful updates per round;
	// fewer aborts the run. Defaults to 1.
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of
	// clients each round; 0 or 1 trains everyone.
	ClientFraction float64
	// RoundTimeout bounds one round of local training; stragglers whose
	// context expires are dropped for the round like crashed clients.
	// 0 disables the bound.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// OnRound, when set, is invoked after every aggregation.
	OnRound func(RoundInfo)
}

// Coordinator runs a fixed number of rounds fully in-process. It is a thin
// shim over the shared round Engine with a LocalTransport — the same code
// path the unlearning Federation and the TCP server use.
type Coordinator struct {
	rounds int
	engine *Engine
}

// NewCoordinator validates the configuration and initial parameters.
func NewCoordinator(cfg CoordinatorConfig, initial []float64, trainers []LocalTrainer) (*Coordinator, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: rounds must be positive, got %d", cfg.Rounds)
	}
	if len(trainers) == 0 {
		return nil, fmt.Errorf("fed: need at least one trainer")
	}
	if cfg.MinClients > len(trainers) {
		return nil, fmt.Errorf("fed: MinClients %d exceeds trainer count %d", cfg.MinClients, len(trainers))
	}
	engine, err := NewEngine(EngineConfig{
		Aggregator:     cfg.Aggregator,
		Scorer:         cfg.Scorer,
		MinClients:     cfg.MinClients,
		ClientFraction: cfg.ClientFraction,
		RoundTimeout:   cfg.RoundTimeout,
		SampleSeed:     cfg.SampleSeed,
		OnRound:        cfg.OnRound,
	}, initial, NewLocalTransport(trainers))
	if err != nil {
		return nil, err
	}
	return &Coordinator{rounds: cfg.Rounds, engine: engine}, nil
}

// Global returns a copy of the current global parameters.
func (c *Coordinator) Global() []float64 { return c.engine.Global() }

// Run executes all configured rounds and returns the final global
// parameters. It honours ctx cancellation between and during rounds.
func (c *Coordinator) Run(ctx context.Context) ([]float64, error) {
	if err := c.engine.Run(ctx, c.rounds); err != nil {
		return nil, err
	}
	return c.engine.Global(), nil
}
