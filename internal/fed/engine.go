package fed

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"goldfish/internal/obs"
)

// This file is the single federated round engine. One round — client
// sampling, straggler timeout, update collection, scoring, aggregation,
// round hook — is implemented exactly once here; the in-process Coordinator,
// the unlearning Federation and the TCP Server all drive an Engine and only
// differ in their Transport.

// RoundResult is one participant's outcome for a round, as reported by a
// Transport.
type RoundResult struct {
	// Index is the participant's transport index.
	Index int
	// Update is the participant's upload (valid when Err is nil).
	Update ModelUpdate
	// Err is the participant's failure for this round, if any.
	Err error
}

// Transport dispatches one round of local training to participants. The
// in-process LocalTransport fans out to goroutines; the TCP server's
// transport speaks the wire protocol. Implementations must treat the global
// slice as read-only.
type Transport interface {
	// NumClients returns the current number of participants.
	NumClients() int
	// ExecuteRound sends the global parameters to the listed participants
	// and collects their updates, honouring ctx (and its deadline, when
	// set) as the straggler bound. It returns one result per participant.
	ExecuteRound(ctx context.Context, round int, participants []int, global []float64) []RoundResult
}

// EngineConfig configures the shared round engine.
type EngineConfig struct {
	// Aggregator combines updates; defaults to FedAvg.
	Aggregator Aggregator
	// Scorer, when set, fills each update's MSE before aggregation
	// (the paper's Eq. 12 server-side quality probe).
	Scorer Scorer
	// MinClients is the minimum number of successful updates per round;
	// fewer aborts the round. Defaults to 1 and is clamped per round to the
	// number of sampled participants.
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of
	// clients each round (standard federated client sampling, McMahan et
	// al.); 0 or 1 trains everyone. At least one client is always sampled.
	ClientFraction float64
	// RoundTimeout bounds one round of local training; stragglers whose
	// context expires are dropped for the round like crashed clients.
	// 0 disables the bound.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// OnRound, when set, is invoked after every aggregation. The RoundInfo
	// carries a defensive copy of the global vector, so callbacks may
	// retain or mutate it freely.
	OnRound func(RoundInfo)
	// BeforeRound, when set, runs at the start of every round, before client
	// sampling — the round boundary where batched deletion requests fold
	// into the model (see internal/serve). It may mutate the engine (e.g.
	// SetGlobal, membership changes through the owning layer); a returned
	// error aborts the run.
	BeforeRound func(ctx context.Context, round int) error
}

// Engine runs federation rounds over a Transport: every round it samples
// participants, fans the global model out, gathers updates, drops failures
// (crash-stop model), scores, aggregates and fires the round hook. The run
// aborts only when fewer than MinClients updates arrive. The round counter
// is monotonic across Run calls. An Engine is not safe for concurrent use.
type Engine struct {
	cfg     EngineConfig
	trans   Transport
	global  []float64
	round   int
	sampler *rand.Rand

	// sampleBuf backs the participant slice returned by sample; it is
	// overwritten every round, which is safe because participants are only
	// read during their own round.
	sampleBuf []int
}

// NewEngine validates the configuration and initial parameters.
func NewEngine(cfg EngineConfig, initial []float64, trans Transport) (*Engine, error) {
	if trans == nil {
		return nil, fmt.Errorf("fed: nil transport")
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("fed: empty initial parameters")
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.ClientFraction < 0 || cfg.ClientFraction > 1 {
		return nil, fmt.Errorf("fed: ClientFraction %g out of [0,1]", cfg.ClientFraction)
	}
	return &Engine{
		cfg:     cfg,
		trans:   trans,
		global:  append([]float64(nil), initial...),
		sampler: rand.New(rand.NewSource(cfg.SampleSeed + 1)),
	}, nil
}

// Global returns a copy of the current global parameters.
//
//goldfish:coldpath — accessor; the copy is its contract, called between rounds
func (e *Engine) Global() []float64 { return append([]float64(nil), e.global...) }

// SetGlobal replaces the global parameters (the deletion lifecycle
// reinitializes the model between rounds through this).
//
//goldfish:coldpath — deletion lifecycle, once per unlearning round boundary
func (e *Engine) SetGlobal(g []float64) { e.global = append([]float64(nil), g...) }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// SetBeforeRound installs (or replaces) the round-boundary hook after
// construction. Layers built on top of the engine (the unlearning
// federation's deletion service) are created after the engine exists, so the
// hook must be attachable late. Not safe to call while a Run is in flight.
func (e *Engine) SetBeforeRound(fn func(ctx context.Context, round int) error) {
	e.cfg.BeforeRound = fn
}

// Run executes n rounds. It honours ctx cancellation between and during
// rounds.
func (e *Engine) Run(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fed: cancelled before round %d: %w", e.round, err)
		}
		if err := e.RunRound(ctx); err != nil {
			return err
		}
	}
	return nil
}

// sample returns the participant indices for a round. The returned slice
// aliases the engine's reusable buffer and is valid until the next sample.
func (e *Engine) sample() []int {
	n := e.trans.NumClients()
	if cap(e.sampleBuf) < n {
		e.sampleBuf = make([]int, n) //goldfish:allocok — grow-once buffer, reused across rounds
	}
	all := e.sampleBuf[:n]
	for i := range all {
		all[i] = i
	}
	f := e.cfg.ClientFraction
	if f == 0 || f == 1 {
		return all
	}
	// Round to the nearest count (McMahan et al. sample max(round(n·f), 1)
	// clients); truncation would systematically under-sample whenever the
	// product lands just below an integer (10 clients at fraction 0.3 is
	// 2.999…, which must mean 3 clients, not 2).
	k := int(math.Round(float64(n) * f))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	e.sampler.Shuffle(n, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:k]
}

// RunRound executes one federation round. Phase timings (sample → train →
// score → aggregate) are reported through the context's obs.Observer as
// fed/* spans and fed.phase_us.* counters; with no observer attached every
// obs call is a nil-receiver no-op.
//
//goldfish:hotpath
func (e *Engine) RunRound(ctx context.Context) (err error) {
	o := obs.FromContext(ctx)
	span := o.StartSpan("fed/round", obs.Int("round", e.round))
	t0 := o.Elapsed()
	defer func() {
		o.Histogram("fed.round_ms", obs.MillisBuckets).Observe(float64((o.Elapsed() - t0).Microseconds()) / 1e3)
		if err != nil {
			o.Counter("fed.round_errors").Inc()
		} else {
			o.Counter("fed.rounds").Inc()
		}
		span.End()
	}()

	if e.cfg.BeforeRound != nil {
		if herr := e.cfg.BeforeRound(ctx, e.round); herr != nil {
			return fmt.Errorf("fed: round %d: before-round hook: %w", e.round, herr)
		}
	}

	sampleSpan := span.Child("fed/sample")
	phase := o.Elapsed()
	participants := e.sample()
	o.Counter("fed.phase_us.sample").Add((o.Elapsed() - phase).Microseconds())
	sampleSpan.End()
	if len(participants) == 0 {
		return fmt.Errorf("fed: round %d: no participants", e.round)
	}
	roundCtx := ctx
	if e.cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		roundCtx, cancel = context.WithTimeout(ctx, e.cfg.RoundTimeout)
		defer cancel()
	}

	trainSpan := span.Child("fed/train", obs.Int("participants", len(participants)))
	phase = o.Elapsed()
	results := e.trans.ExecuteRound(roundCtx, e.round, participants, e.global)
	o.Counter("fed.phase_us.train").Add((o.Elapsed() - phase).Microseconds())
	trainSpan.End()

	updates := make([]ModelUpdate, 0, len(results)) //goldfish:allocok — escapes to Aggregator and OnRound per round
	var dropped []int
	for _, r := range results {
		if r.Err != nil {
			dropped = append(dropped, r.Index) //goldfish:allocok — escapes via RoundInfo
			continue
		}
		updates = append(updates, r.Update) //goldfish:allocok — escapes to Aggregator and OnRound
	}
	o.Counter("fed.updates").Add(int64(len(updates)))
	o.Counter("fed.dropped").Add(int64(len(dropped)))
	minOK := e.cfg.MinClients
	if minOK > len(participants) {
		minOK = len(participants)
	}
	if len(updates) < minOK {
		return fmt.Errorf("fed: round %d: only %d/%d sampled clients succeeded (min %d)",
			e.round, len(updates), len(participants), minOK)
	}

	if e.cfg.Scorer != nil {
		scoreSpan := span.Child("fed/score", obs.Int("updates", len(updates)))
		phase = o.Elapsed()
		err = e.scoreUpdates(updates)
		o.Counter("fed.phase_us.score").Add((o.Elapsed() - phase).Microseconds())
		scoreSpan.End()
		if err != nil {
			return err
		}
	}

	aggSpan := span.Child("fed/aggregate", obs.Int("updates", len(updates)))
	phase = o.Elapsed()
	global, aggErr := e.cfg.Aggregator.Aggregate(updates)
	o.Counter("fed.phase_us.aggregate").Add((o.Elapsed() - phase).Microseconds())
	aggSpan.End()
	if aggErr != nil {
		return fmt.Errorf("fed: round %d: %w", e.round, aggErr)
	}
	e.global = global
	e.round++

	if e.cfg.OnRound != nil {
		e.cfg.OnRound(RoundInfo{
			Round:   e.round - 1,
			Global:  append([]float64(nil), global...), //goldfish:allocok — documented defensive copy: callbacks may retain it
			Updates: updates,
			Dropped: dropped,
		})
	}
	return nil
}

// scoreUpdates fills each update's MSE via the configured Scorer. Client
// updates are independent, so the server-side quality probe (Eq. 12) scores
// them concurrently; Scorer implementations must be safe for concurrent use
// (see the Scorer contract).
func (e *Engine) scoreUpdates(updates []ModelUpdate) error {
	scoreErrs := make([]error, len(updates)) //goldfish:allocok — once per scored round, not per client
	var wg sync.WaitGroup
	for i := range updates {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mse, err := e.cfg.Scorer.Score(updates[i].Params)
			if err != nil {
				scoreErrs[i] = err
				return
			}
			updates[i].MSE = mse
		}(i)
	}
	wg.Wait()
	for i, err := range scoreErrs {
		if err != nil {
			return fmt.Errorf("fed: round %d: scoring client %d: %w", e.round, updates[i].ClientID, err)
		}
	}
	return nil
}

// LocalTransport runs participants fully in-process: ExecuteRound fans out
// one goroutine per sampled trainer. The trainer set may change between
// rounds (dynamic membership) but not during one.
type LocalTransport struct {
	trainers []LocalTrainer
}

var _ Transport = (*LocalTransport)(nil)

// NewLocalTransport wraps the given trainers.
func NewLocalTransport(trainers []LocalTrainer) *LocalTransport {
	return &LocalTransport{trainers: append([]LocalTrainer(nil), trainers...)}
}

// NumClients implements Transport.
func (t *LocalTransport) NumClients() int { return len(t.trainers) }

// Append adds a trainer (a client joining between rounds).
func (t *LocalTransport) Append(tr LocalTrainer) { t.trainers = append(t.trainers, tr) }

// Remove deletes trainer i (a client leaving between rounds).
//
//goldfish:coldpath — membership change, once per departing client
func (t *LocalTransport) Remove(i int) error {
	if i < 0 || i >= len(t.trainers) {
		return fmt.Errorf("fed: trainer %d out of range [0,%d)", i, len(t.trainers))
	}
	t.trainers = append(t.trainers[:i], t.trainers[i+1:]...)
	return nil
}

// ExecuteRound implements Transport. Each sampled trainer's local training
// is traced as a fed/client_train span through the context's observer.
func (t *LocalTransport) ExecuteRound(ctx context.Context, round int, participants []int, global []float64) []RoundResult {
	o := obs.FromContext(ctx)
	results := make([]RoundResult, len(participants)) //goldfish:allocok — result set escapes to the engine
	var wg sync.WaitGroup
	for k, idx := range participants {
		wg.Add(1)
		go func(k, idx int) {
			defer wg.Done()
			sp := o.StartSpan("fed/client_train", obs.Int("round", round), obs.Int("client", idx))
			// Each trainer receives its own copy of the global vector.
			g := append([]float64(nil), global...) //goldfish:allocok — per-trainer isolation is the Transport contract
			u, err := t.trainers[idx].TrainRound(ctx, round, g)
			sp.End()
			results[k] = RoundResult{Index: idx, Update: u, Err: err}
		}(k, idx)
	}
	wg.Wait()
	return results
}
