package fed

import (
	"context"
	"encoding/gob"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientSamplingRoundsNotTruncates is the regression for the sampling
// bug: int(float64(n)*f) truncates, so 10 clients at fraction 0.3
// (10·0.3 = 2.999…) sampled 2 clients instead of 3. Sampling must take
// max(round(n·f), 1) participants (McMahan et al.).
func TestClientSamplingRoundsNotTruncates(t *testing.T) {
	cases := []struct {
		n    int
		f    float64
		want int
	}{
		{10, 0.3, 3},  // 2.999… must round to 3, not truncate to 2
		{10, 0.1, 1},  // 1.000…01 stays 1
		{7, 0.1, 1},   // 0.7 rounds to 1 (and the floor of 1 applies anyway)
		{3, 0.01, 1},  // at least one client is always sampled
		{10, 0.25, 3}, // 2.5 rounds half away from zero
		{100, 0.3, 30},
		{9, 0.33, 3},
		{1000, 0.999, 999},
	}
	for _, c := range cases {
		trainers := make([]LocalTrainer, c.n)
		for i := range trainers {
			trainers[i] = &stubTrainer{id: i, params: []float64{1}, samples: 1}
		}
		e, err := NewEngine(EngineConfig{ClientFraction: c.f, SampleSeed: 1},
			[]float64{0}, NewLocalTransport(trainers))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			if got := len(e.sample()); got != c.want {
				t.Errorf("n=%d fraction=%g: sampled %d clients, want %d", c.n, c.f, got, c.want)
				break
			}
		}
	}
}

// Property: the sampled count never drifts more than half a client from n·f
// (and never hits 0), for a sweep of population/fraction combinations.
func TestClientSamplingNearExpectation(t *testing.T) {
	for _, n := range []int{2, 5, 13, 64} {
		for _, f := range []float64{0.05, 0.21, 0.33, 0.5, 0.77, 0.9} {
			trainers := make([]LocalTrainer, n)
			for i := range trainers {
				trainers[i] = &stubTrainer{id: i, params: []float64{1}, samples: 1}
			}
			e, err := NewEngine(EngineConfig{ClientFraction: f, SampleSeed: int64(n)},
				[]float64{0}, NewLocalTransport(trainers))
			if err != nil {
				t.Fatal(err)
			}
			want := math.Round(float64(n) * f)
			if want < 1 {
				want = 1 // at least one client is always sampled
			}
			if got := float64(len(e.sample())); got != want {
				t.Errorf("n=%d f=%g: sampled %g clients, want %g", n, f, got, want)
			}
		}
	}
}

// pipeClient builds a connected clientConn plus the client-side endpoint.
func pipeClient(t *testing.T, id int) (*clientConn, net.Conn) {
	t.Helper()
	server, client := net.Pipe()
	t.Cleanup(func() { _ = server.Close(); _ = client.Close() })
	return &clientConn{
		id:   id,
		conn: server,
		enc:  gob.NewEncoder(server),
		dec:  gob.NewDecoder(server),
	}, client
}

// TestTCPRoundWithoutDeadlineWaitsForSlowClient: with no round bound, a
// slow-but-healthy client must not be dropped — ExecuteRound blocks until
// the update arrives.
func TestTCPRoundWithoutDeadlineWaitsForSlowClient(t *testing.T) {
	sc, clientSide := pipeClient(t, 0)
	trans := &tcpTransport{clients: []*clientConn{sc}}

	go func() {
		dec := gob.NewDecoder(clientSide)
		enc := gob.NewEncoder(clientSide)
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		time.Sleep(300 * time.Millisecond) // healthy but slow
		_ = enc.Encode(envelope{Type: msgUpdate, Update: ModelUpdate{
			Round: env.Round, Params: []float64{42}, NumSamples: 1,
		}})
	}()

	results := trans.ExecuteRound(context.Background(), 0, []int{0}, []float64{1})
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if results[0].Err != nil {
		t.Fatalf("slow-but-healthy client dropped: %v", results[0].Err)
	}
	if len(results[0].Update.Params) != 1 || results[0].Update.Params[0] != 42 {
		t.Errorf("unexpected update %+v", results[0].Update)
	}
}

// TestTCPRoundWithoutDeadlineHonoursCancellation is the regression for the
// phantom one-minute deadline: pre-fix, ExecuteRound with a deadline-free
// context ignored cancellation and blocked on the invented read deadline;
// it must return promptly once the context is cancelled.
func TestTCPRoundWithoutDeadlineHonoursCancellation(t *testing.T) {
	sc, clientSide := pipeClient(t, 0)
	trans := &tcpTransport{clients: []*clientConn{sc}}

	// The client reads the broadcast but never answers.
	go func() {
		dec := gob.NewDecoder(clientSide)
		var env envelope
		_ = dec.Decode(&env)
		select {} // hold the connection open without responding
	}()

	ctx, cancel := context.WithCancel(context.Background())
	var cancelled atomic.Bool
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancelled.Store(true)
		cancel()
	}()

	start := time.Now()
	results := trans.ExecuteRound(ctx, 0, []int{0}, []float64{1})
	elapsed := time.Since(start)

	if !cancelled.Load() {
		t.Fatal("ExecuteRound returned before cancellation with no deadline and no client reply")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("ExecuteRound took %v to observe cancellation", elapsed)
	}
	if results[0].Err == nil {
		t.Error("expected an error result for the unresponsive client after cancellation")
	}
}

// countingScorer records concurrent invocations; used to verify the engine
// scores a round's updates in parallel and propagates scores.
type countingScorer struct {
	inFlight atomic.Int32
	maxSeen  atomic.Int32
	calls    atomic.Int32
}

func (s *countingScorer) Score(params []float64) (float64, error) {
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		seen := s.maxSeen.Load()
		if cur <= seen || s.maxSeen.CompareAndSwap(seen, cur) {
			break
		}
	}
	s.calls.Add(1)
	time.Sleep(20 * time.Millisecond) // widen the overlap window
	return params[0], nil
}

// TestEngineScoresUpdatesConcurrently drives a LocalTransport round with a
// concurrency-tracking scorer; under -race this is also the scoring data-race
// gate. Overlap is only asserted with multi-core parallelism available.
func TestEngineScoresUpdatesConcurrently(t *testing.T) {
	const n = 6
	trainers := make([]LocalTrainer, n)
	for i := range trainers {
		trainers[i] = &stubTrainer{id: i, params: []float64{float64(i)}, samples: 1}
	}
	scorer := &countingScorer{}
	var got []ModelUpdate
	e, err := NewEngine(EngineConfig{
		Scorer:  scorer,
		OnRound: func(ri RoundInfo) { got = ri.Updates },
	}, []float64{0}, NewLocalTransport(trainers))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunRound(context.Background()); err != nil {
		t.Fatal(err)
	}
	if int(scorer.calls.Load()) != n {
		t.Fatalf("scored %d updates, want %d", scorer.calls.Load(), n)
	}
	for _, u := range got {
		if u.MSE != float64(u.ClientID) {
			t.Errorf("client %d MSE = %g, want %g", u.ClientID, u.MSE, float64(u.ClientID))
		}
	}
	if max := scorer.maxSeen.Load(); max < 2 {
		t.Logf("max concurrent scorings observed: %d (no overlap asserted on this hardware)", max)
	}
}
