// Package fed implements the federated-learning runtime the Goldfish
// framework runs on: client/server round orchestration, model aggregation
// (FedAvg and the paper's adaptive-weight scheme, Eqs. 12–13), an in-process
// coordinator for simulations and tests, and a TCP transport (length-framed
// gob) for running a real federation across processes.
package fed

import (
	"errors"
	"fmt"
	"math"
)

// ModelUpdate is one client's upload at the end of a local training round.
type ModelUpdate struct {
	// ClientID identifies the uploading client.
	ClientID int
	// Round is the global round this update belongs to.
	Round int
	// Params is the client's flat local parameter vector.
	Params []float64
	// NumSamples is the client's local dataset size (FedAvg weighting).
	NumSamples int
	// TrainLoss is the client's final local training loss (diagnostics).
	TrainLoss float64
	// MSE is the model-quality score measured on the server's test set
	// (paper Eq. 12); the coordinator fills it via its Scorer before
	// aggregation.
	MSE float64
}

// ErrNoUpdates is returned when aggregation receives no usable updates.
var ErrNoUpdates = errors.New("fed: no updates to aggregate")

// Aggregator combines client updates into new global parameters.
type Aggregator interface {
	// Name identifies the aggregator in experiment tables.
	Name() string
	// Aggregate returns the new global parameter vector.
	Aggregate(updates []ModelUpdate) ([]float64, error)
}

func checkUpdates(updates []ModelUpdate) (int, error) {
	if len(updates) == 0 {
		return 0, ErrNoUpdates
	}
	size := len(updates[0].Params)
	for _, u := range updates[1:] {
		if len(u.Params) != size {
			return 0, fmt.Errorf("fed: parameter size mismatch: client %d has %d, client %d has %d",
				updates[0].ClientID, size, u.ClientID, len(u.Params))
		}
	}
	return size, nil
}

// FedAvg is the standard sample-count-weighted average of McMahan et al.
type FedAvg struct{}

var _ Aggregator = FedAvg{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(updates []ModelUpdate) ([]float64, error) {
	size, err := checkUpdates(updates)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, u := range updates {
		if u.NumSamples < 0 {
			return nil, fmt.Errorf("fed: client %d reports negative sample count %d", u.ClientID, u.NumSamples)
		}
		total += u.NumSamples
	}
	out := make([]float64, size) //goldfish:allocok — the new global vector escapes to the engine
	if total == 0 {
		// Degenerate: unweighted mean.
		inv := 1 / float64(len(updates))
		for _, u := range updates {
			for j, v := range u.Params {
				out[j] += v * inv
			}
		}
		return out, nil
	}
	for _, u := range updates {
		w := float64(u.NumSamples) / float64(total)
		for j, v := range u.Params {
			out[j] += w * v
		}
	}
	return out, nil
}

// AdaptiveWeight implements the paper's extension-module aggregation
// (Eqs. 12–13): clients with lower MSE on the server test set receive
// exponentially larger weights,
//
//	W_c = exp(−(mse_c − avg)/avg),  ω = (1/θ)·Σ W_c·ω_c,  θ = Σ W_c.
type AdaptiveWeight struct{}

var _ Aggregator = AdaptiveWeight{}

// Name implements Aggregator.
func (AdaptiveWeight) Name() string { return "adaptive" }

// Aggregate implements Aggregator.
func (AdaptiveWeight) Aggregate(updates []ModelUpdate) ([]float64, error) {
	size, err := checkUpdates(updates)
	if err != nil {
		return nil, err
	}
	var avg float64
	for _, u := range updates {
		if u.MSE < 0 {
			return nil, fmt.Errorf("fed: client %d reports negative MSE %g", u.ClientID, u.MSE)
		}
		avg += u.MSE
	}
	avg /= float64(len(updates))

	weights := make([]float64, len(updates)) //goldfish:allocok — once per round, size = client count
	var theta float64
	for i, u := range updates {
		if avg == 0 {
			weights[i] = 1 // all clients perfect: uniform weights
		} else {
			weights[i] = math.Exp(-(u.MSE - avg) / avg)
		}
		theta += weights[i]
	}
	out := make([]float64, size) //goldfish:allocok — the new global vector escapes to the engine
	for i, u := range updates {
		w := weights[i] / theta
		for j, v := range u.Params {
			out[j] += w * v
		}
	}
	return out, nil
}

// Weights exposes the normalized Eq. 12 weights for diagnostics and tests.
func (AdaptiveWeight) Weights(mses []float64) []float64 {
	if len(mses) == 0 {
		return nil
	}
	var avg float64
	for _, m := range mses {
		avg += m
	}
	avg /= float64(len(mses))
	out := make([]float64, len(mses))
	var theta float64
	for i, m := range mses {
		if avg == 0 {
			out[i] = 1
		} else {
			out[i] = math.Exp(-(m - avg) / avg)
		}
		theta += out[i]
	}
	for i := range out {
		out[i] /= theta
	}
	return out
}
