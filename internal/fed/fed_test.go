package fed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFedAvgWeighting(t *testing.T) {
	updates := []ModelUpdate{
		{ClientID: 0, Params: []float64{1, 1}, NumSamples: 1},
		{ClientID: 1, Params: []float64{5, 5}, NumSamples: 3},
	}
	out, err := FedAvg{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*1 + 0.75*5
	for _, v := range out {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("FedAvg = %g, want %g", v, want)
		}
	}
}

func TestFedAvgZeroSamplesFallsBackToMean(t *testing.T) {
	updates := []ModelUpdate{
		{Params: []float64{2}, NumSamples: 0},
		{Params: []float64{4}, NumSamples: 0},
	}
	out, err := FedAvg{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-3) > 1e-12 {
		t.Errorf("mean fallback = %g, want 3", out[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := (FedAvg{}).Aggregate(nil); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("empty updates: %v, want ErrNoUpdates", err)
	}
	mismatch := []ModelUpdate{
		{Params: []float64{1, 2}, NumSamples: 1},
		{Params: []float64{1}, NumSamples: 1},
	}
	if _, err := (FedAvg{}).Aggregate(mismatch); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := (FedAvg{}).Aggregate([]ModelUpdate{{Params: []float64{1}, NumSamples: -1}}); err == nil {
		t.Error("negative sample count accepted")
	}
	if _, err := (AdaptiveWeight{}).Aggregate([]ModelUpdate{{Params: []float64{1}, MSE: -1}}); err == nil {
		t.Error("negative MSE accepted")
	}
}

func TestAdaptiveWeightFavorsLowMSE(t *testing.T) {
	updates := []ModelUpdate{
		{ClientID: 0, Params: []float64{0}, MSE: 0.01}, // good model
		{ClientID: 1, Params: []float64{1}, MSE: 0.5},  // bad model
	}
	out, err := AdaptiveWeight{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate must land much closer to the good model's params (0).
	if out[0] > 0.35 {
		t.Errorf("adaptive aggregate %g too close to bad model", out[0])
	}
	// Equal MSEs → plain average.
	equal := []ModelUpdate{
		{Params: []float64{0}, MSE: 0.3},
		{Params: []float64{1}, MSE: 0.3},
	}
	out, err = AdaptiveWeight{}.Aggregate(equal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 {
		t.Errorf("equal-MSE aggregate = %g, want 0.5", out[0])
	}
}

func TestAdaptiveWeightZeroMSE(t *testing.T) {
	updates := []ModelUpdate{
		{Params: []float64{0}, MSE: 0},
		{Params: []float64{2}, MSE: 0},
	}
	out, err := AdaptiveWeight{}.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-12 {
		t.Errorf("all-zero MSE should average: %g, want 1", out[0])
	}
}

// Property: adaptive weights are a probability distribution and
// monotonically favour lower MSE.
func TestQuickAdaptiveWeights(t *testing.T) {
	f := func(seedRaw uint32) bool {
		n := 2 + int(seedRaw%6)
		mses := make([]float64, n)
		v := float64(seedRaw%97) / 97
		for i := range mses {
			mses[i] = 0.05 + v*float64(i+1)/float64(n)
		}
		w := AdaptiveWeight{}.Weights(mses)
		var sum float64
		for i := range w {
			if w[i] <= 0 {
				return false
			}
			sum += w[i]
			if i > 0 && mses[i] > mses[i-1] && w[i] > w[i-1]+1e-12 {
				return false // higher MSE must not get higher weight
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// stubTrainer returns fixed params and can be made to fail.
type stubTrainer struct {
	id      int
	params  []float64
	samples int
	fail    atomic.Bool
	calls   atomic.Int32
}

func (s *stubTrainer) TrainRound(_ context.Context, round int, global []float64) (ModelUpdate, error) {
	s.calls.Add(1)
	if s.fail.Load() {
		return ModelUpdate{}, fmt.Errorf("client %d down", s.id)
	}
	return ModelUpdate{ClientID: s.id, Round: round, Params: append([]float64(nil), s.params...), NumSamples: s.samples}, nil
}

func TestCoordinatorRunsRounds(t *testing.T) {
	a := &stubTrainer{id: 0, params: []float64{1, 1}, samples: 10}
	b := &stubTrainer{id: 1, params: []float64{3, 3}, samples: 30}
	var rounds []int
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds: 3,
		OnRound: func(ri RoundInfo) {
			rounds = append(rounds, ri.Round)
			if len(ri.Updates) != 2 {
				t.Errorf("round %d: %d updates, want 2", ri.Round, len(ri.Updates))
			}
		},
	}, []float64{0, 0}, []LocalTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*1 + 0.75*3
	if math.Abs(final[0]-want) > 1e-12 {
		t.Errorf("final global = %g, want %g", final[0], want)
	}
	if len(rounds) != 3 {
		t.Errorf("OnRound fired %d times, want 3", len(rounds))
	}
	if a.calls.Load() != 3 || b.calls.Load() != 3 {
		t.Errorf("trainer calls = %d/%d, want 3/3", a.calls.Load(), b.calls.Load())
	}
}

func TestCoordinatorDropsFailedClients(t *testing.T) {
	good := &stubTrainer{id: 0, params: []float64{2}, samples: 10}
	bad := &stubTrainer{id: 1, params: []float64{9}, samples: 10}
	bad.fail.Store(true)
	var sawDrop bool
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds:     2,
		MinClients: 1,
		OnRound: func(ri RoundInfo) {
			if len(ri.Dropped) == 1 && ri.Dropped[0] == 1 {
				sawDrop = true
			}
		},
	}, []float64{0}, []LocalTrainer{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final[0] != 2 {
		t.Errorf("final = %g, want 2 (only good client)", final[0])
	}
	if !sawDrop {
		t.Error("dropped client not reported")
	}
}

func TestCoordinatorAbortsBelowMinClients(t *testing.T) {
	bad := &stubTrainer{id: 0, params: []float64{1}, samples: 1}
	bad.fail.Store(true)
	c, err := NewCoordinator(CoordinatorConfig{Rounds: 1, MinClients: 1},
		[]float64{0}, []LocalTrainer{bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("run should fail when all clients fail")
	}
}

func TestCoordinatorScorerFeedsAggregator(t *testing.T) {
	a := &stubTrainer{id: 0, params: []float64{0}, samples: 1}
	b := &stubTrainer{id: 1, params: []float64{1}, samples: 1}
	scorer := ScorerFunc(func(params []float64) (float64, error) {
		return params[0], nil // param value as MSE: client b is "worse"
	})
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds:     1,
		Aggregator: AdaptiveWeight{},
		Scorer:     scorer,
	}, []float64{0}, []LocalTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final[0] >= 0.5 {
		t.Errorf("adaptive aggregate %g should favour the low-MSE client", final[0])
	}
}

func TestCoordinatorScorerError(t *testing.T) {
	a := &stubTrainer{id: 0, params: []float64{0}, samples: 1}
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds: 1,
		Scorer: ScorerFunc(func([]float64) (float64, error) { return 0, errors.New("probe broken") }),
	}, []float64{0}, []LocalTrainer{a})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("scorer error should abort the run")
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	a := &stubTrainer{id: 0, params: []float64{1}, samples: 1}
	c, err := NewCoordinator(CoordinatorConfig{Rounds: 100}, []float64{0}, []LocalTrainer{a})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Error("cancelled run should fail")
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	tr := []LocalTrainer{&stubTrainer{params: []float64{1}, samples: 1}}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 0}, []float64{0}, tr); err == nil {
		t.Error("0 rounds accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 1}, []float64{0}, nil); err == nil {
		t.Error("no trainers accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 1}, nil, tr); err == nil {
		t.Error("empty initial params accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 1, MinClients: 2}, []float64{0}, tr); err == nil {
		t.Error("MinClients > clients accepted")
	}
}

func TestTCPFederationEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Rounds:       3,
		NumClients:   2,
		Initial:      []float64{0, 0},
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	serverDone := make(chan struct{})
	var serverFinal []float64
	var serverErr error
	go func() {
		defer close(serverDone)
		serverFinal, serverErr = srv.Serve(ctx, ln)
	}()

	addr := ln.Addr().String()
	clientDone := make(chan []float64, 2)
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			tr := &stubTrainer{id: i, params: []float64{float64(i + 1), float64(i + 1)}, samples: 10}
			final, err := RunClient(ctx, addr, tr)
			if err != nil {
				clientErrs <- err
				return
			}
			clientDone <- final
		}(i)
	}

	var clientFinals [][]float64
	for len(clientFinals) < 2 {
		select {
		case f := <-clientDone:
			clientFinals = append(clientFinals, f)
		case err := <-clientErrs:
			t.Fatalf("client failed: %v", err)
		case <-ctx.Done():
			t.Fatal("timed out waiting for clients")
		}
	}
	<-serverDone
	if serverErr != nil {
		t.Fatalf("server failed: %v", serverErr)
	}
	// Equal sample counts → average of 1 and 2 = 1.5.
	if math.Abs(serverFinal[0]-1.5) > 1e-12 {
		t.Errorf("server final = %g, want 1.5", serverFinal[0])
	}
	for _, f := range clientFinals {
		if math.Abs(f[0]-serverFinal[0]) > 1e-12 {
			t.Error("client received different final model than server computed")
		}
	}
}

func TestTCPServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Rounds: 0, NumClients: 1, Initial: []float64{1}}); err == nil {
		t.Error("0 rounds accepted")
	}
	if _, err := NewServer(ServerConfig{Rounds: 1, NumClients: 0, Initial: []float64{1}}); err == nil {
		t.Error("0 clients accepted")
	}
	if _, err := NewServer(ServerConfig{Rounds: 1, NumClients: 1}); err == nil {
		t.Error("empty initial accepted")
	}
}

func TestTCPServerCancelledWhileWaiting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Rounds: 1, NumClients: 1, Initial: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx, ln)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled server should return an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after cancellation")
	}
}

func TestRunClientConnectionRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := RunClient(ctx, "127.0.0.1:1", &stubTrainer{params: []float64{1}})
	if err == nil {
		t.Error("connecting to a closed port should fail")
	}
}

func TestCoordinatorClientSampling(t *testing.T) {
	trainers := make([]LocalTrainer, 4)
	stubs := make([]*stubTrainer, 4)
	for i := range trainers {
		s := &stubTrainer{id: i, params: []float64{1}, samples: 10}
		stubs[i] = s
		trainers[i] = s
	}
	var perRound []int
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds:         6,
		ClientFraction: 0.5,
		SampleSeed:     3,
		OnRound:        func(ri RoundInfo) { perRound = append(perRound, len(ri.Updates)) },
	}, []float64{0}, trainers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for r, n := range perRound {
		if n != 2 {
			t.Errorf("round %d aggregated %d updates, want 2 (fraction 0.5 of 4)", r, n)
		}
	}
	var total int32
	for _, s := range stubs {
		total += s.calls.Load()
	}
	if total != 12 {
		t.Errorf("total trainer calls = %d, want 12 (2 per round × 6)", total)
	}
}

func TestCoordinatorClientFractionValidation(t *testing.T) {
	tr := []LocalTrainer{&stubTrainer{params: []float64{1}, samples: 1}}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 1, ClientFraction: -0.1}, []float64{0}, tr); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Rounds: 1, ClientFraction: 1.5}, []float64{0}, tr); err == nil {
		t.Error("fraction > 1 accepted")
	}
	// Tiny fraction still samples at least one client.
	c, err := NewCoordinator(CoordinatorConfig{Rounds: 1, ClientFraction: 0.01}, []float64{0}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Errorf("minimum-one sampling failed: %v", err)
	}
}

func TestTCPFederationAdaptiveWeights(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Rounds:     2,
		NumClients: 2,
		Initial:    []float64{0},
		Aggregator: AdaptiveWeight{},
		Scorer: ScorerFunc(func(params []float64) (float64, error) {
			return params[0] * params[0], nil // param magnitude as badness
		}),
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan struct{})
	var final []float64
	var serveErr error
	go func() {
		defer close(done)
		final, serveErr = srv.Serve(ctx, ln)
	}()
	addr := ln.Addr().String()
	for i := 0; i < 2; i++ {
		go func(i int) {
			tr := &stubTrainer{id: i, params: []float64{float64(i) * 2}, samples: 10}
			_, _ = RunClient(ctx, addr, tr)
		}(i)
	}
	<-done
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	// Client 0 uploads 0 (MSE 0, better), client 1 uploads 2 (MSE 4):
	// adaptive aggregation must land well below the midpoint 1.
	if final[0] >= 1 {
		t.Errorf("adaptive TCP aggregate = %g, want < 1", final[0])
	}
}

// slowTrainer blocks until its context is cancelled, simulating a straggler
// that respects cancellation.
type slowTrainer struct{ id int }

func (s *slowTrainer) TrainRound(ctx context.Context, round int, _ []float64) (ModelUpdate, error) {
	<-ctx.Done()
	return ModelUpdate{}, ctx.Err()
}

func TestCoordinatorRoundTimeoutDropsStragglers(t *testing.T) {
	fast := &stubTrainer{id: 0, params: []float64{3}, samples: 1}
	slow := &slowTrainer{id: 1}
	var dropped []int
	c, err := NewCoordinator(CoordinatorConfig{
		Rounds:       2,
		RoundTimeout: 50 * time.Millisecond,
		OnRound:      func(ri RoundInfo) { dropped = append(dropped, ri.Dropped...) },
	}, []float64{0}, []LocalTrainer{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	final, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("straggler blocked the run for %v", elapsed)
	}
	if final[0] != 3 {
		t.Errorf("final = %g, want the fast client's 3", final[0])
	}
	if len(dropped) != 2 || dropped[0] != 1 {
		t.Errorf("dropped = %v, want the straggler each round", dropped)
	}
}
