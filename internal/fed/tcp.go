package fed

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Wire protocol: each connection carries a stream of gob-encoded envelopes.
// The server waits for NumClients joins, then drives the shared round
// Engine with a TCP transport: broadcast msgTrain, collect one msgUpdate
// per client, aggregate, repeat, and finish with msgDone carrying the final
// global model.

type msgType uint8

const (
	msgJoin msgType = iota + 1
	msgJoinAck
	msgTrain
	msgUpdate
	msgDone
	msgError
)

// envelope is the single wire message type (field presence depends on Type).
type envelope struct {
	Type   msgType
	Client int
	Round  int
	Params []float64
	Update ModelUpdate
	Error  string
}

// ServerConfig configures a TCP federation server.
type ServerConfig struct {
	// Aggregator combines updates; defaults to FedAvg.
	Aggregator Aggregator
	// Scorer, when set, fills each update's MSE before aggregation.
	Scorer Scorer
	// Rounds is the number of global rounds. Must be positive.
	Rounds int
	// NumClients is the exact number of clients to wait for. Must be
	// positive.
	NumClients int
	// MinClients is the minimum number of successful updates per round;
	// fewer aborts the run. Defaults to NumClients (a wire failure is
	// fatal, matching the synchronous protocol).
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of the
	// connected clients each round; 0 or 1 trains everyone.
	ClientFraction float64
	// Initial is the initial global parameter vector.
	Initial []float64
	// RoundTimeout bounds one full round (broadcast + collect). 0 disables
	// the bound, matching EngineConfig: rounds then block until every
	// sampled client responds or ctx is cancelled — a slow-but-healthy
	// client is never dropped.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// OnRound, when set, is invoked after every aggregation.
	OnRound func(RoundInfo)
}

// joinTimeout bounds the join handshake of a single connection when no
// RoundTimeout is configured; see Serve.
const joinTimeout = time.Minute

// Server runs a federation over TCP.
type Server struct {
	cfg ServerConfig
}

// NewServer validates the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("fed: NumClients must be positive, got %d", cfg.NumClients)
	}
	if len(cfg.Initial) == 0 {
		return nil, fmt.Errorf("fed: empty initial parameters")
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = cfg.NumClients
	}
	if cfg.MinClients > cfg.NumClients {
		return nil, fmt.Errorf("fed: MinClients %d exceeds NumClients %d", cfg.MinClients, cfg.NumClients)
	}
	return &Server{cfg: cfg}, nil
}

// clientConn is one connected client with its gob codecs. After the join
// handshake a single reader goroutine owns the decoder for the connection's
// lifetime (see startReader); rounds receive envelopes through inbox.
type clientConn struct {
	id   int
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	// inbox carries decoded envelopes from the reader goroutine; it is
	// closed when the reader exits, after which readErr holds the decode
	// failure (the channel close orders the write before any receive).
	inbox   chan envelope
	readErr error
	// done, closed by Serve on shutdown, releases a reader parked on an
	// inbox send.
	done chan struct{}
}

// startReader starts the connection's single reader goroutine. Every
// inbound envelope is decoded here and only here, with no read deadline, so
// a round deadline expiring never aborts a decode mid-message: the gob
// stream stays framed on message boundaries, and a straggler dropped in one
// round has its late update decoded whole and discarded by a later round's
// collector — the client rejoins instead of being lost to a corrupted
// stream. Serve unblocks the decode on shutdown by closing the connection.
//
//goldfish:coldpath — once per connection (join, or first use of a test-assembled transport)
func (c *clientConn) startReader() {
	c.inbox = make(chan envelope, 1)
	c.done = make(chan struct{})
	go func() {
		defer close(c.inbox)
		for {
			var env envelope
			if err := c.dec.Decode(&env); err != nil {
				c.readErr = err
				return
			}
			select {
			case c.inbox <- env:
			case <-c.done:
				return
			}
		}
	}()
}

// tcpTransport adapts the connected clients to the round Engine.
type tcpTransport struct {
	clients []*clientConn
}

var _ Transport = (*tcpTransport)(nil)

// NumClients implements Transport.
func (t *tcpTransport) NumClients() int { return len(t.clients) }

// ExecuteRound implements Transport: broadcast the global model to the
// sampled clients, then collect one update from each before the round
// deadline (carried by ctx). Stale updates from earlier rounds — a dropped
// straggler finally responding — are consumed and discarded here, which is
// what lets that client take part in the current round again.
func (t *tcpTransport) ExecuteRound(ctx context.Context, round int, participants []int, global []float64) []RoundResult {
	results := make([]RoundResult, len(participants)) //goldfish:allocok — result set escapes to the engine
	var wg sync.WaitGroup
	for k, idx := range participants {
		c := t.clients[idx]
		if c.inbox == nil {
			// Transports assembled without Serve (tests, custom wiring)
			// get their reader goroutine on first use.
			c.startReader()
		}
		results[k].Index = idx
		if err := c.enc.Encode(envelope{Type: msgTrain, Round: round, Params: global}); err != nil {
			results[k].Err = fmt.Errorf("fed: round %d: sending model to client %d: %w", round, c.id, err)
			continue
		}
		wg.Add(1)
		go func(k int, c *clientConn) {
			defer wg.Done()
			for {
				select {
				case env, ok := <-c.inbox:
					if !ok {
						results[k].Err = fmt.Errorf("fed: round %d: reading update from client %d: %w", round, c.id, c.readErr)
						return
					}
					if env.Type == msgError {
						results[k].Err = fmt.Errorf("fed: round %d: client %d failed: %s", round, c.id, env.Error)
						return
					}
					if env.Type != msgUpdate {
						results[k].Err = fmt.Errorf("fed: round %d: client %d sent %d, want update", round, c.id, env.Type)
						return
					}
					if env.Update.Round != round {
						// A straggler that was dropped in an earlier round
						// delivered its stale update late; discard it and keep
						// receiving — the next envelope is this round's.
						continue
					}
					u := env.Update
					u.ClientID = c.id
					results[k].Update = u
					return
				case <-ctx.Done():
					results[k].Err = fmt.Errorf("fed: round %d: waiting for update from client %d: %w", round, c.id, ctx.Err())
					return
				}
			}
		}(k, c)
	}
	wg.Wait()
	return results
}

// Serve accepts NumClients connections on ln, runs all rounds through the
// shared round engine, distributes the final model, and returns it. The
// listener is closed on return and when ctx is cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) (final []float64, err error) {
	defer func() {
		if cerr := ln.Close(); cerr != nil && err == nil && !errors.Is(cerr, net.ErrClosed) {
			err = fmt.Errorf("fed: closing listener: %w", cerr)
		}
	}()

	// Unblock Accept on cancellation.
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()

	clients := make([]*clientConn, 0, s.cfg.NumClients)
	defer func() {
		for _, c := range clients {
			close(c.done)      // release a reader parked on an inbox send
			_ = c.conn.Close() // unblock a decode in progress
		}
	}()

	// Handshakes run one goroutine per connection, so a slow or malformed
	// joiner (port scanner, wedged peer) burns only its own join bound and
	// never head-of-line-blocks the other clients. The accept loop keeps
	// accepting until the listener closes (Serve's deferred Close); joinCtx
	// ends the admission window, after which late handshakes close their
	// connections instead of delivering them.
	joinCtx, cancelJoin := context.WithCancel(ctx)
	defer cancelJoin()
	joined := make(chan *clientConn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				select {
				case acceptErr <- aerr:
				default:
				}
				return
			}
			go s.handshake(joinCtx, conn, joined)
		}
	}()

	for len(clients) < s.cfg.NumClients {
		select {
		case c := <-joined:
			c.id = len(clients)
			if werr := c.enc.Encode(envelope{Type: msgJoinAck, Client: c.id}); werr != nil {
				_ = c.conn.Close()
				continue // joiner vanished between handshake and ack; keep waiting
			}
			c.startReader()
			clients = append(clients, c)
		case aerr := <-acceptErr:
			if ctx.Err() != nil {
				return nil, fmt.Errorf("fed: cancelled while waiting for clients: %w", ctx.Err())
			}
			return nil, fmt.Errorf("fed: accept: %w", aerr)
		}
	}
	cancelJoin() // roster full: stop admitting

	engine, err := NewEngine(EngineConfig{
		Aggregator:     s.cfg.Aggregator,
		Scorer:         s.cfg.Scorer,
		MinClients:     s.cfg.MinClients,
		ClientFraction: s.cfg.ClientFraction,
		RoundTimeout:   s.cfg.RoundTimeout,
		SampleSeed:     s.cfg.SampleSeed,
		OnRound:        s.cfg.OnRound,
	}, s.cfg.Initial, &tcpTransport{clients: clients})
	if err != nil {
		return nil, err
	}
	if err := engine.Run(ctx, s.cfg.Rounds); err != nil {
		s.broadcastError(clients, err.Error())
		return nil, err
	}

	global := engine.Global()
	if err := s.distributeFinal(clients, global); err != nil {
		return nil, err
	}
	return global, nil
}

// handshake performs one connection's join exchange: bounded read of the
// msgJoin hello, then delivery to the accept owner. The bound derives from
// the join context rather than wall-clock arithmetic on the socket: hctx
// expires after the join bound or as soon as ctx is done, and either way
// the AfterFunc forces an already-expired read deadline so the read
// unblocks immediately. A connection that fails the handshake, or completes
// it after the roster filled, is closed here.
//
//goldfish:coldpath — once per joining connection, before any round runs
func (s *Server) handshake(ctx context.Context, conn net.Conn, joined chan<- *clientConn) {
	joinBound := s.cfg.RoundTimeout
	if joinBound <= 0 {
		joinBound = joinTimeout
	}
	hctx, cancel := context.WithTimeout(ctx, joinBound)
	defer cancel()
	stopJoin := context.AfterFunc(hctx, func() { _ = conn.SetReadDeadline(time.Unix(1, 0)) })
	c := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	var hello envelope
	derr := c.dec.Decode(&hello)
	stopJoin()
	if derr != nil || hello.Type != msgJoin {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	select {
	case joined <- c:
	case <-ctx.Done():
		_ = conn.Close()
	}
}

// distributeFinal fans the final global model out to every client. A failed
// write must not starve the remaining clients of their msgDone — each
// delivery is attempted regardless of earlier failures and the errors are
// joined.
func (s *Server) distributeFinal(clients []*clientConn, global []float64) error {
	var errs []error
	for _, c := range clients {
		if werr := c.enc.Encode(envelope{Type: msgDone, Params: global}); werr != nil {
			errs = append(errs, fmt.Errorf("fed: sending final model to client %d: %w", c.id, werr))
		}
	}
	return errors.Join(errs...)
}

func (s *Server) broadcastError(clients []*clientConn, msg string) {
	for _, c := range clients {
		_ = c.enc.Encode(envelope{Type: msgError, Error: msg})
	}
}

// RunClient connects to a federation server at addr, participates in every
// round with the given trainer, and returns the final global model.
func RunClient(ctx context.Context, addr string, trainer LocalTrainer) ([]float64, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: dialing %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()

	// Unblock blocking reads/writes on cancellation.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(envelope{Type: msgJoin}); err != nil {
		return nil, fmt.Errorf("fed: sending join: %w", err)
	}
	var ack envelope
	if err := dec.Decode(&ack); err != nil {
		return nil, fmt.Errorf("fed: reading join ack: %w", err)
	}
	if ack.Type != msgJoinAck {
		return nil, fmt.Errorf("fed: unexpected join reply type %d", ack.Type)
	}
	id := ack.Client

	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("fed: cancelled: %w", ctx.Err())
			}
			return nil, fmt.Errorf("fed: reading server message: %w", err)
		}
		switch env.Type {
		case msgTrain:
			update, terr := trainer.TrainRound(ctx, env.Round, env.Params)
			if terr != nil {
				_ = enc.Encode(envelope{Type: msgError, Error: terr.Error()})
				return nil, fmt.Errorf("fed: local training round %d: %w", env.Round, terr)
			}
			update.ClientID = id
			update.Round = env.Round
			if err := enc.Encode(envelope{Type: msgUpdate, Update: update}); err != nil {
				return nil, fmt.Errorf("fed: sending update: %w", err)
			}
		case msgDone:
			return env.Params, nil
		case msgError:
			return nil, fmt.Errorf("fed: server error: %s", env.Error)
		default:
			return nil, fmt.Errorf("fed: unexpected message type %d", env.Type)
		}
	}
}
