package fed

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Wire protocol: each connection carries a stream of gob-encoded envelopes.
// The server waits for NumClients joins, then drives the shared round
// Engine with a TCP transport: broadcast msgTrain, collect one msgUpdate
// per client, aggregate, repeat, and finish with msgDone carrying the final
// global model.

type msgType uint8

const (
	msgJoin msgType = iota + 1
	msgJoinAck
	msgTrain
	msgUpdate
	msgDone
	msgError
)

// envelope is the single wire message type (field presence depends on Type).
type envelope struct {
	Type   msgType
	Client int
	Round  int
	Params []float64
	Update ModelUpdate
	Error  string
}

// ServerConfig configures a TCP federation server.
type ServerConfig struct {
	// Aggregator combines updates; defaults to FedAvg.
	Aggregator Aggregator
	// Scorer, when set, fills each update's MSE before aggregation.
	Scorer Scorer
	// Rounds is the number of global rounds. Must be positive.
	Rounds int
	// NumClients is the exact number of clients to wait for. Must be
	// positive.
	NumClients int
	// MinClients is the minimum number of successful updates per round;
	// fewer aborts the run. Defaults to NumClients (a wire failure is
	// fatal, matching the synchronous protocol).
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of the
	// connected clients each round; 0 or 1 trains everyone.
	ClientFraction float64
	// Initial is the initial global parameter vector.
	Initial []float64
	// RoundTimeout bounds one full round (broadcast + collect). 0 disables
	// the bound, matching EngineConfig: rounds then block until every
	// sampled client responds or ctx is cancelled — a slow-but-healthy
	// client is never dropped.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// OnRound, when set, is invoked after every aggregation.
	OnRound func(RoundInfo)
}

// joinTimeout bounds the join handshake of a single connection when no
// RoundTimeout is configured; see Serve.
const joinTimeout = time.Minute

// Server runs a federation over TCP.
type Server struct {
	cfg ServerConfig
}

// NewServer validates the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("fed: NumClients must be positive, got %d", cfg.NumClients)
	}
	if len(cfg.Initial) == 0 {
		return nil, fmt.Errorf("fed: empty initial parameters")
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = cfg.NumClients
	}
	if cfg.MinClients > cfg.NumClients {
		return nil, fmt.Errorf("fed: MinClients %d exceeds NumClients %d", cfg.MinClients, cfg.NumClients)
	}
	return &Server{cfg: cfg}, nil
}

// clientConn is one connected client with its gob codecs.
type clientConn struct {
	id   int
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// tcpTransport adapts the connected clients to the round Engine.
type tcpTransport struct {
	clients []*clientConn
}

var _ Transport = (*tcpTransport)(nil)

// NumClients implements Transport.
func (t *tcpTransport) NumClients() int { return len(t.clients) }

// ExecuteRound implements Transport: broadcast the global model to the
// sampled clients, then collect one update from each before the round
// deadline.
func (t *tcpTransport) ExecuteRound(ctx context.Context, round int, participants []int, global []float64) []RoundResult {
	deadline, hasDeadline := ctx.Deadline()
	results := make([]RoundResult, len(participants)) //goldfish:allocok — result set escapes to the engine
	var wg sync.WaitGroup
	for k, idx := range participants {
		c := t.clients[idx]
		results[k].Index = idx
		if err := c.enc.Encode(envelope{Type: msgTrain, Round: round, Params: global}); err != nil {
			results[k].Err = fmt.Errorf("fed: round %d: sending model to client %d: %w", round, c.id, err)
			continue
		}
		wg.Add(1)
		go func(k int, c *clientConn) {
			defer wg.Done()
			if hasDeadline {
				_ = c.conn.SetReadDeadline(deadline)
			} else {
				// No round bound was configured: honour that by blocking
				// until the client responds. Inventing a deadline here would
				// drop slow-but-healthy clients the server asked to wait for.
				_ = c.conn.SetReadDeadline(time.Time{})
			}
			// Either way, cancelling ctx (shutdown, SIGINT) must unblock the
			// read immediately rather than waiting out any deadline.
			stop := context.AfterFunc(ctx, func() { _ = c.conn.SetReadDeadline(time.Unix(1, 0)) })
			defer stop()
			for {
				var env envelope
				if err := c.dec.Decode(&env); err != nil {
					results[k].Err = fmt.Errorf("fed: round %d: reading update from client %d: %w", round, c.id, err)
					return
				}
				if env.Type != msgUpdate {
					results[k].Err = fmt.Errorf("fed: round %d: client %d sent %d, want update", round, c.id, env.Type)
					return
				}
				if env.Update.Round != round {
					// A straggler that was dropped in an earlier round
					// delivered its stale update late; discard it and keep
					// reading so the stream re-synchronizes.
					continue
				}
				u := env.Update
				u.ClientID = c.id
				results[k].Update = u
				return
			}
		}(k, c)
	}
	wg.Wait()
	return results
}

// Serve accepts NumClients connections on ln, runs all rounds through the
// shared round engine, distributes the final model, and returns it. The
// listener is closed on return and when ctx is cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) (final []float64, err error) {
	defer func() {
		if cerr := ln.Close(); cerr != nil && err == nil && !errors.Is(cerr, net.ErrClosed) {
			err = fmt.Errorf("fed: closing listener: %w", cerr)
		}
	}()

	// Unblock Accept on cancellation.
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()

	clients := make([]*clientConn, 0, s.cfg.NumClients)
	defer func() {
		for _, c := range clients {
			_ = c.conn.Close()
		}
	}()

	for len(clients) < s.cfg.NumClients {
		conn, aerr := ln.Accept()
		if aerr != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("fed: cancelled while waiting for clients: %w", ctx.Err())
			}
			return nil, fmt.Errorf("fed: accept: %w", aerr)
		}
		c := &clientConn{
			id:   len(clients),
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		}
		// The join handshake is always bounded, even when rounds are not:
		// an unauthenticated peer that connects and sends nothing (port
		// scanner, health check) must not wedge the sequential accept loop.
		joinBound := s.cfg.RoundTimeout
		if joinBound <= 0 {
			joinBound = joinTimeout
		}
		var hello envelope
		// The bound derives from the round context rather than wall-clock
		// arithmetic on the socket: joinCtx expires after joinBound or as
		// soon as the server's own ctx (with any deadline it carries) is
		// done, and either way the AfterFunc forces an already-expired
		// read deadline so the handshake read unblocks immediately.
		joinCtx, cancelJoin := context.WithTimeout(ctx, joinBound)
		stopJoin := context.AfterFunc(joinCtx, func() { _ = conn.SetReadDeadline(time.Unix(1, 0)) })
		derr := c.dec.Decode(&hello)
		stopJoin()
		cancelJoin()
		if derr != nil || hello.Type != msgJoin {
			_ = conn.Close()
			continue // malformed joiner; keep waiting
		}
		_ = conn.SetReadDeadline(time.Time{})
		if werr := c.enc.Encode(envelope{Type: msgJoinAck, Client: c.id}); werr != nil {
			_ = conn.Close()
			continue
		}
		clients = append(clients, c)
	}

	engine, err := NewEngine(EngineConfig{
		Aggregator:     s.cfg.Aggregator,
		Scorer:         s.cfg.Scorer,
		MinClients:     s.cfg.MinClients,
		ClientFraction: s.cfg.ClientFraction,
		RoundTimeout:   s.cfg.RoundTimeout,
		SampleSeed:     s.cfg.SampleSeed,
		OnRound:        s.cfg.OnRound,
	}, s.cfg.Initial, &tcpTransport{clients: clients})
	if err != nil {
		return nil, err
	}
	if err := engine.Run(ctx, s.cfg.Rounds); err != nil {
		s.broadcastError(clients, err.Error())
		return nil, err
	}

	global := engine.Global()
	for _, c := range clients {
		if werr := c.enc.Encode(envelope{Type: msgDone, Params: global}); werr != nil {
			return nil, fmt.Errorf("fed: sending final model to client %d: %w", c.id, werr)
		}
	}
	return global, nil
}

func (s *Server) broadcastError(clients []*clientConn, msg string) {
	for _, c := range clients {
		_ = c.enc.Encode(envelope{Type: msgError, Error: msg})
	}
}

// RunClient connects to a federation server at addr, participates in every
// round with the given trainer, and returns the final global model.
func RunClient(ctx context.Context, addr string, trainer LocalTrainer) ([]float64, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: dialing %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()

	// Unblock blocking reads/writes on cancellation.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(envelope{Type: msgJoin}); err != nil {
		return nil, fmt.Errorf("fed: sending join: %w", err)
	}
	var ack envelope
	if err := dec.Decode(&ack); err != nil {
		return nil, fmt.Errorf("fed: reading join ack: %w", err)
	}
	if ack.Type != msgJoinAck {
		return nil, fmt.Errorf("fed: unexpected join reply type %d", ack.Type)
	}
	id := ack.Client

	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("fed: cancelled: %w", ctx.Err())
			}
			return nil, fmt.Errorf("fed: reading server message: %w", err)
		}
		switch env.Type {
		case msgTrain:
			update, terr := trainer.TrainRound(ctx, env.Round, env.Params)
			if terr != nil {
				_ = enc.Encode(envelope{Type: msgError, Error: terr.Error()})
				return nil, fmt.Errorf("fed: local training round %d: %w", env.Round, terr)
			}
			update.ClientID = id
			update.Round = env.Round
			if err := enc.Encode(envelope{Type: msgUpdate, Update: update}); err != nil {
				return nil, fmt.Errorf("fed: sending update: %w", err)
			}
		case msgDone:
			return env.Params, nil
		case msgError:
			return nil, fmt.Errorf("fed: server error: %s", env.Error)
		default:
			return nil, fmt.Errorf("fed: unexpected message type %d", env.Type)
		}
	}
}
