package fed

import (
	"bytes"
	"context"
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"
)

// dribbleClient is a hand-rolled wire client whose gob encoding goes through
// a buffer first, so tests control exactly how many bytes of a message reach
// the server and when — the tool for reproducing mid-message straggler
// drops.
type dribbleClient struct {
	conn net.Conn
	buf  bytes.Buffer
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialDribble(t *testing.T, addr string) *dribbleClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	c := &dribbleClient{conn: conn, dec: gob.NewDecoder(conn)}
	c.enc = gob.NewEncoder(&c.buf)
	return c
}

// send encodes env and writes all of its bytes at once.
func (c *dribbleClient) send(t *testing.T, env envelope) {
	t.Helper()
	if err := c.enc.Encode(env); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := c.conn.Write(c.buf.Bytes()); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.buf.Reset()
}

// sendSplit encodes env, writes the first half of its bytes, waits for the
// release signal, then writes the rest. Between the two writes the server's
// decoder sits mid-message.
func (c *dribbleClient) sendSplit(t *testing.T, env envelope, release <-chan struct{}) {
	t.Helper()
	if err := c.enc.Encode(env); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := c.buf.Bytes()
	half := len(raw) / 2
	if half == 0 {
		t.Fatal("message too short to split")
	}
	if _, err := c.conn.Write(raw[:half]); err != nil {
		t.Fatalf("write first half: %v", err)
	}
	<-release
	if _, err := c.conn.Write(raw[half:]); err != nil {
		t.Fatalf("write second half: %v", err)
	}
	c.buf.Reset()
}

func (c *dribbleClient) recv(t *testing.T) envelope {
	t.Helper()
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return env
}

// TestTCPStragglerRejoinsAfterDrop is the regression test for the stream
// corruption on straggler drop: client B delivers only half of its round-0
// update before the round deadline, so round 0 completes without it while
// the server's decoder is mid-message. Once B finishes the write, the update
// must be decoded whole and discarded as stale — and B must participate in
// rounds 1 and 2 normally. (The old implementation aborted the in-flight
// decode via a read deadline, leaving partial bytes consumed; the re-sync
// read then decoded garbage and the client was lost for good.)
func TestTCPStragglerRejoinsAfterDrop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rounds := make(chan RoundInfo, 3)
	srv, err := NewServer(ServerConfig{
		Rounds:       3,
		NumClients:   2,
		MinClients:   1,
		Initial:      []float64{0},
		RoundTimeout: 500 * time.Millisecond,
		OnRound:      func(ri RoundInfo) { rounds <- ri },
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	serverDone := make(chan struct{})
	var serverErr error
	go func() {
		defer close(serverDone)
		_, serverErr = srv.Serve(ctx, ln)
	}()

	addr := ln.Addr().String()

	// Client A: a healthy stub participating in every round.
	clientADone := make(chan error, 1)
	go func() {
		tr := &stubTrainer{id: 0, params: []float64{1}, samples: 10}
		_, err := RunClient(ctx, addr, tr)
		clientADone <- err
	}()

	// Client B: the straggler, driven from this goroutine.
	release := make(chan struct{})
	clientBDone := make(chan error, 1)
	go func() {
		defer close(clientBDone)
		b := dialDribble(t, addr)
		b.send(t, envelope{Type: msgJoin})
		ack := b.recv(t)
		if ack.Type != msgJoinAck {
			t.Errorf("join reply type = %d, want ack", ack.Type)
			return
		}
		id := ack.Client

		train0 := b.recv(t)
		if train0.Type != msgTrain || train0.Round != 0 {
			t.Errorf("first message = type %d round %d, want train round 0", train0.Type, train0.Round)
			return
		}
		// Deliver only half of the round-0 update, hold until round 0 has
		// completed without us, then deliver the rest (now stale).
		b.sendSplit(t, envelope{Type: msgUpdate, Update: ModelUpdate{
			ClientID: id, Round: 0, Params: []float64{2}, NumSamples: 10,
		}}, release)

		// Rounds 1 and 2: respond promptly like a recovered client.
		for want := 1; want <= 2; want++ {
			env := b.recv(t)
			if env.Type != msgTrain || env.Round != want {
				t.Errorf("message = type %d round %d, want train round %d", env.Type, env.Round, want)
				return
			}
			b.send(t, envelope{Type: msgUpdate, Update: ModelUpdate{
				ClientID: id, Round: env.Round, Params: []float64{2}, NumSamples: 10,
			}})
		}
		if fin := b.recv(t); fin.Type != msgDone {
			t.Errorf("final message type = %d, want done", fin.Type)
		}
	}()

	// Round 0 must complete with B dropped at the deadline.
	var ri RoundInfo
	select {
	case ri = <-rounds:
	case <-ctx.Done():
		t.Fatal("timed out waiting for round 0")
	}
	if len(ri.Updates) != 1 || len(ri.Dropped) != 1 {
		t.Fatalf("round 0: %d updates, dropped %v; want 1 update and 1 dropped straggler",
			len(ri.Updates), ri.Dropped)
	}
	close(release) // B finishes its stale write and rejoins

	// Rounds 1 and 2 must aggregate both clients again.
	for want := 1; want <= 2; want++ {
		select {
		case ri = <-rounds:
		case <-ctx.Done():
			t.Fatalf("timed out waiting for round %d", want)
		}
		if ri.Round != want {
			t.Fatalf("round = %d, want %d", ri.Round, want)
		}
		if len(ri.Updates) != 2 {
			t.Errorf("round %d: %d updates, want 2 (straggler should have rejoined)", want, len(ri.Updates))
		}
	}

	<-serverDone
	if serverErr != nil {
		t.Fatalf("server failed: %v", serverErr)
	}
	if err := <-clientADone; err != nil {
		t.Fatalf("client A failed: %v", err)
	}
	<-clientBDone
}

// TestTCPFinalFanOutDeliversToAll checks the msgDone fan-out: a failed write
// to one client must not stop delivery to the others, and the failures must
// be reported joined rather than first-only.
func TestTCPFinalFanOutDeliversToAll(t *testing.T) {
	mk := func(id int) (*clientConn, net.Conn) {
		server, client := net.Pipe()
		return &clientConn{id: id, conn: server, enc: gob.NewEncoder(server), dec: gob.NewDecoder(server)}, client
	}
	c0, peer0 := mk(0)
	c1, peer1 := mk(1)
	c2, peer2 := mk(2)
	_ = peer1.Close() // client 1 is gone; writes to it fail
	_ = c1.conn.Close()

	got := make(chan []float64, 2)
	for _, peer := range []net.Conn{peer0, peer2} {
		go func(peer net.Conn) {
			var env envelope
			if err := gob.NewDecoder(peer).Decode(&env); err != nil {
				t.Errorf("peer decode: %v", err)
				got <- nil
				return
			}
			got <- env.Params
		}(peer)
	}

	s := &Server{}
	err := s.distributeFinal([]*clientConn{c0, c1, c2}, []float64{42})
	if err == nil {
		t.Fatal("expected an error for the closed client")
	}
	if !strings.Contains(err.Error(), "client 1") {
		t.Errorf("error %q does not identify client 1", err)
	}

	for i := 0; i < 2; i++ {
		select {
		case params := <-got:
			if len(params) != 1 || params[0] != 42 {
				t.Errorf("delivered params = %v, want [42]", params)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a healthy client never received the final model")
		}
	}
}

// TestTCPJoinNotBlockedBySilentPeer checks that the join handshake runs
// per-connection: a peer that connects first and never sends its hello must
// not head-of-line-block the real clients, which join and complete the whole
// federation while the silent peer is still inside its own join bound.
func TestTCPJoinNotBlockedBySilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Rounds:     2,
		NumClients: 2,
		Initial:    []float64{0},
		// Also the join bound: far longer than the whole test should take.
		RoundTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()

	// The silent peer connects first and sends nothing.
	silent, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = silent.Close() }()

	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx, ln)
		serverDone <- err
	}()

	start := time.Now()
	clientDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			tr := &stubTrainer{id: i, params: []float64{float64(i + 1)}, samples: 10}
			_, err := RunClient(ctx, ln.Addr().String(), tr)
			clientDone <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-clientDone:
			if err != nil {
				t.Fatalf("client failed: %v", err)
			}
		case <-ctx.Done():
			t.Fatal("timed out waiting for clients (join blocked by silent peer?)")
		}
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server failed: %v", err)
	}
	// With the old sequential join this took the full join bound (30s);
	// concurrent handshakes finish in milliseconds. Leave generous slack for
	// loaded CI machines while still catching a head-of-line block.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("federation took %v; the silent peer head-of-line-blocked the join", elapsed)
	}
}
