package lint_test

import (
	"path/filepath"
	"testing"

	"goldfish/internal/lint"
	"goldfish/internal/lint/linttest"
)

func testdata(dir string) string {
	return filepath.Join("testdata", "src", dir)
}

// TestDeterminism pins the determinism analyzer on a package inside the
// report-producing scope: wall clocks, shared rand, and map-order leaks are
// flagged; seeded generators, sorted collects and directive-suppressed lines
// are not.
func TestDeterminism(t *testing.T) {
	linttest.Run(t, testdata("determinism"), "goldfish/internal/scenario/linttestdata", lint.DeterminismAnalyzer)
}

// TestDeterminismUnscoped loads the same kind of nondeterminism under an
// import path outside the report-producing scope: the analyzer must stay
// silent (the testdata has no want comments, so any diagnostic fails).
func TestDeterminismUnscoped(t *testing.T) {
	linttest.Run(t, testdata("determinism_unscoped"), "goldfish/internal/bench/linttestdata", lint.DeterminismAnalyzer)
}

// TestRegistry pins registration discipline: init-only literal kebab names,
// forwarding wrappers as the one exception, and lookup errors listing the
// registry's Types().
func TestRegistry(t *testing.T) {
	linttest.Run(t, testdata("registry"), "goldfish/internal/lint/linttestdata/registry", lint.RegistryAnalyzer)
}

// TestErrwrap pins the prefix-or-%w rule inside the scenario scope.
func TestErrwrap(t *testing.T) {
	linttest.Run(t, testdata("errwrap"), "goldfish/internal/scenario/linttestdata", lint.ErrwrapAnalyzer)
}

// TestErrwrapUnscoped pins that only the global errors.New(fmt.Sprintf(…))
// rule applies outside the scoped packages.
func TestErrwrapUnscoped(t *testing.T) {
	linttest.Run(t, testdata("errwrap_unscoped"), "goldfish/internal/bench/linttestdata", lint.ErrwrapAnalyzer)
}

// TestConcurrency pins the Scorer/Prober contract checks: unguarded aliased
// receiver writes are flagged; mutex-guarded, atomic, read-only and
// copy-local writes are not.
func TestConcurrency(t *testing.T) {
	linttest.Run(t, testdata("concurrency"), "goldfish/internal/lint/linttestdata/concurrency", lint.ConcurrencyAnalyzer)
}
