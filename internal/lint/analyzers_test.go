package lint_test

import (
	"path/filepath"
	"testing"

	"goldfish/internal/lint"
	"goldfish/internal/lint/linttest"
)

func testdata(dir string) string {
	return filepath.Join("testdata", "src", dir)
}

// TestDeterminism pins the determinism analyzer on a package inside the
// report-producing scope: wall clocks, shared rand, and map-order leaks are
// flagged; seeded generators, sorted collects and directive-suppressed lines
// are not.
func TestDeterminism(t *testing.T) {
	linttest.Run(t, testdata("determinism"), "goldfish/internal/scenario/linttestdata", lint.DeterminismAnalyzer)
}

// TestDeterminismUnscoped loads the same kind of nondeterminism under an
// import path outside the report-producing scope: the analyzer must stay
// silent (the testdata has no want comments, so any diagnostic fails).
func TestDeterminismUnscoped(t *testing.T) {
	linttest.Run(t, testdata("determinism_unscoped"), "goldfish/internal/bench/linttestdata", lint.DeterminismAnalyzer)
}

// TestDeterminismObsAllowlist loads wall-clock reads under the internal/obs
// import path: the clock rule is exempted there (obs is the observability
// side channel that owns the clock) while the shared-rand and map-order
// rules still fire, proving the allowlist is clock-only, not package-wide.
func TestDeterminismObsAllowlist(t *testing.T) {
	linttest.Run(t, testdata("determinism_obs"), "goldfish/internal/obs/linttestdata", lint.DeterminismAnalyzer)
}

// TestRegistry pins registration discipline: init-only literal kebab names,
// forwarding wrappers as the one exception, and lookup errors listing the
// registry's Types().
func TestRegistry(t *testing.T) {
	linttest.Run(t, testdata("registry"), "goldfish/internal/lint/linttestdata/registry", lint.RegistryAnalyzer)
}

// TestErrwrap pins the prefix-or-%w rule inside the scenario scope.
func TestErrwrap(t *testing.T) {
	linttest.Run(t, testdata("errwrap"), "goldfish/internal/scenario/linttestdata", lint.ErrwrapAnalyzer)
}

// TestErrwrapUnscoped pins that only the global errors.New(fmt.Sprintf(…))
// rule applies outside the scoped packages.
func TestErrwrapUnscoped(t *testing.T) {
	linttest.Run(t, testdata("errwrap_unscoped"), "goldfish/internal/bench/linttestdata", lint.ErrwrapAnalyzer)
}

// TestErrdrop pins the discarded-error rule inside the scoped packages:
// blank assigns and ignored error returns are flagged; the fmt print family,
// never-fail writers, defers and //goldfish:errok lines are not.
func TestErrdrop(t *testing.T) {
	linttest.Run(t, testdata("errdrop"), "goldfish/internal/scenario/linttestdata/errdrop", lint.ErrdropAnalyzer)
}

// TestErrdropUnscoped pins that the rule is silent outside ErrdropScopes.
func TestErrdropUnscoped(t *testing.T) {
	linttest.Run(t, testdata("errdrop_unscoped"), "goldfish/internal/bench/linttestdata/errdrop", lint.ErrdropAnalyzer)
}

// TestGoleak pins the join/cancellation-edge rule: joinless goroutines
// (literal and named-callee through the call graph) are flagged; WaitGroup
// Done, ctx.Done/Err, package-closed channel receives, result sends and
// //goldfish:goleakok lines are not.
func TestGoleak(t *testing.T) {
	linttest.Run(t, testdata("goleak"), "goldfish/internal/lint/linttestdata/goleak", lint.GoleakAnalyzer)
}

// TestDeletedFlow pins the deletion-taint contract: original-row accessor
// results (direct, range/append-derived, and seeded entry-point parameters)
// reaching a training sink are flagged; remapped-through-the-chokepoint,
// directive-suppressed and untainted flows are not.
func TestDeletedFlow(t *testing.T) {
	linttest.Run(t, testdata("deletedflow"), "goldfish/internal/unlearn/linttestdata/deletedflow", lint.DeletedFlowAnalyzer)
}

// TestDeletedFlowUnscoped pins that the contract is silent outside the
// deletedflow scope (and in particular that the facade's exact-match scoping
// does not swallow the whole module).
func TestDeletedFlowUnscoped(t *testing.T) {
	linttest.Run(t, testdata("deletedflow_unscoped"), "goldfish/internal/bench/linttestdata/deletedflow", lint.DeletedFlowAnalyzer)
}

// TestConcurrency pins the Scorer/Prober contract checks: unguarded aliased
// receiver writes are flagged; mutex-guarded, atomic, read-only and
// copy-local writes are not.
func TestConcurrency(t *testing.T) {
	linttest.Run(t, testdata("concurrency"), "goldfish/internal/lint/linttestdata/concurrency", lint.ConcurrencyAnalyzer)
}

// TestHotPathAlloc pins the call-graph-aware allocation rule inside the
// scoped packages: builtins, composite literals and constructor calls
// reachable from a //goldfish:hotpath root are flagged; //goldfish:coldpath
// cuts subtrees out of reachability and //goldfish:allocok vouches for lines.
func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, testdata("hotpathalloc"), "goldfish/internal/tensor/linttestdata/hotpathalloc", lint.HotPathAllocAnalyzer)
}

// TestCtxFlow pins both context rules against a package inside the sink
// scope: manufactured Background/TODO contexts with a parameter in scope,
// and context parameters accepted but never used on a path to the sink
// layer; //goldfish:ctxok opts out per line or per declaration.
func TestCtxFlow(t *testing.T) {
	linttest.Run(t, testdata("ctxflow"), "goldfish/internal/fed/linttestdata/ctxflow", lint.CtxFlowAnalyzer)
}

// TestLockOrder pins the interprocedural acquisition-order rule: direct and
// call-graph-transitive opposite-order pairs and self-re-entry are flagged;
// a consistent global order is silent; //goldfish:lockok removes an edge.
func TestLockOrder(t *testing.T) {
	linttest.Run(t, testdata("lockorder"), "goldfish/internal/lint/linttestdata/lockorder", lint.LockOrderAnalyzer)
}

// TestAPISurfaceMatch loads a fixture under import path "goldfish" whose
// committed golden matches its surface: the gate stays silent.
func TestAPISurfaceMatch(t *testing.T) {
	linttest.Run(t, testdata("apisurface"), "goldfish", lint.APISurfaceAnalyzer)
}

// TestAPISurfaceMissing pins the demand for a golden when none is committed.
func TestAPISurfaceMissing(t *testing.T) {
	linttest.Run(t, testdata("apisurface_missing"), "goldfish", lint.APISurfaceAnalyzer)
}

// TestAPISurfaceMismatch pins the first-difference report against a stale
// golden.
func TestAPISurfaceMismatch(t *testing.T) {
	linttest.Run(t, testdata("apisurface_mismatch"), "goldfish", lint.APISurfaceAnalyzer)
}

// TestAPISurfaceAPIOK pins the //goldfish:apiok mid-refactor escape on the
// package clause: even a missing golden stays silent.
func TestAPISurfaceAPIOK(t *testing.T) {
	linttest.Run(t, testdata("apisurface_apiok"), "goldfish", lint.APISurfaceAnalyzer)
}
