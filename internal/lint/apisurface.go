package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// APISurfaceGolden is the module-relative path of the exported-surface
// golden for the root goldfish package.
const APISurfaceGolden = "api/goldfish.txt"

// APISurfaceRegenHint tells a failing CI run how to accept an intentional
// surface change.
const APISurfaceRegenHint = "go test ./internal/lint -run TestAPISurface -update"

// APISurfaceAnalyzer byte-compares the root package's exported surface
// against the committed golden.
var APISurfaceAnalyzer = &Analyzer{
	Name: "apisurface",
	Doc: `gate the root package's exported API against a committed golden

The exported surface of package goldfish is the contract every embedder,
scenario spec and CLI builds on; a renamed method or a changed signature must
be an explicit, reviewed diff, not an accident noticed downstream. This
analyzer renders the package's exported consts, vars, funcs, types, fields
and methods into a canonical text form and byte-compares it against
api/goldfish.txt next to the package. Regenerate deliberately with
` + "`" + APISurfaceRegenHint + "`" + `. A //goldfish:apiok directive on the
package clause line opts out — a mid-refactor escape only.`,
	Run: runAPISurface,
}

func runAPISurface(pass *Pass) error {
	if pass.Pkg.Path != "goldfish" || len(pass.Pkg.Files) == 0 {
		return nil
	}
	first := pass.Pkg.Files[0]
	apiOK := directiveLines(pass.Pkg.Fset, first, APIOKDirective)
	if apiOK[pass.Pkg.Fset.Position(first.Package).Line] {
		return nil
	}
	dir := filepath.Dir(pass.Pkg.Fset.Position(first.Pos()).Filename)
	goldenPath := filepath.Join(dir, filepath.FromSlash(APISurfaceGolden))
	got := Surface(pass.Pkg)
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		pass.Reportf(first.Package, "exported API surface golden %s is missing; generate it with %q",
			APISurfaceGolden, APISurfaceRegenHint)
		return nil
	}
	if got == string(want) {
		return nil
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	detail := "length differs"
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			detail = fmt.Sprintf("first difference at line %d: have %q, golden %q", i+1, g, w)
			break
		}
	}
	pass.Reportf(first.Package, "exported API surface differs from %s (%s); if intentional, regenerate with %q",
		APISurfaceGolden, detail, APISurfaceRegenHint)
	return nil
}

// Surface renders the package's exported API in a canonical, deterministic
// text form: one header line, then every exported const, var, func and type
// in scope order (alphabetical), with exported struct fields, interface
// methods and the exported method set indented under each type. Types from
// other packages print with their full import paths; the package's own types
// print bare.
func Surface(pkg *Package) string {
	var b strings.Builder
	qual := types.RelativeTo(pkg.Pkg)
	fmt.Fprintf(&b, "package %s // import %q\n", pkg.Name, pkg.Path)
	scope := pkg.Pkg.Scope()
	for _, name := range scope.Names() {
		if !token.IsExported(name) {
			continue
		}
		switch o := scope.Lookup(name).(type) {
		case *types.Const:
			fmt.Fprintf(&b, "const %s %s = %s\n", name, types.TypeString(o.Type(), qual), o.Val())
		case *types.Var:
			fmt.Fprintf(&b, "var %s %s\n", name, types.TypeString(o.Type(), qual))
		case *types.Func:
			fmt.Fprintf(&b, "func %s%s\n", name, signatureString(o.Type().(*types.Signature), qual))
		case *types.TypeName:
			writeTypeSurface(&b, o, qual)
		}
	}
	return b.String()
}

func writeTypeSurface(b *strings.Builder, o *types.TypeName, qual types.Qualifier) {
	name := o.Name()
	if o.IsAlias() {
		// Unalias so the right-hand side names the aliased type (with its
		// package path), not the alias itself.
		fmt.Fprintf(b, "type %s = %s\n", name, types.TypeString(types.Unalias(o.Type()), qual))
	} else {
		switch u := o.Type().Underlying().(type) {
		case *types.Struct:
			fmt.Fprintf(b, "type %s struct\n", name)
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() {
					continue
				}
				line := fmt.Sprintf("    %s %s", f.Name(), types.TypeString(f.Type(), qual))
				if tag := u.Tag(i); tag != "" {
					line += " " + fmt.Sprintf("%q", tag)
				}
				fmt.Fprintln(b, line)
			}
		case *types.Interface:
			fmt.Fprintf(b, "type %s interface\n", name)
			var methods []string
			for i := 0; i < u.NumMethods(); i++ {
				m := u.Method(i)
				if !m.Exported() {
					continue
				}
				methods = append(methods, fmt.Sprintf("    %s%s", m.Name(), signatureString(m.Type().(*types.Signature), qual)))
			}
			sort.Strings(methods)
			for _, m := range methods {
				fmt.Fprintln(b, m)
			}
		default:
			fmt.Fprintf(b, "type %s %s\n", name, types.TypeString(u, qual))
		}
	}
	// Exported method set through a pointer receiver — the superset callers
	// see. Rendered for aliases too: methods reachable through the alias are
	// part of the surface the alias exposes.
	var methods []string
	mset := types.NewMethodSet(types.NewPointer(o.Type()))
	for i := 0; i < mset.Len(); i++ {
		fn, ok := mset.At(i).Obj().(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		recv := ""
		if sig.Recv() != nil {
			recv = types.TypeString(sig.Recv().Type(), qual)
		}
		methods = append(methods, fmt.Sprintf("    func (%s) %s%s", recv, fn.Name(), signatureString(sig, qual)))
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Fprintln(b, m)
	}
}

// signatureString renders a signature without its receiver and without the
// leading "func" keyword: "(opts ...Option) (*Engine, error)".
func signatureString(sig *types.Signature, qual types.Qualifier) string {
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return strings.TrimPrefix(types.TypeString(noRecv, qual), "func")
}
