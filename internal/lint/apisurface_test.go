package lint_test

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"goldfish/internal/lint"
)

// update regenerates api/goldfish.txt instead of comparing against it:
//
//	go test ./internal/lint -run TestAPISurface -update
var update = flag.Bool("update", false, "rewrite api/goldfish.txt from the current exported surface")

// TestAPISurface byte-compares the root package's rendered exported surface
// against the committed golden, so a public API change is always an explicit
// reviewed diff. The apisurface analyzer applies the same comparison inside
// the repo-wide lint run; this test owns the -update regeneration path.
func TestAPISurface(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list -export")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir := filepath.Dir(strings.TrimSpace(string(out)))
	loader, err := lint.NewLoader(moduleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("goldfish")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for pattern goldfish, want 1", len(pkgs))
	}
	got := lint.Surface(pkgs[0])
	goldenPath := filepath.Join(moduleDir, filepath.FromSlash(lint.APISurfaceGolden))
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", lint.APISurfaceGolden, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden %s (generate with %s): %v", lint.APISurfaceGolden, lint.APISurfaceRegenHint, err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Errorf("surface line %d:\n  have: %s\n  want: %s", i+1, g, w)
			}
		}
		t.Fatalf("exported API surface differs from %s; if intentional, regenerate with: %s",
			lint.APISurfaceGolden, lint.APISurfaceRegenHint)
	}
}
