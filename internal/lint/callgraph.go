package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under goldfishlint: a static call
// graph over every loaded package, built once per lint.Run and shared by the
// analyzers through Pass.Prog. The graph is a deliberate over-approximation
// (class-hierarchy-analysis style): an interface method call edges to every
// loaded method with the same name and receiver-stripped signature, and a
// call through a function value edges to every address-taken function or
// literal with a matching signature. Over-approximation is the right
// direction for the contracts built on top — a hot-path allocation that is
// only *possibly* reachable from a round loop still deserves a look — and
// every verdict has a per-line escape directive.
//
// Nodes are keyed by strings, not object identity: packages are type-checked
// separately, so the *types.Func for one function differs between its
// source-checked and export-data-imported incarnations, but
// (*types.Func).FullName and the normalized signature strings agree across
// both. Function literals are their own nodes (key: enclosing key + "$" +
// lexical index) so a hot closure returned by a cold constructor keeps its
// own temperature.

// FuncNode is one function, method, function literal, or package initializer
// in the call graph.
type FuncNode struct {
	// Key identifies the node: (*types.Func).FullName for declared
	// functions/methods, parent key + "$" + lexical index for function
	// literals, and importPath + ".init#vars" for the synthetic node holding a
	// package's var-initializer expressions.
	Key string
	// Pkg is the loaded package containing the node's source.
	Pkg *Package
	// Decl is the defining *ast.FuncDecl or *ast.FuncLit (nil for the
	// synthetic package-initializer node).
	Decl ast.Node
	// Body is the node's statement body (nil for bodyless decls).
	Body *ast.BlockStmt
	// Hot marks a //goldfish:hotpath root; Cold a //goldfish:coldpath cut.
	Hot, Cold bool
	// Calls are the callee keys, sorted and deduplicated. Keys may name
	// functions outside the loaded packages (stdlib, export-data-only); those
	// have no FuncNode and terminate traversals.
	Calls []string
}

// Program is the whole-load call graph plus memoized derived queries.
type Program struct {
	// Pkgs are the packages the program was built from, in load order.
	Pkgs []*Package
	// Nodes maps node key to node for every function with loaded source.
	Nodes map[string]*FuncNode

	byDecl map[ast.Node]*FuncNode
	memo   map[string]any
}

// NodeOf returns the call-graph node for a FuncDecl or FuncLit of a loaded
// package, or nil.
func (p *Program) NodeOf(decl ast.Node) *FuncNode { return p.byDecl[decl] }

// InspectOwn walks the node's own body in source order, not descending into
// nested function literals — those are separate nodes with their own
// reachability verdicts.
func (n *FuncNode) InspectOwn(f func(ast.Node) bool) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return f(x)
	})
}

// Memo returns the cached value under key, computing and caching it on first
// use. Analyzers use it for whole-program results (hot sets, lock graphs)
// that must not be recomputed per package.
func (p *Program) Memo(key string, compute func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := compute()
	p.memo[key] = v
	return v
}

// Keys returns every node key, sorted.
func (p *Program) Keys() []string {
	keys := make([]string, 0, len(p.Nodes))
	for k := range p.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Edges enumerates the call graph as "caller -> callee" strings in a
// deterministic order: node keys sorted, then each node's callees in their
// stored sorted order. Two builds over the same sources must produce
// identical enumerations — a property the test suite pins, since analyzer
// output ordering (and therefore CI byte-diffs) rides on it.
func (p *Program) Edges() []string {
	var edges []string
	for _, k := range p.Keys() {
		for _, callee := range p.Nodes[k].Calls {
			edges = append(edges, k+" -> "+callee)
		}
	}
	return edges
}

// HotPaths returns, for every node reachable from a //goldfish:hotpath root
// without passing through a //goldfish:coldpath cut, the key of the root it
// was first reached from (roots map to themselves). Breadth-first from the
// sorted root list, so provenance is deterministic.
func (p *Program) HotPaths() map[string]string {
	return p.Memo("hotpaths", func() any {
		from := map[string]string{}
		var queue []string
		for _, k := range p.Keys() {
			n := p.Nodes[k]
			if n.Hot && !n.Cold {
				from[k] = k
				queue = append(queue, k)
			}
		}
		for len(queue) > 0 {
			k := queue[0]
			queue = queue[1:]
			node, ok := p.Nodes[k]
			if !ok {
				continue
			}
			for _, callee := range node.Calls {
				if _, seen := from[callee]; seen {
					continue
				}
				cn, loaded := p.Nodes[callee]
				if !loaded || cn.Cold {
					continue
				}
				from[callee] = from[k]
				queue = append(queue, callee)
			}
		}
		return from
	}).(map[string]string)
}

// ReachesAny returns the set of node keys from which any of the target keys
// is reachable (targets included). Used by ctxflow to find the functions
// that sit on a path into the transport/engine layer.
func (p *Program) ReachesAny(targets map[string]bool) map[string]bool {
	// Reverse adjacency, then BFS from the targets.
	rev := map[string][]string{}
	for _, k := range p.Keys() {
		for _, callee := range p.Nodes[k].Calls {
			rev[callee] = append(rev[callee], k)
		}
	}
	reaches := map[string]bool{}
	var queue []string
	for _, k := range p.Keys() {
		if targets[k] {
			reaches[k] = true
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, caller := range rev[k] {
			if !reaches[caller] {
				reaches[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return reaches
}

// BuildProgram constructs the call graph over the loaded packages. Two
// passes: the first creates nodes and global indexes (methods by
// name+signature for interface dispatch, address-taken functions by
// signature for function-value calls), the second resolves every call site
// against them.
func BuildProgram(pkgs []*Package) *Program {
	b := &progBuilder{
		prog: &Program{
			Pkgs:   pkgs,
			Nodes:  map[string]*FuncNode{},
			byDecl: map[ast.Node]*FuncNode{},
			memo:   map[string]any{},
		},
		methods:   map[string][]string{},
		addrTaken: map[string][]string{},
	}
	for _, pkg := range pkgs {
		b.collectPackage(pkg)
	}
	// Interface method values (x.M with x an interface, used as a value)
	// dispatch dynamically; expand them against the method index only after
	// every package contributed its methods.
	for _, fn := range b.pendingIface {
		if sig, ok := fn.Type().(*types.Signature); ok {
			k := sigKey(sig)
			b.addrTaken[k] = append(b.addrTaken[k], b.methods[fn.Name()+"|"+k]...)
		}
	}
	// The value-flow layer (flow.go) sharpens function-value dispatch: calls
	// through a tracked parameter, variable, field or return value resolve to
	// the values that actually flow there instead of every same-signature
	// function in the module.
	b.flow = b.buildFlow()
	for _, n := range b.order {
		b.resolveCalls(n)
	}
	return b.prog
}

type progBuilder struct {
	prog  *Program
	order []*FuncNode
	// methods indexes loaded concrete methods by name + "|" + sigKey for
	// CHA-style interface dispatch.
	methods map[string][]string
	// addrTaken indexes address-taken functions, methods and every function
	// literal by sigKey for function-value dispatch.
	addrTaken map[string][]string
	// pendingIface holds interface method values whose concrete expansion
	// waits until the method index is complete.
	pendingIface []*types.Func
	// flow is the value-flow graph used to sharpen function-value dispatch.
	flow *flowGraph
}

// funcKey names a declared function or method: (*types.Func).FullName, which
// is stable across source-checked and export-data-imported instances of the
// same function. (init functions share the FullName "pkg.init"; their nodes
// are disambiguated with a per-package sequence number at creation.)
func funcKey(fn *types.Func) string {
	return fn.FullName()
}

func (b *progBuilder) addNode(key string, pkg *Package, decl ast.Node, body *ast.BlockStmt) *FuncNode {
	n := &FuncNode{Key: key, Pkg: pkg, Decl: decl, Body: body}
	b.prog.Nodes[key] = n
	if decl != nil {
		b.prog.byDecl[decl] = n
	}
	b.order = append(b.order, n)
	return n
}

func (b *progBuilder) collectPackage(pkg *Package) {
	initSeq := 0
	for _, file := range pkg.Files {
		hot := directiveLines(pkg.Fset, file, HotPathDirective)
		cold := directiveLines(pkg.Fset, file, ColdPathDirective)
		var initNode *FuncNode
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok || d.Body == nil {
					continue
				}
				key := funcKey(fn)
				if d.Name.Name == "init" && d.Recv == nil {
					key = fmt.Sprintf("%s#%d", key, initSeq)
					initSeq++
				}
				n := b.addNode(key, pkg, d, d.Body)
				line := pkg.Fset.Position(d.Pos()).Line
				n.Hot, n.Cold = hot[line], cold[line]
				if d.Recv != nil {
					sig, ok := fn.Type().(*types.Signature)
					if ok {
						id := fn.Name() + "|" + sigKey(sig)
						b.methods[id] = append(b.methods[id], key)
					}
				}
				b.collectLits(n, d.Body, hot, cold)
			case *ast.GenDecl:
				// Package-level var initializers run at program start; they get
				// one synthetic node per file so literals and calls inside them
				// are part of the graph.
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					if initNode == nil {
						initNode = b.addNode(pkg.Path+".init#vars:"+pkg.Fset.Position(file.Pos()).Filename, pkg, nil, nil)
					}
					for _, v := range vs.Values {
						b.collectLitsExpr(initNode, v, hot, cold)
					}
				}
			}
		}
		b.collectAddrTaken(pkg, file)
	}
}

// collectLits creates child nodes for the function literals nested directly
// or transitively in body, keyed by lexical index under their innermost
// enclosing node.
func (b *progBuilder) collectLits(parent *FuncNode, body ast.Node, hot, cold map[int]bool) {
	idx := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		child := b.addNode(fmt.Sprintf("%s$%d", parent.Key, idx), parent.Pkg, lit, lit.Body)
		idx++
		line := parent.Pkg.Fset.Position(lit.Pos()).Line
		child.Hot, child.Cold = hot[line], cold[line]
		if sig, ok := parent.Pkg.Info.Types[lit].Type.(*types.Signature); ok {
			k := sigKey(sig)
			b.addrTaken[k] = append(b.addrTaken[k], child.Key)
		}
		b.collectLits(child, lit.Body, hot, cold)
		return false // children of this lit belong to it, not to parent
	})
}

func (b *progBuilder) collectLitsExpr(parent *FuncNode, expr ast.Expr, hot, cold map[int]bool) {
	b.collectLits(parent, expr, hot, cold)
}

// collectAddrTaken indexes every function or method referenced outside a
// call position — assigned, passed, returned or stored, and therefore
// callable through any function value of the same signature. Selector Sel
// idents are handled through their SelectorExpr only, so a called method is
// never miscounted as a bare reference.
func (b *progBuilder) collectAddrTaken(pkg *Package, file *ast.File) {
	inCallPos := map[ast.Expr]bool{}
	selIdent := map[*ast.Ident]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			inCallPos[unparen(e.Fun)] = true
		case *ast.SelectorExpr:
			selIdent[e.Sel] = true
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if selIdent[e] || inCallPos[ast.Expr(e)] {
				return true
			}
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				b.markAddrTaken(fn)
			}
		case *ast.SelectorExpr:
			if inCallPos[ast.Expr(e)] {
				return true
			}
			if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				b.markAddrTaken(fn)
			}
		}
		return true
	})
}

func (b *progBuilder) markAddrTaken(fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		b.pendingIface = append(b.pendingIface, fn)
		return
	}
	b.addrTaken[sigKey(sig)] = append(b.addrTaken[sigKey(sig)], funcKey(fn))
}

// resolveCalls walks one node's body (stopping at nested literals, which are
// their own nodes) and records its callee keys.
func (b *progBuilder) resolveCalls(n *FuncNode) {
	callees := map[string]bool{}
	edge := func(key string) {
		if key != "" {
			callees[key] = true
		}
	}
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch e := x.(type) {
			case *ast.FuncLit:
				if child := b.prog.byDecl[e]; child != nil {
					// Defining a literal conservatively edges to it: literals
					// handed to unloaded callees (sort.Slice, sync.Once.Do)
					// would otherwise be unreachable from any root.
					edge(child.Key)
				}
				return false
			case *ast.CallExpr:
				b.resolveCallExpr(n, e, edge)
				return true
			}
			return true
		})
	}
	switch {
	case n.Body != nil:
		walk(n.Body)
	case n.Decl == nil:
		// Synthetic var-init node: literals under it already have their edges
		// via collectLits + byDecl, but calls in initializer expressions were
		// not walked. Walk every package-level var value in the node's file.
		// (The node key embeds the filename; match by scanning.)
		for _, file := range n.Pkg.Files {
			if !strings.HasSuffix(n.Key, n.Pkg.Fset.Position(file.Pos()).Filename) {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							walk(v)
						}
					}
				}
			}
		}
	}
	n.Calls = make([]string, 0, len(callees))
	for k := range callees {
		n.Calls = append(n.Calls, k)
	}
	sort.Strings(n.Calls)
}

func (b *progBuilder) resolveCallExpr(n *FuncNode, call *ast.CallExpr, edge func(string)) {
	info := n.Pkg.Info
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	// dynamic resolves a function-value call. The value-flow layer answers
	// precisely when the called expression reads a tracked slot whose contents
	// are fully known; otherwise fall back to every address-taken function
	// with a matching signature (the conservative CHA-style set).
	dynamic := func(t types.Type) {
		if slot := b.flow.callSlot(n.Pkg, fun); slot != nil && !slot.top {
			for key := range slot.keys {
				edge(key)
			}
			return
		}
		sig, ok := t.Underlying().(*types.Signature)
		if !ok {
			return
		}
		for _, key := range b.addrTaken[sigKey(sig)] {
			edge(key)
		}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			edge(funcKey(obj))
		case *types.Var:
			dynamic(obj.Type())
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				recv := sel.Recv()
				if types.IsInterface(recv) {
					// CHA: every loaded method with this name and
					// receiver-stripped signature is a possible callee.
					if sig, ok := fn.Type().(*types.Signature); ok {
						id := fn.Name() + "|" + sigKey(sig)
						for _, key := range b.methods[id] {
							edge(key)
						}
					}
					return
				}
				edge(funcKey(fn))
			case types.FieldVal:
				dynamic(sel.Type())
			}
			return
		}
		// Package-qualified reference: pkg.Fn or pkg.Var.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			edge(funcKey(obj))
		case *types.Var:
			dynamic(obj.Type())
		}
	case *ast.FuncLit:
		if child := b.prog.byDecl[f]; child != nil {
			edge(child.Key)
		}
	default:
		// Call of a call result, index expression, etc.: dispatch on the
		// expression's function type.
		if tv, ok := info.Types[fun]; ok && tv.Type != nil {
			dynamic(tv.Type)
		}
	}
}

// sigKey renders a receiver-stripped signature with full package paths, so
// signatures from source-checked and export-data-imported packages compare
// equal. Parameter and result names are dropped.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(params.At(i).Type(), nil))
	}
	b.WriteString(")(")
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(results.At(i).Type(), nil))
	}
	b.WriteByte(')')
	return b.String()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
