package lint_test

import (
	"slices"
	"strings"
	"testing"

	"goldfish/internal/lint"
	"goldfish/internal/lint/linttest"
)

// cgPath is the synthetic import path of the call-graph fixture package.
const cgPath = "goldfish/internal/lint/linttestdata/callgraph"

// buildCallgraphProgram loads the fixture fresh and builds its Program, so
// each call observes its own map-iteration history.
func buildCallgraphProgram(t *testing.T) *lint.Program {
	t.Helper()
	pkg, err := linttest.Loader(t).LoadDir(testdata("callgraph"), cgPath)
	if err != nil {
		t.Fatal(err)
	}
	return lint.BuildProgram([]*lint.Package{pkg})
}

// TestCallGraphEdges pins the three resolution modes the analyzers depend
// on: interface dispatch over-approximates to every same-signature
// implementation, method values resolve through the flow layer, and calls
// into other module packages produce cross-package edges.
func TestCallGraphEdges(t *testing.T) {
	edges := buildCallgraphProgram(t).Edges()
	want := []string{
		cgPath + ".Dispatch -> (" + cgPath + ".A).Do",
		cgPath + ".Dispatch -> (" + cgPath + ".B).Do",
		cgPath + ".MethodValue -> (" + cgPath + ".A).Do",
		cgPath + ".CrossPackage -> goldfish/internal/stats.Mean",
	}
	for _, w := range want {
		if !slices.Contains(edges, w) {
			t.Errorf("call graph missing edge %q; have:\n%s", w, strings.Join(edges, "\n"))
		}
	}
}

// TestCallGraphDeterminism pins that two independent builds over the same
// sources enumerate Edges() identically — the property analyzer output
// ordering (and CI byte-diffs) rides on.
func TestCallGraphDeterminism(t *testing.T) {
	a := buildCallgraphProgram(t).Edges()
	b := buildCallgraphProgram(t).Edges()
	if !slices.Equal(a, b) {
		t.Errorf("two builds enumerated different edges:\n%s\n\nvs:\n\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}
