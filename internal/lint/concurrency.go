package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcurrencyAnalyzer enforces the fed.Scorer / attack.Prober concurrency
// contracts.
var ConcurrencyAnalyzer = &Analyzer{
	Name: "concurrency",
	Doc: `forbid unguarded receiver writes in concurrently-invoked contract methods

fed.Engine scores client updates concurrently and the scenario engine probes
matrix cells in parallel, so implementations of fed.Scorer.Score
(Score([]float64) (float64, error)) and attack.Prober.SuccessRate
(SuccessRate(*nn.Network) float64) are called from many goroutines at once.
This analyzer flags any assignment to a receiver field inside such a method
unless a receiver-held sync.Mutex/RWMutex is locked on every path before the
write (tracked linearly: a .Lock() earlier in the body with no intervening
.Unlock()). Use a mutex, sync/atomic, or keep the method read-only.`,
	Run: runConcurrency,
}

// contractMethod reports whether decl is one of the concurrently-invoked
// contract methods, matched structurally so the check also applies to
// implementations in packages that never import fed or attack directly.
func contractMethod(info *types.Info, decl *ast.FuncDecl) (string, bool) {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return "", false
	}
	obj, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig := obj.Type().(*types.Signature)
	switch decl.Name.Name {
	case "Score":
		// fed.Scorer: Score(params []float64) (float64, error)
		if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			return "", false
		}
		slice, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
		if !ok || !isBasic(slice.Elem(), types.Float64) {
			return "", false
		}
		if !isBasic(sig.Results().At(0).Type(), types.Float64) {
			return "", false
		}
		named, ok := sig.Results().At(1).Type().(*types.Named)
		if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
			return "", false
		}
		return "fed.Scorer", true
	case "SuccessRate":
		// attack.Prober: SuccessRate(net *nn.Network) float64
		if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
			return "", false
		}
		if _, ok := sig.Params().At(0).Type().Underlying().(*types.Pointer); !ok {
			return "", false
		}
		if !isBasic(sig.Results().At(0).Type(), types.Float64) {
			return "", false
		}
		return "attack.Prober", true
	}
	return "", false
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func runConcurrency(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			contract, ok := contractMethod(info, fd)
			if !ok {
				continue
			}
			recv := receiverObject(info, fd)
			if recv == nil {
				continue // anonymous receiver cannot be written
			}
			checkReceiverWrites(pass, fd, recv, contract)
		}
	}
	return nil
}

// receiverObject returns the receiver variable's object.
func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return info.Defs[names[0]]
}

// mutexEvent is a Lock or Unlock call on a receiver-rooted mutex.
type mutexEvent struct {
	pos  token.Pos
	lock bool
}

// checkReceiverWrites flags receiver-field writes not preceded by a held
// receiver mutex lock. Lock state is tracked by source position: a write at
// pos P is guarded when some recv.<mu>.Lock() occurs before P with no
// non-deferred recv.<mu>.Unlock() between them — the shape every
// mutex-guarded method in the repo takes (Lock at the top, deferred Unlock).
func checkReceiverWrites(pass *Pass, fd *ast.FuncDecl, recv types.Object, contract string) {
	info := pass.Pkg.Info
	var events []mutexEvent
	// Collect Lock/Unlock events on receiver-rooted sync mutexes; Unlocks
	// inside defer statements run at return and never end a guard mid-body.
	deferred := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
			return true
		}
		// The Lock/Unlock must resolve to sync's mutex methods (directly or
		// via embedding) on something rooted at the receiver.
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if !rootedAtReceiver(info, sel.X, recv) {
			return true
		}
		if sel.Sel.Name == "Unlock" && deferred[call] {
			return true
		}
		events = append(events, mutexEvent{pos: call.Pos(), lock: sel.Sel.Name == "Lock"})
		return true
	})
	guarded := func(pos token.Pos) bool {
		held := false
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			held = e.lock
		}
		return held
	}
	report := func(pos token.Pos, field string) {
		pass.Reportf(pos, "%s implementations are called concurrently; writing receiver field %q without holding a mutex is a data race", contract, field)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field, ok := sharedReceiverWrite(info, lhs, recv); ok && !guarded(n.Pos()) {
					report(n.Pos(), field)
				}
			}
		case *ast.IncDecStmt:
			if field, ok := sharedReceiverWrite(info, n.X, recv); ok && !guarded(n.Pos()) {
				report(n.Pos(), field)
			}
		}
		return true
	})
}

// sharedReceiverWrite reports whether assigning to expr mutates state shared
// across concurrent calls: a write reached from the receiver through at
// least one aliasing step (a pointer receiver, a pointer-typed field, a map
// or slice element). A plain field write on a value receiver mutates the
// call's own copy and is not a race.
func sharedReceiverWrite(info *types.Info, expr ast.Expr, recv types.Object) (string, bool) {
	rooted, aliased, field := classifyPath(info, expr, recv)
	if !rooted || !aliased {
		return "", false
	}
	if field == "" {
		field = "*" + recv.Name() // write through the receiver pointer itself
	}
	return field, true
}

// classifyPath walks an lvalue path down to its root, reporting whether it
// starts at the receiver, whether any step aliases shared memory, and the
// outermost field name on the path.
func classifyPath(info *types.Info, expr ast.Expr, recv types.Object) (rooted, aliased bool, field string) {
	switch e := expr.(type) {
	case *ast.Ident:
		// Rebinding the receiver variable itself (s = …) is call-local; the
		// aliasing steps are added by the selector/deref cases above it.
		return info.Uses[e] == recv, false, ""
	case *ast.SelectorExpr:
		rooted, aliased, field = classifyPath(info, e.X, recv)
		if !rooted {
			return false, false, ""
		}
		if isPointerExpr(info, e.X) {
			aliased = true
		}
		if field == "" {
			field = e.Sel.Name
		}
		return rooted, aliased, field
	case *ast.IndexExpr:
		rooted, aliased, field = classifyPath(info, e.X, recv)
		if rooted {
			if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Pointer:
					aliased = true
				}
			}
		}
		return rooted, aliased, field
	case *ast.StarExpr:
		rooted, aliased, field = classifyPath(info, e.X, recv)
		return rooted, rooted, field
	case *ast.ParenExpr:
		return classifyPath(info, e.X, recv)
	default:
		return false, false, ""
	}
}

// isPointerExpr reports whether expr's type is a pointer.
func isPointerExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

// rootedAtReceiver reports whether expr is the receiver identifier, possibly
// through selectors/derefs (recv, recv.mu, (*recv).mu …).
func rootedAtReceiver(info *types.Info, expr ast.Expr, recv types.Object) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return info.Uses[e] == recv
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return false
		}
	}
}
