package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowSinkPrefixes names the packages whose context-taking functions are
// the cancellation sinks: the transport/engine layer, where a dropped
// context means a round that cannot be cancelled or timed out.
var CtxFlowSinkPrefixes = []string{
	"goldfish/internal/fed",
}

// CtxFlowAnalyzer enforces that context.Context parameters are threaded to
// the transport/engine layer, not dropped or replaced.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: `require context parameters to be threaded, not dropped or replaced

Every path from a public API entry into the transport/engine layer
(internal/fed) must carry the caller's context.Context: a round started with
context.Background() cannot be cancelled, timed out, or drained on shutdown.
Two rules. First, a function that has a context parameter in lexical scope
must not manufacture context.Background()/context.TODO() — that replaces the
caller's cancellation. Second, using the call graph, a function whose
signature accepts a context and that reaches (or is) a context-taking
function in the sink layer must actually use its parameter — accepting a
context and then ignoring it silently severs cancellation for every caller.
//goldfish:ctxok suppresses one line (rule one) or, on the declaration line,
one function (rule two) — the escape for deliberate detachment like
fire-and-forget cleanup.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	sinks := ctxSinks(pass.Prog)
	reaches := pass.Prog.Memo("ctxflow.reaches", func() any {
		return pass.Prog.ReachesAny(sinks)
	}).(map[string]bool)
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ctxOK := directiveLines(pass.Pkg.Fset, file, CtxOKDirective)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			param := ctxParam(info, fd.Type)
			if param == nil {
				continue
			}
			// Rule one: no manufactured contexts anywhere in lexical scope of
			// the parameter — nested literals capture it, so they are included.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					if !ctxOK[pass.Pkg.Fset.Position(call.Pos()).Line] {
						pass.Reportf(call.Pos(), "context.%s replaces the %s parameter already in scope; thread it instead (opt out with %s)",
							name, param.Name(), CtxOKDirective)
					}
				}
				return true
			})
			// Rule two: a context-taking function on a path into the sink
			// layer must use its parameter.
			node := pass.Prog.NodeOf(fd)
			if node == nil || !reaches[node.Key] {
				continue
			}
			if param.Name() == "" || param.Name() == "_" {
				continue
			}
			if ctxOK[pass.Pkg.Fset.Position(fd.Pos()).Line] {
				continue
			}
			if !usesObject(fd.Body, info, param) {
				pass.Reportf(fd.Name.Pos(), "%s accepts context parameter %q but never uses it on a path to the transport/engine layer; thread it or annotate %s",
					fd.Name.Name, param.Name(), CtxOKDirective)
			}
		}
	}
	return nil
}

// ctxSinks returns the node keys of loaded context-taking functions in the
// sink packages.
func ctxSinks(prog *Program) map[string]bool {
	return prog.Memo("ctxflow.sinks", func() any {
		sinks := map[string]bool{}
		for _, key := range prog.Keys() {
			n := prog.Nodes[key]
			if n.Pkg == nil || !reportProducing(n.Pkg.Path, CtxFlowSinkPrefixes) {
				continue
			}
			fd, ok := n.Decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ctxParam(n.Pkg.Info, fd.Type) != nil {
				sinks[key] = true
			}
		}
		return sinks
	}).(map[string]bool)
}

// ctxParam returns the declared context.Context parameter's object, or nil.
func ctxParam(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(body ast.Node, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
