package lint

import (
	"go/ast"
	"go/types"
)

// This file is the intraprocedural dataflow layer under goldfishlint: a
// def-use taint engine over one function body, built on the same
// type-checked ASTs the call-graph layer (callgraph.go / flow.go) consumes.
// The engine is flow-insensitive — a variable tainted anywhere in the body
// is tainted everywhere — and iterates assignments to a fixpoint, so taint
// follows chains like `rows := f.RemainingRows(c); uniq := append(uniq, r)`
// without ordering sensitivity. Flow-insensitivity over-approximates, which
// is the right direction for the contracts built on top (deletedflow): a
// value that is even *possibly* an unremapped original-row index deserves a
// look, and every verdict has a per-line escape directive.
//
// Sources, sanitizers and sinks are matched by callee NAME within an
// analyzer-declared package scope — the same convention the registry and
// concurrency analyzers use — so fixture packages under synthetic import
// paths can define their own accessors and the analyzer stays decoupled
// from any one concrete type.

// taintRules parameterizes one taint analysis.
type taintRules struct {
	// sources names calls whose results are tainted (and which taint any
	// value derived from them).
	sources map[string]bool
	// sanitizers names the declared chokepoints: a call to one returns clean
	// values regardless of argument taint.
	sanitizers map[string]bool
	// sinks names calls whose arguments must be clean.
	sinks map[string]bool
	// taintedParams names enclosing functions whose slice-typed parameters
	// are tainted on entry (entry points documented to receive source data).
	taintedParams map[string]bool
}

// taintFact is the origin of one tainted value, carried for the report.
type taintFact struct {
	origin string
}

// funcTaint runs the taint fixpoint over one function declaration's body
// (descending into nested function literals, so closure-captured taint
// propagates) and returns the taint set.
type funcTaint struct {
	info  *types.Info
	rules *taintRules
	taint map[types.Object]taintFact
}

// analyzeFunc computes the taint set for decl under rules.
func analyzeFunc(info *types.Info, rules *taintRules, decl *ast.FuncDecl) *funcTaint {
	ft := &funcTaint{info: info, rules: rules, taint: map[types.Object]taintFact{}}
	ft.seedParams(decl)
	if decl.Body == nil {
		return ft
	}
	// Fixpoint: each pass may extend the taint set through assignments the
	// previous pass visited before their right-hand side became tainted. The
	// set only grows, and is bounded by the body's object count, so this
	// terminates; the iteration cap is pure paranoia.
	for iter := 0; iter < 64; iter++ {
		before := len(ft.taint)
		ft.propagate(decl.Body)
		if len(ft.taint) == before {
			break
		}
	}
	return ft
}

// seedParams taints the slice-typed parameters of entry points named in
// rules.taintedParams.
func (ft *funcTaint) seedParams(decl *ast.FuncDecl) {
	if !ft.rules.taintedParams[decl.Name.Name] || decl.Type.Params == nil {
		return
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := ft.info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			ft.taint[obj] = taintFact{origin: "parameter " + name.Name + " of " + decl.Name.Name}
		}
	}
}

// propagate performs one pass over body, extending the taint set through
// assignments, short declarations and range statements.
func (ft *funcTaint) propagate(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			ft.propagateAssign(s.Lhs, s.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(s.Names))
			for i, name := range s.Names {
				lhs[i] = name
			}
			ft.propagateAssign(lhs, s.Values)
		case *ast.RangeStmt:
			if fact, ok := ft.exprTaint(s.X); ok {
				ft.taintLHS(s.Key, fact)
				ft.taintLHS(s.Value, fact)
			}
		}
		return true
	})
}

// propagateAssign taints left-hand sides whose right-hand side is tainted,
// pairing element-wise when counts match and fanning a single tainted tuple
// out to every destination otherwise.
func (ft *funcTaint) propagateAssign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if fact, ok := ft.exprTaint(rhs[i]); ok {
				ft.taintLHS(lhs[i], fact)
			}
		}
	case len(rhs) == 1:
		if fact, ok := ft.exprTaint(rhs[0]); ok {
			for _, l := range lhs {
				ft.taintLHS(l, fact)
			}
		}
	}
}

// taintLHS taints the object at the root of an assignment destination: a
// plain identifier directly, an index/slice/star/selector chain through its
// base (storing a tainted value into out[i] taints out).
func (ft *funcTaint) taintLHS(dst ast.Expr, fact taintFact) {
	if dst == nil {
		return
	}
	obj := rootObject(ft.info, dst)
	if obj == nil {
		return
	}
	if _, ok := ft.taint[obj]; ok {
		return // keep the first origin: deterministic, source-order
	}
	ft.taint[obj] = fact
}

// rootObject resolves the object at the base of an lvalue chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj, ok := info.Defs[x]; ok && obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprTaint reports whether the expression's value is tainted and with what
// origin.
func (ft *funcTaint) exprTaint(e ast.Expr) (taintFact, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := ft.info.Uses[x]; obj != nil {
			if fact, ok := ft.taint[obj]; ok {
				return fact, true
			}
		}
	case *ast.CallExpr:
		return ft.callTaint(x)
	case *ast.ParenExpr:
		return ft.exprTaint(x.X)
	case *ast.StarExpr:
		return ft.exprTaint(x.X)
	case *ast.UnaryExpr:
		return ft.exprTaint(x.X)
	case *ast.IndexExpr:
		if fact, ok := ft.exprTaint(x.X); ok {
			return fact, true
		}
		return ft.exprTaint(x.Index)
	case *ast.SliceExpr:
		return ft.exprTaint(x.X)
	case *ast.BinaryExpr:
		if fact, ok := ft.exprTaint(x.X); ok {
			return fact, true
		}
		return ft.exprTaint(x.Y)
	case *ast.TypeAssertExpr:
		return ft.exprTaint(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if fact, ok := ft.exprTaint(elt); ok {
				return fact, true
			}
		}
	}
	return taintFact{}, false
}

// callTaint classifies one call: source results are tainted with the call's
// name as origin, sanitizer results are clean regardless of arguments, and
// any other call propagates taint from its arguments (and method receiver)
// to its results — an unknown callee is assumed to pass data through.
func (ft *funcTaint) callTaint(call *ast.CallExpr) (taintFact, bool) {
	name := calleeName(ft.info, call)
	switch {
	case ft.rules.sources[name]:
		return taintFact{origin: name + "()"}, true
	case ft.rules.sanitizers[name]:
		return taintFact{}, false
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fact, ok := ft.exprTaint(sel.X); ok {
			return fact, true
		}
	}
	for _, arg := range call.Args {
		if fact, ok := ft.exprTaint(arg); ok {
			return fact, true
		}
	}
	return taintFact{}, false
}

// sinkViolations walks decl's body and invokes report for every sink call
// receiving a tainted argument — once per call, at the call position, with
// the sink name and the taint origin.
func (ft *funcTaint) sinkViolations(decl *ast.FuncDecl, report func(call *ast.CallExpr, sink string, fact taintFact)) {
	if decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(ft.info, call)
		if !ft.rules.sinks[name] {
			return true
		}
		for _, arg := range call.Args {
			if fact, ok := ft.exprTaint(arg); ok {
				report(call, name, fact)
				return true
			}
		}
		return true
	})
}

// calleeName resolves a call expression to its callee's bare name: declared
// functions and methods through the type info, builtins (append, copy) by
// identifier. Dynamic calls through function values return "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	switch obj := info.Uses[id].(type) {
	case *types.Func:
		return obj.Name()
	case *types.Builtin:
		return obj.Name()
	case nil:
		return id.Name
	}
	return ""
}
