package lint

import (
	"go/ast"
)

// DeletedFlowScope lists the package-path prefixes where the deletion-taint
// contract is enforced: the unlearning orchestration, the round engine, and
// the baseline strategy implementations — everywhere original-dataset row
// indices and training entry points coexist. The public engine facade
// (package goldfish itself) is scoped by exact match in deletedFlowScoped,
// because as a prefix it would swallow the entire module.
var DeletedFlowScope = []string{
	"goldfish/internal/unlearn",
	"goldfish/internal/fed",
	"goldfish/internal/baselines",
}

// deletedFlowScoped reports whether the package is under the deletion-taint
// contract: the root facade exactly, or any package under DeletedFlowScope.
func deletedFlowScoped(path string) bool {
	return path == "goldfish" || reportProducing(path, DeletedFlowScope)
}

// deletedFlowSources names the original-row accessors: calls returning row
// indices addressed against a participant's ORIGINAL dataset, before any
// deletions shifted the strategy's current view.
var deletedFlowSources = map[string]bool{
	"Partition":            true,
	"Partitions":           true,
	"RemainingRows":        true,
	"RemainingRowsOfClass": true,
	"RowsOfClass":          true,
}

// deletedFlowSanitizers names the declared remap chokepoints: the one place
// original-row indices are translated to the strategy's addressing
// (consulting RowAddresser) before they may reach a training sink.
var deletedFlowSanitizers = map[string]bool{
	"mapRowsForStrategy": true,
}

// deletedFlowSinks names the training/aggregation entry points that must
// never receive unremapped original-row indices.
var deletedFlowSinks = map[string]bool{
	"RequestDeletion": true,
	"Forget":          true,
	"Train":           true,
	"TrainRound":      true,
	"Aggregate":       true,
}

// deletedFlowTaintedParams names the entry points documented to RECEIVE
// original-row indices from callers: their slice parameters are tainted on
// entry, so a body that forwards them to a sink without the remap
// chokepoint is flagged.
var deletedFlowTaintedParams = map[string]bool{
	"RequestDeletionRows":   true,
	"RequestSampleDeletion": true,
}

// DeletedFlowAnalyzer statically enforces the paper's forgetting contract.
var DeletedFlowAnalyzer = &Analyzer{
	Name: "deletedflow",
	Doc: `forbid unremapped original-row indices from reaching training sinks

Goldfish's headline guarantee — deleted data stops influencing the global
model — rests on every deletion being addressed correctly: row indices read
off a participant's ORIGINAL dataset (Partition, RemainingRows,
RemainingRowsOfClass, RowsOfClass, or the rows parameter of
RequestDeletionRows/RequestSampleDeletion) must pass through the declared
remap chokepoint (mapRowsForStrategy, which consults RowAddresser) before
they reach a training or aggregation sink (RequestDeletion, Forget, Train,
TrainRound, Aggregate). This analyzer taints original-row values with an
intraprocedural def-use fixpoint and reports any sink call receiving a
tainted argument, turning the forgetting guarantee into a CI-gated static
contract instead of something only the membership-gap probes catch at
runtime. //goldfish:deletedok on the sink line is the audited escape.`,
	Run: runDeletedFlow,
}

func runDeletedFlow(pass *Pass) error {
	if !deletedFlowScoped(pass.Pkg.Path) {
		return nil
	}
	rules := &taintRules{
		sources:       deletedFlowSources,
		sanitizers:    deletedFlowSanitizers,
		sinks:         deletedFlowSinks,
		taintedParams: deletedFlowTaintedParams,
	}
	for _, file := range pass.Pkg.Files {
		ok := directiveLines(pass.Pkg.Fset, file, DeletedOKDirective)
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			// The chokepoint itself handles original rows by definition;
			// taint inside it would only re-flag its own remap plumbing.
			if deletedFlowSanitizers[fd.Name.Name] {
				continue
			}
			ft := analyzeFunc(pass.Pkg.Info, rules, fd)
			if len(ft.taint) == 0 {
				continue
			}
			ft.sinkViolations(fd, func(call *ast.CallExpr, sink string, fact taintFact) {
				if ok[pass.Pkg.Fset.Position(call.Pos()).Line] {
					return
				}
				pass.Reportf(call.Pos(),
					"original-row indices (from %s) reach training sink %s without the remap chokepoint mapRowsForStrategy; remap to the strategy view first",
					fact.origin, sink)
			})
		}
	}
	return nil
}
