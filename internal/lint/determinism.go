package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismPathPrefixes scopes the determinism analyzer to the
// report-producing packages: everything these packages compute ends up in
// byte-compared reports (scenario JSON, golden fixtures, the CI smoke
// baseline), so any wall-clock read, shared-rand draw or map-order leak in
// them breaks the repo's byte-determinism gates.
var DeterminismPathPrefixes = []string{
	"goldfish/internal/scenario",
	"goldfish/internal/attack",
	"goldfish/internal/stats",
	"goldfish/internal/data",
	"goldfish/internal/fed",
	"goldfish/internal/unlearn",
	"goldfish/internal/obs",
	"goldfish/internal/serve",
}

// DeterminismClockAllowPaths exempts packages from the wall-clock rule ONLY
// (map-order and shared-rand rules still apply to them). internal/obs is the
// observability side channel: it is the one place allowed to read the clock,
// because its output (trace events, metric snapshots) is written next to —
// never into — the byte-compared reports. Every other report-producing
// package must time things as obs Elapsed deltas or not at all.
var DeterminismClockAllowPaths = []string{
	"goldfish/internal/obs",
}

// reportProducing reports whether the import path falls under the
// determinism scope.
func reportProducing(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/') {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer flags nondeterminism sources in report-producing
// packages.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: `flag nondeterminism sources in report-producing packages

Scenario reports, golden fixtures and the CI smoke baseline are
byte-compared, so packages that feed them (internal/scenario, internal/attack,
internal/stats, internal/data, internal/fed, internal/unlearn) must be fully
deterministic. This analyzer flags: calls to time.Now/time.Since — except in
internal/obs, the observability side channel, which is the only package
allowed to read the wall clock; draws from math/rand's shared top-level
source (rand.New/rand.NewSource constructing a seeded generator are fine);
map iteration whose results feed appends or output without an intervening
sort; and map values passed to fmt formatting verbs (map print order is
randomized). A trailing or preceding ` + "`//goldfish:nondeterministic`" + ` comment
opts a line out — the escape hatch for deliberate wall-time tracking.`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !reportProducing(pass.Pkg.Path, DeterminismPathPrefixes) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		suppressed := suppressedLines(pass.Pkg.Fset, file)
		report := func(pos token.Pos, format string, args ...any) {
			if suppressed[pass.Pkg.Fset.Position(pos).Line] {
				return
			}
			pass.Reportf(pos, format, args...)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkClockAndRand(pass, n, report)
			case *ast.CallExpr:
				checkMapFormatting(pass, n, report)
			case *ast.RangeStmt:
				// Map ranges are checked from their enclosing function so the
				// "sorted afterwards" pattern is visible; see checkFunc.
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body, report)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkClockAndRand flags time.Now/time.Since and package-level math/rand
// draws (rand.Intn, rand.Float64, rand.Shuffle, …), which read process-global
// state. Seeded generators via rand.New(rand.NewSource(seed)) stay legal.
func checkClockAndRand(pass *Pass, sel *ast.SelectorExpr, report func(token.Pos, string, ...any)) {
	obj := pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are per-instance and fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if reportProducing(pass.Pkg.Path, DeterminismClockAllowPaths) {
			return // the observability side channel may read the clock
		}
		if fn.Name() == "Now" || fn.Name() == "Since" {
			report(sel.Pos(), "call to time.%s in a report-producing package breaks byte-determinism (opt out with %s)",
				fn.Name(), NondeterministicDirective)
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// deterministic constructors
		default:
			report(sel.Pos(), "use of the shared top-level math/rand source (rand.%s) is nondeterministic across runs; draw from a seeded *rand.Rand (opt out with %s)",
				fn.Name(), NondeterministicDirective)
		}
	}
}

// fmtFormatters are the fmt functions whose rendering of a map argument
// depends on randomized iteration order.
var fmtFormatters = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// checkMapFormatting flags map-typed arguments handed to fmt formatting
// calls: %v renders a map in randomized order, so the formatted string is
// different run to run.
func checkMapFormatting(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || !fmtFormatters[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		tv, ok := pass.Pkg.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			report(arg.Pos(), "formatting a map with fmt.%s renders randomized iteration order; sort the keys into a slice first (opt out with %s)",
				fn.Name(), NondeterministicDirective)
		}
	}
}

// checkMapRanges flags `for … range m` over a map whose body appends to a
// variable declared outside the loop, unless the function later sorts that
// variable (the registry Types() idiom), and flags direct output calls
// (fmt.Fprint*/Print*/Sprint*, Encoder.Encode, Writer.Write) inside a map
// range body outright.
func checkMapRanges(pass *Pass, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Direct output inside the loop can never be reordered afterwards.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch {
					case fn.Pkg().Path() == "fmt" && fmtFormatters[fn.Name()]:
						report(call.Pos(), "output written inside a map range iterates in randomized order; collect and sort keys first (opt out with %s)",
							NondeterministicDirective)
					case fn.Name() == "Encode" && fn.Pkg().Path() == "encoding/json":
						report(call.Pos(), "serialization inside a map range iterates in randomized order; collect and sort keys first (opt out with %s)",
							NondeterministicDirective)
					}
				}
			}
			return true
		})
		// Appends that escape the loop must be sorted before use.
		appended := map[types.Object]token.Pos{}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			lhs, ok := asg.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[lhs]
			if obj == nil {
				obj = info.Defs[lhs]
			}
			// Only variables declared outside the range statement leak order.
			if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
				return true
			}
			if _, seen := appended[obj]; !seen {
				appended[obj] = asg.Pos()
			}
			return true
		})
		for obj, pos := range appended {
			if !sortedAfter(info, body, obj, rng.End()) {
				report(pos, "append to %q inside a map range leaks randomized iteration order; sort it afterwards or iterate sorted keys (opt out with %s)",
					obj.Name(), NondeterministicDirective)
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort/slices call after pos
// within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}
