package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// ErrdropScopes lists the package-path prefixes where discarding an error is
// forbidden: the report-producing packages (whose silent failures corrupt
// the byte-deterministic reports CI diffs) and the server/CLI surface
// (whose silent failures strand users without a message). It composes with
// ErrwrapScopes: errwrap shapes the errors these packages build, errdrop
// guarantees the ones they receive are not thrown away.
var ErrdropScopes = []string{
	"goldfish/internal/scenario",
	"goldfish/internal/attack",
	"goldfish/internal/stats",
	"goldfish/internal/obs",
	"goldfish/internal/serve",
	"goldfish/cmd",
}

// ErrdropAnalyzer forbids discarded error values in the scoped packages.
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc: `forbid discarded errors in report-producing and server packages

Inside the scoped packages (scenario, attack, stats, obs, cmd/*) an
error-typed value must be consulted, not discarded: neither assigned to
blank (_ = f(), n, _ := g()) nor dropped as an ignored return (a bare f()
expression statement). Print-family calls (fmt.Fprint*/Print*) and the
documented never-fail writers (bytes.Buffer, strings.Builder) are exempt;
defer statements are out of scope (a deferred cleanup error has no frame to
return through). //goldfish:errok on the line is the escape for discards
whose impossibility is documented. The -fix engine scaffolds the missing
check.`,
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) error {
	if !reportProducing(pass.Pkg.Path, ErrdropScopes) {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ok := directiveLines(pass.Pkg.Fset, file, ErrOKDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.ExprStmt:
				call, isCall := s.X.(*ast.CallExpr)
				if !isCall || ok[pass.Pkg.Fset.Position(s.Pos()).Line] {
					return true
				}
				if allowedErrDiscard(info, call) {
					return true
				}
				if pos := errResultIndex(info, call); pos >= 0 {
					reportDroppedCall(pass, s, call, pos)
				}
				return true
			case *ast.AssignStmt:
				if ok[pass.Pkg.Fset.Position(s.Pos()).Line] {
					return true
				}
				checkBlankErrAssign(pass, s)
				return true
			}
			return true
		})
	}
	return nil
}

// errResultIndex returns the index of the first error-typed result of the
// call, or -1 when no result is an error.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowedErrDiscard exempts calls whose error is conventionally ignored:
// the fmt print family, and writes to the never-fail in-memory writers.
func allowedErrDiscard(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "bytes" && name == "Buffer") || (path == "strings" && name == "Builder")
}

// checkBlankErrAssign flags assignments that discard an error into blank:
// `_ = f()` whole-sale, and `n, _ := g()` when the blanked position is the
// error.
func checkBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	// Single call RHS fanning out to the LHS tuple.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, isCall := s.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return
		}
		tuple, isTuple := info.Types[call].Type.(*types.Tuple)
		if !isTuple || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded into blank; handle or return it", callLabel(info, call))
				return
			}
		}
		return
	}
	// Element-wise assignments: flag `_ = expr` where expr is an error (or a
	// single-error-result call).
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := s.Rhs[i]
		tv, ok := info.Types[rhs]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		if call, isCall := rhs.(*ast.CallExpr); isCall {
			if allowedErrDiscard(info, call) {
				continue
			}
			// The whole statement is `_ = call(...)`: scaffold the check.
			if len(s.Lhs) == 1 {
				fix := errCheckFix(pass, s, call, 0, false)
				pass.ReportfFix(lhs.Pos(), fix, "error result of %s discarded into blank; handle or return it", callLabel(info, call))
				continue
			}
		}
		pass.Reportf(lhs.Pos(), "error value discarded into blank; handle or return it")
	}
}

// reportDroppedCall flags a bare expression-statement call that returns an
// error, attaching the mechanical if-err scaffold.
func reportDroppedCall(pass *Pass, s *ast.ExprStmt, call *ast.CallExpr, errPos int) {
	info := pass.Pkg.Info
	multi := false
	if tuple, ok := info.Types[call].Type.(*types.Tuple); ok && tuple.Len() > 1 {
		multi = true
	}
	fix := errCheckFix(pass, s, call, errPos, multi)
	pass.ReportfFix(s.Pos(), fix, "error result of %s dropped; handle or return it", callLabel(info, call))
}

// errCheckFix builds the mechanical repair replacing a discarded call with
//
//	if err := call(...); err != nil {
//		// TODO(goldfishlint): handle this error
//	}
//
// padding non-error results with blanks for multi-result callees.
func errCheckFix(pass *Pass, stmt ast.Stmt, call *ast.CallExpr, errPos int, multi bool) SuggestedFix {
	var src bytes.Buffer
	if err := printer.Fprint(&src, pass.Pkg.Fset, call); err != nil {
		// Unprintable expression: report without a fix.
		return SuggestedFix{}
	}
	lhs := "err"
	if multi {
		tuple, _ := pass.Pkg.Info.Types[call].Type.(*types.Tuple)
		parts := make([]string, tuple.Len())
		for i := range parts {
			parts[i] = "_"
		}
		parts[errPos] = "err"
		lhs = strings.Join(parts, ", ")
	}
	indent := indentFor(pass, stmt.Pos())
	text := fmt.Sprintf("if %s := %s; err != nil {\n%s\t// TODO(goldfishlint): handle this error\n%s}",
		lhs, src.String(), indent, indent)
	return SuggestedFix{
		Message: "scaffold the missing error check",
		Edits:   []TextEdit{pass.Edit(stmt.Pos(), stmt.End(), text)},
	}
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callLabel renders a short name for the called function for messages.
func callLabel(info *types.Info, call *ast.CallExpr) string {
	if name := calleeName(info, call); name != "" {
		return name
	}
	return "call"
}
