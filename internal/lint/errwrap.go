package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrwrapScopes maps package-path prefixes to the error-message prefix every
// error built there must carry (unless it wraps with %w, which preserves the
// inner error's provenance). The scenario and attack packages are the repo's
// public-facing error surfaces: their errors reach CLI users and CI logs,
// where an unprefixed "invalid spec" is impossible to attribute.
var ErrwrapScopes = map[string]string{
	"goldfish/internal/scenario": "scenario",
	"goldfish/internal/attack":   "attack",
}

// ErrwrapAnalyzer enforces the repo's error-wrapping discipline.
var ErrwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc: `enforce error prefixes and wrapping across package boundaries

Errors built in internal/scenario and internal/attack cross the package
boundary into CLIs, CI logs and reports, so each fmt.Errorf/errors.New there
must either carry the package's established prefix ("scenario: …",
"attack: …") or wrap an inner error with %w so provenance is preserved.
Everywhere in the repo, errors.New(fmt.Sprintf(…)) is forbidden: it is
fmt.Errorf with the wrapping ability thrown away.`,
	Run: runErrwrap,
}

func runErrwrap(pass *Pass) error {
	prefix := ""
	for p, pre := range ErrwrapScopes {
		if reportProducing(pass.Pkg.Path, []string{p}) {
			prefix = pre
			break
		}
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				checkErrorsNew(pass, call, prefix)
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				checkErrorf(pass, call, prefix)
			}
			return true
		})
	}
	return nil
}

// checkErrorsNew forbids errors.New(fmt.Sprintf(…)) everywhere and, inside
// an errwrap scope, requires the package prefix on the literal message.
func checkErrorsNew(pass *Pass, call *ast.CallExpr, prefix string) {
	if len(call.Args) != 1 {
		return
	}
	if inner, ok := call.Args[0].(*ast.CallExpr); ok {
		if sel, ok := inner.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" {
				pass.Reportf(call.Pos(), "errors.New(fmt.Sprintf(…)) discards wrapping; use fmt.Errorf (with %%w for inner errors)")
				return
			}
		}
	}
	if prefix == "" {
		return
	}
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		if msg, err := strconv.Unquote(lit.Value); err == nil && !strings.HasPrefix(msg, prefix+": ") {
			pass.Reportf(lit.Pos(), "error message %q crosses the package boundary without the %q prefix", msg, prefix+": ")
		}
	}
}

// checkErrorf requires, inside an errwrap scope, that the format literal
// starts with the package prefix or wraps with %w.
func checkErrorf(pass *Pass, call *ast.CallExpr, prefix string) {
	if prefix == "" || len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return // dynamic format: the prefix cannot be checked statically
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.HasPrefix(format, prefix+": ") || strings.Contains(format, "%w") {
		return
	}
	pass.Reportf(lit.Pos(), "error %q crosses the package boundary without the %q prefix or a %%w wrap", format, prefix+": ")
}
