package lint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the goldfishlint fix engine: analyzers attach mechanical
// SuggestedFixes (insert a directive, rename a registry literal to kebab,
// scaffold an error check) to their diagnostics, and the CLI's -fix mode
// applies them atomically per file — or, with -dry-run, renders the exact
// edits as a deterministic diff without touching anything. Only edits that
// are purely mechanical belong here: a fix must leave the code compiling and
// must not change behaviour beyond what the diagnostic demands.

// TextEdit replaces the byte range [Start, End) of Filename with NewText.
type TextEdit struct {
	// Filename is the file the edit applies to, exactly as recorded in the
	// package's FileSet.
	Filename string
	// Start and End are byte offsets into the file's current content.
	Start, End int
	// NewText is the replacement, empty for a pure deletion.
	NewText string
}

// SuggestedFix is one mechanical repair for a diagnostic: a short imperative
// message plus the text edits that implement it. All edits of one fix are
// applied together or not at all.
type SuggestedFix struct {
	// Message describes the repair, imperative mood ("rename to kebab-case").
	Message string
	// Edits are the text edits, any order; the applier sorts them.
	Edits []TextEdit
}

// FixPlan is every applicable suggested fix from a diagnostic set, grouped
// by file and ordered deterministically. Overlapping fixes are resolved in
// favour of the earliest (position-sorted) fix; the losers are dropped and
// counted, never half-applied.
type FixPlan struct {
	files   []*fileFixes
	dropped int
}

// fileFixes is the accepted, non-overlapping edit sequence for one file,
// sorted by start offset.
type fileFixes struct {
	name  string
	edits []TextEdit
}

// PlanFixes collects the suggested fixes of the diagnostics into an
// applicable plan. Fixes are considered in diagnostic order (Run already
// sorts diagnostics deterministically); a fix any of whose edits overlaps an
// already-accepted edit is dropped whole.
func PlanFixes(diags []Diagnostic) *FixPlan {
	plan := &FixPlan{}
	byFile := map[string]*fileFixes{}
	fileOf := func(name string) *fileFixes {
		if f, ok := byFile[name]; ok {
			return f
		}
		f := &fileFixes{name: name}
		byFile[name] = f
		plan.files = append(plan.files, f)
		return f
	}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			if !plan.accepts(fix) {
				plan.dropped++
				continue
			}
			for _, e := range fix.Edits {
				f := fileOf(e.Filename)
				f.edits = append(f.edits, e)
			}
		}
	}
	sort.Slice(plan.files, func(i, j int) bool { return plan.files[i].name < plan.files[j].name })
	for _, f := range plan.files {
		sort.Slice(f.edits, func(i, j int) bool {
			if f.edits[i].Start != f.edits[j].Start {
				return f.edits[i].Start < f.edits[j].Start
			}
			return f.edits[i].End < f.edits[j].End
		})
	}
	return plan
}

// accepts reports whether fix's edits are all disjoint from the edits the
// plan already holds (and from each other).
func (p *FixPlan) accepts(fix SuggestedFix) bool {
	if len(fix.Edits) == 0 {
		return false
	}
	for i, e := range fix.Edits {
		if e.Start < 0 || e.End < e.Start {
			return false
		}
		for _, prev := range fix.Edits[:i] {
			if prev.Filename == e.Filename && e.Start < prev.End && prev.Start < e.End {
				return false
			}
		}
		for _, f := range p.files {
			if f.name != e.Filename {
				continue
			}
			for _, prev := range f.edits {
				if e.Start < prev.End && prev.Start < e.End {
					return false
				}
			}
		}
	}
	return true
}

// Empty reports whether the plan holds no applicable edits.
func (p *FixPlan) Empty() bool { return len(p.files) == 0 }

// NumFiles returns the number of files the plan touches.
func (p *FixPlan) NumFiles() int { return len(p.files) }

// NumEdits returns the total accepted edit count.
func (p *FixPlan) NumEdits() int {
	n := 0
	for _, f := range p.files {
		n += len(f.edits)
	}
	return n
}

// Dropped returns how many suggested fixes were discarded because they
// overlapped an accepted one.
func (p *FixPlan) Dropped() int { return p.dropped }

// Apply rewrites every planned file in place. Each file is written whole via
// a temporary file in the same directory and an atomic rename, so a crash
// can never leave a half-edited source behind. It returns the number of
// files changed.
func (p *FixPlan) Apply() (int, error) {
	changed := 0
	for _, f := range p.files {
		src, err := os.ReadFile(f.name)
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %w", err)
		}
		out, err := spliceEdits(src, f.edits)
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes to %s: %w", f.name, err)
		}
		if bytes.Equal(out, src) {
			continue
		}
		info, err := os.Stat(f.name)
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %w", err)
		}
		tmp, err := os.CreateTemp(filepath.Dir(f.name), filepath.Base(f.name)+".fix*")
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %w", err)
		}
		_, werr := tmp.Write(out)
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Chmod(tmp.Name(), info.Mode().Perm())
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), f.name)
		}
		if werr != nil {
			if rerr := os.Remove(tmp.Name()); rerr != nil && !os.IsNotExist(rerr) {
				werr = fmt.Errorf("%w (and removing temp file: %v)", werr, rerr)
			}
			return changed, fmt.Errorf("lint: applying fixes to %s: %w", f.name, werr)
		}
		changed++
	}
	return changed, nil
}

// Diff renders the plan as a deterministic review diff without applying
// anything: per file, a ---/+++ header then one hunk per edit showing the
// affected whole lines. The output is byte-stable for a given source tree
// and plan, so CI can golden it.
func (p *FixPlan) Diff() ([]byte, error) {
	var out bytes.Buffer
	for _, f := range p.files {
		src, err := os.ReadFile(f.name)
		if err != nil {
			return nil, fmt.Errorf("lint: diffing fixes: %w", err)
		}
		fmt.Fprintf(&out, "--- %s\n+++ %s (fixed)\n", f.name, f.name)
		for _, e := range f.edits {
			if e.End > len(src) {
				return nil, fmt.Errorf("lint: diffing fixes: edit past end of %s", f.name)
			}
			lineStart := bytes.LastIndexByte(src[:e.Start], '\n') + 1
			lineEnd := e.End
			if i := bytes.IndexByte(src[e.End:], '\n'); i >= 0 {
				lineEnd = e.End + i
			} else {
				lineEnd = len(src)
			}
			line := 1 + bytes.Count(src[:lineStart], []byte("\n"))
			fmt.Fprintf(&out, "@@ line %d @@\n", line)
			oldRegion := string(src[lineStart:lineEnd])
			newRegion := string(src[lineStart:e.Start]) + e.NewText + string(src[e.End:lineEnd])
			for _, l := range strings.Split(oldRegion, "\n") {
				fmt.Fprintf(&out, "-%s\n", l)
			}
			for _, l := range strings.Split(newRegion, "\n") {
				fmt.Fprintf(&out, "+%s\n", l)
			}
		}
	}
	return out.Bytes(), nil
}

// spliceEdits applies sorted, disjoint edits to src.
func spliceEdits(src []byte, edits []TextEdit) ([]byte, error) {
	var out bytes.Buffer
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of order or past end", e.Start, e.End)
		}
		out.Write(src[last:e.Start])
		out.WriteString(e.NewText)
		last = e.End
	}
	out.Write(src[last:])
	return out.Bytes(), nil
}
