package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldfish/internal/lint"
	"goldfish/internal/lint/linttest"
)

// fixCase is one -fix corpus: a testdata/fix/<name> package with a committed
// dry-run diff golden (corpus.diff) and a post-apply golden
// (corpus.go.golden). The goldens use non-.go extensions so go tooling and
// gofmt never treat them as sources.
type fixCase struct {
	name       string
	importPath string
	analyzer   *lint.Analyzer
}

var fixCases = []fixCase{
	{"errdrop", "goldfish/internal/scenario/linttestdata/fixcorpus", lint.ErrdropAnalyzer},
	{"registry", "goldfish/internal/lint/linttestdata/fixregistry", lint.RegistryAnalyzer},
	{"goleak", "goldfish/internal/lint/linttestdata/fixgoleak", lint.GoleakAnalyzer},
}

// planFor loads the corpus package from dir and plans its fixes.
func planFor(t *testing.T, dir string, tc fixCase) *lint.FixPlan {
	t.Helper()
	pkg, err := linttest.Loader(t).LoadDir(dir, tc.importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{tc.analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatalf("corpus %s produced no diagnostics", dir)
	}
	plan := lint.PlanFixes(diags)
	if plan.Empty() {
		t.Fatalf("corpus %s produced no applicable fixes", dir)
	}
	return plan
}

// TestFixDryRunGoldens pins the -fix -dry-run rendering byte-exactly: the
// plan's Diff over each corpus must equal the committed corpus.diff.
// Regenerate with `go test ./internal/lint -run TestFixDryRunGoldens -update`.
func TestFixDryRunGoldens(t *testing.T) {
	for _, tc := range fixCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "fix", tc.name)
			plan := planFor(t, dir, tc)
			got, err := plan.Diff()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join(dir, "corpus.diff")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("dry-run diff differs from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", golden, got, want)
			}
		})
	}
}

// TestFixApply copies each corpus to a temp dir, applies the plan, and pins
// the rewritten file against corpus.go.golden byte-exactly. The fixed source
// must also re-lint clean: a -fix repair resolves its diagnostic rather than
// moving it.
func TestFixApply(t *testing.T) {
	for _, tc := range fixCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "fix", tc.name)
			src, err := os.ReadFile(filepath.Join(dir, "corpus.go"))
			if err != nil {
				t.Fatal(err)
			}
			tmp := t.TempDir()
			if err := os.WriteFile(filepath.Join(tmp, "corpus.go"), src, 0o644); err != nil {
				t.Fatal(err)
			}
			plan := planFor(t, tmp, tc)
			changed, err := plan.Apply()
			if err != nil {
				t.Fatal(err)
			}
			if changed != 1 {
				t.Errorf("Apply changed %d files, want 1", changed)
			}
			got, err := os.ReadFile(filepath.Join(tmp, "corpus.go"))
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join(dir, "corpus.go.golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("applied source differs from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", golden, got, want)
			}

			// The repair must resolve the diagnostic.
			fixedPkg, err := linttest.Loader(t).LoadDir(tmp, tc.importPath+"_fixed")
			if err != nil {
				t.Fatal(err)
			}
			diags, err := lint.Run([]*lint.Package{fixedPkg}, []*lint.Analyzer{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("fixed corpus still diagnosed: %s", d)
			}
		})
	}
}

// TestFixPlanOverlap pins the overlap policy: two fixes editing the same
// range are never half-applied — the first (diagnostic-order) wins whole and
// the loser is counted in Dropped.
func TestFixPlanOverlap(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Analyzer: "a",
			Fixes: []lint.SuggestedFix{{
				Message: "first",
				Edits:   []lint.TextEdit{{Filename: "f.go", Start: 10, End: 20, NewText: "x"}},
			}},
		},
		{
			Analyzer: "b",
			Fixes: []lint.SuggestedFix{{
				Message: "second",
				Edits:   []lint.TextEdit{{Filename: "f.go", Start: 15, End: 25, NewText: "y"}},
			}},
		},
	}
	plan := lint.PlanFixes(diags)
	if plan.NumEdits() != 1 {
		t.Errorf("NumEdits = %d, want 1", plan.NumEdits())
	}
	if plan.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", plan.Dropped())
	}
	if plan.NumFiles() != 1 {
		t.Errorf("NumFiles = %d, want 1", plan.NumFiles())
	}
}

// TestDeletedFlowSmoke asserts the planted fixture violation fires with the
// full chokepoint message — the acceptance scenario for the deletion-taint
// contract: an unremapped original-row read reaching a training sink.
func TestDeletedFlowSmoke(t *testing.T) {
	pkg, err := linttest.Loader(t).LoadDir(testdata("deletedflow"), "goldfish/internal/unlearn/linttestdata/deletedflow")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.DeletedFlowAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	want := "original-row indices (from RemainingRows()) reach training sink RequestDeletion without the remap chokepoint mapRowsForStrategy; remap to the strategy view first"
	found := false
	for _, d := range diags {
		if d.Message == want && strings.HasSuffix(d.Pos.Filename, "deletedflow.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("planted source-to-sink violation did not fire; got %d diagnostics:", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
