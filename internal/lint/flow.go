package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// This file adds a lightweight value-flow layer under the call graph: a
// flow-insensitive, field- and parameter-sensitive propagation of function
// values through assignments, call arguments, struct fields and returns.
// Without it, every call through a function value would resolve by signature
// alone — and `func(int, int)` closures are so common that the worker pool's
// `t.fn(t.lo, t.hi)` would conservatively edge to every two-int closure in
// the module, manufacturing phantom cycles (a training-round goroutine
// "reachable" from a tensor kernel). With it, a dynamic call resolves to the
// values that can actually flow into its callee slot; the signature-matching
// fallback remains for slots the model cannot see into (marked ⊤: values
// from unloaded calls, type assertions, ranges, or the parameters of
// address-taken and exported functions, which tests and embedders may call
// with anything).

// flowSlot is one storage location function values flow through: a local
// var or parameter, a package-level var, a struct field (keyed per package,
// name and signature — fields of distinct types may merge, which only adds
// edges), or one return value of a function.
type flowSlot struct {
	keys map[string]bool
	top  bool
	out  []*flowSlot
}

func (s *flowSlot) add(key string) bool {
	if s.keys == nil {
		s.keys = map[string]bool{}
	}
	if s.keys[key] {
		return false
	}
	s.keys[key] = true
	return true
}

type flowGraph struct {
	b        *progBuilder
	locals   map[types.Object]*flowSlot
	globals  map[string]*flowSlot
	fields   map[string]*flowSlot
	returns  map[string]*flowSlot
	allSlots []*flowSlot
}

func newFlowGraph(b *progBuilder) *flowGraph {
	return &flowGraph{
		b:       b,
		locals:  map[types.Object]*flowSlot{},
		globals: map[string]*flowSlot{},
		fields:  map[string]*flowSlot{},
		returns: map[string]*flowSlot{},
	}
}

// funcish reports whether values of t are callable function values worth
// tracking.
func funcish(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func (fg *flowGraph) newSlot() *flowSlot {
	s := &flowSlot{}
	fg.allSlots = append(fg.allSlots, s)
	return s
}

// varSlot returns the slot for a variable object. Package-level vars key by
// path+name so source-checked and export-data instances share one slot.
func (fg *flowGraph) varSlot(obj *types.Var) *flowSlot {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		id := obj.Pkg().Path() + "." + obj.Name()
		if s, ok := fg.globals[id]; ok {
			return s
		}
		s := fg.newSlot()
		fg.globals[id] = s
		return s
	}
	if s, ok := fg.locals[obj]; ok {
		return s
	}
	s := fg.newSlot()
	fg.locals[obj] = s
	return s
}

// fieldSlot keys a struct field by declaring package, field name and
// signature. Identically-shaped fields of different structs share a slot —
// a merge that only over-approximates.
func (fg *flowGraph) fieldSlot(fld *types.Var) *flowSlot {
	pkgPath := ""
	if fld.Pkg() != nil {
		pkgPath = fld.Pkg().Path()
	}
	sig, ok := fld.Type().Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	id := pkgPath + ".?" + fld.Name() + "|" + sigKey(sig)
	if s, ok := fg.fields[id]; ok {
		return s
	}
	s := fg.newSlot()
	fg.fields[id] = s
	return s
}

func (fg *flowGraph) returnSlot(funcKey string, i int) *flowSlot {
	id := funcKey + "#" + strconv.Itoa(i)
	if s, ok := fg.returns[id]; ok {
		return s
	}
	s := fg.newSlot()
	fg.returns[id] = s
	return s
}

// bind records that the values of expr flow into dst.
func (fg *flowGraph) bind(pkg *Package, dst *flowSlot, expr ast.Expr) {
	if dst == nil {
		return
	}
	keys, slots, top := fg.eval(pkg, expr)
	if top {
		dst.top = true
	}
	for _, k := range keys {
		dst.add(k)
	}
	for _, s := range slots {
		s.out = append(s.out, dst)
	}
}

// eval resolves an expression to the function values it may hold: concrete
// node keys, slots whose contents flow in, or ⊤ when the model cannot see
// the producer.
func (fg *flowGraph) eval(pkg *Package, expr ast.Expr) (keys []string, slots []*flowSlot, top bool) {
	info := pkg.Info
	e := unparen(expr)
	if tv, ok := info.Types[e]; ok && !funcish(tv.Type) && !tv.IsType() {
		return nil, nil, false // not a function value; nothing to track
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		if n := fg.b.prog.byDecl[x]; n != nil {
			return []string{n.Key}, nil, false
		}
		return nil, nil, true
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Func:
			return []string{funcKey(obj)}, nil, false
		case *types.Var:
			return nil, []*flowSlot{fg.varSlot(obj)}, false
		case *types.Nil:
			return nil, nil, false
		}
		return nil, nil, true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return nil, nil, true
				}
				if types.IsInterface(sel.Recv()) {
					// Method value on an interface: the CHA candidate set.
					if sig, ok := fn.Type().(*types.Signature); ok {
						return fg.b.methods[fn.Name()+"|"+sigKey(sig)], nil, false
					}
					return nil, nil, true
				}
				return []string{funcKey(fn)}, nil, false
			case types.FieldVal:
				if fld, ok := sel.Obj().(*types.Var); ok {
					if s := fg.fieldSlot(fld); s != nil {
						return nil, []*flowSlot{s}, false
					}
				}
				return nil, nil, true
			}
			return nil, nil, true
		}
		// Package-qualified reference.
		switch obj := info.Uses[x.Sel].(type) {
		case *types.Func:
			return []string{funcKey(obj)}, nil, false
		case *types.Var:
			return nil, []*flowSlot{fg.varSlot(obj)}, false
		}
		return nil, nil, true
	case *ast.CallExpr:
		fun := unparen(x.Fun)
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			// Conversion (e.g. a named function type wrapping a closure):
			// transparent to flow.
			if len(x.Args) == 1 {
				return fg.eval(pkg, x.Args[0])
			}
			return nil, nil, true
		}
		// A call producing a function: track through the return slot of a
		// statically-known, loaded callee; anything else is ⊤.
		if key := staticCalleeKey(info, x); key != "" {
			if _, loaded := fg.b.prog.Nodes[key]; loaded {
				return nil, []*flowSlot{fg.returnSlot(key, 0)}, false
			}
		}
		return nil, nil, true
	}
	return nil, nil, true
}

// staticCalleeKey returns the funcKey of a call's statically-resolvable
// callee ("" for dynamic, builtin and interface calls).
func staticCalleeKey(info *types.Info, call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return funcKey(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				if fn, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
					return funcKey(fn)
				}
			}
			return ""
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return funcKey(fn)
		}
	case *ast.FuncLit:
		// handled by callers that need the literal's node
	}
	return ""
}

// paramObjects returns the declared parameter objects of a loaded node's
// FuncDecl or FuncLit, flattened in order (nil entries for unnamed params).
func paramObjects(n *FuncNode) []*types.Var {
	var ft *ast.FuncType
	switch d := n.Decl.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	default:
		return nil
	}
	if ft.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			obj, _ := n.Pkg.Info.Defs[name].(*types.Var)
			out = append(out, obj)
		}
	}
	return out
}

// buildFlow collects flow facts from every loaded node and package-level
// declaration, then propagates to a fixpoint.
func (b *progBuilder) buildFlow() *flowGraph {
	fg := newFlowGraph(b)
	for _, n := range b.order {
		fg.collectNode(n)
	}
	for _, pkg := range b.prog.Pkgs {
		fg.collectPackageVars(pkg)
	}
	fg.seedTop()
	fg.propagate()
	return fg
}

// collectNode walks one node's own statements for assignments, call-argument
// bindings, composite-literal field bindings and returns.
func (fg *flowGraph) collectNode(n *FuncNode) {
	if n.Body == nil {
		return
	}
	pkg := n.Pkg
	info := pkg.Info
	// Named results: a naked return ships the result vars.
	if retObjs := fg.namedResults(n); retObjs != nil {
		for i, obj := range retObjs {
			if obj != nil && funcish(obj.Type()) {
				fg.varSlot(obj).out = append(fg.varSlot(obj).out, fg.returnSlot(n.Key, i))
			}
		}
	}
	n.InspectOwn(func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			fg.collectAssign(pkg, s.Lhs, s.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range s.Names {
				lhs = append(lhs, name)
			}
			fg.collectAssign(pkg, lhs, s.Values)
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{s.Key, s.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj, ok := info.Defs[id].(*types.Var); ok && funcish(obj.Type()) {
						fg.varSlot(obj).top = true
					}
					if obj, ok := info.Uses[id].(*types.Var); ok && funcish(obj.Type()) {
						fg.varSlot(obj).top = true
					}
				}
			}
		case *ast.CallExpr:
			fg.collectCallArgs(pkg, s)
		case *ast.CompositeLit:
			fg.collectCompositeLit(pkg, s)
		}
		return true
	})
	// Returns bind to this node's return slots.
	n.InspectOwn(func(x ast.Node) bool {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, v := range ret.Results {
			if tv, ok := info.Types[v]; ok && funcish(tv.Type) {
				fg.bind(pkg, fg.returnSlot(n.Key, i), v)
			}
		}
		return true
	})
}

func (fg *flowGraph) namedResults(n *FuncNode) []*types.Var {
	var ft *ast.FuncType
	switch d := n.Decl.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	default:
		return nil
	}
	if ft.Results == nil {
		return nil
	}
	var out []*types.Var
	named := false
	for _, field := range ft.Results.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			obj, _ := n.Pkg.Info.Defs[name].(*types.Var)
			out = append(out, obj)
			named = named || obj != nil
		}
	}
	if !named {
		return nil
	}
	return out
}

func (fg *flowGraph) collectAssign(pkg *Package, lhs, rhs []ast.Expr) {
	info := pkg.Info
	dst := func(l ast.Expr) *flowSlot {
		switch t := unparen(l).(type) {
		case *ast.Ident:
			obj, _ := info.Defs[t].(*types.Var)
			if obj == nil {
				obj, _ = info.Uses[t].(*types.Var)
			}
			if obj != nil && funcish(obj.Type()) {
				return fg.varSlot(obj)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[t]; ok && sel.Kind() == types.FieldVal {
				if fld, ok := sel.Obj().(*types.Var); ok {
					return fg.fieldSlot(fld)
				}
			} else if obj, ok := info.Uses[t.Sel].(*types.Var); ok && funcish(obj.Type()) {
				return fg.varSlot(obj)
			}
		}
		return nil
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: a call or type assertion. Track loaded static calls'
		// return slots; everything else is ⊤ for func-typed targets.
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			if key := staticCalleeKey(info, call); key != "" {
				if _, loaded := fg.b.prog.Nodes[key]; loaded {
					for i, l := range lhs {
						if s := dst(l); s != nil {
							fg.returnSlot(key, i).out = append(fg.returnSlot(key, i).out, s)
						}
					}
					return
				}
			}
		}
		for _, l := range lhs {
			if s := dst(l); s != nil {
				s.top = true
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if s := dst(lhs[i]); s != nil {
			fg.bind(pkg, s, rhs[i])
		}
	}
}

// collectCallArgs binds function-valued arguments into the parameter slots
// of every loaded candidate callee (static target, or the CHA set for
// interface calls).
func (fg *flowGraph) collectCallArgs(pkg *Package, call *ast.CallExpr) {
	info := pkg.Info
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	var candidates []string
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := fg.b.prog.byDecl[lit]; n != nil {
			candidates = []string{n.Key}
		}
	} else if key := staticCalleeKey(info, call); key != "" {
		candidates = []string{key}
	} else if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && (s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr) {
			if fn, ok := s.Obj().(*types.Func); ok && types.IsInterface(s.Recv()) {
				if sig, ok := fn.Type().(*types.Signature); ok {
					candidates = fg.b.methods[fn.Name()+"|"+sigKey(sig)]
				}
			}
		}
	}
	// Check quickly whether any argument is worth binding.
	any := false
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && funcish(tv.Type) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	for _, key := range candidates {
		callee, loaded := fg.b.prog.Nodes[key]
		if !loaded {
			continue
		}
		params := paramObjects(callee)
		if params == nil {
			continue
		}
		for i, a := range call.Args {
			j := i
			if j >= len(params) {
				j = len(params) - 1 // variadic tail
			}
			obj := params[j]
			if obj == nil || !funcish(obj.Type()) {
				continue
			}
			fg.bind(pkg, fg.varSlot(obj), a)
		}
	}
}

func (fg *flowGraph) collectCompositeLit(pkg *Package, lit *ast.CompositeLit) {
	info := pkg.Info
	tv, ok := info.Types[ast.Expr(lit)]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var fld *types.Var
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					fld = st.Field(j)
					break
				}
			}
			val = kv.Value
		} else if i < st.NumFields() {
			fld = st.Field(i)
			val = elt
		}
		if fld == nil || !funcish(fld.Type()) {
			continue
		}
		fg.bind(pkg, fg.fieldSlot(fld), val)
	}
}

// collectPackageVars binds package-level var initializers, including struct
// fields and call arguments nested inside the initializer expressions
// (function-literal bodies are separate nodes and collect themselves).
func (fg *flowGraph) collectPackageVars(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				var lhs []ast.Expr
				for _, name := range vs.Names {
					lhs = append(lhs, name)
				}
				fg.collectAssign(pkg, lhs, vs.Values)
				for _, v := range vs.Values {
					ast.Inspect(v, func(x ast.Node) bool {
						switch e := x.(type) {
						case *ast.FuncLit:
							return false
						case *ast.CallExpr:
							fg.collectCallArgs(pkg, e)
						case *ast.CompositeLit:
							fg.collectCompositeLit(pkg, e)
						}
						return true
					})
				}
			}
		}
	}
}

// seedTop marks the parameters the model cannot account for: receivers, the
// parameters of exported functions and methods (tests and embedders call
// them with arbitrary values; test files are not loaded), and of every
// address-taken function (callable from anywhere a matching value flows).
func (fg *flowGraph) seedTop() {
	taken := map[string]bool{}
	for _, keys := range fg.b.addrTaken {
		for _, k := range keys {
			taken[k] = true
		}
	}
	for _, n := range fg.b.order {
		fd, isDecl := n.Decl.(*ast.FuncDecl)
		exported := isDecl && fd.Name.IsExported()
		if isDecl && fd.Recv != nil {
			for _, field := range fd.Recv.List {
				for _, name := range field.Names {
					if obj, ok := n.Pkg.Info.Defs[name].(*types.Var); ok && funcish(obj.Type()) {
						fg.varSlot(obj).top = true
					}
				}
			}
		}
		if !exported && !taken[n.Key] {
			continue
		}
		for _, obj := range paramObjects(n) {
			if obj != nil && funcish(obj.Type()) {
				fg.varSlot(obj).top = true
			}
		}
	}
}

// propagate runs the monotone worklist to a fixpoint.
func (fg *flowGraph) propagate() {
	for changed := true; changed; {
		changed = false
		for _, s := range fg.allSlots {
			for _, dst := range s.out {
				if s.top && !dst.top {
					dst.top = true
					changed = true
				}
				for k := range s.keys {
					if dst.add(k) {
						changed = true
					}
				}
			}
		}
	}
}

// callSlot locates the slot a dynamic call expression reads from, or nil
// when the expression has no modeled slot.
func (fg *flowGraph) callSlot(pkg *Package, fun ast.Expr) *flowSlot {
	info := pkg.Info
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Var); ok && funcish(obj.Type()) {
			return fg.varSlot(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if sel.Kind() == types.FieldVal {
				if fld, ok := sel.Obj().(*types.Var); ok {
					return fg.fieldSlot(fld)
				}
			}
			return nil
		}
		if obj, ok := info.Uses[f.Sel].(*types.Var); ok && funcish(obj.Type()) {
			return fg.varSlot(obj)
		}
	case *ast.CallExpr:
		if key := staticCalleeKey(info, f); key != "" {
			if _, loaded := fg.b.prog.Nodes[key]; loaded {
				return fg.returnSlot(key, 0)
			}
		}
	}
	return nil
}
