package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoleakAnalyzer flags goroutines spawned without a visible join or
// cancellation edge.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: `flag goroutines spawned without a join or cancellation edge

Every go statement in non-test code must carry visible evidence that the
goroutine terminates or is collected: a sync.WaitGroup Done in its body
(paired with the spawner's Add), a context Done/Err consultation so
cancellation reaches it, a receive or range over a channel the package
closes, or a send on a channel the spawning function receives from
(join-by-result). A goroutine with none of these is a leak candidate: under
the fleet-scheduler direction, cells dispatched to remote workers must not
strand goroutines per round. For named callees the call-graph layer supplies
the body. Deliberate process-lifetime goroutines (daemon pools, servers
joined by Shutdown) carry //goldfish:goleakok with the lifecycle documented
in the comment.`,
	Run: runGoleak,
}

func runGoleak(pass *Pass) error {
	info := pass.Pkg.Info
	// Channels the package closes anywhere: a receive/range over one of
	// these is a join edge (close broadcasts termination).
	closed := closedChannels(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		ok := directiveLines(pass.Pkg.Fset, file, GoleakOKDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			fd, isFunc := n.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				return true
			}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				g, isGo := m.(*ast.GoStmt)
				if !isGo {
					return true
				}
				if ok[pass.Pkg.Fset.Position(g.Pos()).Line] {
					return true
				}
				if goroutineJoined(pass, info, closed, fd, g) {
					return true
				}
				indent := indentFor(pass, g.Pos())
				fix := SuggestedFix{
					Message: "annotate the deliberate goroutine lifecycle with //goldfish:goleakok",
					Edits: []TextEdit{pass.Edit(g.Pos(), g.Pos(),
						GoleakOKDirective+" — TODO(goldfishlint): document the join/cancel story\n"+indent)},
				}
				pass.ReportfFix(g.Pos(), fix,
					"goroutine has no join or cancellation edge (WaitGroup Done, ctx.Done/Err, closed-channel receive, or result send); document the lifecycle with %s if it is process-lifetime", GoleakOKDirective)
				return true
			})
			return false // decls handled; literals inside were inspected above
		})
	}
	return nil
}

// goroutineJoined reports whether the go statement has any accepted
// termination evidence.
func goroutineJoined(pass *Pass, info *types.Info, closed map[types.Object]bool, enclosing *ast.FuncDecl, g *ast.GoStmt) bool {
	body := goroutineBody(pass, info, g.Call)
	if body == nil {
		// Callee body not loaded (stdlib, export-data-only): treat a context
		// argument as cancellation evidence, otherwise demand the directive.
		for _, arg := range g.Call.Args {
			if tv, ok := info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
				return true
			}
		}
		return false
	}
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done":
					// wg.Done() joins; ctx.Done() receives cancellation.
					if isWaitGroup(info, sel.X) || isContextExpr(info, sel.X) {
						joined = true
					}
				case "Err":
					if isContextExpr(info, sel.X) {
						joined = true
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch where the package closes ch.
			if x.Op == token.ARROW {
				if obj := rootObject(info, x.X); obj != nil && closed[obj] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			// for … range ch terminates when the package closes ch.
			if _, isChan := typeOf(info, x.X).(*types.Chan); isChan {
				if obj := rootObject(info, x.X); obj != nil && closed[obj] {
					joined = true
				}
			}
		case *ast.SendStmt:
			// Join-by-result: the goroutine sends on a channel the spawning
			// function receives from.
			if obj := rootObject(info, x.Chan); obj != nil && receivesFrom(info, enclosing.Body, obj) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// goroutineBody resolves the spawned call to a loaded body: a function
// literal directly, a declared function or method through the call graph.
func goroutineBody(pass *Pass, info *types.Info, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || pass.Prog == nil {
		return nil
	}
	if node, loaded := pass.Prog.Nodes[funcKey(fn)]; loaded {
		return node.Body
	}
	return nil
}

// closedChannels collects every channel-rooted object the package passes to
// close(), across all files — the close may live far from the spawn.
func closedChannels(pkg *Package) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "close" {
				return true
			}
			if obj := rootObject(pkg.Info, call.Args[0]); obj != nil {
				closed[obj] = true
			}
			return true
		})
	}
	return closed
}

// receivesFrom reports whether body contains a receive (<-obj or range obj)
// from the channel object outside any nested function literal.
func receivesFrom(info *types.Info, body ast.Node, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && rootObject(info, x.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if rootObject(info, x.X) == obj {
				if _, isChan := typeOf(info, x.X).(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether the expression's type is sync.WaitGroup (or a
// pointer to it).
func isWaitGroup(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isContextExpr reports whether the expression is a context.Context value.
func isContextExpr(info *types.Info, e ast.Expr) bool {
	return isContextType(typeOf(info, e))
}

// typeOf returns the expression's type, or types.Typ[types.Invalid].
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// indentFor reproduces the leading indentation of pos's line (gofmt
// guarantees tab indentation), so an inserted directive line aligns with the
// statement it annotates.
func indentFor(pass *Pass, pos token.Pos) string {
	col := pass.Pkg.Fset.Position(pos).Column
	if col < 1 {
		return ""
	}
	return strings.Repeat("\t", col-1)
}
