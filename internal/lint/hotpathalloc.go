package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocScope limits where hotpathalloc reports: the packages whose
// steady-state code runs inside the federated round loop. Reachability is
// computed over the whole program, but a hot closure living in, say, a CLI
// package is that package's own business.
var HotPathAllocScope = []string{
	"goldfish/internal/tensor",
	"goldfish/internal/nn",
	"goldfish/internal/fed",
	"goldfish/internal/attack",
	"goldfish/internal/metrics",
}

// HotPathAllocAnalyzer flags allocations reachable from //goldfish:hotpath
// roots.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc: `flag allocations in functions reachable from //goldfish:hotpath roots

The paper's efficiency claim lives in the round-loop hot path: training
rounds, tensor kernels and probe scoring run once per round per client, so a
per-call make/append/new or allocating constructor there turns into GC
pressure at fleet scale. This analyzer walks the static call graph from every
function marked //goldfish:hotpath — conservatively following interface
dispatch and function values — and flags, inside the reachable set (scoped to
internal/tensor, nn, fed, attack and metrics): the builtins make, new and
append; slice, map and &composite literals; and calls to module-internal New*
constructors. //goldfish:coldpath on a declaration cuts its subtree out of
reachability (setup, per-cell plumbing, allocating constructors whose hot
call sites are what get flagged); //goldfish:allocok suppresses one line (the
escape for grow-once scratch and documented defensive copies).`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	if !reportProducing(pass.Pkg.Path, HotPathAllocScope) {
		return nil
	}
	hot := pass.Prog.HotPaths()
	for _, file := range pass.Pkg.Files {
		allocOK := directiveLines(pass.Pkg.Fset, file, AllocOKDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				node := pass.Prog.NodeOf(n)
				if node == nil {
					return true // bodyless decl
				}
				root, reachable := hot[node.Key]
				if !reachable {
					return true // literals inside are separate nodes; keep walking
				}
				checkHotFunc(pass, node, root, allocOK)
				return true
			}
			return true
		})
	}
	return nil
}

// checkHotFunc flags the allocation sites in one hot function's own body
// (nested literals are their own nodes with their own temperature).
func checkHotFunc(pass *Pass, node *FuncNode, root string, allocOK map[int]bool) {
	info := pass.Pkg.Info
	report := func(pos token.Pos, format string, args ...any) {
		if allocOK[pass.Pkg.Fset.Position(pos).Line] {
			return
		}
		args = append(args, root)
		pass.Reportf(pos, format+" in a hot path (reachable from %s); reuse scratch, or annotate %s / %s",
			append(args, ColdPathDirective, AllocOKDirective)...)
	}
	node.InspectOwn(func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch fun := unparen(e.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						report(e.Pos(), "%s allocates", b.Name())
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					if moduleConstructor(fn) {
						report(e.Pos(), "constructor %s allocates", fn.FullName())
					}
				}
			}
			if fn, ok := unparen(e.Fun).(*ast.Ident); ok {
				if f, ok2 := info.Uses[fn].(*types.Func); ok2 && moduleConstructor(f) {
					report(e.Pos(), "constructor %s allocates", f.FullName())
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[ast.Expr(e)]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(e.Pos(), "slice literal allocates")
			case *types.Map:
				report(e.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal allocates")
				}
			}
		}
		return true
	})
}

// moduleConstructor reports whether fn is a module-internal New* constructor.
// Their internal allocations are expected (the constructor is annotated
// //goldfish:coldpath), so it is each hot *call site* that gets flagged.
func moduleConstructor(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Name(), "New") {
		return false
	}
	path := fn.Pkg().Path()
	return path == "goldfish" || strings.HasPrefix(path, "goldfish/")
}
