// Package lint is goldfishlint: a static-analysis suite that machine-checks
// the repo's load-bearing conventions — byte-deterministic reports, registry
// discipline, error-wrapping prefixes and the concurrent-safety contracts of
// fed.Scorer and attack.Prober. The analyzers mirror the
// golang.org/x/tools/go/analysis shape (Analyzer / Pass / Diagnostic, with
// analysistest-style `// want` testdata), but run on a self-contained
// stdlib-only driver: packages are type-checked from source with
// dependencies imported from `go list -export` data, so the suite needs no
// module downloads — a hard requirement for the offline CI image.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's registry name, lowercase-kebab.
	Name string
	// Doc is a short one-line summary followed by a blank line and details.
	Doc string
	// Run reports this analyzer's diagnostics for one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package plus the Report sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-load call graph shared by every pass of one Run; the
	// interprocedural analyzers (hotpathalloc, ctxflow, lockorder) query and
	// memoize against it.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a diagnostic carrying one mechanical SuggestedFix that
// the -fix engine may apply.
func (p *Pass) ReportfFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing the source range [from, to) with newText,
// resolving positions against the pass's FileSet.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	start, end := p.Pkg.Fset.Position(from), p.Pkg.Fset.Position(to)
	return TextEdit{Filename: start.Filename, Start: start.Offset, End: end.Offset, NewText: newText}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes it.
	Message string
	// Fixes holds the mechanical repairs the -fix engine may apply, empty
	// when the violation needs human judgement.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Suite returns the goldfishlint analyzers in deterministic order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		RegistryAnalyzer,
		ErrwrapAnalyzer,
		ErrdropAnalyzer,
		ConcurrencyAnalyzer,
		GoleakAnalyzer,
		HotPathAllocAnalyzer,
		CtxFlowAnalyzer,
		LockOrderAnalyzer,
		DeletedFlowAnalyzer,
		APISurfaceAnalyzer,
	}
}

// Run applies the analyzers to the packages and returns every diagnostic,
// sorted by analyzer name then position so output is deterministic and CI
// diffs group by rule. The call graph over all packages is built once and
// shared across every pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := BuildProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by analyzer name, then position, then
// message — the deterministic order every output mode (human, -json, -fix
// planning) shares.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// The //goldfish: directives. Each analyzer's escape hatch is a distinct
// directive so one suppression can never silently widen to another rule.
const (
	// NondeterministicDirective opts one line out of the determinism
	// analyzer — for code that is nondeterministic on purpose, like opt-in
	// wall-time tracking.
	NondeterministicDirective = "//goldfish:nondeterministic"
	// HotPathDirective marks a function declaration (or function literal) as
	// a hot-path root: the call-graph layer treats everything reachable from
	// it as allocation-sensitive.
	HotPathDirective = "//goldfish:hotpath"
	// ColdPathDirective cuts a function out of hot-path reachability: setup,
	// constructors and per-cell plumbing that hot roots call once.
	ColdPathDirective = "//goldfish:coldpath"
	// AllocOKDirective opts one line out of hotpathalloc — for deliberate
	// allocations on a hot path (grow-once scratch, documented defensive
	// copies).
	AllocOKDirective = "//goldfish:allocok"
	// CtxOKDirective opts one line out of ctxflow — for deliberate context
	// detachment (fire-and-forget cleanup, background reaping).
	CtxOKDirective = "//goldfish:ctxok"
	// LockOKDirective opts one acquisition line out of lockorder.
	LockOKDirective = "//goldfish:lockok"
	// APIOKDirective on the package clause line opts a package out of the
	// apisurface golden comparison — a mid-refactor escape only.
	APIOKDirective = "//goldfish:apiok"
	// DeletedOKDirective opts one sink call out of deletedflow — the audited
	// escape for code that intentionally hands original-row indices to a
	// training entry point (e.g. a strategy that declares original
	// addressing and remaps internally).
	DeletedOKDirective = "//goldfish:deletedok"
	// GoleakOKDirective opts one go statement out of goleak — for deliberate
	// process-lifetime goroutines (daemon worker pools, servers joined by
	// Shutdown) whose lifecycle the comment must document.
	GoleakOKDirective = "//goldfish:goleakok"
	// ErrOKDirective opts one statement out of errdrop — for discards whose
	// impossibility of failure is documented on the line.
	ErrOKDirective = "//goldfish:errok"
)

// directiveLines returns the set of lines the given //goldfish: directive
// covers in file: the directive's own line (trailing comment) and, for a
// directive standing alone on its line, the line below it.
func directiveLines(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !matchesDirective(c.Text, directive) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// matchesDirective reports whether comment text carries the directive,
// requiring a word boundary so //goldfish:hotpath never matches a
// hypothetical //goldfish:hotpathx.
func matchesDirective(text, directive string) bool {
	if !strings.HasPrefix(text, directive) {
		return false
	}
	rest := text[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// suppressedLines is directiveLines for the determinism escape hatch.
func suppressedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	return directiveLines(fset, file, NondeterministicDirective)
}
