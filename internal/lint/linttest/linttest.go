// Package linttest is the analysistest-style harness for goldfishlint
// analyzers: it loads a testdata package, runs one analyzer, and compares
// the diagnostics against `// want "regexp"` comments in the sources. A line
// that produces a diagnostic must carry a matching want comment and vice
// versa, so both flagged and non-flagged cases are pinned.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"goldfish/internal/lint"
)

// wantRE extracts the expectation from a `// want "…"` comment. The payload
// is a regexp matched against the diagnostic message.
var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one Loader for the whole test binary: the `go list
// -deps -export` survey dominates load time, and every testdata package
// draws from the same module dependency set.
func sharedLoader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			loaderErr = fmt.Errorf("linttest: locating go.mod: %w", err)
			return
		}
		moduleDir := filepath.Dir(strings.TrimSpace(string(out)))
		loader, loaderErr = lint.NewLoader(moduleDir, "./...")
	})
	return loader, loaderErr
}

// Loader returns the shared module loader, building it on first use. Tests
// that drive the call-graph layer directly (rather than through Run) use it
// to load fixture packages without paying a second `go list` survey.
func Loader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Run loads the package in testdata dir under the synthetic import path and
// checks the analyzer's diagnostics against the `// want` comments.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, dir)
	// Match every diagnostic to a want on its line.
	for _, d := range diags {
		key := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		w, ok := wants[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posString(d.Pos), d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", posString(d.Pos), d.Message, w.re)
		}
		w.matched++
	}
	for key, w := range wants {
		if w.matched == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched int
}

// collectWants scans the testdata sources for want comments.
func collectWants(t *testing.T, dir string) map[lineKey]*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[lineKey]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			// The payload is written as a quoted Go-style string inside the
			// comment; unquote it so \\( in the source reads as regexp \(.
			pattern, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Fatalf("%s:%d: bad want literal %q: %v", e.Name(), i+1, m[1], err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pattern, err)
			}
			wants[lineKey{e.Name(), i + 1}] = &want{re: re}
		}
	}
	return wants
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
