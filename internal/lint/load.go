package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit an Analyzer runs on.
type Package struct {
	// Path is the package's import path (or a caller-chosen synthetic path
	// for testdata packages loaded by directory).
	Path string
	// Name is the package name from the source.
	Name string
	// Fset positions every file of this load session.
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's resolution tables for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json args...` from dir and decodes the
// JSON stream. -export compiles each listed package and reports the path of
// its export data, which is what lets the loader type-check targets from
// source while importing every dependency — stdlib included — without any
// module downloads.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` produced, via the standard gc importer's lookup hook.
type exportImporter struct {
	exports map[string]string // import path -> export file
	imp     types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.imp.Import(path)
}

// Loader loads and type-checks packages of the enclosing module for
// analysis. One Loader shares a FileSet, an importer and the `go list`
// dependency survey across every package it loads.
type Loader struct {
	// ModuleDir is the module root the loader resolves patterns from.
	ModuleDir string

	fset    *token.FileSet
	exports map[string]string
	imp     *exportImporter
}

// NewLoader surveys the module's dependency graph (targets plus extra import
// paths, e.g. imports of testdata packages that are invisible to `go list
// ./...`) and prepares an importer over its export data.
func NewLoader(moduleDir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   make(map[string]string, len(listed)),
	}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = newExportImporter(l.fset, l.exports)
	return l, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns to packages and type-checks each from source.
// Test files are not analyzed: the contracts goldfishlint checks are about
// shipped report-producing code, and tests legitimately use wall clocks and
// ad-hoc randomness.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(l.ModuleDir, patterns...)
	if err != nil {
		return nil, err
	}
	// -deps lists dependencies too; keep only the pattern matches, which `go
	// list` flags as non-dependency roots via DepOnly... not exposed in our
	// subset, so re-list without -deps to learn the roots.
	roots, err := goListRoots(l.ModuleDir, patterns...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	var pkgs []*Package
	for _, root := range roots {
		p, ok := byPath[root]
		if !ok {
			return nil, fmt.Errorf("lint: pattern root %q missing from go list -deps output", root)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.LoadFiles(p.ImportPath, files...)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goListRoots returns the import paths the patterns name directly.
func goListRoots(dir string, patterns ...string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line != "" {
			roots = append(roots, line)
		}
	}
	return roots, nil
}

// LoadDir loads the package in dir under the given synthetic import path.
// This is how testdata packages — invisible to the go tool — are loaded:
// their imports still resolve through the module's export data, so a
// testdata file may import real repo packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.LoadFiles(importPath, files...)
}

// LoadFiles parses and type-checks one package from the given source files.
func (l *Loader) LoadFiles(importPath string, files ...string) (*Package, error) {
	var astFiles []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	name := ""
	if len(astFiles) > 0 {
		name = astFiles[0].Name.Name
	}
	return &Package{
		Path:  importPath,
		Name:  name,
		Fset:  l.fset,
		Files: astFiles,
		Pkg:   pkg,
		Info:  info,
	}, nil
}
