package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderAnalyzer rejects cycles in the whole-program mutex acquisition
// graph.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: `reject cycles in the call-graph-derived mutex acquisition order

Two goroutines that acquire the same two mutexes in opposite orders deadlock
under load — exactly the failure mode a scenario fleet over real transports
will hit first. This analyzer generalizes the single-function concurrency
checks interprocedurally: it identifies every named mutex (a field on a named
struct type, or a package-level var; locals are per-invocation and skipped),
computes which mutexes each function transitively acquires via the call
graph, records an edge A -> B whenever B is acquired while A is held, and
reports every acquisition edge that participates in a cycle — including
self-cycles, which are immediate self-deadlocks. Deferred unlocks hold to
function end, matching the runtime. //goldfish:lockok on an acquisition line
removes that edge (the reviewer vouches for the order).`,
	Run: runLockOrder,
}

// lockEdge is one "to acquired while from held" observation.
type lockEdge struct {
	from, to string
	pkgPath  string
	pos      token.Position
	// desc names the function the acquisition happens in.
	desc string
}

type lockGraph struct {
	edges []lockEdge
	// cyclic marks the mutex IDs that sit in a cycle (an SCC with more than
	// one member, or a self-loop).
	cyclic map[string]bool
}

func runLockOrder(pass *Pass) error {
	g := pass.Prog.Memo("lockorder.graph", func() any {
		return buildLockGraph(pass.Prog)
	}).(*lockGraph)
	for _, e := range g.edges {
		if e.pkgPath != pass.Pkg.Path {
			continue
		}
		if g.cyclic[e.from] && g.cyclic[e.to] && inSameCycle(g, e.from, e.to) {
			pass.Reportf(posOfPosition(pass, e.pos), "acquiring %s while holding %s (in %s) participates in a lock-order cycle; acquire in one global order or annotate %s",
				e.to, e.from, e.desc, LockOKDirective)
		}
	}
	return nil
}

// posOfPosition maps a token.Position recorded during graph construction
// back to a token.Pos in the pass's fileset for reporting.
func posOfPosition(pass *Pass, p token.Position) token.Pos {
	var pos token.Pos
	for _, file := range pass.Pkg.Files {
		f := pass.Pkg.Fset.File(file.Pos())
		if f == nil || f.Name() != p.Filename {
			continue
		}
		if p.Line <= f.LineCount() {
			pos = f.LineStart(p.Line) + token.Pos(p.Column-1)
		}
		break
	}
	return pos
}

// buildLockGraph scans every node for mutex operations, propagates
// transitive acquisition sets to a fixpoint over the call graph, and runs
// cycle detection.
func buildLockGraph(prog *Program) *lockGraph {
	keys := prog.Keys()
	events := map[string][]lockEvent{}
	direct := map[string]map[string]bool{}
	for _, k := range keys {
		evs := scanLockEvents(prog.Nodes[k])
		if len(evs) > 0 {
			events[k] = evs
		}
		d := map[string]bool{}
		for _, ev := range evs {
			if ev.op == opLock || ev.op == opRLock {
				d[ev.mutex] = true
			}
		}
		if len(d) > 0 {
			direct[k] = d
		}
	}
	// Fixpoint: acquires(F) = direct(F) ∪ ⋃ acquires(callees).
	acquires := map[string]map[string]bool{}
	for _, k := range keys {
		acquires[k] = map[string]bool{}
		for m := range direct[k] {
			acquires[k][m] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			for _, callee := range prog.Nodes[k].Calls {
				for m := range acquires[callee] {
					if !acquires[k][m] {
						acquires[k][m] = true
						changed = true
					}
				}
			}
		}
	}
	// Walk each function's event sequence linearly, collecting edges.
	g := &lockGraph{}
	seen := map[string]bool{}
	for _, k := range keys {
		node := prog.Nodes[k]
		var held []string
		for _, ev := range events[k] {
			switch ev.op {
			case opLock, opRLock:
				if !ev.suppressed {
					for _, h := range held {
						addEdge(g, seen, h, ev.mutex, node, ev.pos)
					}
				}
				held = append(held, ev.mutex)
			case opUnlock, opRUnlock:
				if ev.deferred {
					continue // held to function end
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.mutex {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case opCall:
				if ev.suppressed || len(held) == 0 {
					continue
				}
				for _, callee := range ev.callees {
					for m := range acquires[callee] {
						for _, h := range held {
							addEdge(g, seen, h, m, node, ev.pos)
						}
					}
				}
			}
		}
	}
	g.cyclic = cyclicMutexes(g)
	return g
}

func addEdge(g *lockGraph, seen map[string]bool, from, to string, node *FuncNode, pos token.Pos) {
	p := node.Pkg.Fset.Position(pos)
	id := from + "->" + to + "@" + node.Pkg.Path
	if seen[id] {
		return
	}
	seen[id] = true
	g.edges = append(g.edges, lockEdge{from: from, to: to, pkgPath: node.Pkg.Path, pos: p, desc: node.Key})
}

// cyclicMutexes returns the mutexes inside a strongly connected component of
// size > 1 or carrying a self-loop.
func cyclicMutexes(g *lockGraph) map[string]bool {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	cyclic := map[string]bool{}
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					cyclic[w] = true
				}
			} else {
				// Self-loop?
				for _, w := range adj[comp[0]] {
					if w == comp[0] {
						cyclic[comp[0]] = true
					}
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return cyclic
}

// inSameCycle reports whether from and to belong to one SCC (or form a
// self-loop), so edges between two distinct cycles are not over-reported.
func inSameCycle(g *lockGraph, from, to string) bool {
	if from == to {
		return true
	}
	// Both cyclic: check to ~> from reachability (from -> to exists as edge).
	adj := map[string][]string{}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	seen := map[string]bool{to: true}
	queue := []string{to}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == from {
			return true
		}
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
	opCall
)

type lockEvent struct {
	op         lockOp
	mutex      string // for lock/unlock ops
	callees    []string
	pos        token.Pos
	deferred   bool
	suppressed bool
}

// scanLockEvents linearizes one node's mutex operations and calls in source
// order. Only named mutexes — fields on named types and package-level vars —
// participate; locals are invisible to other goroutines' lock orders.
func scanLockEvents(node *FuncNode) []lockEvent {
	if node.Body == nil {
		return nil
	}
	info := node.Pkg.Info
	var file *ast.File
	for _, f := range node.Pkg.Files {
		if f.Pos() <= node.Body.Pos() && node.Body.End() <= f.End() {
			file = f
			break
		}
	}
	var lockOK map[int]bool
	if file != nil {
		lockOK = directiveLines(node.Pkg.Fset, file, LockOKDirective)
	}
	deferred := map[*ast.CallExpr]bool{}
	var events []lockEvent
	node.InspectOwn(func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		suppressed := lockOK != nil && lockOK[node.Pkg.Fset.Position(call.Pos()).Line]
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if op, isLockOp := mutexOp(info, sel); isLockOp {
				if id := mutexID(info, sel.X); id != "" {
					events = append(events, lockEvent{
						op: op, mutex: id, pos: call.Pos(),
						deferred: deferred[call], suppressed: suppressed,
					})
				}
				return true
			}
		}
		// A plain call: its transitive acquisitions happen here.
		if callees := resolveEventCallees(node, call); len(callees) > 0 {
			events = append(events, lockEvent{op: opCall, callees: callees, pos: call.Pos(), suppressed: suppressed})
		}
		return true
	})
	return events
}

// resolveEventCallees names the call expression's plausible targets: static
// calls resolve exactly; dynamic and interface calls conservatively fall
// back to the node's full resolved callee list.
func resolveEventCallees(node *FuncNode, call *ast.CallExpr) []string {
	info := node.Pkg.Info
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Func); ok {
			return []string{funcKey(obj)}
		}
		if _, ok := info.Uses[f].(*types.Builtin); ok {
			return nil
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				if fn, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
					return []string{funcKey(fn)}
				}
			}
		} else if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return []string{funcKey(fn)}
		}
	}
	// Dynamic or interface call: conservatively, every callee of the node.
	return node.Calls
}

// mutexOp classifies a selector as a sync.Mutex/RWMutex (un)lock operation.
func mutexOp(info *types.Info, sel *ast.SelectorExpr) (lockOp, bool) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, false
	}
	switch fn.Name() {
	case "Lock":
		return opLock, true
	case "RLock":
		return opRLock, true
	case "Unlock":
		return opUnlock, true
	case "RUnlock":
		return opRUnlock, true
	}
	return 0, false
}

// mutexID names the mutex a lock operation's receiver denotes: "(pkg.Type).field"
// for a field on a named type, "pkg.var" for a package-level var, "" for
// locals and unrecognized shapes.
func mutexID(info *types.Info, x ast.Expr) string {
	switch e := unparen(x).(type) {
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		// Package-level var?
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			// Package-qualified var: pkg.mu.Lock().
			if obj, ok := info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return ""
		}
		recv := sel.Recv()
		for {
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
				continue
			}
			break
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), sel.Obj().Name())
	}
	return ""
}
