package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// kebabName is the accepted shape of a registry name literal: lowercase
// kebab, the convention every built-in unlearner ("incompetent-teacher") and
// attack ("label-flip") follows.
var kebabName = regexp.MustCompile(`^[a-z][a-z0-9]*(-[a-z0-9]+)*$`)

// RegistryAnalyzer enforces the unlearner/attack registry discipline.
var RegistryAnalyzer = &Analyzer{
	Name: "registry",
	Doc: `enforce registry discipline for unlearner and attack factories

Register calls wire strategies and attack probes into the registries every
entry point selects from, so they must be deterministic at program start:
a Register call must occur inside init() with a lowercase-kebab string
literal name. Exported pass-through wrappers (functions themselves named
Register*) forwarding a caller-supplied name are the one exception. In
packages that define a registry (a Register function next to a Types or
Names listing), a lookup-failure error mentioning an unknown name must
include the registry listing (Types()/Names()) so the caller learns what is
available.`,
	Run: runRegistry,
}

func runRegistry(pass *Pass) error {
	// Does this package define a registry? (Register + Types/Names at
	// package scope.) That scopes the lookup-error check.
	scope := pass.Pkg.Pkg.Scope()
	_, hasRegister := scope.Lookup("Register").(*types.Func)
	var listing *types.Func
	for _, name := range []string{"Types", "Names"} {
		if f, ok := scope.Lookup(name).(*types.Func); ok {
			listing = f
			break
		}
	}

	for _, file := range pass.Pkg.Files {
		// Track the enclosing function of every node via a manual walk.
		var walk func(n ast.Node, enclosing *ast.FuncDecl)
		walk = func(n ast.Node, enclosing *ast.FuncDecl) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.FuncDecl:
				if n.Body != nil {
					walkChildren(n.Body, n, walk)
				}
				return
			case *ast.CallExpr:
				checkRegisterCall(pass, n, enclosing)
				if hasRegister && listing != nil {
					checkLookupError(pass, n, listing)
				}
			}
			walkChildren(n, enclosing, walk)
		}
		for _, decl := range file.Decls {
			walk(decl, nil)
		}
	}
	return nil
}

// walkChildren visits n's children, threading the enclosing function.
func walkChildren(n ast.Node, enclosing *ast.FuncDecl, walk func(ast.Node, *ast.FuncDecl)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walk(c, enclosing)
		return false
	})
}

// registerCallee resolves call to a registry Register function: any function
// named Register whose first parameter is a string. RegisterAttack /
// RegisterUnlearner-style public wrappers count too.
func registerCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || !strings.HasPrefix(fn.Name(), "Register") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Params().Len() < 2 {
		return nil
	}
	if basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}
	return fn
}

// checkRegisterCall enforces that Register happens in init() with a kebab
// literal, or inside a forwarding Register* wrapper passing its own
// parameter through.
func checkRegisterCall(pass *Pass, call *ast.CallExpr, enclosing *ast.FuncDecl) {
	fn := registerCallee(pass.Pkg.Info, call)
	if fn == nil || len(call.Args) < 2 {
		return
	}
	nameArg := call.Args[0]
	lit, isLit := nameArg.(*ast.BasicLit)
	inInit := enclosing != nil && enclosing.Name.Name == "init" && enclosing.Recv == nil
	inWrapper := enclosing != nil && enclosing.Recv == nil && strings.HasPrefix(enclosing.Name.Name, "Register")
	switch {
	case inInit:
		if !isLit {
			pass.Reportf(nameArg.Pos(), "%s name in init() must be a string literal so the registered set is statically known", fn.Name())
			return
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || !kebabName.MatchString(name) {
			if err == nil {
				if fixed := kebabize(name); fixed != "" {
					fix := SuggestedFix{
						Message: "rename the registry literal to lowercase-kebab",
						Edits:   []TextEdit{pass.Edit(lit.Pos(), lit.End(), strconv.Quote(fixed))},
					}
					pass.ReportfFix(lit.Pos(), fix, "registry name %s is not lowercase-kebab (want %s)", lit.Value, kebabName)
					return
				}
			}
			pass.Reportf(lit.Pos(), "registry name %s is not lowercase-kebab (want %s)", lit.Value, kebabName)
		}
	case inWrapper && !isLit:
		// A pass-through wrapper forwarding its caller's name: fine.
	case isLit:
		pass.Reportf(call.Pos(), "%s with a literal name outside init(): registrations must be complete at program start", fn.Name())
	default:
		pass.Reportf(call.Pos(), "%s outside init() or a Register* forwarding wrapper", fn.Name())
	}
}

// kebabize mechanically renames a CamelCase / snake_case / spaced name to
// lowercase-kebab, returning "" when no such rename yields a valid registry
// name (so the diagnostic then carries no fix).
func kebabize(name string) string {
	var b strings.Builder
	prevAlnum := false
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			if prevAlnum {
				b.WriteByte('-')
			}
			b.WriteRune(r - 'A' + 'a')
			prevAlnum = false
		case r == '_' || r == ' ' || r == '-':
			if prevAlnum {
				b.WriteByte('-')
			}
			prevAlnum = false
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteRune(r)
			prevAlnum = true
		default:
			return ""
		}
	}
	out := strings.Trim(b.String(), "-")
	if !kebabName.MatchString(out) {
		return ""
	}
	return out
}

// checkLookupError requires lookup-failure errors ("unknown …") in a
// registry package to include the registry's Types()/Names() listing.
func checkLookupError(pass *Pass, call *ast.CallExpr, listing *types.Func) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.Contains(strings.ToLower(format), "unknown") {
		return
	}
	for _, arg := range call.Args[1:] {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == listing {
				found = true
				return false
			}
			return true
		})
		if found {
			return
		}
	}
	pass.Reportf(call.Pos(), "unknown-name registry error must list the available names via %s()", listing.Name())
}
