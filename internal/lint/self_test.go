package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"goldfish/internal/lint"
)

// TestSuiteNames pins the analyzer roster: adding or renaming an analyzer
// must be a conscious act (docs, CI and the -lint-rules output all key on
// these names).
func TestSuiteNames(t *testing.T) {
	want := []string{
		"determinism", "registry", "errwrap", "errdrop", "concurrency",
		"goleak", "hotpathalloc", "ctxflow", "lockorder", "deletedflow",
		"apisurface",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
		if first := strings.SplitN(a.Doc, "\n", 2)[0]; strings.HasSuffix(first, ".") {
			t.Errorf("analyzer %q doc summary %q should not end with a period", a.Name, first)
		}
	}
}

// TestRepoIsClean runs the whole suite over every package of the module —
// the same gate CI applies via `go run ./cmd/goldfishlint ./...` — so a
// contract violation fails plain `go test ./...` too, with the analyzer
// named in the failure.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir := filepath.Dir(strings.TrimSpace(string(out)))
	loader, err := lint.NewLoader(moduleDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from ./..., expected the whole module", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
