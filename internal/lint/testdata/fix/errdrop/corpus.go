// Package fixcorpus plants discarded errors for the -fix engine: the
// mechanical repair scaffolds the missing if-err check around each. The
// committed corpus.diff pins the byte-exact -fix -dry-run rendering and
// corpus.go.golden pins the applied result.
package fixcorpus

import "errors"

func fail() error { return errors.New("boom") }

func count() (int, error) { return 0, errors.New("boom") }

func drops() {
	fail()
	count()
	_ = fail()
}
