// Package fixcorpus plants a joinless goroutine for the -fix engine: the
// mechanical repair inserts the //goldfish:goleakok directive line above it
// with a TODO for the lifecycle note. The committed corpus.diff pins the
// byte-exact -fix -dry-run rendering and corpus.go.golden the applied result.
package fixcorpus

func spawn() {
	go func() {
		for {
		}
	}()
}
