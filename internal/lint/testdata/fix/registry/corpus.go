// Package fixcorpus plants non-kebab registry literals for the -fix engine:
// the mechanical repair renames them to lowercase-kebab. The committed
// corpus.diff pins the byte-exact -fix -dry-run rendering and
// corpus.go.golden pins the applied result.
package fixcorpus

var registry = map[string]func() int{}

// Register records a factory under name.
func Register(name string, factory func() int) {
	registry[name] = factory
}

func init() {
	Register("IncompetentTeacher", func() int { return 1 })
	Register("label_flip", func() int { return 2 })
}
