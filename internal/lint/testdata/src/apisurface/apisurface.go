// Package goldfish (apisurface fixture, loaded under import path "goldfish"):
// the exported surface matches the committed golden in api/goldfish.txt next
// to this file, so the analyzer stays silent.
package goldfish

// MaxRounds bounds a run.
const MaxRounds = 3

// Config configures a run.
type Config struct {
	// Rounds is the round budget.
	Rounds int

	name string
}

// Run executes a run.
func Run(c Config) error { return nil }
