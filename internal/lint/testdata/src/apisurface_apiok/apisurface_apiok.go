// Package goldfish (apiok fixture, loaded under import path "goldfish"): the
// package clause opts out of the surface gate mid-refactor, so even a
// missing golden stays silent.
package goldfish //goldfish:apiok — mid-refactor escape under test

// Run executes a run.
func Run() {}
