// Package goldfish (stale-golden fixture, loaded under import path
// "goldfish"): the committed golden still lists a Shutdown function, so the
// analyzer reports the first differing line and the regeneration command.
package goldfish // want "exported API surface differs from api/goldfish.txt .first difference at line 2"

// Run executes a run.
func Run() {}
