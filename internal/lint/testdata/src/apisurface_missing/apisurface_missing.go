// Package goldfish (missing-golden fixture, loaded under import path
// "goldfish"): there is no api/goldfish.txt beside this file, so the
// analyzer demands one and names the regeneration command.
package goldfish // want "exported API surface golden api/goldfish.txt is missing; generate it with"

// Run executes a run.
func Run() {}
