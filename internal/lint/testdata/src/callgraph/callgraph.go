// Package callgraph exercises the call-graph layer directly: method-value
// calls resolve through the flow layer, interface dispatch conservatively
// includes every same-signature implementation, and calls into real module
// packages produce cross-package edges. The tests also pin that two builds
// enumerate Edges() identically.
package callgraph

import "goldfish/internal/stats"

// Doer is dispatched through an interface.
type Doer interface{ Do() int }

// A is one Doer implementation.
type A struct{}

// Do implements Doer.
func (A) Do() int { return 1 }

// B is another Doer implementation.
type B struct{}

// Do implements Doer.
func (B) Do() int { return 2 }

// Dispatch calls through the interface: the graph must over-approximate with
// edges to both implementations.
func Dispatch(d Doer) int { return d.Do() }

// MethodValue binds a bound method to a variable and calls it later: the
// value-flow layer must resolve the call to (A).Do.
func MethodValue(a A) int {
	f := a.Do
	return f()
}

// CrossPackage calls into a real module package, producing an edge whose
// callee lives outside the loaded package set.
func CrossPackage(xs []float64) float64 { return stats.Mean(xs) }
