// Package concurrency is testdata for the concurrency analyzer: methods
// matching the fed.Scorer.Score / attack.Prober.SuccessRate contracts are
// invoked from many goroutines, so unguarded receiver writes are races. The
// contracts are matched structurally, so the fake types here exercise the
// same rules as real implementations.
package concurrency

import (
	"sync"
	"sync/atomic"
)

type fakeNet struct{ layers int }

// badScorer mutates shared state with no guard: flagged.
type badScorer struct {
	calls int
	last  []float64
}

func (s *badScorer) Score(params []float64) (float64, error) {
	s.calls++       // want "fed.Scorer implementations are called concurrently; writing receiver field \"calls\""
	s.last = params // want "fed.Scorer implementations are called concurrently; writing receiver field \"last\""
	return 0, nil
}

// mutexScorer takes the lock first: compliant.
type mutexScorer struct {
	mu    sync.Mutex
	calls int
}

func (s *mutexScorer) Score(params []float64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return float64(s.calls), nil
}

// embeddedScorer holds the promoted lock of an embedded mutex: compliant.
type embeddedScorer struct {
	sync.Mutex
	calls int
}

func (s *embeddedScorer) Score(params []float64) (float64, error) {
	s.Lock()
	defer s.Unlock()
	s.calls++
	return float64(s.calls), nil
}

// unlockedScorer writes after releasing the lock: flagged.
type unlockedScorer struct {
	mu    sync.Mutex
	calls int
}

func (s *unlockedScorer) Score(params []float64) (float64, error) {
	s.mu.Lock()
	s.mu.Unlock()
	s.calls++ // want "fed.Scorer implementations are called concurrently; writing receiver field \"calls\""
	return 0, nil
}

// atomicScorer counts through sync/atomic: compliant (no plain write).
type atomicScorer struct {
	calls int64
}

func (s *atomicScorer) Score(params []float64) (float64, error) {
	atomic.AddInt64(&s.calls, 1)
	return 0, nil
}

// readOnlyScorer only reads receiver state: compliant.
type readOnlyScorer struct {
	weights []float64
}

func (s *readOnlyScorer) Score(params []float64) (float64, error) {
	var sum float64
	for i, w := range s.weights {
		if i < len(params) {
			sum += w * params[i]
		}
	}
	return sum, nil
}

// valueScorer writes a field of a value receiver: the copy is call-local,
// not a race — compliant. Its map field, however, aliases shared storage.
type valueScorer struct {
	scratch float64
	cache   map[int]float64
}

func (s valueScorer) Score(params []float64) (float64, error) {
	s.scratch = 1
	s.cache[len(params)] = s.scratch // want "fed.Scorer implementations are called concurrently; writing receiver field \"cache\""
	return s.scratch, nil
}

// badProber matches the attack.Prober contract structurally: flagged.
type badProber struct {
	hits int
}

func (p *badProber) SuccessRate(net *fakeNet) float64 {
	p.hits++ // want "attack.Prober implementations are called concurrently; writing receiver field \"hits\""
	return float64(p.hits)
}

// goodProber is stateless per call: compliant.
type goodProber struct {
	target int
}

func (p *goodProber) SuccessRate(net *fakeNet) float64 {
	if net.layers == p.target {
		return 1
	}
	return 0
}

// notContract has a Score-like name but a different signature: the
// concurrency contract does not apply, so receiver writes are fine.
type notContract struct {
	calls int
}

func (n *notContract) Score(a, b int) int {
	n.calls++
	return n.calls
}

// Bump is an ordinary method on a contract-holding type: writes outside the
// contract methods are not this analyzer's business.
func (s *badScorer) Bump() {
	s.calls++
}
