// Package ctxflow exercises the ctxflow analyzer. It is loaded under an
// import path inside the sink scope (internal/fed), so its own context-taking
// functions are transport/engine sinks: replacing an in-scope context with
// context.Background()/TODO() is flagged (rule one), and accepting a context
// on a path to a sink without ever using it is flagged (rule two).
package ctxflow

import "context"

// Send is a context-taking sink that uses its context — silent.
func Send(ctx context.Context) error { return ctx.Err() }

// Relay threads the caller's context into the sink — silent.
func Relay(ctx context.Context) error { return Send(ctx) }

// Broadcast accepts a context but never consults it, and manufactures a
// fresh one on the way to the sink: both rules fire.
func Broadcast(ctx context.Context, n int) { // want "Broadcast accepts context parameter .ctx. but never uses it"
	for i := 0; i < n; i++ {
		_ = Send(context.TODO()) // want "context.TODO replaces the ctx parameter already in scope"
	}
}

// Drop uses its context (so rule two is satisfied) but still replaces it at
// the call site — rule one fires alone.
func Drop(ctx context.Context) error {
	_ = ctx.Err()
	return Send(context.Background()) // want "context.Background replaces the ctx parameter already in scope"
}

// Cleanup detaches deliberately — fire-and-forget work that must outlive the
// caller — so both rules are opted out with //goldfish:ctxok.
//
//goldfish:ctxok — fire-and-forget cleanup detaches from the round context
func Cleanup(ctx context.Context) {
	go func() {
		_ = Send(context.Background()) //goldfish:ctxok — detached on purpose, see above
	}()
}

// Poll's context parameter is unnamed, which already documents "unused";
// rule two skips it.
func Poll(_ context.Context) {}
