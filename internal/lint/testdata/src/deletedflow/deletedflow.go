// Package fixture exercises the deletedflow deletion-taint contract. The
// original-row accessors, the remap chokepoint and the training sinks are
// plain methods matched by NAME, mirroring the unlearn.Federation shape, so
// the fixture needs no dependency on the real packages.
package fixture

type fed struct{ parts [][]int }

// RemainingRows is an original-row source by name.
func (f *fed) RemainingRows(client int) []int { return f.parts[client] }

// RowsOfClass is an original-row source by name.
func (f *fed) RowsOfClass(class int) []int { return f.parts[class] }

// mapRowsForStrategy is the declared remap chokepoint by name: values
// returned from it are clean regardless of argument taint.
func (f *fed) mapRowsForStrategy(client int, rows []int) []int {
	out := make([]int, len(rows))
	copy(out, rows)
	return out
}

// RequestDeletion and Forget are training sinks by name.
func (f *fed) RequestDeletion(client int, rows []int) error { return nil }

func (f *fed) Forget(client int, rows []int, global []float64) error { return nil }

// direct hands a source result straight to a sink: the planted unremapped
// original-row read reaching a training entry point.
func direct(f *fed) error {
	rows := f.RemainingRows(0)
	return f.RequestDeletion(0, rows) // want "original-row indices .from RemainingRows... reach training sink RequestDeletion"
}

// derived taints through a range loop and append before the sink.
func derived(f *fed) error {
	var picked []int
	for _, r := range f.RowsOfClass(1) {
		if r%2 == 0 {
			picked = append(picked, r)
		}
	}
	return f.Forget(1, picked, nil) // want "original-row indices .from RowsOfClass... reach training sink Forget"
}

// remapped routes the rows through the chokepoint: clean.
func remapped(f *fed) error {
	rows := f.RemainingRows(0)
	return f.RequestDeletion(0, f.mapRowsForStrategy(0, rows))
}

// RequestDeletionRows receives ORIGINAL rows from callers, so its slice
// parameter is tainted on entry; forwarding it unremapped is flagged.
func (f *fed) RequestDeletionRows(client int, rows []int) error {
	uniq := append([]int(nil), rows...)
	return f.RequestDeletion(client, uniq) // want "original-row indices .from parameter rows of RequestDeletionRows. reach training sink RequestDeletion"
}

// RequestSampleDeletion is the fixed shape of the same entry point: the
// chokepoint launders the parameter before the sink.
func (f *fed) RequestSampleDeletion(client int, rows []int) error {
	mapped := f.mapRowsForStrategy(client, rows)
	return f.RequestDeletion(client, mapped)
}

// suppressed carries the audited escape hatch on the sink line.
func suppressed(f *fed) error {
	rows := f.RemainingRows(2)
	return f.RequestDeletion(2, rows) //goldfish:deletedok — audited: this strategy addresses original rows itself
}

// clean never touches an original-row source: sinks accept local data.
func clean(f *fed) error {
	local := []int{1, 2, 3}
	return f.RequestDeletion(0, local)
}
