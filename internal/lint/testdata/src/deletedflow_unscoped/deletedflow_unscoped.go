// Package fixture plants the same unremapped source-to-sink flow as the
// deletedflow fixture, but loads under an import path outside
// DeletedFlowScope: the analyzer must stay silent (no want comments — any
// diagnostic fails the test).
package fixture

type fed struct{ parts [][]int }

func (f *fed) RemainingRows(client int) []int { return f.parts[client] }

func (f *fed) RequestDeletion(client int, rows []int) error { return nil }

func unscoped(f *fed) error {
	rows := f.RemainingRows(0)
	return f.RequestDeletion(0, rows)
}
