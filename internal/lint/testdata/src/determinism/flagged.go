// Package determinism holds flagged cases for the determinism analyzer. It
// is loaded by linttest under an import path inside the report-producing
// scope, so every nondeterminism source below must be diagnosed.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

// wallClock reads the process clock two ways.
func wallClock() float64 {
	start := time.Now()                // want "call to time.Now in a report-producing package"
	return time.Since(start).Seconds() // want "call to time.Since in a report-producing package"
}

// sharedRand draws from math/rand's global source.
func sharedRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "shared top-level math/rand source \\(rand.Shuffle\\)"
	return rand.Intn(10)               // want "shared top-level math/rand source \\(rand.Intn\\)"
}

// mapOrder leaks map iteration order three ways.
func mapOrder(m map[string]int) []string {
	fmt.Println(m) // want "formatting a map with fmt.Println renders randomized iteration order"
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside a map range leaks randomized iteration order"
	}
	for k := range m {
		fmt.Printf("%s\n", k) // want "output written inside a map range iterates in randomized order"
	}
	return keys
}

// mapVerb renders a map through a format verb.
func mapVerb(m map[string]int) string {
	return fmt.Sprintf("state: %v", m) // want "formatting a map with fmt.Sprintf renders randomized iteration order"
}
