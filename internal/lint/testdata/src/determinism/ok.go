package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// seededRand is the legal pattern: a seeded generator, drawn per instance.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// sortedCollect is the registry Types() idiom: gather map keys, then sort —
// the append escapes the loop but is reordered before anyone reads it.
func sortedCollect(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// aggregate reads a map without leaking order: commutative reduction.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange ranges over a slice, which is ordered.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// suppressed opts into wall-time tracking explicitly, the ROADMAP's planned
// per-cell timing: the directive silences the analyzer on that line.
func suppressed() time.Time {
	//goldfish:nondeterministic
	start := time.Now()
	_ = time.Since(start) //goldfish:nondeterministic
	return start
}

// durationMath uses time without reading the clock.
func durationMath(d time.Duration) time.Duration {
	return d * 2
}
