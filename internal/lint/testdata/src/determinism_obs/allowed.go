// Package determinismobs holds the clock-allowlist cases. It is loaded by
// linttest under an import path inside internal/obs — the observability side
// channel that owns the wall clock — so the time.Now/time.Since rule must
// stay silent here while every OTHER determinism rule still fires: the
// allowlist exempts the clock, not the package.
package determinismobs

import (
	"fmt"
	"math/rand"
	"time"
)

// wallClock is legal under internal/obs: traces and snapshots are written
// next to, never into, the byte-compared reports.
func wallClock() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}

// sharedRand is still flagged: the clock allowlist does not blanket-exempt.
func sharedRand() int {
	return rand.Intn(10) // want "shared top-level math/rand source \\(rand.Intn\\)"
}

// mapOrder is still flagged: snapshot output must not leak iteration order.
func mapOrder(m map[string]int) {
	fmt.Println(m) // want "formatting a map with fmt.Println renders randomized iteration order"
}
