// Package determinism_unscoped carries the same nondeterminism sources as
// the flagged determinism testdata, but linttest loads it under an import
// path OUTSIDE the report-producing scope — benchmarks and transports may
// read clocks — so the analyzer must stay silent: no want comments here.
package determinism_unscoped

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}

func sharedRand() int {
	return rand.Intn(10)
}

func mapOrder(m map[string]int) []string {
	fmt.Println(m)
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
