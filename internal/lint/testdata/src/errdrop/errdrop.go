// Package fixture exercises the errdrop discarded-error contract inside the
// scoped packages: blank assignments and ignored error returns are flagged;
// the fmt print family, never-fail in-memory writers, defer statements and
// //goldfish:errok lines are exempt.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func count() (int, error) { return 0, errors.New("boom") }

func pair() (int, int) { return 1, 2 }

// dropAssign discards a sole error result into blank.
func dropAssign() {
	_ = fail() // want "error result of fail discarded into blank; handle or return it"
}

// dropExpr ignores a returned error entirely.
func dropExpr() {
	fail() // want "error result of fail dropped; handle or return it"
}

// dropExprMulti ignores the error of a multi-result call.
func dropExprMulti() {
	count() // want "error result of count dropped; handle or return it"
}

// dropTupleBlank blanks the error position of a fanned-out tuple.
func dropTupleBlank() int {
	n, _ := count() // want "error result of count discarded into blank; handle or return it"
	return n
}

// allowed exercises the conventional exemptions.
func allowed() {
	fmt.Println("hello")
	var b bytes.Buffer
	b.WriteString("x")
	var sb strings.Builder
	sb.WriteString("y")
	a, _ := pair() // blanking a non-error is fine
	_ = a
}

// handled consults the error: clean.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := count()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// deferred cleanup has no frame to return through: out of scope.
func deferred(b *bytes.Buffer) {
	defer fail()
	defer func() { fail() }()
	_ = b
}

// suppressed documents the impossibility on the line.
func suppressed() {
	_ = fail() //goldfish:errok — fixture stand-in that can never fail here
}
