// Package fixture discards errors exactly like the errdrop fixture, but
// loads under an import path outside ErrdropScopes: the analyzer must stay
// silent (no want comments — any diagnostic fails the test).
package fixture

import "errors"

func fail() error { return errors.New("boom") }

func unscoped() {
	_ = fail()
	fail()
}
