// Package errwrap is testdata for the errwrap analyzer, loaded under an
// import path inside the scenario errwrap scope: every constructed error
// must carry the "scenario: " prefix or wrap with %w.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("scenario: sentinel")

// prefixed errors are compliant.
func prefixed(n int) error {
	return fmt.Errorf("scenario: bad cell count %d", n)
}

// wrapped errors keep provenance through %w: no prefix needed.
func wrapped(err error) error {
	return fmt.Errorf("parsing spec: %w", err)
}

// prefixedAndWrapped is the house style.
func prefixedAndWrapped(err error) error {
	return fmt.Errorf("scenario: loading report: %w", err)
}

// bare loses the package prefix: flagged.
func bare(n int) error {
	return fmt.Errorf("bad cell count %d", n) // want "crosses the package boundary without the \"scenario: \" prefix"
}

// bareNew loses the prefix on a sentinel: flagged.
var errBare = errors.New("not ours") // want "crosses the package boundary without the \"scenario: \" prefix"

// sprintfNew throws away wrapping: flagged everywhere, scope or not.
func sprintfNew(n int) error {
	return errors.New(fmt.Sprintf("scenario: bad count %d", n)) // want "errors.New\\(fmt.Sprintf\\(…\\)\\) discards wrapping"
}
