// Package errwrap_unscoped is loaded outside any errwrap scope: prefix
// discipline does not apply, but errors.New(fmt.Sprintf(…)) is forbidden
// module-wide.
package errwrap_unscoped

import (
	"errors"
	"fmt"
)

// anyPrefix is fine outside the scoped packages.
func anyPrefix(n int) error {
	return fmt.Errorf("whatever message %d", n)
}

// sprintfNew is still flagged: the rule is global.
func sprintfNew(n int) error {
	return errors.New(fmt.Sprintf("count %d", n)) // want "errors.New\\(fmt.Sprintf\\(…\\)\\) discards wrapping"
}
