// Package fixture exercises the goleak join/cancellation-edge contract:
// every go statement needs visible termination evidence (WaitGroup Done,
// ctx.Done/Err, receive over a package-closed channel, or a result send the
// spawner receives) or the //goldfish:goleakok directive.
package fixture

import (
	"context"
	"sync"
)

// leak spawns with no evidence at all.
func leak() {
	go func() { // want "goroutine has no join or cancellation edge"
		for {
		}
	}()
}

// wgJoined carries a WaitGroup Done in the body.
func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// ctxCancelled consults ctx.Done, so cancellation reaches it.
func ctxCancelled(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ctxErrPolled consults ctx.Err inside its loop: same cancellation edge.
func ctxErrPolled(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

// feed is closed by the package below, so ranging over it terminates.
var feed = make(chan int)

func rangesClosedChan() {
	go func() {
		for range feed {
		}
	}()
}

func closeFeed() { close(feed) }

// resultJoined sends its result on a channel the spawner receives from.
func resultJoined() int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	return <-out
}

// pump is a named callee with no termination evidence: the call-graph layer
// supplies its body, and the go statement is flagged.
func pump() {
	for {
	}
}

func spawnsPump() {
	go pump() // want "goroutine has no join or cancellation edge"
}

// watch consults its context, so spawning it by name is clean.
func watch(ctx context.Context) {
	<-ctx.Done()
}

func spawnsWatch(ctx context.Context) {
	go watch(ctx)
}

// daemon documents a deliberate process-lifetime goroutine with the escape.
func daemon() {
	//goldfish:goleakok — process-lifetime metronome, dies with the process
	go func() {
		for {
		}
	}()
}
