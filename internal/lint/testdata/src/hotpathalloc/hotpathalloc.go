// Package hotpathalloc exercises the hotpathalloc analyzer. It is loaded
// under an import path inside the scoped packages (internal/tensor), so
// allocations in functions reachable from the //goldfish:hotpath root are
// flagged, while //goldfish:coldpath cuts the setup subtree out of
// reachability and //goldfish:allocok vouches for single lines.
package hotpathalloc

// T is an arbitrary payload type.
type T struct{ X int }

// NewT is a module-internal constructor. Its own allocation is expected —
// the coldpath cut keeps its body out of the hot set — and each hot call
// site is what gets flagged instead.
//
//goldfish:coldpath
func NewT() *T { return &T{} }

// Root is the fixture's hot entry point: every allocation in its body and in
// the functions it reaches is on the hot path.
//
//goldfish:hotpath
func Root() {
	buf := make([]byte, 16)          // want "make allocates in a hot path \\(reachable from .*Root\\)"
	buf = append(buf, 1)             // want "append allocates in a hot path"
	_ = new(T)                       // want "new allocates in a hot path"
	_ = &T{X: 1}                     // want "&composite literal allocates in a hot path"
	_ = []int{1, 2}                  // want "slice literal allocates in a hot path"
	_ = map[string]int{}             // want "map literal allocates in a hot path"
	_ = NewT()                       // want "constructor .*NewT allocates in a hot path"
	lit := func() *T { return &T{} } // want "&composite literal allocates in a hot path"
	_ = lit()
	_ = buf
	_ = grow(nil)
	setup()
}

// grow is hot through the Root -> grow edge; its grow-once allocation is the
// documented allocok escape.
func grow(s []float64) []float64 {
	if cap(s) < 8 {
		s = make([]float64, 8) //goldfish:allocok — grow-once scratch under test
	}
	return s
}

// setup is cut out of reachability: one-time construction is not hot even
// when a hot function calls it.
//
//goldfish:coldpath
func setup() {
	_ = make([]int, 1024)
}

// idle is not reachable from any hot root, so its allocation is fine.
func idle() []int { return make([]int, 4) }
