// Package lockorder exercises the lockorder analyzer: opposite acquisition
// orders of the same two mutexes form a cycle (directly or through the call
// graph), a consistent global order is silent, re-entering a held mutex is a
// self-cycle, and //goldfish:lockok removes a vouched-for edge.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
)

// locksB acquires muB; callers holding another mutex inherit the edge
// transitively through the call graph.
func locksB() {
	muB.Lock()
	muB.Unlock()
}

// forward takes muA and then, through locksB, muB.
func forward() {
	muA.Lock()
	locksB() // want "acquiring .*muB while holding .*muA .* participates in a lock-order cycle"
	muA.Unlock()
}

// reversed takes muB and then muA — the other half of the cycle.
func reversed() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "acquiring .*muA while holding .*muB .* participates in a lock-order cycle"
	muA.Unlock()
}

// consistent1 and consistent2 acquire muC before muD everywhere: an acyclic
// acquisition graph is the silent, correct shape.
func consistent1() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func consistent2() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	muD.Unlock()
}

// Counter re-enters its own field mutex through Total — an immediate
// self-deadlock, reported as a self-cycle on the named field mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Total locks to read the count.
func (c *Counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Add locks and then calls Total, which locks the same mutex again.
func (c *Counter) Add(d int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.Total() // want "while holding .*Counter.*mu .* participates in a lock-order cycle"
}

// vouched1 and vouched2 disagree on order, but the reviewer vouches for both
// acquisitions, removing the edges from the graph.
func vouched1() {
	muE.Lock()
	muF.Lock() //goldfish:lockok — probe-side pair, never held concurrently (under test)
	muF.Unlock()
	muE.Unlock()
}

func vouched2() {
	muF.Lock()
	muE.Lock() //goldfish:lockok — see vouched1
	muE.Unlock()
	muF.Unlock()
}
