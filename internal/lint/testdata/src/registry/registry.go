// Package registry is testdata for the registry analyzer: it defines a
// miniature factory registry in the shape internal/attack and
// internal/unlearn share (Register + Types over a package map), with both
// compliant and violating registrations and lookup errors.
package registry

import (
	"fmt"
	"sort"
)

// Factory creates one widget.
type Factory func() int

var registry = map[string]Factory{}

// Register adds a factory under name.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("registry: Register with empty name or nil factory")
	}
	registry[name] = f
}

// Types lists the registered names, sorted.
func Types() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New returns the named factory's product; its lookup error lists Types().
func New(name string) (int, error) {
	f, ok := registry[name]
	if !ok {
		return 0, fmt.Errorf("registry: unknown widget %q (registered: %v)", name, Types())
	}
	return f(), nil
}

// NewBare is the violating lookup: "unknown" without the Types() listing.
func NewBare(name string) (int, error) {
	f, ok := registry[name]
	if !ok {
		return 0, fmt.Errorf("registry: unknown widget %q", name) // want "unknown-name registry error must list the available names via Types"
	}
	return f(), nil
}

func init() {
	Register("good-name", func() int { return 1 })
	Register("also-fine-2", func() int { return 2 })
	Register("BadCase", func() int { return 3 })    // want "registry name \"BadCase\" is not lowercase-kebab"
	Register("snake_case", func() int { return 4 }) // want "registry name \"snake_case\" is not lowercase-kebab"
	Register("-leading", func() int { return 5 })   // want "registry name \"-leading\" is not lowercase-kebab"
	name := "computed"
	Register(name, func() int { return 6 }) // want "name in init\\(\\) must be a string literal"
}

// RegisterWidget is a public forwarding wrapper: passing its caller's name
// through is the one legal non-init registration.
func RegisterWidget(name string, f Factory) {
	Register(name, f)
}

// sneakyRegister registers outside init with a literal: flagged.
func sneakyRegister() {
	Register("late-literal", func() int { return 7 }) // want "Register with a literal name outside init"
}

// dynamicOutside registers outside init and outside any wrapper: flagged.
func dynamicOutside(name string) {
	Register(name, func() int { return 8 }) // want "Register outside init\\(\\) or a Register\\* forwarding wrapper"
}
