package loss

import (
	"fmt"

	"goldfish/internal/tensor"
)

// Goldfish is the composite unlearning objective of the paper (Eq. 6):
//
//	L = Lh + µc·Lc + µd·Ld,  Lh = Lr − Lf
//
// split across the two batches a training step sees. On remaining data the
// student minimizes hard loss plus distillation from the teacher (Lr +
// µd·Ld); on removed data it maximizes the hard loss while minimizing the
// confusion loss (−Lf + µc·Lc).
//
// Setting MuC or MuD to zero disables the corresponding component, which is
// how the Table X ablation is run. The zero value is unusable; use
// NewGoldfish for validated construction.
type Goldfish struct {
	// Hard is the supervised loss plug-in (cross-entropy by default).
	Hard Hard
	// MuC weighs the confusion loss (paper default 0.25).
	MuC float64
	// MuD weighs the distillation loss (paper default 1.0).
	MuD float64
	// Temp is the distillation temperature (paper default 3).
	Temp float64
	// ForgetScale weighs the −Lf gradient-ascent term; 1 matches Eq. 1.
	ForgetScale float64
}

// NewGoldfish returns the paper's default configuration: cross-entropy hard
// loss, µc = 0.25, µd = 1.0, T = 3 (§IV-B, following [36]).
func NewGoldfish() Goldfish {
	return Goldfish{Hard: CrossEntropy{}, MuC: 0.25, MuD: 1.0, Temp: 3, ForgetScale: 1}
}

// Validate reports configuration errors.
func (g Goldfish) Validate() error {
	if g.Hard == nil {
		return fmt.Errorf("loss: Goldfish requires a hard loss")
	}
	if g.MuC < 0 || g.MuD < 0 {
		return fmt.Errorf("loss: negative component weight µc=%g µd=%g", g.MuC, g.MuD)
	}
	if g.MuD > 0 && g.Temp <= 0 {
		return fmt.Errorf("loss: distillation enabled but temperature %g ≤ 0", g.Temp)
	}
	if g.ForgetScale < 0 {
		return fmt.Errorf("loss: negative forget scale %g", g.ForgetScale)
	}
	return nil
}

// RetainStep evaluates the remaining-data part of the objective,
// Lr + µd·Ld, for a batch of student logits, the teacher's logits on the
// same batch, and the true labels. teacherLogits may be nil when MuD is 0.
// It returns the scalar loss and its gradient w.r.t. the student logits.
func (g Goldfish) RetainStep(studentLogits, teacherLogits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	lossH, grad := g.Hard.Compute(studentLogits, labels)
	total := lossH
	if g.MuD > 0 {
		if teacherLogits == nil {
			panic("loss: RetainStep needs teacher logits when µd > 0")
		}
		ld, gd := Distillation(studentLogits, teacherLogits, g.Temp)
		total += g.MuD * ld
		grad.AXPY(g.MuD, gd)
	}
	return total, grad
}

// ForgetStep evaluates the removed-data part of the objective,
// −Lf·ForgetScale + µc·Lc, for a batch of student logits on removed samples
// with their (former) labels. It returns the scalar loss and its gradient
// w.r.t. the student logits.
func (g Goldfish) ForgetStep(studentLogits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	lossF, gradF := g.Hard.Compute(studentLogits, labels)
	total := -g.ForgetScale * lossF
	grad := gradF.Scale(-g.ForgetScale)
	if g.MuC > 0 {
		lc, gc := Confusion(studentLogits)
		total += g.MuC * lc
		grad.AXPY(g.MuC, gc)
	}
	return total, grad
}
