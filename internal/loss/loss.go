// Package loss implements the Goldfish loss module (paper §III-B): the hard
// losses (cross-entropy, focal, negative log-likelihood), the confusion loss
// over removed data, the temperature-scaled distillation loss, and the
// composite Goldfish objective L = Lh + µc·Lc + µd·Ld with Lh = Lr − Lf.
//
// Every loss returns both the scalar value and the analytic gradient with
// respect to the logits, so the network's Backward can be driven directly.
// All values are batch means, which keeps learning rates comparable across
// batch sizes and across the unequal |Dr| ≫ |Df| the paper assumes.
package loss

import (
	"fmt"
	"math"

	"goldfish/internal/tensor"
)

// Hard is a supervised loss on (logits, labels) used as the "hard loss"
// component. Implementations must return the batch-mean loss and the
// gradient w.r.t. the logits.
type Hard interface {
	// Name identifies the loss in experiment tables ("ce", "focal", "nll").
	Name() string
	// Compute returns the batch-mean loss and ∂L/∂logits.
	Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor)
}

func checkLogits(logits *tensor.Tensor, labels []int, what string) (n, c int) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("loss: %s expects 2-D logits, got %v", what, logits.Shape()))
	}
	n, c = logits.Dim(0), logits.Dim(1)
	if labels != nil && len(labels) != n {
		panic(fmt.Sprintf("loss: %s got %d labels for %d rows", what, len(labels), n))
	}
	if labels != nil {
		for i, y := range labels {
			if y < 0 || y >= c {
				panic(fmt.Sprintf("loss: %s label[%d]=%d out of range [0,%d)", what, i, y, c))
			}
		}
	}
	return n, c
}

// CrossEntropy is the standard softmax cross-entropy loss.
type CrossEntropy struct{}

var _ Hard = CrossEntropy{}

// Name implements Hard.
func (CrossEntropy) Name() string { return "ce" }

// Compute implements Hard. grad = (softmax(z) − onehot(y)) / N.
func (CrossEntropy) Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := checkLogits(logits, labels, "CrossEntropy")
	logp := tensor.LogSoftmaxRows(logits)
	grad := tensor.New(n, c)
	var total float64
	gd, ld := grad.Data(), logp.Data()
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		total -= row[labels[i]]
		grow := gd[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			grow[j] = math.Exp(row[j]) * inv
		}
		grow[labels[i]] -= inv
	}
	return total * inv, grad
}

// Focal is the focal loss of Lin et al. (ICCV 2017):
// L = −(1−p_t)^γ · log(p_t), reducing the weight of well-classified samples.
type Focal struct {
	// Gamma is the focusing parameter; 0 reduces to cross-entropy. The
	// common default is 2.
	Gamma float64
}

var _ Hard = Focal{}

// Name implements Hard.
func (Focal) Name() string { return "focal" }

// Compute implements Hard.
func (f Focal) Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := checkLogits(logits, labels, "Focal")
	gamma := f.Gamma
	p := tensor.SoftmaxRows(logits, 1)
	grad := tensor.New(n, c)
	var total float64
	pd, gd := p.Data(), grad.Data()
	inv := 1 / float64(n)
	const eps = 1e-12
	for i := 0; i < n; i++ {
		prow := pd[i*c : (i+1)*c]
		y := labels[i]
		pt := math.Max(prow[y], eps)
		onemp := 1 - pt
		logpt := math.Log(pt)
		total -= math.Pow(onemp, gamma) * logpt
		// dL/dpt = γ(1−pt)^{γ−1}·log(pt) − (1−pt)^γ / pt
		var dldpt float64
		if gamma == 0 {
			dldpt = -1 / pt
		} else {
			dldpt = gamma*math.Pow(onemp, gamma-1)*logpt - math.Pow(onemp, gamma)/pt
		}
		// dpt/dz_j = pt·(δ_{jy} − p_j)
		grow := gd[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			delta := 0.0
			if j == y {
				delta = 1
			}
			grow[j] = dldpt * pt * (delta - prow[j]) * inv
		}
	}
	return total * inv, grad
}

// NLL is the negative log-likelihood loss computed through an explicit
// log-softmax path. For hard labels it is numerically equal to CrossEntropy;
// the paper's Table XI ("Total loss γ") exercises it as a distinct hard-loss
// plug-in to demonstrate framework compatibility.
type NLL struct{}

var _ Hard = NLL{}

// Name implements Hard.
func (NLL) Name() string { return "nll" }

// Compute implements Hard.
func (NLL) Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := checkLogits(logits, labels, "NLL")
	logp := tensor.LogSoftmaxRows(logits)
	grad := tensor.New(n, c)
	var total float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logp.Data()[i*c : (i+1)*c]
		y := labels[i]
		total -= row[y]
		// d(−logp_y)/dz_j = p_j − δ_{jy}
		grow := grad.Data()[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			grow[j] = math.Exp(row[j]) * inv
		}
		grow[y] -= inv
	}
	return total * inv, grad
}

// Distillation computes the knowledge-distillation loss (paper Eq. 5):
// Ld = −mean_i Σ_c P_T(c|x_i) log P_S(c|x_i) with both confidence vectors
// computed at temperature T (Eqs. 3–4), scaled by T² as is standard for
// distillation (Hinton et al.) so the soft-target gradient magnitude stays
// comparable across temperatures. The returned gradient is w.r.t. the
// student logits: T²·(P_S − P_T)/(N·T) = T·(P_S − P_T)/N.
func Distillation(studentLogits, teacherLogits *tensor.Tensor, temp float64) (float64, *tensor.Tensor) {
	if !studentLogits.SameShape(teacherLogits) {
		panic(fmt.Sprintf("loss: Distillation shape mismatch %v vs %v",
			studentLogits.Shape(), teacherLogits.Shape()))
	}
	if temp <= 0 {
		panic(fmt.Sprintf("loss: Distillation temperature must be positive, got %g", temp))
	}
	n, c := checkLogits(studentLogits, nil, "Distillation")
	ps := tensor.SoftmaxRows(studentLogits, temp)
	pt := tensor.SoftmaxRows(teacherLogits, temp)
	grad := tensor.New(n, c)
	var total float64
	const eps = 1e-12
	inv := 1 / float64(n)
	t2 := temp * temp
	for i := 0; i < n; i++ {
		sRow := ps.Data()[i*c : (i+1)*c]
		tRow := pt.Data()[i*c : (i+1)*c]
		gRow := grad.Data()[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			total -= tRow[j] * math.Log(math.Max(sRow[j], eps)) * t2
			gRow[j] = (sRow[j] - tRow[j]) * inv * temp
		}
	}
	return total * inv, grad
}

// Confusion computes the confusion loss (paper Eq. 2):
// Lc = mean_j sqrt(Var(Ms(x_j))) over the removed batch, where Var is the
// population variance of the softmax prediction vector. Minimizing it pushes
// predictions on removed data towards the uniform distribution, erasing any
// confident (e.g. backdoored) pattern. The returned gradient is w.r.t. the
// logits.
func Confusion(logits *tensor.Tensor) (float64, *tensor.Tensor) {
	n, c := checkLogits(logits, nil, "Confusion")
	p := tensor.SoftmaxRows(logits, 1)
	grad := tensor.New(n, c)
	var total float64
	const eps = 1e-12
	mean := 1 / float64(c) // Σp = 1, so the mean prediction is always 1/c
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		prow := p.Data()[i*c : (i+1)*c]
		var variance float64
		for _, v := range prow {
			d := v - mean
			variance += d * d
		}
		variance /= float64(c)
		sd := math.Sqrt(variance)
		total += sd
		if sd < eps {
			continue // already uniform; zero gradient
		}
		// g_c = dL/dp_c = (p_c − mean)/(c·sd); chain through softmax:
		// dL/dz_k = p_k (g_k − Σ_c g_c p_c).
		grow := grad.Data()[i*c : (i+1)*c]
		var dot float64
		for j := 0; j < c; j++ {
			g := (prow[j] - mean) / (float64(c) * sd)
			grow[j] = g // reuse as scratch
			dot += g * prow[j]
		}
		for j := 0; j < c; j++ {
			grow[j] = prow[j] * (grow[j] - dot) * inv
		}
	}
	return total * inv, grad
}

// ByName returns the hard loss registered under name ("ce", "focal", "nll").
func ByName(name string) (Hard, error) {
	switch name {
	case "ce", "":
		return CrossEntropy{}, nil
	case "focal":
		return Focal{Gamma: 2}, nil
	case "nll":
		return NLL{}, nil
	default:
		return nil, fmt.Errorf("loss: unknown hard loss %q", name)
	}
}
