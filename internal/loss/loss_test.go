package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goldfish/internal/tensor"
)

// numGradCheck verifies grad against central finite differences of f at
// logits, probing every element.
func numGradCheck(t *testing.T, f func(*tensor.Tensor) float64, logits, grad *tensor.Tensor, tol float64) {
	t.Helper()
	const eps = 1e-6
	for i := range logits.Data() {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp := f(logits)
		logits.Data()[i] = orig - eps
		lm := f(logits)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		got := grad.Data()[i]
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("grad[%d]: analytic %g vs numerical %g", i, got, num)
		}
	}
}

func randLogits(seed int64, n, c int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	logits := tensor.New(n, c).RandNormal(rng, 0, 2)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(c)
	}
	return logits, labels
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(2, 4)
	l, _ := CrossEntropy{}.Compute(logits, []int{0, 3})
	if math.Abs(l-math.Log(4)) > 1e-12 {
		t.Errorf("CE(uniform) = %g, want %g", l, math.Log(4))
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	logits, labels := randLogits(1, 4, 5)
	_, grad := CrossEntropy{}.Compute(logits, labels)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := CrossEntropy{}.Compute(z, labels)
		return l
	}, logits, grad, 1e-6)
}

func TestCrossEntropyGradientRowsSumToZero(t *testing.T) {
	logits, labels := randLogits(2, 3, 6)
	_, grad := CrossEntropy{}.Compute(logits, labels)
	for i := 0; i < 3; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("row %d gradient sums to %g, want 0", i, s)
		}
	}
}

func TestFocalGradient(t *testing.T) {
	logits, labels := randLogits(3, 4, 5)
	_, grad := Focal{Gamma: 2}.Compute(logits, labels)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := Focal{Gamma: 2}.Compute(z, labels)
		return l
	}, logits, grad, 1e-5)
}

func TestFocalGammaZeroEqualsCE(t *testing.T) {
	logits, labels := randLogits(4, 5, 7)
	lf, gf := Focal{Gamma: 0}.Compute(logits, labels)
	lc, gc := CrossEntropy{}.Compute(logits, labels)
	if math.Abs(lf-lc) > 1e-10 {
		t.Errorf("focal γ=0 loss %g != CE %g", lf, lc)
	}
	if !gf.ApproxEqual(gc, 1e-10) {
		t.Error("focal γ=0 gradient != CE gradient")
	}
}

func TestFocalDownweightsEasyExamples(t *testing.T) {
	// A confidently correct sample should contribute far less focal loss
	// than cross-entropy loss.
	logits := tensor.FromSlice([]float64{8, 0, 0}, 1, 3)
	labels := []int{0}
	lf, _ := Focal{Gamma: 2}.Compute(logits, labels)
	lc, _ := CrossEntropy{}.Compute(logits, labels)
	if lf >= lc {
		t.Errorf("focal %g should be below CE %g on easy example", lf, lc)
	}
}

func TestNLLGradient(t *testing.T) {
	logits, labels := randLogits(5, 4, 6)
	_, grad := NLL{}.Compute(logits, labels)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := NLL{}.Compute(z, labels)
		return l
	}, logits, grad, 1e-6)
}

func TestNLLMatchesCE(t *testing.T) {
	logits, labels := randLogits(6, 3, 8)
	ln, _ := NLL{}.Compute(logits, labels)
	lc, _ := CrossEntropy{}.Compute(logits, labels)
	if math.Abs(ln-lc) > 1e-10 {
		t.Errorf("NLL %g != CE %g on hard labels", ln, lc)
	}
}

func TestDistillationGradient(t *testing.T) {
	student, _ := randLogits(7, 4, 5)
	teacher, _ := randLogits(8, 4, 5)
	for _, temp := range []float64{1, 3} {
		_, grad := Distillation(student, teacher, temp)
		numGradCheck(t, func(z *tensor.Tensor) float64 {
			l, _ := Distillation(z, teacher, temp)
			return l
		}, student, grad, 1e-5)
	}
}

func TestDistillationZeroGradAtTeacher(t *testing.T) {
	teacher, _ := randLogits(9, 3, 6)
	_, grad := Distillation(teacher.Clone(), teacher, 3)
	if grad.L2Norm() > 1e-10 {
		t.Errorf("gradient at student==teacher should vanish, norm=%g", grad.L2Norm())
	}
}

func TestDistillationTemperatureSoftens(t *testing.T) {
	// Higher temperature flattens the soft targets: after dividing out the
	// standard T² (well, T after softmax-Jacobian) gradient scaling, the
	// per-sample mismatch (P_S − P_T) must shrink with temperature.
	student := tensor.FromSlice([]float64{0, 0, 0}, 1, 3)
	teacher := tensor.FromSlice([]float64{5, 0, -5}, 1, 3)
	_, g1 := Distillation(student.Clone(), teacher, 1)
	_, g5 := Distillation(student.Clone(), teacher, 5)
	if g5.Scale(1.0/5).L2Norm() >= g1.L2Norm() {
		t.Errorf("unscaled T=5 mismatch %g should be below T=1 mismatch %g",
			g5.Scale(1.0/5).L2Norm(), g1.L2Norm())
	}
}

func TestConfusionGradient(t *testing.T) {
	logits, _ := randLogits(10, 4, 5)
	_, grad := Confusion(logits)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := Confusion(z)
		return l
	}, logits, grad, 1e-5)
}

func TestConfusionMinimizedAtUniform(t *testing.T) {
	// Uniform logits → uniform softmax → zero variance → zero loss.
	logits := tensor.New(3, 6)
	l, grad := Confusion(logits)
	if l > 1e-12 {
		t.Errorf("confusion at uniform = %g, want 0", l)
	}
	if grad.L2Norm() > 1e-9 {
		t.Errorf("gradient at uniform should vanish, norm=%g", grad.L2Norm())
	}
}

func TestConfusionDescentFlattensPredictions(t *testing.T) {
	// Gradient descent on the confusion loss alone must push a confident
	// prediction towards uniform.
	logits := tensor.FromSlice([]float64{6, 0, 0, 0}, 1, 4)
	start, _ := Confusion(logits)
	for i := 0; i < 200; i++ {
		_, g := Confusion(logits)
		logits.AXPY(-5, g)
	}
	end, _ := Confusion(logits)
	if end >= start/10 {
		t.Errorf("confusion did not decrease enough: %g → %g", start, end)
	}
	p := tensor.SoftmaxRows(logits, 1)
	for _, v := range p.Data() {
		if math.Abs(v-0.25) > 0.1 {
			t.Errorf("prediction %g not near uniform 0.25", v)
		}
	}
}

func TestGoldfishValidate(t *testing.T) {
	if err := NewGoldfish().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Goldfish{
		{}, // no hard loss
		{Hard: CrossEntropy{}, MuC: -1},
		{Hard: CrossEntropy{}, MuD: 1, Temp: 0},
		{Hard: CrossEntropy{}, ForgetScale: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGoldfishRetainStepGradient(t *testing.T) {
	student, labels := randLogits(11, 4, 5)
	teacher, _ := randLogits(12, 4, 5)
	g := NewGoldfish()
	_, grad := g.RetainStep(student, teacher, labels)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := g.RetainStep(z, teacher, labels)
		return l
	}, student, grad, 1e-5)
}

func TestGoldfishForgetStepGradient(t *testing.T) {
	student, labels := randLogits(13, 4, 5)
	g := NewGoldfish()
	_, grad := g.ForgetStep(student, labels)
	numGradCheck(t, func(z *tensor.Tensor) float64 {
		l, _ := g.ForgetStep(z, labels)
		return l
	}, student, grad, 1e-5)
}

func TestGoldfishAblationToggles(t *testing.T) {
	student, labels := randLogits(14, 3, 5)
	teacher, _ := randLogits(15, 3, 5)

	full := NewGoldfish()
	noDistill := full
	noDistill.MuD = 0
	lFull, _ := full.RetainStep(student.Clone(), teacher, labels)
	lNoD, _ := noDistill.RetainStep(student.Clone(), nil, labels)
	if lFull == lNoD {
		t.Error("disabling distillation should change the retain loss")
	}

	noConf := full
	noConf.MuC = 0
	lF, _ := full.ForgetStep(student.Clone(), labels)
	lNC, _ := noConf.ForgetStep(student.Clone(), labels)
	if lF == lNC {
		t.Error("disabling confusion should change the forget loss")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ce", "focal", "nll", ""} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

// Property: CE loss is non-negative and gradient rows sum to ~0 for all
// random logits.
func TestQuickCEProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(5), 2+rng.Intn(6)
		logits := tensor.New(n, c).RandNormal(rng, 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		l, grad := CrossEntropy{}.Compute(logits, labels)
		if l < 0 {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: confusion loss lies in [0, bound] where the variance of a
// probability vector is at most (c−1)/c² … sqrt of that bounds the loss.
func TestQuickConfusionBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(5), 2+rng.Intn(6)
		logits := tensor.New(n, c).RandNormal(rng, 0, 5)
		l, _ := Confusion(logits)
		cf := float64(c)
		bound := math.Sqrt((cf - 1) / (cf * cf))
		return l >= 0 && l <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
