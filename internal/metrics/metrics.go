// Package metrics evaluates models for the Goldfish experiments: test
// accuracy, backdoor attack success rate, the MSE score used by the
// adaptive-weight aggregation (paper Eq. 12), and the model-vs-model
// similarity statistics of Tables VII–IX (Jensen–Shannon divergence, L2
// distance, Welch t-test over prediction confidences).
package metrics

import (
	"fmt"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/nn"
	"goldfish/internal/stats"
	"goldfish/internal/tensor"
)

// defaultEvalBatch bounds memory use during evaluation.
const defaultEvalBatch = 256

// Probabilities runs the network over the dataset in evaluation mode and
// returns softmax probabilities of shape (N, classes). batch ≤ 0 selects a
// default evaluation batch size.
func Probabilities(net *nn.Network, d *data.Dataset, batch int) *tensor.Tensor {
	if batch <= 0 {
		batch = defaultEvalBatch
	}
	n := d.Len()
	var out *tensor.Tensor
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		logits := net.Forward(tensor.SliceRows(d.X, idx), false)
		probs := tensor.SoftmaxRows(logits, 1)
		if out == nil {
			out = tensor.New(n, probs.Dim(1))
		}
		copy(out.Data()[start*probs.Dim(1):], probs.Data())
	}
	return out
}

// Accuracy returns the fraction of dataset samples the network classifies
// correctly.
func Accuracy(net *nn.Network, d *data.Dataset, batch int) float64 {
	if d.Len() == 0 {
		return 0
	}
	probs := Probabilities(net, d, batch)
	pred := tensor.ArgMaxRows(probs)
	correct := 0
	for i, p := range pred {
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// AttackSuccessRate measures the backdoor attack success rate: the fraction
// of trigger-stamped samples classified as the attack target. The triggered
// dataset should come from BackdoorConfig.TriggerCopy, which already
// excludes samples whose true label is the target.
func AttackSuccessRate(net *nn.Network, triggered *data.Dataset, target int, batch int) float64 {
	if triggered.Len() == 0 {
		return 0
	}
	probs := Probabilities(net, triggered, batch)
	pred := tensor.ArgMaxRows(probs)
	hits := 0
	for _, p := range pred {
		if p == target {
			hits++
		}
	}
	return float64(hits) / float64(triggered.Len())
}

// NewMSEScorer returns a function computing the Eq. 12 MSE of a flat
// parameter vector on the given test set. Each call evaluates on a
// per-goroutine replica of template drawn from a pool, so the scorer is
// safe for the round engine's concurrent scoring. template itself is never
// mutated.
func NewMSEScorer(template *nn.Network, test *data.Dataset, batch int) func(params []float64) (float64, error) {
	tmpl := template.Clone()
	pool := sync.Pool{New: func() any { return tmpl.Clone() }}
	return func(params []float64) (float64, error) {
		net := pool.Get().(*nn.Network)
		defer pool.Put(net)
		if err := net.SetStateVector(params); err != nil {
			return 0, fmt.Errorf("metrics: scoring parameters: %w", err)
		}
		mse := MSE(net, test, batch)
		// The replica returns to the pool idle; don't let it pin
		// test-batch-sized activations while it waits.
		net.ReleaseActivations()
		return mse, nil
	}
}

// MSE returns the mean squared error between the network's softmax outputs
// and the one-hot labels over the dataset — the model-quality score the
// adaptive-weight aggregation uses (paper Eq. 12).
func MSE(net *nn.Network, d *data.Dataset, batch int) float64 {
	if d.Len() == 0 {
		return 0
	}
	probs := Probabilities(net, d, batch)
	c := probs.Dim(1)
	var total float64
	pd := probs.Data()
	for i := 0; i < d.Len(); i++ {
		row := pd[i*c : (i+1)*c]
		for j, p := range row {
			target := 0.0
			if j == d.Y[i] {
				target = 1
			}
			diff := p - target
			total += diff * diff
		}
	}
	return total / float64(d.Len()*c)
}

// Divergence holds the model-similarity statistics of Tables VII–IX
// comparing an unlearned model against a reference (retrained) model.
type Divergence struct {
	// JSD is the mean per-sample Jensen–Shannon divergence between the two
	// models' predictive distributions (nats, ≤ ln 2).
	JSD float64
	// L2 is the mean per-sample Euclidean distance between the two models'
	// probability vectors.
	L2 float64
}

// ModelDivergence computes JSD and L2 between the predictive distributions
// of models a and b over the dataset.
func ModelDivergence(a, b *nn.Network, d *data.Dataset, batch int) (Divergence, error) {
	if d.Len() == 0 {
		return Divergence{}, fmt.Errorf("metrics: empty probe dataset")
	}
	pa := Probabilities(a, d, batch)
	pb := Probabilities(b, d, batch)
	if pa.Dim(1) != pb.Dim(1) {
		return Divergence{}, fmt.Errorf("metrics: class count mismatch %d vs %d", pa.Dim(1), pb.Dim(1))
	}
	var sumJSD, sumL2 float64
	for i := 0; i < d.Len(); i++ {
		jsd, err := stats.JSDivergence(pa.Row(i), pb.Row(i))
		if err != nil {
			return Divergence{}, fmt.Errorf("metrics: JSD at row %d: %w", i, err)
		}
		l2, err := stats.L2Distance(pa.Row(i), pb.Row(i))
		if err != nil {
			return Divergence{}, fmt.Errorf("metrics: L2 at row %d: %w", i, err)
		}
		sumJSD += jsd
		sumL2 += l2
	}
	n := float64(d.Len())
	return Divergence{JSD: sumJSD / n, L2: sumL2 / n}, nil
}

// TopConfidences returns each sample's maximum predicted probability — the
// per-sample statistic the t-test compares.
func TopConfidences(net *nn.Network, d *data.Dataset, batch int) []float64 {
	probs := Probabilities(net, d, batch)
	c := probs.Dim(1)
	out := make([]float64, d.Len())
	for i := range out {
		row := probs.Data()[i*c : (i+1)*c]
		best := row[0]
		for _, v := range row[1:] {
			if v > best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// ConfidenceTTest runs Welch's t-test on the per-sample top confidences of
// models a and b over the dataset, answering "are the two models' prediction
// patterns statistically distinguishable?" (paper Tables VII–IX).
func ConfidenceTTest(a, b *nn.Network, d *data.Dataset, batch int) (stats.TTestResult, error) {
	if d.Len() < 2 {
		return stats.TTestResult{}, fmt.Errorf("metrics: t-test needs ≥2 probe samples, got %d", d.Len())
	}
	ca := TopConfidences(a, d, batch)
	cb := TopConfidences(b, d, batch)
	res, err := stats.WelchTTest(ca, cb)
	if err != nil {
		return stats.TTestResult{}, fmt.Errorf("metrics: %w", err)
	}
	return res, nil
}

// MembershipGap estimates how much a model still "remembers" specific
// samples: the difference between its mean top-confidence on those samples
// and on a held-out probe set of the same distribution. A model that
// memorized the target samples is systematically more confident on them
// (positive gap) — the confidence-based membership-inference signal the
// unlearning literature uses as a validity check; a well-unlearned model's
// gap returns towards zero.
func MembershipGap(net *nn.Network, target, probe *data.Dataset, batch int) float64 {
	if target.Len() == 0 || probe.Len() == 0 {
		return 0
	}
	tc := TopConfidences(net, target, batch)
	pc := TopConfidences(net, probe, batch)
	return stats.Mean(tc) - stats.Mean(pc)
}
