// Package metrics evaluates models for the Goldfish experiments: test
// accuracy, backdoor attack success rate, the MSE score used by the
// adaptive-weight aggregation (paper Eq. 12), and the model-vs-model
// similarity statistics of Tables VII–IX (Jensen–Shannon divergence, L2
// distance, Welch t-test over prediction confidences).
package metrics

import (
	"fmt"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/nn"
	"goldfish/internal/stats"
	"goldfish/internal/tensor"
)

// defaultEvalBatch bounds memory use during evaluation.
const defaultEvalBatch = 256

// evalScratch is one evaluation's reusable buffers: the batch row indices,
// the sliced input batch, and the softmax output. Scratch sets are drawn from
// evalPool because the round engine scores clients concurrently, so multiple
// evaluations can be streaming at once.
type evalScratch struct {
	idx       []int
	in, probs *tensor.Tensor
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// forEachProbBatch streams the network's evaluation-mode softmax
// probabilities over d: fn is called once per batch with the batch's starting
// row and its (rows, classes) probability tensor. The tensor is pooled
// scratch, overwritten by the next batch — fn must not retain it. Batches are
// visited in row order with identical arithmetic to a whole-dataset
// evaluation, so streaming consumers are bit-identical to matrix-assembling
// ones. batch ≤ 0 selects the default evaluation batch size.
func forEachProbBatch(net *nn.Network, d *data.Dataset, batch int, fn func(start int, probs *tensor.Tensor)) {
	if batch <= 0 {
		batch = defaultEvalBatch
	}
	n := d.Len()
	s := evalPool.Get().(*evalScratch)
	defer evalPool.Put(s)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		if cap(s.idx) < end-start {
			s.idx = make([]int, end-start) //goldfish:allocok — grow-once scratch, pooled across evaluations
		}
		s.idx = s.idx[:end-start]
		for i := range s.idx {
			s.idx[i] = start + i
		}
		s.in = tensor.SliceRowsInto(s.in, d.X, s.idx)
		logits := net.Forward(s.in, false)
		s.probs = tensor.SoftmaxRowsInto(s.probs, logits, 1)
		fn(start, s.probs)
	}
}

// Probabilities runs the network over the dataset in evaluation mode and
// returns softmax probabilities of shape (N, classes). batch ≤ 0 selects a
// default evaluation batch size. Metrics that only need a streaming view
// should use forEachProbBatch instead of materializing this matrix.
func Probabilities(net *nn.Network, d *data.Dataset, batch int) *tensor.Tensor {
	var out *tensor.Tensor
	forEachProbBatch(net, d, batch, func(start int, probs *tensor.Tensor) {
		if out == nil {
			out = tensor.New(d.Len(), probs.Dim(1)) //goldfish:allocok — full matrix escapes by API contract
		}
		copy(out.Data()[start*probs.Dim(1):], probs.Data())
	})
	return out
}

// Accuracy returns the fraction of dataset samples the network classifies
// correctly.
func Accuracy(net *nn.Network, d *data.Dataset, batch int) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	forEachProbBatch(net, d, batch, func(start int, probs *tensor.Tensor) {
		m, c := probs.Dim(0), probs.Dim(1)
		pd := probs.Data()
		for i := 0; i < m; i++ {
			// Same first-wins tie-break as tensor.ArgMaxRows.
			row := pd[i*c : (i+1)*c]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			if best == d.Y[start+i] {
				correct++
			}
		}
	})
	return float64(correct) / float64(d.Len())
}

// AttackSuccessRate measures the backdoor attack success rate: the fraction
// of trigger-stamped samples classified as the attack target. The triggered
// dataset should come from BackdoorConfig.TriggerCopy, which already
// excludes samples whose true label is the target.
func AttackSuccessRate(net *nn.Network, triggered *data.Dataset, target int, batch int) float64 {
	if triggered.Len() == 0 {
		return 0
	}
	hits := 0
	forEachProbBatch(net, triggered, batch, func(start int, probs *tensor.Tensor) {
		m, c := probs.Dim(0), probs.Dim(1)
		pd := probs.Data()
		for i := 0; i < m; i++ {
			// Same first-wins tie-break as tensor.ArgMaxRows.
			row := pd[i*c : (i+1)*c]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			if best == target {
				hits++
			}
		}
	})
	return float64(hits) / float64(triggered.Len())
}

// NewMSEScorer returns a function computing the Eq. 12 MSE of a flat
// parameter vector on the given test set. Each call evaluates on a
// per-goroutine replica of template drawn from a pool, so the scorer is
// safe for the round engine's concurrent scoring. template itself is never
// mutated.
func NewMSEScorer(template *nn.Network, test *data.Dataset, batch int) func(params []float64) (float64, error) {
	tmpl := template.Clone()
	pool := sync.Pool{New: func() any { return tmpl.Clone() }}
	return func(params []float64) (float64, error) {
		net := pool.Get().(*nn.Network)
		defer pool.Put(net)
		if err := net.SetStateVector(params); err != nil {
			return 0, fmt.Errorf("metrics: scoring parameters: %w", err)
		}
		mse := MSE(net, test, batch)
		// The replica returns to the pool idle; don't let it pin
		// test-batch-sized activations while it waits.
		net.ReleaseActivations()
		return mse, nil
	}
}

// MSE returns the mean squared error between the network's softmax outputs
// and the one-hot labels over the dataset — the model-quality score the
// adaptive-weight aggregation uses (paper Eq. 12).
func MSE(net *nn.Network, d *data.Dataset, batch int) float64 {
	if d.Len() == 0 {
		return 0
	}
	var total float64
	classes := 0
	forEachProbBatch(net, d, batch, func(start int, probs *tensor.Tensor) {
		m, c := probs.Dim(0), probs.Dim(1)
		classes = c
		pd := probs.Data()
		for i := 0; i < m; i++ {
			row := pd[i*c : (i+1)*c]
			for j, p := range row {
				target := 0.0
				if j == d.Y[start+i] {
					target = 1
				}
				diff := p - target
				total += diff * diff
			}
		}
	})
	return total / float64(d.Len()*classes)
}

// Divergence holds the model-similarity statistics of Tables VII–IX
// comparing an unlearned model against a reference (retrained) model.
type Divergence struct {
	// JSD is the mean per-sample Jensen–Shannon divergence between the two
	// models' predictive distributions (nats, ≤ ln 2).
	JSD float64
	// L2 is the mean per-sample Euclidean distance between the two models'
	// probability vectors.
	L2 float64
}

// ModelDivergence computes JSD and L2 between the predictive distributions
// of models a and b over the dataset.
func ModelDivergence(a, b *nn.Network, d *data.Dataset, batch int) (Divergence, error) {
	if d.Len() == 0 {
		return Divergence{}, fmt.Errorf("metrics: empty probe dataset")
	}
	pa := Probabilities(a, d, batch)
	pb := Probabilities(b, d, batch)
	if pa.Dim(1) != pb.Dim(1) {
		return Divergence{}, fmt.Errorf("metrics: class count mismatch %d vs %d", pa.Dim(1), pb.Dim(1))
	}
	var sumJSD, sumL2 float64
	for i := 0; i < d.Len(); i++ {
		jsd, err := stats.JSDivergence(pa.Row(i), pb.Row(i))
		if err != nil {
			return Divergence{}, fmt.Errorf("metrics: JSD at row %d: %w", i, err)
		}
		l2, err := stats.L2Distance(pa.Row(i), pb.Row(i))
		if err != nil {
			return Divergence{}, fmt.Errorf("metrics: L2 at row %d: %w", i, err)
		}
		sumJSD += jsd
		sumL2 += l2
	}
	n := float64(d.Len())
	return Divergence{JSD: sumJSD / n, L2: sumL2 / n}, nil
}

// TopConfidences returns each sample's maximum predicted probability — the
// per-sample statistic the t-test compares.
func TopConfidences(net *nn.Network, d *data.Dataset, batch int) []float64 {
	out := make([]float64, d.Len()) //goldfish:allocok — per-sample statistics escape by API contract
	forEachProbBatch(net, d, batch, func(start int, probs *tensor.Tensor) {
		m, c := probs.Dim(0), probs.Dim(1)
		pd := probs.Data()
		for i := 0; i < m; i++ {
			row := pd[i*c : (i+1)*c]
			best := row[0]
			for _, v := range row[1:] {
				if v > best {
					best = v
				}
			}
			out[start+i] = best
		}
	})
	return out
}

// ConfidenceTTest runs Welch's t-test on the per-sample top confidences of
// models a and b over the dataset, answering "are the two models' prediction
// patterns statistically distinguishable?" (paper Tables VII–IX).
func ConfidenceTTest(a, b *nn.Network, d *data.Dataset, batch int) (stats.TTestResult, error) {
	if d.Len() < 2 {
		return stats.TTestResult{}, fmt.Errorf("metrics: t-test needs ≥2 probe samples, got %d", d.Len())
	}
	ca := TopConfidences(a, d, batch)
	cb := TopConfidences(b, d, batch)
	res, err := stats.WelchTTest(ca, cb)
	if err != nil {
		return stats.TTestResult{}, fmt.Errorf("metrics: %w", err)
	}
	return res, nil
}

// MembershipGap estimates how much a model still "remembers" specific
// samples: the difference between its mean top-confidence on those samples
// and on a held-out probe set of the same distribution. A model that
// memorized the target samples is systematically more confident on them
// (positive gap) — the confidence-based membership-inference signal the
// unlearning literature uses as a validity check; a well-unlearned model's
// gap returns towards zero.
func MembershipGap(net *nn.Network, target, probe *data.Dataset, batch int) float64 {
	if target.Len() == 0 || probe.Len() == 0 {
		return 0
	}
	return meanTopConfidence(net, target, batch) - meanTopConfidence(net, probe, batch)
}

// meanTopConfidence streams the mean of the per-sample top confidences. The
// left-to-right accumulation matches stats.Mean over TopConfidences exactly,
// so the streaming form is bit-identical to the materializing one.
func meanTopConfidence(net *nn.Network, d *data.Dataset, batch int) float64 {
	var sum float64
	forEachProbBatch(net, d, batch, func(start int, probs *tensor.Tensor) {
		m, c := probs.Dim(0), probs.Dim(1)
		pd := probs.Data()
		for i := 0; i < m; i++ {
			row := pd[i*c : (i+1)*c]
			best := row[0]
			for _, v := range row[1:] {
				if v > best {
					best = v
				}
			}
			sum += best
		}
	})
	return sum / float64(d.Len())
}
