package metrics

import (
	"math"
	"math/rand"
	"testing"

	"goldfish/internal/data"
	"goldfish/internal/nn"
	"goldfish/internal/tensor"
)

// perfectNet builds a network whose logit for class c is 10·x[0,0,c]: with
// readoutSet datasets below it classifies perfectly.
func perfectNet(t *testing.T, classes int) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense(classes*4, classes, rng)
	for _, p := range d.Params() {
		p.W.Zero()
	}
	// Weight row c reads input element c.
	w := d.Params()[0].W
	for c := 0; c < classes; c++ {
		w.Set(10, c, c)
	}
	return nn.NewNetwork(nn.NewFlatten(), d)
}

// readoutSet builds a dataset where sample i of class y has x[0,0,y]=1 and
// zeros elsewhere, shaped (n, 1, 2, classes*2).
func readoutSet(t *testing.T, n, classes int, seed int64) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 1, 2, classes*2)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
		x.Set(1, i, 0, 0, y[i])
	}
	d, err := data.NewDataset(x, y, classes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAccuracyPerfectAndBroken(t *testing.T) {
	classes := 4
	d := readoutSet(t, 40, classes, 2)
	net := perfectNet(t, classes)
	if got := Accuracy(net, d, 16); got != 1 {
		t.Errorf("perfect net accuracy = %g, want 1", got)
	}
	// Zeroed network: uniform logits, argmax is class 0 everywhere.
	zero := perfectNet(t, classes)
	for _, p := range zero.Params() {
		p.W.Zero()
	}
	acc := Accuracy(zero, d, 16)
	want := float64(countLabel(d, 0)) / float64(d.Len())
	if math.Abs(acc-want) > 1e-12 {
		t.Errorf("zero net accuracy = %g, want %g", acc, want)
	}
}

func countLabel(d *data.Dataset, y int) int {
	n := 0
	for _, label := range d.Y {
		if label == y {
			n++
		}
	}
	return n
}

func TestAccuracyEmptyDataset(t *testing.T) {
	classes := 3
	d := readoutSet(t, 5, classes, 3)
	empty := d.Subset(nil)
	if got := Accuracy(perfectNet(t, classes), empty, 4); got != 0 {
		t.Errorf("empty dataset accuracy = %g, want 0", got)
	}
}

func TestProbabilitiesRowsSumToOne(t *testing.T) {
	classes := 5
	d := readoutSet(t, 23, classes, 4)
	probs := Probabilities(perfectNet(t, classes), d, 7) // odd batch to hit remainder
	for i := 0; i < d.Len(); i++ {
		var s float64
		for _, v := range probs.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestAttackSuccessRate(t *testing.T) {
	classes := 4
	d := readoutSet(t, 30, classes, 5)
	// A network that always answers class 2.
	rng := rand.New(rand.NewSource(6))
	always2 := nn.NewNetwork(nn.NewFlatten(), nn.NewDense(classes*4, classes, rng))
	for _, p := range always2.Params() {
		p.W.Zero()
	}
	always2.Params()[1].W.Set(10, 2) // bias of class 2
	if got := AttackSuccessRate(always2, d, 2, 8); got != 1 {
		t.Errorf("ASR = %g, want 1", got)
	}
	if got := AttackSuccessRate(always2, d, 1, 8); got != 0 {
		t.Errorf("ASR for non-predicted target = %g, want 0", got)
	}
	if got := AttackSuccessRate(always2, d.Subset(nil), 2, 8); got != 0 {
		t.Errorf("ASR on empty set = %g, want 0", got)
	}
}

func TestMSEBounds(t *testing.T) {
	classes := 4
	d := readoutSet(t, 20, classes, 7)
	good := MSE(perfectNet(t, classes), d, 8)
	zero := perfectNet(t, classes)
	for _, p := range zero.Params() {
		p.W.Zero()
	}
	bad := MSE(zero, d, 8)
	if good >= bad {
		t.Errorf("perfect net MSE %g should be below uniform net MSE %g", good, bad)
	}
	if good < 0 || bad < 0 {
		t.Error("MSE must be non-negative")
	}
}

func TestModelDivergenceIdenticalModels(t *testing.T) {
	classes := 3
	d := readoutSet(t, 15, classes, 8)
	net := perfectNet(t, classes)
	div, err := ModelDivergence(net, net, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if div.JSD > 1e-10 || div.L2 > 1e-10 {
		t.Errorf("identical models should have zero divergence, got %+v", div)
	}
}

func TestModelDivergenceDifferentModels(t *testing.T) {
	classes := 3
	d := readoutSet(t, 15, classes, 9)
	a := perfectNet(t, classes)
	b := perfectNet(t, classes)
	// Flip b towards class 0 everywhere.
	b.Params()[1].W.Set(25, 0)
	div, err := ModelDivergence(a, b, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if div.JSD <= 0.01 || div.L2 <= 0.01 {
		t.Errorf("different models should diverge, got %+v", div)
	}
	if div.JSD > math.Ln2+1e-9 {
		t.Errorf("JSD %g exceeds ln 2", div.JSD)
	}
	if _, err := ModelDivergence(a, b, d.Subset(nil), 8); err == nil {
		t.Error("empty probe set accepted")
	}
}

func TestConfidenceTTest(t *testing.T) {
	classes := 3
	d := readoutSet(t, 40, classes, 10)
	a := perfectNet(t, classes) // confident
	b := perfectNet(t, classes)
	for _, p := range b.Params() {
		p.W.ScaleInPlace(0.01) // near-uniform, low confidence
	}
	res, err := ConfidenceTTest(a, b, d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("clearly different confidence patterns: p = %g, want < 0.01", res.P)
	}
	same, err := ConfidenceTTest(a, a, d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if same.P != 1 {
		t.Errorf("identical models: p = %g, want 1", same.P)
	}
	if _, err := ConfidenceTTest(a, b, d.Subset([]int{0}), 16); err == nil {
		t.Error("single-sample probe accepted")
	}
}

func TestTopConfidences(t *testing.T) {
	classes := 4
	d := readoutSet(t, 10, classes, 11)
	conf := TopConfidences(perfectNet(t, classes), d, 4)
	if len(conf) != 10 {
		t.Fatalf("got %d confidences", len(conf))
	}
	for _, c := range conf {
		if c < 1.0/float64(classes) || c > 1 {
			t.Errorf("confidence %g out of range", c)
		}
	}
}

func TestMembershipGap(t *testing.T) {
	classes := 4
	members := readoutSet(t, 30, classes, 20)
	// Probe set: pure noise images the readout net is unconfident on.
	rng := rand.New(rand.NewSource(21))
	noise := tensor.New(30, 1, 2, classes*2).RandNormal(rng, 0, 0.05)
	labels := make([]int, 30)
	probe, err := data.NewDataset(noise, labels, classes)
	if err != nil {
		t.Fatal(err)
	}
	net := perfectNet(t, classes)
	gap := MembershipGap(net, members, probe, 8)
	if gap < 0.1 {
		t.Errorf("confident-on-members model should show positive gap, got %g", gap)
	}
	if self := MembershipGap(net, members, members, 8); math.Abs(self) > 1e-12 {
		t.Errorf("gap against itself = %g, want 0", self)
	}
	if empty := MembershipGap(net, members.Subset(nil), probe, 8); empty != 0 {
		t.Errorf("empty target gap = %g, want 0", empty)
	}
}
