// Package model provides the model zoo used by the Goldfish evaluation:
// LeNet-5 and a modified LeNet-5 (as in the paper's MNIST/FMNIST/CIFAR-10
// experiments), CIFAR-style ResNet-32 and ResNet-56, and a small MLP used by
// fast tests.
//
// Architectures keep the paper's exact topology (layer counts, residual
// wiring). Because this reproduction trains in pure Go on CPUs, Config.Width
// scales channel widths and Config.DepthN can shrink the residual stages,
// producing the same shape of network at a tractable cost; the defaults are
// the paper's dimensions.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"goldfish/internal/nn"
)

// Arch identifies a network architecture from the paper.
type Arch string

// Architectures used in the paper's evaluation (§IV-A "Models").
const (
	// ArchLeNet5 is the traditional LeNet-5: 2 conv, 2 max-pool, 2 FC.
	ArchLeNet5 Arch = "lenet5"
	// ArchLeNet5Mod is the modified LeNet-5 for CIFAR-10: 2 conv, 2
	// max-pool, 3 FC.
	ArchLeNet5Mod Arch = "lenet5mod"
	// ArchResNet32 is the CIFAR ResNet with 6n+2 layers, n=5.
	ArchResNet32 Arch = "resnet32"
	// ArchResNet56 is the CIFAR ResNet with 6n+2 layers, n=9.
	ArchResNet56 Arch = "resnet56"
	// ArchMLP is a small two-layer perceptron used by fast tests and the
	// quickstart example (not from the paper).
	ArchMLP Arch = "mlp"
)

// Config describes a network to build.
type Config struct {
	Arch    Arch
	InC     int // input channels (1 for MNIST-like, 3 for CIFAR-like)
	InH     int // input height
	InW     int // input width
	Classes int // number of output classes

	// Width scales all channel/hidden widths; 0 means 1.0 (paper widths).
	Width float64
	// DepthN overrides the residual blocks per stage for ResNets; 0 keeps
	// the paper depth (5 for ResNet-32, 9 for ResNet-56).
	DepthN int
	// Seed drives deterministic weight initialization.
	Seed int64
}

func (c Config) validate() error {
	if c.InC <= 0 || c.InH <= 0 || c.InW <= 0 {
		return fmt.Errorf("model: invalid input shape %dx%dx%d", c.InC, c.InH, c.InW)
	}
	if c.Classes < 2 {
		return fmt.Errorf("model: need ≥2 classes, got %d", c.Classes)
	}
	if c.Width < 0 {
		return fmt.Errorf("model: negative width multiplier %g", c.Width)
	}
	if c.DepthN < 0 {
		return fmt.Errorf("model: negative depth override %d", c.DepthN)
	}
	return nil
}

// width returns the effective multiplier.
func (c Config) width() float64 {
	if c.Width == 0 {
		return 1
	}
	return c.Width
}

// scaled returns max(1, round(base·width)).
func (c Config) scaled(base int) int {
	v := int(math.Round(float64(base) * c.width()))
	if v < 1 {
		return 1
	}
	return v
}

// Build constructs the network described by cfg.
func Build(cfg Config) (*nn.Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Arch {
	case ArchLeNet5:
		return buildLeNet5(cfg, rng, false)
	case ArchLeNet5Mod:
		return buildLeNet5(cfg, rng, true)
	case ArchResNet32:
		n := cfg.DepthN
		if n == 0 {
			n = 5
		}
		return buildResNet(cfg, rng, n)
	case ArchResNet56:
		n := cfg.DepthN
		if n == 0 {
			n = 9
		}
		return buildResNet(cfg, rng, n)
	case ArchMLP:
		return buildMLP(cfg, rng)
	default:
		return nil, fmt.Errorf("model: unknown architecture %q", cfg.Arch)
	}
}

// MustBuild is Build that panics on error, for tests and examples with
// hard-coded valid configs.
func MustBuild(cfg Config) *nn.Network {
	net, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// buildLeNet5 constructs LeNet-5 (modified=false: two FC layers) or the
// paper's modified LeNet-5 (modified=true: three FC layers).
func buildLeNet5(cfg Config, rng *rand.Rand, modified bool) (*nn.Network, error) {
	c1 := cfg.scaled(6)
	c2 := cfg.scaled(16)
	// conv k5 pad2 stride1 preserves size; pool halves; conv k5 pad0
	// shrinks by 4; pool halves.
	h := cfg.InH
	w := cfg.InW
	h, w = h/2, w/2 // after pool1
	h, w = h-4, w-4 // after conv2
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("model: input %dx%d too small for LeNet-5", cfg.InH, cfg.InW)
	}
	h, w = h/2, w/2 // after pool2
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("model: input %dx%d too small for LeNet-5", cfg.InH, cfg.InW)
	}
	flat := c2 * h * w
	net := nn.NewNetwork(
		nn.NewConv2D(cfg.InC, c1, 5, 1, 2, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2),
		nn.NewConv2D(c1, c2, 5, 1, 0, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2),
		nn.NewFlatten(),
	)
	f1 := cfg.scaled(120)
	if modified {
		f2 := cfg.scaled(84)
		net.Add(
			nn.NewDense(flat, f1, rng),
			nn.NewReLU(),
			nn.NewDense(f1, f2, rng),
			nn.NewReLU(),
			nn.NewDense(f2, cfg.Classes, rng),
		)
	} else {
		net.Add(
			nn.NewDense(flat, f1, rng),
			nn.NewReLU(),
			nn.NewDense(f1, cfg.Classes, rng),
		)
	}
	return net, nil
}

// buildResNet constructs a CIFAR-style ResNet with three stages of n basic
// blocks at widths 16/32/64 (scaled), total depth 6n+2.
func buildResNet(cfg Config, rng *rand.Rand, n int) (*nn.Network, error) {
	if cfg.InH < 4 || cfg.InW < 4 {
		return nil, fmt.Errorf("model: input %dx%d too small for ResNet", cfg.InH, cfg.InW)
	}
	w1 := cfg.scaled(16)
	w2 := cfg.scaled(32)
	w3 := cfg.scaled(64)
	net := nn.NewNetwork(
		nn.NewConv2D(cfg.InC, w1, 3, 1, 1, rng),
		nn.NewBatchNorm2D(w1),
		nn.NewReLU(),
	)
	stage := func(inC, outC, blocks, firstStride int) {
		net.Add(nn.NewResidual(inC, outC, firstStride, rng))
		for i := 1; i < blocks; i++ {
			net.Add(nn.NewResidual(outC, outC, 1, rng))
		}
	}
	stage(w1, w1, n, 1)
	stage(w1, w2, n, 2)
	stage(w2, w3, n, 2)
	net.Add(
		nn.NewGlobalAvgPool2D(),
		nn.NewDense(w3, cfg.Classes, rng),
	)
	return net, nil
}

// buildMLP constructs flatten → dense → relu → dense.
func buildMLP(cfg Config, rng *rand.Rand) (*nn.Network, error) {
	in := cfg.InC * cfg.InH * cfg.InW
	hidden := cfg.scaled(64)
	return nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(in, hidden, rng),
		nn.NewReLU(),
		nn.NewDense(hidden, cfg.Classes, rng),
	), nil
}
