package model

import (
	"math/rand"
	"testing"

	"goldfish/internal/tensor"
)

func TestBuildLeNet5Shapes(t *testing.T) {
	net, err := Build(Config{Arch: ArchLeNet5, InC: 1, InH: 28, InW: 28, Classes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 1, 28, 28).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("LeNet5 output shape = %v, want (2,10)", out.Shape())
	}
}

func TestBuildLeNet5ModShapes(t *testing.T) {
	net, err := Build(Config{Arch: ArchLeNet5Mod, InC: 3, InH: 32, InW: 32, Classes: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(1, 3, 32, 32).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(1) != 10 {
		t.Fatalf("LeNet5Mod output shape = %v", out.Shape())
	}
	// Modified variant has one more Dense layer than the base LeNet-5.
	base := MustBuild(Config{Arch: ArchLeNet5, InC: 3, InH: 32, InW: 32, Classes: 10, Seed: 2})
	if len(net.Params()) != len(base.Params())+2 {
		t.Errorf("modified LeNet-5 should add exactly one Dense layer (2 params); got %d vs %d",
			len(net.Params()), len(base.Params()))
	}
}

func TestBuildResNet32Depth(t *testing.T) {
	// Scaled-down widths keep the test fast; topology is unchanged.
	net, err := Build(Config{Arch: ArchResNet32, InC: 3, InH: 16, InW: 16, Classes: 10, Width: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 6n+2 with n=5: 15 residual blocks + stem conv/bn + final dense.
	// Count conv params: stem (1) + 2 per block + projection blocks (2 extra
	// convs across stage transitions).
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 3, 16, 16).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(1) != 10 {
		t.Fatalf("ResNet32 output shape = %v", out.Shape())
	}
}

func TestResNetDepthOverride(t *testing.T) {
	shallow := MustBuild(Config{Arch: ArchResNet32, InC: 1, InH: 8, InW: 8, Classes: 4, Width: 0.25, DepthN: 1, Seed: 4})
	deep := MustBuild(Config{Arch: ArchResNet32, InC: 1, InH: 8, InW: 8, Classes: 4, Width: 0.25, DepthN: 2, Seed: 4})
	if shallow.NumParams() >= deep.NumParams() {
		t.Errorf("DepthN=1 (%d params) should be smaller than DepthN=2 (%d params)",
			shallow.NumParams(), deep.NumParams())
	}
}

func TestResNet56DeeperThan32(t *testing.T) {
	r32 := MustBuild(Config{Arch: ArchResNet32, InC: 1, InH: 8, InW: 8, Classes: 4, Width: 0.25, Seed: 5})
	r56 := MustBuild(Config{Arch: ArchResNet56, InC: 1, InH: 8, InW: 8, Classes: 4, Width: 0.25, Seed: 5})
	if r56.NumParams() <= r32.NumParams() {
		t.Errorf("ResNet56 (%d) should have more params than ResNet32 (%d)",
			r56.NumParams(), r32.NumParams())
	}
}

func TestBuildMLP(t *testing.T) {
	net := MustBuild(Config{Arch: ArchMLP, InC: 1, InH: 4, InW: 4, Classes: 3, Seed: 6})
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(5, 1, 4, 4).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 5 || out.Dim(1) != 3 {
		t.Fatalf("MLP output shape = %v", out.Shape())
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []Config{
		{Arch: "nope", InC: 1, InH: 8, InW: 8, Classes: 2},
		{Arch: ArchMLP, InC: 0, InH: 8, InW: 8, Classes: 2},
		{Arch: ArchMLP, InC: 1, InH: 8, InW: 8, Classes: 1},
		{Arch: ArchLeNet5, InC: 1, InH: 4, InW: 4, Classes: 2}, // too small
		{Arch: ArchMLP, InC: 1, InH: 8, InW: 8, Classes: 2, Width: -1},
		{Arch: ArchResNet32, InC: 1, InH: 2, InW: 2, Classes: 2}, // too small
	}
	for i, c := range cases {
		if _, err := Build(c); err == nil {
			t.Errorf("case %d: expected error for config %+v", i, c)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Arch: ArchLeNet5, InC: 1, InH: 14, InW: 14, Classes: 10, Seed: 42}
	a := MustBuild(cfg)
	b := MustBuild(cfg)
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same config must build identical networks")
		}
	}
}

func TestWidthScaling(t *testing.T) {
	narrow := MustBuild(Config{Arch: ArchLeNet5, InC: 1, InH: 14, InW: 14, Classes: 10, Width: 0.5, Seed: 7})
	wide := MustBuild(Config{Arch: ArchLeNet5, InC: 1, InH: 14, InW: 14, Classes: 10, Width: 1, Seed: 7})
	if narrow.NumParams() >= wide.NumParams() {
		t.Errorf("width 0.5 (%d params) should be smaller than width 1 (%d params)",
			narrow.NumParams(), wide.NumParams())
	}
}

func TestSmallInputLeNet(t *testing.T) {
	// 14x14 is the default bench scale; must produce a valid network.
	net := MustBuild(Config{Arch: ArchLeNet5, InC: 1, InH: 14, InW: 14, Classes: 10, Seed: 8})
	x := tensor.New(3, 1, 14, 14).Fill(0.5)
	out := net.Forward(x, false)
	if out.Dim(1) != 10 {
		t.Fatalf("output shape = %v", out.Shape())
	}
}
