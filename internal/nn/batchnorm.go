package nn

import (
	"fmt"
	"math"

	"goldfish/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions, with learnable per-channel scale (gamma) and shift
// (beta). Running statistics are tracked for evaluation mode.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate, e.g. 0.1

	gamma, beta *Param

	// Running statistics (not learnable, but part of the model state).
	runMean, runVar []float64

	// Forward caches for Backward.
	xhat    *tensor.Tensor
	invStd  []float64
	xmu     *tensor.Tensor
	inShape []int
	m       float64 // number of elements per channel in the last batch

	out, dx *tensor.Tensor // reusable scratch
}

var _ Layer = (*BatchNorm2D)(nil)

// NewBatchNorm2D creates a batch-normalization layer over c channels with
// gamma=1, beta=0, eps=1e-5 and momentum 0.1.
//
//goldfish:coldpath
func NewBatchNorm2D(c int) *BatchNorm2D {
	if c <= 0 {
		panic(fmt.Sprintf("nn: BatchNorm2D channels must be positive, got %d", c))
	}
	gamma := tensor.New(c).Fill(1)
	rv := make([]float64, c)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm2D{
		C:        c,
		Eps:      1e-5,
		Momentum: 0.1,
		gamma:    newParam("bn.gamma", gamma),
		beta:     newParam("bn.beta", tensor.New(c)),
		runMean:  make([]float64, c),
		runVar:   rv,
	}
}

// Forward implements Layer. In training mode it uses batch statistics and
// updates the running estimates; in evaluation mode it uses the running
// estimates.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) got input shape %v", b.C, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	area := h * w
	m := float64(n * area)
	b.inShape = x.Shape()
	b.m = m

	b.out = tensor.EnsureShape(b.out, x.Shape()...)
	out := b.out
	xd, od := x.Data(), out.Data()
	gd, bd := b.gamma.W.Data(), b.beta.W.Data()

	if !train {
		for ch := 0; ch < c; ch++ {
			invStd := 1 / math.Sqrt(b.runVar[ch]+b.Eps)
			g, bt, mu := gd[ch], bd[ch], b.runMean[ch]
			for i := 0; i < n; i++ {
				base := (i*c + ch) * area
				for j := 0; j < area; j++ {
					od[base+j] = g*(xd[base+j]-mu)*invStd + bt
				}
			}
		}
		b.xhat = nil
		return out
	}

	b.xhat = tensor.EnsureShape(b.xhat, x.Shape()...)
	b.xmu = tensor.EnsureShape(b.xmu, x.Shape()...)
	if cap(b.invStd) < c {
		b.invStd = make([]float64, c) //goldfish:allocok — grow-once scratch, reused across batches
	}
	b.invStd = b.invStd[:c]
	xh, xm := b.xhat.Data(), b.xmu.Data()

	for ch := 0; ch < c; ch++ {
		var mean float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				mean += xd[base+j]
			}
		}
		mean /= m
		var variance float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				d := xd[base+j] - mean
				variance += d * d
			}
		}
		variance /= m
		invStd := 1 / math.Sqrt(variance+b.Eps)
		b.invStd[ch] = invStd
		g, bt := gd[ch], bd[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				mu := xd[base+j] - mean
				xm[base+j] = mu
				hat := mu * invStd
				xh[base+j] = hat
				od[base+j] = g*hat + bt
			}
		}
		b.runMean[ch] = (1-b.Momentum)*b.runMean[ch] + b.Momentum*mean
		b.runVar[ch] = (1-b.Momentum)*b.runVar[ch] + b.Momentum*variance
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm2D.Backward called before a training-mode Forward")
	}
	n, c := b.inShape[0], b.inShape[1]
	area := b.inShape[2] * b.inShape[3]
	m := b.m

	b.dx = tensor.EnsureShape(b.dx, b.inShape...)
	dx := b.dx
	dd, dxd := dout.Data(), dx.Data()
	xh := b.xhat.Data()
	gd := b.gamma.W.Data()
	gg, bg := b.gamma.G.Data(), b.beta.G.Data()

	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				dy := dd[base+j]
				sumDy += dy
				sumDyXhat += dy * xh[base+j]
			}
		}
		gg[ch] += sumDyXhat
		bg[ch] += sumDy
		g := gd[ch]
		invStd := b.invStd[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				dy := dd[base+j]
				dxd[base+j] = g * invStd / m * (m*dy - sumDy - xh[base+j]*sumDyXhat)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.gamma, b.beta} } //goldfish:allocok — tiny header; Network.Params caches the result

// ReleaseActivations implements ActivationReleaser. Running statistics are
// model state and survive; only batch-sized caches and scratch are dropped.
func (b *BatchNorm2D) ReleaseActivations() {
	b.xhat, b.xmu, b.out, b.dx = nil, nil, nil, nil
	b.invStd = nil
	b.inShape = nil
}

// RunningStats returns copies of the running mean and variance.
func (b *BatchNorm2D) RunningStats() (mean, variance []float64) {
	return append([]float64(nil), b.runMean...), append([]float64(nil), b.runVar...)
}

// SetRunningStats overwrites the running statistics (used by persistence).
func (b *BatchNorm2D) SetRunningStats(mean, variance []float64) error {
	if len(mean) != b.C || len(variance) != b.C {
		return fmt.Errorf("nn: running-stat length mismatch: got %d/%d, want %d", len(mean), len(variance), b.C)
	}
	copy(b.runMean, mean)
	copy(b.runVar, variance)
	return nil
}

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (b *BatchNorm2D) Clone() Layer {
	out := NewBatchNorm2D(b.C)
	out.Eps = b.Eps
	out.Momentum = b.Momentum
	out.gamma.W.CopyFrom(b.gamma.W)
	out.beta.W.CopyFrom(b.beta.W)
	copy(out.runMean, b.runMean)
	copy(out.runVar, b.runVar)
	return out
}
