package nn

import (
	"fmt"
	"math/rand"

	"goldfish/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with square kernels, uniform
// stride and zero padding. Weights have shape (outC, inC, k, k).
type Conv2D struct {
	InC, OutC    int
	Kernel       int
	Stride       int
	Pad          int
	w, b         *Param
	cols         *tensor.Tensor // cached im2col matrix for Backward
	inH, inW     int
	outH, outW   int
	cachedBatch  int
	cachedShapes bool

	// Reusable scratch recycled across batches; released by
	// ReleaseActivations together with cols.
	prod, out, dprod, dw, dcols, dx *tensor.Tensor
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He-normal initialized weights.
//
//goldfish:coldpath
func NewConv2D(inC, outC, kernel, stride, pad int, rng *rand.Rand) *Conv2D {
	if inC <= 0 || outC <= 0 || kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv2D config inC=%d outC=%d k=%d s=%d p=%d",
			inC, outC, kernel, stride, pad))
	}
	w := tensor.New(outC, inC, kernel, kernel)
	heInit(w, inC*kernel*kernel, rng)
	return &Conv2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		w:      newParam("conv.w", w),
		b:      newParam("conv.b", tensor.New(outC)),
	}
}

// OutSize returns the spatial output size for a given input size.
func (c *Conv2D) OutSize(in int) int {
	return (in+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Forward implements Layer using im2col + matrix multiplication.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D(inC=%d) got input shape %v", c.InC, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h), c.OutSize(w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D produces empty output for input %v", x.Shape()))
	}
	c.inH, c.inW, c.outH, c.outW, c.cachedBatch = h, w, oh, ow, n
	c.cachedShapes = true

	// cols: (inC*k*k, n*oh*ow)
	c.cols = tensor.EnsureShape(c.cols, c.InC*c.Kernel*c.Kernel, n*oh*ow)
	cols := im2col(x, c.Kernel, c.Stride, c.Pad, oh, ow, c.cols)
	wmat := c.w.W.Reshape(c.OutC, c.InC*c.Kernel*c.Kernel)
	c.prod = tensor.EnsureShape(c.prod, c.OutC, n*oh*ow)
	prod := tensor.MatMulInto(c.prod, wmat, cols) // (outC, n*oh*ow)

	c.out = tensor.EnsureShape(c.out, n, c.OutC, oh, ow)
	out := c.out
	od := out.Data()
	pd := prod.Data()
	bd := c.b.W.Data()
	spatial := oh * ow
	for oc := 0; oc < c.OutC; oc++ {
		prow := pd[oc*n*spatial : (oc+1)*n*spatial]
		bias := bd[oc]
		for i := 0; i < n; i++ {
			dst := od[(i*c.OutC+oc)*spatial : (i*c.OutC+oc+1)*spatial]
			src := prow[i*spatial : (i+1)*spatial]
			for j, v := range src {
				dst[j] = v + bias
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if !c.cachedShapes {
		panic("nn: Conv2D.Backward called before Forward")
	}
	n, oh, ow := c.cachedBatch, c.outH, c.outW
	spatial := oh * ow

	// Rearrange dout (n, outC, oh, ow) into (outC, n*oh*ow) to mirror prod.
	c.dprod = tensor.EnsureShape(c.dprod, c.OutC, n*spatial)
	dprod := c.dprod
	dd := dout.Data()
	dpd := dprod.Data()
	for oc := 0; oc < c.OutC; oc++ {
		drow := dpd[oc*n*spatial : (oc+1)*n*spatial]
		for i := 0; i < n; i++ {
			src := dd[(i*c.OutC+oc)*spatial : (i*c.OutC+oc+1)*spatial]
			copy(drow[i*spatial:(i+1)*spatial], src)
		}
	}

	// Bias gradient: sum over all positions per output channel.
	bg := c.b.G.Data()
	for oc := 0; oc < c.OutC; oc++ {
		var s float64
		for _, v := range dpd[oc*n*spatial : (oc+1)*n*spatial] {
			s += v
		}
		bg[oc] += s
	}

	// Weight gradient: dW = dprod · colsᵀ, shaped back to (outC, inC, k, k).
	c.dw = tensor.EnsureShape(c.dw, c.OutC, c.InC*c.Kernel*c.Kernel)
	dw := tensor.MatMulTransBInto(c.dw, dprod, c.cols) // (outC, inC*k*k)
	c.w.G.AddInPlace(dw.Reshape(c.w.G.Shape()...))

	// Input gradient: dcols = Wᵀ · dprod, then col2im.
	wmat := c.w.W.Reshape(c.OutC, c.InC*c.Kernel*c.Kernel)
	c.dcols = tensor.EnsureShape(c.dcols, c.InC*c.Kernel*c.Kernel, n*spatial)
	dcols := tensor.MatMulTransAInto(c.dcols, wmat, dprod) // (inC*k*k, n*oh*ow)
	c.dx = tensor.EnsureShape(c.dx, n, c.InC, c.inH, c.inW)
	return col2im(dcols, n, c.InC, c.inH, c.inW, c.Kernel, c.Stride, c.Pad, oh, ow, c.dx)
}

// ReleaseActivations implements ActivationReleaser.
func (c *Conv2D) ReleaseActivations() {
	c.cols, c.prod, c.out, c.dprod, c.dw, c.dcols, c.dx = nil, nil, nil, nil, nil, nil, nil
	c.cachedShapes = false
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} } //goldfish:allocok — tiny header; Network.Params caches the result

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC:    c.InC,
		OutC:   c.OutC,
		Kernel: c.Kernel,
		Stride: c.Stride,
		Pad:    c.Pad,
		w:      newParam(c.w.Name, c.w.W.Clone()),
		b:      newParam(c.b.Name, c.b.W.Clone()),
	}
}

// im2col unrolls x (n, inC, h, w) into the provided (inC*k*k, n*oh*ow)
// matrix where each column is one receptive field; every element is
// written, so cols may hold stale scratch.
func im2col(x *tensor.Tensor, k, stride, pad, oh, ow int, cols *tensor.Tensor) *tensor.Tensor {
	n, inC, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	xd := x.Data()
	cd := cols.Data()
	colW := n * oh * ow
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowIdx := (ic*k+ky)*k + kx
				crow := cd[rowIdx*colW : (rowIdx+1)*colW]
				for i := 0; i < n; i++ {
					base := (i*inC + ic) * h * w
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						dst := crow[(i*oh+oy)*ow : (i*oh+oy+1)*ow]
						if iy < 0 || iy >= h {
							for j := range dst {
								dst[j] = 0
							}
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								dst[ox] = 0
							} else {
								dst[ox] = xd[base+iy*w+ix]
							}
						}
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters a column matrix back into the provided (n, inC, h, w)
// tensor, accumulating overlapping contributions on top of a zeroed buffer.
func col2im(cols *tensor.Tensor, n, inC, h, w, k, stride, pad, oh, ow int, out *tensor.Tensor) *tensor.Tensor {
	out.Zero()
	od := out.Data()
	cd := cols.Data()
	colW := n * oh * ow
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowIdx := (ic*k+ky)*k + kx
				crow := cd[rowIdx*colW : (rowIdx+1)*colW]
				for i := 0; i < n; i++ {
					base := (i*inC + ic) * h * w
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						src := crow[(i*oh+oy)*ow : (i*oh+oy+1)*ow]
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							od[base+iy*w+ix] += src[ox]
						}
					}
				}
			}
		}
	}
	return out
}
