package nn

import (
	"fmt"
	"math/rand"

	"goldfish/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b for x of shape
// (batch, in) and W of shape (out, in).
type Dense struct {
	In, Out int

	w, b *Param
	x    *tensor.Tensor // cached input for Backward

	// Reusable scratch, sized on first use and recycled across batches.
	// ReleaseActivations drops it so idle models hold no batch-sized state.
	fwdOut, dw, db, dx *tensor.Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense creates a fully connected layer with He-normal weights and zero
// bias, drawing initialization randomness from rng.
//
//goldfish:coldpath
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense dimensions must be positive, got in=%d out=%d", in, out))
	}
	w := tensor.New(out, in)
	heInit(w, in, rng)
	return &Dense{
		In:  in,
		Out: out,
		w:   newParam("dense.w", w),
		b:   newParam("dense.b", tensor.New(out)),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense(%d→%d) got input shape %v", d.In, d.Out, x.Shape()))
	}
	d.x = x
	d.fwdOut = tensor.EnsureShape(d.fwdOut, x.Dim(0), d.Out)
	out := tensor.MatMulTransBInto(d.fwdOut, x, d.w.W) // (batch, out)
	batch := x.Dim(0)
	bd := d.b.W.Data()
	od := out.Data()
	for i := 0; i < batch; i++ {
		row := od[i*d.Out : (i+1)*d.Out]
		for j, bv := range bd {
			row[j] += bv
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward called before Forward")
	}
	// dW = doutᵀ · x ; db = column sums of dout ; dx = dout · W
	d.dw = tensor.EnsureShape(d.dw, d.Out, d.In)
	d.w.G.AddInPlace(tensor.MatMulTransAInto(d.dw, dout, d.x))
	d.db = tensor.SumRowsInto(d.db, dout)
	d.b.G.AddInPlace(d.db)
	d.dx = tensor.EnsureShape(d.dx, dout.Dim(0), d.In)
	return tensor.MatMulInto(d.dx, dout, d.w.W)
}

// ReleaseActivations implements ActivationReleaser.
func (d *Dense) ReleaseActivations() {
	d.x, d.fwdOut, d.dw, d.db, d.dx = nil, nil, nil, nil, nil
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} } //goldfish:allocok — tiny header; Network.Params caches the result

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (d *Dense) Clone() Layer {
	return &Dense{
		In:  d.In,
		Out: d.Out,
		w:   newParam(d.w.Name, d.w.W.Clone()),
		b:   newParam(d.b.Name, d.b.W.Clone()),
	}
}

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool // true where input was positive

	out, dx *tensor.Tensor // reusable scratch
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU activation layer.
//
//goldfish:coldpath
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	r.out = tensor.EnsureShape(r.out, x.Shape()...)
	if cap(r.mask) < x.Size() {
		r.mask = make([]bool, x.Size()) //goldfish:allocok — grow-once scratch, reused across batches
	}
	r.mask = r.mask[:x.Size()]
	od := r.out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			r.mask[i] = true
			od[i] = v
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != dout.Size() {
		panic("nn: ReLU.Backward size mismatch with cached Forward")
	}
	r.dx = tensor.EnsureShape(r.dx, dout.Shape()...)
	dd, dxd := dout.Data(), r.dx.Data()
	for i, keep := range r.mask {
		if keep {
			dxd[i] = dd[i]
		} else {
			dxd[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (r *ReLU) Clone() Layer { return &ReLU{} }

// ReleaseActivations implements ActivationReleaser.
func (r *ReLU) ReleaseActivations() { r.mask, r.out, r.dx = nil, nil, nil }

// Flatten reshapes (N, ...) inputs into (N, prod(...)) matrices.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten creates a flattening layer.
//
//goldfish:coldpath
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward called before Forward")
	}
	return dout.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (f *Flatten) Clone() Layer { return &Flatten{} }

// ReleaseActivations implements ActivationReleaser.
func (f *Flatten) ReleaseActivations() { f.inShape = nil }
