// Package nn implements a small neural-network stack with manual
// backpropagation: dense, convolutional, pooling, batch-normalization and
// residual layers composed into sequential networks.
//
// The design favours the needs of federated unlearning research over raw
// speed: float64 everywhere, deterministic initialization from caller-owned
// RNGs, and a flat parameter-vector view of every network so that federated
// aggregation (FedAvg, adaptive weights, SISA shard arithmetic) is plain
// vector algebra.
//
// Layers are not safe for concurrent use: each layer caches its most recent
// forward activations for the following Backward call. Clone a network per
// goroutine when training in parallel.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"goldfish/internal/tensor"
)

// Param is a single learnable tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor // weights
	G    *tensor.Tensor // gradient of the loss w.r.t. W
}

// newParam allocates a parameter and a zeroed gradient of the same shape.
func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// ActivationReleaser is implemented by layers that cache batch-sized
// activations or scratch buffers between Forward/Backward calls. Releasing
// frees that state so an idle model (e.g. a federated client waiting for its
// next round) pins no activation memory; the buffers are transparently
// reallocated on the next Forward.
type ActivationReleaser interface {
	ReleaseActivations()
}

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; Backward receives ∂L/∂out and returns ∂L/∂in, adding
// parameter gradients into the layer's Param.G tensors.
//
// Output lifetime: layers recycle their output and gradient buffers across
// batches, so a tensor returned by Forward or Backward is valid only until
// the next Forward/Backward call on the same layer (and is released by
// ReleaseActivations). Callers that retain results across batches — e.g.
// evaluation loops accumulating predictions — must copy them first.
type Layer interface {
	// Forward computes the layer output. train toggles training-time
	// behaviour (e.g. batch statistics in BatchNorm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient and accumulates parameter
	// gradients.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// Clone returns a deep copy of the layer, including parameter values
	// but not cached activations.
	Clone() Layer
}

// Network is a sequential composition of layers. The zero value is an empty
// network; use NewNetwork or Add.
type Network struct {
	layers []Layer

	// params caches the flattened Params() view; Add invalidates it. Training
	// and vector plumbing call Params() every batch, so rebuilding the slice
	// each time was a steady per-batch allocation.
	params []*Param
}

// NewNetwork builds a sequential network from the given layers.
//
//goldfish:coldpath
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: append([]Layer(nil), layers...)}
}

// Add appends layers to the network and returns it for chaining.
//
//goldfish:coldpath
func (n *Network) Add(layers ...Layer) *Network {
	n.layers = append(n.layers, layers...)
	n.params = nil
	return n
}

// Layers returns the network's layers (shared, not copied).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the input through every layer in order. The returned tensor
// aliases the final layer's reusable scratch: it is overwritten by the next
// Forward on this network, so Clone it to retain it across batches.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse.
// Like Forward, the returned gradient aliases layer scratch and is only
// valid until the next Forward/Backward on this network.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(n.layers) - 1; i >= 0; i-- {
		dout = n.layers[i].Backward(dout)
	}
	return dout
}

// Params returns all learnable parameters in layer order. The slice is built
// once and cached (Add invalidates it); callers must not append to or mutate
// it.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.layers {
			n.params = append(n.params, l.Params()...) //goldfish:allocok — built once, then cached
		}
	}
	return n.params
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Size()
	}
	return total
}

// ReleaseActivations drops every layer's cached activations and reusable
// scratch buffers. Call it when a model goes idle (end of a federated round,
// after evaluation) so batch-sized state does not outlive its batch; the
// next Forward reallocates what it needs.
func (n *Network) ReleaseActivations() {
	for _, l := range n.layers {
		if r, ok := l.(ActivationReleaser); ok {
			r.ReleaseActivations()
		}
	}
}

// ZeroGrads resets every parameter gradient to zero.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// Clone returns a deep copy of the network (parameters copied, activations
// not).
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (n *Network) Clone() *Network {
	out := &Network{layers: make([]Layer, len(n.layers))}
	for i, l := range n.layers {
		out.layers[i] = l.Clone()
	}
	return out
}

// ParamVector flattens all parameters into a single new []float64 in layer
// order. The layout is stable for networks of identical architecture, which
// federated aggregation relies on.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams()) //goldfish:allocok — new vector escapes by API contract
	for _, p := range n.Params() {
		out = append(out, p.W.Data()...) //goldfish:allocok — fills the preallocated vector above
	}
	return out
}

// GradVector flattens all gradients into a single new []float64 in the same
// layout as ParamVector.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams()) //goldfish:allocok — new vector escapes by API contract
	for _, p := range n.Params() {
		out = append(out, p.G.Data()...) //goldfish:allocok — fills the preallocated vector above
	}
	return out
}

// SetParamVector loads a flat parameter vector previously produced by
// ParamVector on a network with the same architecture.
func (n *Network) SetParamVector(v []float64) error {
	want := n.NumParams()
	if len(v) != want {
		return fmt.Errorf("nn: parameter vector has %d values, network needs %d", len(v), want)
	}
	off := 0
	for _, p := range n.Params() {
		sz := p.W.Size()
		copy(p.W.Data(), v[off:off+sz])
		off += sz
	}
	return nil
}

// CopyParamsFrom copies parameter values from src, which must have an
// identical architecture.
func (n *Network) CopyParamsFrom(src *Network) error {
	dst := n.Params()
	sps := src.Params()
	if len(dst) != len(sps) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(sps))
	}
	for i, p := range dst {
		if !p.W.SameShape(sps[i].W) {
			return fmt.Errorf("nn: parameter %d shape mismatch %v vs %v", i, p.W.Shape(), sps[i].W.Shape())
		}
		p.W.CopyFrom(sps[i].W)
	}
	return nil
}

// heInit fills w with He-normal initialization for the given fan-in.
func heInit(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := 0.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	w.RandNormal(rng, 0, std)
}
