package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goldfish/internal/tensor"
)

// quadLoss is the scalar test loss L = ½ Σ out², whose gradient w.r.t. the
// output is simply the output itself. Gradient checks use it to validate
// every layer's Backward against numerical differentiation.
func quadLoss(out *tensor.Tensor) float64 {
	var s float64
	for _, v := range out.Data() {
		s += v * v
	}
	return 0.5 * s
}

// checkGradients verifies analytic parameter and input gradients of net
// against central finite differences on input x.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, tol float64) {
	t.Helper()
	forward := func() float64 { return quadLoss(net.Forward(x, true)) }

	out := net.Forward(x, true)
	net.ZeroGrads()
	dx := net.Backward(out.Clone()) // dL/dout = out for quadLoss

	const eps = 1e-5
	// Parameter gradients: probe a bounded number of indices per parameter.
	for _, p := range net.Params() {
		n := p.W.Size()
		stride := n/7 + 1
		for i := 0; i < n; i += stride {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			lp := forward()
			p.W.Data()[i] = orig - eps
			lm := forward()
			p.W.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.G.Data()[i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Errorf("param %s[%d]: analytic %g vs numerical %g", p.Name, i, got, num)
			}
		}
	}
	// Input gradients.
	n := x.Size()
	stride := n/7 + 1
	for i := 0; i < n; i += stride {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := forward()
		x.Data()[i] = orig - eps
		lm := forward()
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		got := dx.Data()[i]
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("input[%d]: analytic %g vs numerical %g", i, got, num)
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 3, rng)
	// Overwrite weights with known values: W = [[1,2],[3,4],[5,6]], b = [1,1,1].
	copy(d.w.W.Data(), []float64{1, 2, 3, 4, 5, 6})
	d.b.W.Fill(1)
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := d.Forward(x, true)
	want := []float64{4, 8, 12}
	for i, w := range want {
		if math.Abs(out.Data()[i]-w) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out.Data()[i], w)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(NewDense(5, 4, rng), NewReLU(), NewDense(4, 3, rng))
	x := tensor.New(3, 5).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-6)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(NewConv2D(2, 3, 3, 1, 1, rng), NewReLU())
	x := tensor.New(2, 2, 5, 5).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-5)
}

func TestConvStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(NewConv2D(1, 2, 3, 2, 1, rng))
	x := tensor.New(2, 1, 6, 6).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-5)
}

func TestConvForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(1, 1, 2, 1, 0, rng)
	copy(c.w.W.Data(), []float64{1, 0, 0, 1}) // identity-ish 2x2 kernel: x[0,0]+x[1,1]
	c.b.W.Fill(0)
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	out := c.Forward(x, true)
	want := []float64{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("output shape = %v, want 1x1x2x2", out.Shape())
	}
	for i, w := range want {
		if math.Abs(out.Data()[i]-w) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out.Data()[i], w)
		}
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D(2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("pool out[%d] = %g, want %g", i, out.Data()[i], w)
		}
	}
	// Backward routes gradient to argmax positions only.
	dout := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(dout)
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 3, 3) != 4 {
		t.Errorf("pool backward misrouted: %v", dx.Data())
	}
	if dx.At(0, 0, 0, 0) != 0 {
		t.Error("non-max position received gradient")
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rng), NewMaxPool2D(2))
	x := tensor.New(2, 1, 6, 6).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(NewConv2D(1, 3, 3, 1, 1, rng), NewGlobalAvgPool2D(), NewDense(3, 2, rng))
	x := tensor.New(2, 1, 5, 5).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-5)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(NewConv2D(1, 3, 3, 1, 1, rng), NewBatchNorm2D(3), NewReLU())
	x := tensor.New(4, 1, 4, 4).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-4)
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm2D(2)
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(8, 2, 3, 3).RandNormal(rng, 5, 3)
	out := bn.Forward(x, true)
	// With gamma=1 beta=0 each channel should be ~N(0,1) over batch+space.
	n, c, area := 8, 2, 9
	for ch := 0; ch < c; ch++ {
		var mean float64
		for i := 0; i < n; i++ {
			for j := 0; j < area; j++ {
				mean += out.Data()[(i*c+ch)*area+j]
			}
		}
		mean /= float64(n * area)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("channel %d mean = %g, want ~0", ch, mean)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D(1)
	rng := rand.New(rand.NewSource(10))
	// Train on several batches to move the running stats.
	for i := 0; i < 20; i++ {
		x := tensor.New(4, 1, 2, 2).RandNormal(rng, 3, 2)
		bn.Forward(x, true)
	}
	mean, variance := bn.RunningStats()
	if math.Abs(mean[0]-3) > 1 {
		t.Errorf("running mean = %g, want near 3", mean[0])
	}
	if variance[0] < 1 {
		t.Errorf("running variance = %g, want > 1", variance[0])
	}
	// Eval mode output should not depend on the batch composition.
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	outSolo := bn.Forward(a, false).Clone()
	b := tensor.Concat(a, tensor.New(1, 1, 2, 2).Fill(100))
	outPaired := bn.Forward(b, false)
	for i := 0; i < 4; i++ {
		if math.Abs(outSolo.Data()[i]-outPaired.Data()[i]) > 1e-12 {
			t.Fatal("eval-mode BatchNorm output depends on batch composition")
		}
	}
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Identity skip.
	net := NewNetwork(NewResidual(2, 2, 1, rng))
	x := tensor.New(2, 2, 4, 4).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-4)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Channel change + stride forces a projection shortcut.
	net := NewNetwork(NewResidual(2, 4, 2, rng))
	x := tensor.New(2, 2, 4, 4).RandNormal(rng, 0, 1)
	checkGradients(t, net, x, 1e-4)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 4).Fill(1)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	dx := f.Backward(y)
	if dx.Dims() != 4 || dx.Dim(3) != 4 {
		t.Fatalf("flatten backward shape = %v", dx.Shape())
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rng), NewBatchNorm2D(2), NewFlatten(), NewDense(2*4*4, 3, rng))
	b := a.Clone()
	// Perturb b, then restore via vector copy.
	for _, p := range b.Params() {
		p.W.Fill(0.123)
	}
	if err := b.SetParamVector(a.ParamVector()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 1, 4, 4).RandNormal(rng, 0, 1)
	oa := a.Forward(x, false)
	ob := b.Forward(x, false)
	if !oa.ApproxEqual(ob, 1e-12) {
		t.Error("networks disagree after parameter-vector round trip")
	}
}

func TestSetParamVectorWrongSize(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := NewNetwork(NewDense(2, 2, rng))
	if err := n.SetParamVector([]float64{1}); err == nil {
		t.Error("expected error for wrong-size vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := NewNetwork(NewDense(3, 3, rng), NewReLU(), NewDense(3, 2, rng))
	b := a.Clone()
	b.Params()[0].W.Fill(7)
	if a.Params()[0].W.Data()[0] == 7 {
		t.Error("Clone shares parameter storage")
	}
	if a.NumParams() != b.NumParams() {
		t.Error("Clone changed parameter count")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork(NewDense(2, 2, rng))
	x := tensor.New(1, 2).RandNormal(rng, 0, 1)
	out := net.Forward(x, true)
	net.Backward(out)
	net.ZeroGrads()
	for _, p := range net.Params() {
		for _, g := range p.G.Data() {
			if g != 0 {
				t.Fatal("gradient not zeroed")
			}
		}
	}
}

func TestGradientAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewNetwork(NewDense(2, 2, rng))
	x := tensor.New(1, 2).RandNormal(rng, 0, 1)

	out := net.Forward(x, true)
	net.ZeroGrads()
	net.Backward(out.Clone())
	g1 := net.GradVector()

	// Two identical backward passes should double the gradient.
	net.Forward(x, true)
	net.Backward(out.Clone())
	g2 := net.GradVector()
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("gradients do not accumulate: %g vs 2*%g", g2[i], g1[i])
		}
	}
}

// Property: ParamVector/SetParamVector is a lossless round trip for random
// vectors of the right size.
func TestQuickParamVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewNetwork(NewDense(4, 3, rng), NewReLU(), NewDense(3, 2, rng))
	n := net.NumParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		if err := net.SetParamVector(v); err != nil {
			return false
		}
		got := net.ParamVector()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rand.New(rand.NewSource(42))))
	b := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rand.New(rand.NewSource(42))))
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed must give identical initialization")
		}
	}
}

func TestStateVectorRoundTripWithBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rng), NewBatchNorm2D(2), NewReLU(),
		NewResidual(2, 4, 2, rng), NewGlobalAvgPool2D(), NewDense(4, 3, rng))
	// Train-mode forwards move the BN running stats away from defaults.
	for i := 0; i < 5; i++ {
		x := tensor.New(4, 1, 8, 8).RandNormal(rng, 2, 3)
		a.Forward(x, true)
	}
	sv := a.StateVector()
	if len(sv) <= a.NumParams() {
		t.Fatal("state vector should include BatchNorm running stats")
	}
	b := a.Clone()
	// Perturb b completely, then restore from a's state vector.
	for _, p := range b.Params() {
		p.W.Fill(0.5)
	}
	if err := b.SetStateVector(sv); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 1, 8, 8).RandNormal(rng, 0, 1)
	oa := a.Forward(x, false)
	ob := b.Forward(x, false)
	if !oa.ApproxEqual(ob, 1e-12) {
		t.Error("eval outputs disagree after state-vector round trip")
	}
}

func TestSetStateVectorWrongSize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := NewNetwork(NewConv2D(1, 2, 3, 1, 1, rng), NewBatchNorm2D(2))
	if err := n.SetStateVector(make([]float64, 3)); err == nil {
		t.Error("short state vector accepted")
	}
	if err := n.SetStateVector(make([]float64, len(n.StateVector())+1)); err == nil {
		t.Error("long state vector accepted")
	}
}

func TestStateVectorNoStatefulLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := NewNetwork(NewDense(2, 2, rng))
	if n.StateSize() != 0 {
		t.Errorf("Dense-only network has state size %d, want 0", n.StateSize())
	}
	sv := n.StateVector()
	if len(sv) != n.NumParams() {
		t.Errorf("state vector length %d, want %d", len(sv), n.NumParams())
	}
	if err := n.SetStateVector(sv); err != nil {
		t.Fatal(err)
	}
}

// naiveConv2D is an independent direct-loop convolution used as a reference
// implementation to cross-check the im2col kernels.
func naiveConv2D(x, w *tensor.Tensor, bias []float64, stride, pad int) *tensor.Tensor {
	n, inC, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outC, k := w.Dim(0), w.Dim(2)
	oh := (h+2*pad-k)/stride + 1
	ow := (wd+2*pad-k)/stride + 1
	out := tensor.New(n, outC, oh, ow)
	for i := 0; i < n; i++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias[oc]
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								sum += x.At(i, ic, iy, ix) * w.At(oc, ic, ky, kx)
							}
						}
					}
					out.Set(sum, i, oc, oy, ox)
				}
			}
		}
	}
	return out
}

// Property: the im2col convolution matches the naive reference for random
// shapes, strides and paddings.
func TestQuickConvMatchesNaiveReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		size := k + rng.Intn(5) // guarantee at least one output position
		conv := NewConv2D(inC, outC, k, stride, pad, rng)
		x := tensor.New(n, inC, size, size).RandNormal(rng, 0, 1)
		got := conv.Forward(x, true)
		want := naiveConv2D(x, conv.w.W, conv.b.W.Data(), stride, pad)
		return got.ApproxEqual(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConvNetLearnsSeparableData is a capacity sanity check: a small conv
// net must fit a linearly separable image problem nearly perfectly.
func TestConvNetLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	// Class 0: bright top half; class 1: bright bottom half.
	n := 60
	x := tensor.New(n, 1, 6, 6)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		for py := 0; py < 6; py++ {
			for px := 0; px < 6; px++ {
				v := rng.NormFloat64() * 0.1
				if (y[i] == 0 && py < 3) || (y[i] == 1 && py >= 3) {
					v += 1
				}
				x.Set(v, i, 0, py, px)
			}
		}
	}
	net := NewNetwork(
		NewConv2D(1, 4, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*3*3, 2, rng),
	)
	// Plain batch gradient descent on cross-entropy (computed inline to
	// keep this package free of loss imports).
	lr := 0.5
	for epoch := 0; epoch < 60; epoch++ {
		logits := net.Forward(x, true)
		probs := tensor.SoftmaxRows(logits, 1)
		grad := probs.Clone()
		for i := 0; i < n; i++ {
			grad.Data()[i*2+y[i]] -= 1
		}
		grad.ScaleInPlace(1 / float64(n))
		net.ZeroGrads()
		net.Backward(grad)
		for _, p := range net.Params() {
			p.W.AXPY(-lr, p.G)
		}
	}
	logits := net.Forward(x, false)
	pred := tensor.ArgMaxRows(logits)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Errorf("conv net failed to fit separable data: accuracy %g", acc)
	}
}
