package nn

import (
	"fmt"

	"goldfish/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW inputs with a square window and
// stride equal to the window size (non-overlapping pooling, as used by
// LeNet-5).
type MaxPool2D struct {
	Window int

	argmax  []int // flat input index chosen for each output element
	inShape []int

	out, dx *tensor.Tensor // reusable scratch
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D creates a max-pooling layer with the given window size.
//
//goldfish:coldpath
func NewMaxPool2D(window int) *MaxPool2D {
	if window <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window must be positive, got %d", window))
	}
	return &MaxPool2D{Window: window}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW input, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := m.Window
	oh, ow := h/k, w/k
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d too large for input %v", k, x.Shape()))
	}
	m.inShape = x.Shape()
	m.out = tensor.EnsureShape(m.out, n, c, oh, ow)
	out := m.out
	if cap(m.argmax) < out.Size() {
		m.argmax = make([]int, out.Size()) //goldfish:allocok — grow-once scratch, reused across batches
	}
	m.argmax = m.argmax[:out.Size()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*k)*w + ox*k
					best := xd[bestIdx]
					for ky := 0; ky < k; ky++ {
						row := base + (oy*k+ky)*w + ox*k
						for kx := 0; kx < k; kx++ {
							if v := xd[row+kx]; v > best {
								best = v
								bestIdx = row + kx
							}
						}
					}
					od[oi] = best
					m.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.inShape == nil {
		panic("nn: MaxPool2D.Backward called before Forward")
	}
	if dout.Size() != len(m.argmax) {
		panic("nn: MaxPool2D.Backward gradient size mismatch")
	}
	m.dx = tensor.EnsureShape(m.dx, m.inShape...)
	dx := m.dx.Zero()
	dd, dxd := dout.Data(), dx.Data()
	for i, idx := range m.argmax {
		dxd[idx] += dd[i]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (m *MaxPool2D) Clone() Layer { return &MaxPool2D{Window: m.Window} }

// ReleaseActivations implements ActivationReleaser.
func (m *MaxPool2D) ReleaseActivations() {
	m.argmax, m.inShape, m.out, m.dx = nil, nil, nil, nil
}

// GlobalAvgPool2D averages each channel over its full spatial extent,
// producing (N, C) outputs from (N, C, H, W) inputs. ResNets use it before
// the final classifier.
type GlobalAvgPool2D struct {
	inShape []int

	out, dx *tensor.Tensor // reusable scratch
}

var _ Layer = (*GlobalAvgPool2D)(nil)

// NewGlobalAvgPool2D creates a global average pooling layer.
//
//goldfish:coldpath
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward implements Layer.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool2D expects NCHW input, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = x.Shape()
	g.out = tensor.EnsureShape(g.out, n, c)
	out := g.out
	xd, od := x.Data(), out.Data()
	area := h * w
	inv := 1 / float64(area)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * area
			var s float64
			for _, v := range xd[base : base+area] {
				s += v
			}
			od[i*c+ch] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic("nn: GlobalAvgPool2D.Backward called before Forward")
	}
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	area := h * w
	inv := 1 / float64(area)
	g.dx = tensor.EnsureShape(g.dx, g.inShape...)
	dx := g.dx
	dd, dxd := dout.Data(), dx.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gval := dd[i*c+ch] * inv
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				dxd[base+j] = gval
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (g *GlobalAvgPool2D) Clone() Layer { return &GlobalAvgPool2D{} }

// ReleaseActivations implements ActivationReleaser.
func (g *GlobalAvgPool2D) ReleaseActivations() { g.inShape, g.out, g.dx = nil, nil, nil }
