package nn

import (
	"math/rand"
	"testing"

	"goldfish/internal/tensor"
)

// testConvNet builds a network touching every layer kind with caches.
func testConvNet(rng *rand.Rand) *Network {
	return NewNetwork(
		NewConv2D(1, 4, 3, 1, 1, rng),
		NewBatchNorm2D(4),
		NewReLU(),
		NewMaxPool2D(2),
		NewResidual(4, 8, 2, rng),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewDense(8, 3, rng),
	)
}

// batchState sums the batch-sized buffers a layer currently pins; the
// assertion helper for the idle-client memory guarantee.
func batchState(l Layer) int {
	switch v := l.(type) {
	case *Dense:
		return tensorSize(v.x) + tensorSize(v.fwdOut) + tensorSize(v.dw) + tensorSize(v.dx)
	case *ReLU:
		return len(v.mask) + tensorSize(v.out) + tensorSize(v.dx)
	case *Conv2D:
		return tensorSize(v.cols) + tensorSize(v.prod) + tensorSize(v.out) +
			tensorSize(v.dprod) + tensorSize(v.dw) + tensorSize(v.dcols) + tensorSize(v.dx)
	case *BatchNorm2D:
		return tensorSize(v.xhat) + tensorSize(v.xmu) + tensorSize(v.out) + tensorSize(v.dx)
	case *MaxPool2D:
		return len(v.argmax) + tensorSize(v.out) + tensorSize(v.dx)
	case *GlobalAvgPool2D:
		return tensorSize(v.out) + tensorSize(v.dx)
	case *Residual:
		total := tensorSize(v.lastX) + batchState(v.act)
		for _, inner := range v.main.Layers() {
			total += batchState(inner)
		}
		if v.skip != nil {
			for _, inner := range v.skip.Layers() {
				total += batchState(inner)
			}
		}
		return total
	}
	return 0
}

func tensorSize(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Size()
}

// TestReleaseActivationsDropsBatchState is the satellite regression: after a
// forward/backward pass a network caches activation-sized buffers, and
// ReleaseActivations must drop all of them (an idle federated client pins no
// batch memory between rounds).
func TestReleaseActivationsDropsBatchState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := testConvNet(rng)
	x := tensor.New(6, 1, 8, 8).RandNormal(rng, 0, 1)

	out := net.Forward(x, true)
	net.Backward(tensor.New(out.Shape()...).Fill(1))

	held := 0
	for _, l := range net.Layers() {
		held += batchState(l)
	}
	if held == 0 {
		t.Fatal("expected layers to hold batch-sized caches after forward/backward")
	}

	net.ReleaseActivations()
	for i, l := range net.Layers() {
		if s := batchState(l); s != 0 {
			t.Errorf("layer %d (%T) still pins %d batch-sized values after ReleaseActivations", i, l, s)
		}
	}
}

// TestScratchReuseMatchesFreshAllocations guards the buffer-recycling path:
// running several batches (of varying size) through one network must produce
// bitwise the same outputs and gradients as running each batch through a
// freshly cloned network that never reuses scratch.
func TestScratchReuseMatchesFreshAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reused := testConvNet(rng)

	for _, batch := range []int{4, 7, 2, 7} {
		x := tensor.New(batch, 1, 8, 8).RandNormal(rng, 0, 1)
		dout := tensor.New(batch, 3).RandNormal(rng, 0, 1)

		fresh := reused.Clone() // same params, no cached scratch
		fresh.ZeroGrads()
		reused.ZeroGrads()

		wantOut := fresh.Forward(x, true)
		gotOut := reused.Forward(x, true)
		if d := wantOut.MaxAbsDiff(gotOut); d != 0 {
			t.Fatalf("batch %d: reused-scratch forward differs by %g", batch, d)
		}

		wantDx := fresh.Backward(dout.Clone())
		gotDx := reused.Backward(dout)
		if d := wantDx.MaxAbsDiff(gotDx); d != 0 {
			t.Fatalf("batch %d: reused-scratch backward differs by %g", batch, d)
		}
		for i, p := range reused.Params() {
			if d := p.G.MaxAbsDiff(fresh.Params()[i].G); d != 0 {
				t.Fatalf("batch %d: param %d gradient differs by %g", batch, i, d)
			}
		}
	}

	// A release mid-stream must be transparent to subsequent batches.
	reused.ReleaseActivations()
	x := tensor.New(3, 1, 8, 8).RandNormal(rng, 0, 1)
	fresh := reused.Clone()
	if d := fresh.Forward(x, true).MaxAbsDiff(reused.Forward(x, true)); d != 0 {
		t.Fatalf("post-release forward differs by %g", d)
	}
}
