package nn

import (
	"math/rand"

	"goldfish/internal/tensor"
)

// Residual implements a post-activation residual block:
//
//	out = ReLU(main(x) + skip(x))
//
// where main is conv→bn→relu→conv→bn and skip is either the identity or a
// 1×1 strided convolution followed by batch norm when the shape changes
// (the standard CIFAR ResNet basic block of He et al.).
type Residual struct {
	main *Network
	skip *Network // nil means identity
	act  *ReLU

	lastX *tensor.Tensor
}

var _ Layer = (*Residual)(nil)

// NewResidual builds a basic residual block mapping inC channels to outC
// with the given stride on the first convolution. A projection shortcut is
// added automatically when inC != outC or stride != 1.
//
//goldfish:coldpath
func NewResidual(inC, outC, stride int, rng *rand.Rand) *Residual {
	main := NewNetwork(
		NewConv2D(inC, outC, 3, stride, 1, rng),
		NewBatchNorm2D(outC),
		NewReLU(),
		NewConv2D(outC, outC, 3, 1, 1, rng),
		NewBatchNorm2D(outC),
	)
	var skip *Network
	if inC != outC || stride != 1 {
		skip = NewNetwork(
			NewConv2D(inC, outC, 1, stride, 0, rng),
			NewBatchNorm2D(outC),
		)
	}
	return &Residual{main: main, skip: skip, act: NewReLU()}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.lastX = x
	y := r.main.Forward(x, train)
	var s *tensor.Tensor
	if r.skip != nil {
		s = r.skip.Forward(x, train)
	} else {
		s = x
	}
	// y aliases the main path's output scratch, which nothing reads after
	// this point, so the sum can accumulate in place (x is never y).
	return r.act.Forward(y.AddInPlace(s), train)
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.lastX == nil {
		panic("nn: Residual.Backward called before Forward")
	}
	dsum := r.act.Backward(dout)
	dxMain := r.main.Backward(dsum)
	// dxMain aliases the main path's input-gradient scratch (distinct from
	// dsum, which is the activation's scratch), so accumulate in place.
	if r.skip != nil {
		return dxMain.AddInPlace(r.skip.Backward(dsum))
	}
	return dxMain.AddInPlace(dsum)
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	if r.skip == nil {
		return r.main.Params()
	}
	// Copy before concatenating: main.Params() is the sub-network's cached
	// slice, and appending to it directly would scribble on the cache's
	// spare capacity.
	ps := append([]*Param(nil), r.main.Params()...) //goldfish:allocok — tiny header; Network.Params caches the result
	return append(ps, r.skip.Params()...)           //goldfish:allocok — tiny header; Network.Params caches the result
}

// Clone implements Layer.
//
//goldfish:coldpath — replica construction is setup; hot paths reuse pooled replicas
func (r *Residual) Clone() Layer {
	out := &Residual{main: r.main.Clone(), act: NewReLU()}
	if r.skip != nil {
		out.skip = r.skip.Clone()
	}
	return out
}

// ReleaseActivations implements ActivationReleaser, recursing into the main
// and skip paths.
func (r *Residual) ReleaseActivations() {
	r.lastX = nil
	r.main.ReleaseActivations()
	if r.skip != nil {
		r.skip.ReleaseActivations()
	}
	r.act.ReleaseActivations()
}
