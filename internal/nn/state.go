package nn

import "fmt"

// Stateful is implemented by layers carrying non-learnable state that must
// travel with the model when it is serialized or exchanged in a federation
// — BatchNorm running statistics being the canonical case. State is
// aggregated linearly alongside parameters (a weighted average of running
// statistics is itself a sensible running statistic).
type Stateful interface {
	// State returns a copy of the layer's non-learnable state.
	State() []float64
	// SetStateVec loads state previously produced by State.
	SetStateVec(v []float64) error
}

var (
	_ Stateful = (*BatchNorm2D)(nil)
	_ Stateful = (*Residual)(nil)
	_ Stateful = (*Network)(nil)
)

// State implements Stateful for BatchNorm2D: running mean followed by
// running variance.
func (b *BatchNorm2D) State() []float64 {
	out := make([]float64, 0, 2*b.C) //goldfish:allocok — state copy escapes by Stateful contract
	out = append(out, b.runMean...)  //goldfish:allocok — fills the preallocated vector above
	out = append(out, b.runVar...)   //goldfish:allocok — fills the preallocated vector above
	return out
}

// SetStateVec implements Stateful for BatchNorm2D.
func (b *BatchNorm2D) SetStateVec(v []float64) error {
	if len(v) != 2*b.C {
		return fmt.Errorf("nn: BatchNorm2D state needs %d values, got %d", 2*b.C, len(v))
	}
	copy(b.runMean, v[:b.C])
	copy(b.runVar, v[b.C:])
	return nil
}

// State implements Stateful for Residual, concatenating the state of its
// main and skip paths.
func (r *Residual) State() []float64 {
	out := r.main.State()
	if r.skip != nil {
		out = append(out, r.skip.State()...) //goldfish:allocok — state copy escapes by Stateful contract
	}
	return out
}

// SetStateVec implements Stateful for Residual.
func (r *Residual) SetStateVec(v []float64) error {
	n := len(r.main.State())
	if r.skip == nil {
		if len(v) != n {
			return fmt.Errorf("nn: Residual state needs %d values, got %d", n, len(v))
		}
		return r.main.SetStateVec(v)
	}
	m := len(r.skip.State())
	if len(v) != n+m {
		return fmt.Errorf("nn: Residual state needs %d values, got %d", n+m, len(v))
	}
	if err := r.main.SetStateVec(v[:n]); err != nil {
		return err
	}
	return r.skip.SetStateVec(v[n:])
}

// State implements Stateful for Network, concatenating the state of every
// stateful layer in order.
func (n *Network) State() []float64 {
	var out []float64
	for _, l := range n.layers {
		if s, ok := l.(Stateful); ok {
			out = append(out, s.State()...) //goldfish:allocok — state copy escapes by Stateful contract
		}
	}
	return out
}

// SetStateVec implements Stateful for Network.
func (n *Network) SetStateVec(v []float64) error {
	off := 0
	for _, l := range n.layers {
		s, ok := l.(Stateful)
		if !ok {
			continue
		}
		size := len(s.State())
		if off+size > len(v) {
			return fmt.Errorf("nn: state vector too short: need > %d values, got %d", off+size, len(v))
		}
		if err := s.SetStateVec(v[off : off+size]); err != nil {
			return err
		}
		off += size
	}
	if off != len(v) {
		return fmt.Errorf("nn: state vector has %d values, network consumed %d", len(v), off)
	}
	return nil
}

// StateSize returns the total number of non-learnable state values.
func (n *Network) StateSize() int { return len(n.State()) }

// StateVector returns the full model state — learnable parameters followed
// by non-learnable layer state — as a single flat vector. This is the
// representation exchanged in the federation and stored in checkpoints.
func (n *Network) StateVector() []float64 {
	return append(n.ParamVector(), n.State()...) //goldfish:allocok — new vector escapes by API contract
}

// SetStateVector loads a vector previously produced by StateVector on a
// network of identical architecture.
func (n *Network) SetStateVector(v []float64) error {
	np := n.NumParams()
	if len(v) < np {
		return fmt.Errorf("nn: state vector has %d values, need ≥ %d params", len(v), np)
	}
	if err := n.SetParamVector(v[:np]); err != nil {
		return err
	}
	return n.SetStateVec(v[np:])
}
