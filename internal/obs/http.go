package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability HTTP surface:
//
//	GET /healthz     → 200 with the given banner (liveness + version probe)
//	GET /debug/vars  → the registry snapshot as pretty-printed JSON
//	GET /debug/pprof → the standard net/http/pprof profiling endpoints
//
// The handler is mounted on an explicit mux and served only where a caller
// asks for it (goldfish-server's opt-in -obs-addr flag); no goldfish binary
// serves http.DefaultServeMux, which the net/http/pprof import also
// populates as a side effect. Extra mounts let callers co-host their own
// endpoints on the same mux (goldfish-server -serve mounts the deletion
// service's /unlearn surface this way).
func Handler(banner string, reg *Registry, mounts ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	for _, mount := range mounts {
		mount(mux)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s\n", banner)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
