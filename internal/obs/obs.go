// Package obs is the repo's stdlib-only observability layer: an instrument
// registry (counters, gauges, fixed-bucket histograms) with a deterministic
// snapshot API, plus span-based tracing written as JSON lines to an
// out-of-band sink (trace.go) and an HTTP surface for live inspection
// (http.go).
//
// Design contract: observability is a SIDE CHANNEL. Nothing obs computes may
// feed the byte-compared artifacts (scenario reports, golden fixtures, the
// CI smoke baseline) — timing lives in the trace file and the snapshot, both
// written next to, never into, a report. That is why internal/obs is the one
// package the determinism lint analyzer permits to read the wall clock
// (lint.DeterminismClockAllowPaths): every other report-producing package is
// still forbidden to call time.Now.
//
// All instruments are safe for concurrent use. Every entry point is
// nil-receiver-safe, so instrumented code paths need no "is observability
// on?" branches — a nil *Observer, *Counter or zero Span is a no-op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution instrument: observations are
// counted into ascending upper-bound buckets (values above the last bound
// land in an overflow bucket). Quantiles are estimated from the bucket
// counts, so p50/p99 resolution is the bucket granularity.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending inclusive upper bounds
	counts []int64   // len(bounds)+1; last is the overflow bucket
	count  int64
	sum    float64
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (bounds are inclusive)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshotLocked assembles the histogram's snapshot row. Caller holds h.mu.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:     name,
		Count:    h.count,
		Sum:      h.sum,
		Overflow: h.counts[len(h.counts)-1],
		Buckets:  make([]BucketCount, len(h.bounds)),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = BucketCount{LE: b, Count: h.counts[i]}
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	return s
}

// BucketCount is one histogram bucket in a snapshot: Count observations at
// or below the LE upper bound (and above the previous bucket's bound).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state in a Snapshot. P50 and P99 are
// bucket-resolution quantile estimates (see Quantile).
type HistogramSnapshot struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	P50      float64       `json:"p50"`
	P99      float64       `json:"p99"`
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding the q·Count-th observation. Observations beyond the last
// bound clamp to the last finite bound, so the estimate stays
// JSON-encodable; an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.LE
		}
	}
	return s.Buckets[len(s.Buckets)-1].LE
}

// CounterSnapshot is one counter's state in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a registry's full state at one moment. Instruments are sorted
// by name and every field marshals in declared order, so a snapshot of a
// fixed event sequence serializes to byte-identical JSON.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// WriteJSON writes the snapshot, pretty-printed with a trailing newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("obs: writing snapshot: %w", err)
	}
	return nil
}

// Registry is a named-instrument store. Lookups are get-or-create, so call
// sites never pre-register; a histogram's bucket bounds are fixed by its
// first lookup and later bounds arguments are ignored.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil on a nil registry).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every instrument's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
