package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"goldfish/internal/obs"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram from
// many goroutines; run under -race this is the data-race gate for the
// instrument layer, and the totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	o := obs.New(io.Discard)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				o.Counter("c").Inc()
				o.Gauge("g").Set(float64(w))
				o.Histogram("h", obs.MillisBuckets).Observe(float64(i % 50))
				sp := o.StartSpan("span", obs.Int("w", w))
				o.Event("ev", obs.Int("i", i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := o.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := o.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if err := o.TraceErr(); err != nil {
		t.Errorf("trace error: %v", err)
	}
}

// TestSnapshotDeterminism replays one fixed event sequence into two fresh
// registries and requires byte-identical snapshot JSON: map-backed storage
// must never leak iteration order into the serialized snapshot.
func TestSnapshotDeterminism(t *testing.T) {
	record := func() []byte {
		r := obs.NewRegistry()
		for i := 0; i < 10; i++ {
			r.Counter("fed.rounds").Inc()
			r.Counter("unlearn.requests").Add(2)
			r.Gauge("clients").Set(float64(5 + i))
			r.Histogram("round_ms", obs.MillisBuckets).Observe(float64(3 * i))
			r.Histogram("rounds_to_forget.goldfish", obs.RoundBuckets).Observe(float64(i % 4))
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
	var decoded obs.Snapshot
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(decoded.Counters) != 2 || len(decoded.Gauges) != 1 || len(decoded.Histograms) != 2 {
		t.Errorf("snapshot shape = %d/%d/%d counters/gauges/histograms, want 2/1/2",
			len(decoded.Counters), len(decoded.Gauges), len(decoded.Histograms))
	}
	if decoded.Counters[0].Name >= decoded.Counters[1].Name {
		t.Errorf("counters not sorted: %q before %q", decoded.Counters[0].Name, decoded.Counters[1].Name)
	}
}

// TestHistogramQuantiles pins the bucket-resolution quantile estimate the
// SLO story (p50/p99 rounds-to-forget) is built on.
func TestHistogramQuantiles(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("rtf", obs.RoundBuckets)
	for i := 0; i < 99; i++ {
		h.Observe(2)
	}
	h.Observe(60) // one straggler in the (32,64] bucket
	snap := r.Snapshot().Histograms[0]
	if snap.P50 != 2 {
		t.Errorf("p50 = %g, want 2", snap.P50)
	}
	if snap.P99 != 2 {
		t.Errorf("p99 = %g, want 2 (99th of 100 observations is still in the 2-bucket)", snap.P99)
	}
	if q := snap.Quantile(1); q != 64 {
		t.Errorf("q100 = %g, want 64", q)
	}
	if got := snap.Quantile(0.995); got != 64 {
		t.Errorf("q99.5 = %g, want 64", got)
	}

	over := r.Histogram("over", []float64{1, 2})
	over.Observe(1000)
	os := r.Snapshot()
	var overSnap obs.HistogramSnapshot
	for _, hs := range os.Histograms {
		if hs.Name == "over" {
			overSnap = hs
		}
	}
	if overSnap.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", overSnap.Overflow)
	}
	if q := overSnap.Quantile(0.5); q != 2 {
		t.Errorf("overflow quantile = %g, want clamp to last bound 2", q)
	}
}

// TestNilSafety drives every entry point through nil receivers: the
// observability-off path must be a total no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var o *obs.Observer
	o.Counter("c").Inc()
	o.Counter("c").Add(3)
	o.Gauge("g").Set(1)
	o.Histogram("h", obs.RoundBuckets).Observe(1)
	sp := o.StartSpan("s", obs.Str("k", "v"))
	sp.Child("c").End()
	sp.End()
	o.Event("e")
	if o.Elapsed() != 0 {
		t.Error("nil Elapsed != 0")
	}
	if err := o.TraceErr(); err != nil {
		t.Errorf("nil TraceErr = %v", err)
	}
	if s := o.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil Snapshot not empty")
	}
	if got := o.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}

	// Metrics-only observer: spans are no-ops, counters still count.
	m := obs.New(nil)
	m.StartSpan("s").End()
	m.Counter("c").Inc()
	if m.Tracer() != nil {
		t.Error("metrics-only observer should have no tracer")
	}
	if m.Counter("c").Value() != 1 {
		t.Error("metrics-only counter lost its increment")
	}
}

// TestContextPlumbing pins the ctx carrier the engine/scenario/unlearn
// layers rely on.
func TestContextPlumbing(t *testing.T) {
	ctx := t.Context()
	if got := obs.FromContext(ctx); got != nil {
		t.Errorf("FromContext(empty) = %v, want nil", got)
	}
	if obs.NewContext(ctx, nil) != ctx {
		t.Error("NewContext(nil observer) should return ctx unchanged")
	}
	o := obs.New(nil)
	if got := obs.FromContext(obs.NewContext(ctx, o)); got != o {
		t.Errorf("FromContext round-trip = %v, want %v", got, o)
	}
}

// TestHandlerEndpoints exercises the HTTP surface: /healthz liveness,
// /debug/vars snapshot JSON reflecting live instruments, and the pprof
// index.
func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("fed.rounds").Add(7)
	srv := httptest.NewServer(obs.Handler("goldfish-test 9.9.9", reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "goldfish-test 9.9.9") {
		t.Errorf("/healthz = %d %q, want 200 with banner", code, body)
	}
	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars = %d, want 200", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/vars is not snapshot JSON: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "fed.rounds" || snap.Counters[0].Value != 7 {
		t.Errorf("/debug/vars counters = %+v, want fed.rounds=7", snap.Counters)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want 200 with profile index", code)
	}
}
