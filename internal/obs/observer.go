package obs

import (
	"context"
	"io"
	"time"
)

// Standard bucket bounds. Rounds are small integers (the paper's
// rounds-to-forget live in single digits at experiment scale); millisecond
// buckets span sub-ms kernel phases up to minute-long cells.
var (
	// RoundBuckets holds round-count histogram bounds (rounds-to-forget).
	RoundBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	// MillisBuckets holds wall-time histogram bounds in milliseconds.
	MillisBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}
)

// Observer bundles the instrument registry and the span tracer behind one
// nil-safe handle: instrumented code calls through it unconditionally, and a
// nil Observer (observability off — the default) makes every call a no-op.
// Attach one to a context with NewContext; the round engine, the scenario
// matrix and the unlearning pipeline pick it up with FromContext.
type Observer struct {
	reg   *Registry
	tr    *Tracer
	start time.Time
}

// New builds an Observer with a fresh registry. When trace is non-nil, span
// and point events are written to it as JSON lines; a nil trace keeps
// metrics only.
func New(trace io.Writer) *Observer {
	o := &Observer{reg: NewRegistry(), start: time.Now()}
	if trace != nil {
		o.tr = NewTracer(trace)
	}
	return o
}

// Registry returns the instrument registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the span tracer (nil on a nil observer or without a trace
// sink).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Elapsed returns the monotonic time since the observer was created (0 on
// nil). Instrumented packages time phases as Elapsed deltas so the clock
// read stays inside obs — the only package the determinism lint permits it.
func (o *Observer) Elapsed() time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(o.start)
}

// Counter returns the named counter (nil-safe).
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge returns the named gauge (nil-safe).
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram returns the named histogram (nil-safe), created with bounds on
// first use.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	return o.Registry().Histogram(name, bounds)
}

// StartSpan opens a root span (no-op zero Span without a trace sink).
func (o *Observer) StartSpan(name string, attrs ...Attr) Span {
	return o.Tracer().StartSpan(name, attrs...)
}

// Event emits a point event (no-op without a trace sink).
func (o *Observer) Event(name string, attrs ...Attr) {
	o.Tracer().Event(name, attrs...)
}

// Snapshot captures the registry's current state.
func (o *Observer) Snapshot() Snapshot { return o.Registry().Snapshot() }

// WriteSnapshot writes the registry snapshot as pretty-printed JSON.
func (o *Observer) WriteSnapshot(w io.Writer) error { return o.Snapshot().WriteJSON(w) }

// TraceErr returns the first trace-sink write error, if any.
func (o *Observer) TraceErr() error { return o.Tracer().Err() }

// ctxKey keys the Observer in a context.
type ctxKey struct{}

// NewContext returns ctx carrying o (ctx unchanged when o is nil).
func NewContext(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext returns the context's Observer, or nil when none is attached —
// and nil is a valid no-op receiver for every Observer method.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(ctxKey{}).(*Observer)
	return o
}
