package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// The tracer emits one JSON object per line to its sink. Three event shapes,
// each with its fields in this fixed order:
//
//	{"ev":"start","id":1,"parent":0,"name":"fed/round","t_us":12,"attrs":{"round":0}}
//	{"ev":"end","id":1,"name":"fed/round","t_us":840,"dur_us":828}
//	{"ev":"event","name":"unlearn/request","t_us":301,"attrs":{"client":2}}
//
// "parent" is 0 for root spans and "attrs" is omitted when empty. t_us is
// microseconds of MONOTONIC time since the tracer was created — never wall
// clock — so durations are immune to clock steps and the trace carries no
// absolute timestamps that would differ between otherwise identical runs.

// Attr is one key/value attribute on a span or event. Build them with Str,
// Int, I64 and F64; attributes serialize in argument order.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an int attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// I64 builds an int64 attribute.
func I64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// F64 builds a float64 attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Tracer writes span start/end and point events as JSON lines to a sink.
// It is safe for concurrent use: each event is encoded to a private buffer
// and written with a single Write under one mutex, so lines never interleave.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	err     error
	nextID  uint64
	elapsed func() time.Duration
	buf     bytes.Buffer
}

// NewTracer builds a tracer over w, timing events against a monotonic base
// anchored at the call.
func NewTracer(w io.Writer) *Tracer {
	start := time.Now()
	return NewTracerWithClock(w, func() time.Duration { return time.Since(start) })
}

// NewTracerWithClock builds a tracer with an explicit elapsed-time source —
// the seam that lets tests emit byte-reproducible traces.
func NewTracerWithClock(w io.Writer, elapsed func() time.Duration) *Tracer {
	return &Tracer{w: w, elapsed: elapsed}
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one traced operation: created by StartSpan/Child (which emit the
// start event) and closed by End (which emits the end event with the
// monotonic duration). The zero Span is a no-op.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start time.Duration
}

// StartSpan emits a root span start event. On a nil tracer it returns the
// no-op zero Span.
func (t *Tracer) StartSpan(name string, attrs ...Attr) Span {
	return t.startSpan(0, name, attrs)
}

// Child emits a span start event parented on s. A zero receiver starts
// nothing and returns the zero Span.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(s.id, name, attrs)
}

// End emits the span's end event. No-op on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.elapsed()
	t.buf.Reset()
	fmt.Fprintf(&t.buf, `{"ev":"end","id":%d,"name":`, s.id)
	t.appendJSON(s.name)
	fmt.Fprintf(&t.buf, `,"t_us":%d,"dur_us":%d}`, now.Microseconds(), (now - s.start).Microseconds())
	t.flushLine()
}

// Event emits a point event (no duration). No-op on a nil tracer.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf.Reset()
	t.buf.WriteString(`{"ev":"event","name":`)
	t.appendJSON(name)
	fmt.Fprintf(&t.buf, `,"t_us":%d`, t.elapsed().Microseconds())
	t.appendAttrs(attrs)
	t.buf.WriteByte('}')
	t.flushLine()
}

// startSpan assigns an id, emits the start event and returns the live span.
func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	start := t.elapsed()
	t.buf.Reset()
	fmt.Fprintf(&t.buf, `{"ev":"start","id":%d,"parent":%d,"name":`, id, parent)
	t.appendJSON(name)
	fmt.Fprintf(&t.buf, `,"t_us":%d`, start.Microseconds())
	t.appendAttrs(attrs)
	t.buf.WriteByte('}')
	t.flushLine()
	return Span{t: t, id: id, name: name, start: start}
}

// appendAttrs writes `,"attrs":{…}` in argument order (nothing when empty).
func (t *Tracer) appendAttrs(attrs []Attr) {
	if len(attrs) == 0 {
		return
	}
	t.buf.WriteString(`,"attrs":{`)
	for i, a := range attrs {
		if i > 0 {
			t.buf.WriteByte(',')
		}
		t.appendJSON(a.Key)
		t.buf.WriteByte(':')
		t.appendJSON(a.Value)
	}
	t.buf.WriteByte('}')
}

// appendJSON marshals one value into the event buffer, degrading to a quoted
// error string rather than emitting a broken line.
func (t *Tracer) appendJSON(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, err = json.Marshal(fmt.Sprintf("!obs: unencodable attr: %v", err))
		if err != nil {
			// Unreachable — a plain string always encodes — but degrading to
			// a fixed literal beats discarding the error or a broken line.
			b = []byte(`"!obs: unencodable attr"`)
		}
	}
	t.buf.Write(b)
}

// flushLine writes the buffered event plus newline, recording the first
// sink error. Caller holds t.mu.
func (t *Tracer) flushLine() {
	if t.err != nil {
		return
	}
	t.buf.WriteByte('\n')
	if _, err := t.w.Write(t.buf.Bytes()); err != nil {
		t.err = fmt.Errorf("obs: writing trace event: %w", err)
	}
}
