package obs_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldfish/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock ticks 100µs per read, so every event lands on a distinct,
// reproducible t_us.
func fakeClock() func() time.Duration {
	var ticks time.Duration
	return func() time.Duration {
		ticks += 100 * time.Microsecond
		return ticks
	}
}

// TestTraceGolden pins the trace schema: one JSON object per line, stable
// field order, parent links, attrs in argument order. Regenerate with
//
//	go test ./internal/obs -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracerWithClock(&buf, fakeClock())

	round := tr.StartSpan("fed/round", obs.Int("round", 0))
	train := round.Child("fed/train", obs.Int("clients", 4))
	tr.Event("unlearn/request", obs.Int("client", 2), obs.Str("strategy", "goldfish"))
	train.End()
	agg := round.Child("fed/aggregate")
	agg.End()
	round.End()
	tr.Event("unlearn/forgotten",
		obs.Str("strategy", "goldfish"), obs.I64("rounds", 3), obs.F64("acc", 0.9375))
	if err := tr.Err(); err != nil {
		t.Fatalf("trace error: %v", err)
	}

	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Schema invariants, independent of the golden bytes: every line is one
	// self-contained JSON object with the required fields for its kind.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d trace lines, want 8", len(lines))
	}
	starts := map[float64]bool{}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := ev["t_us"]; !ok {
			t.Errorf("line %d missing t_us: %s", i+1, line)
		}
		switch ev["ev"] {
		case "start":
			id := ev["id"].(float64)
			starts[id] = true
			if parent := ev["parent"].(float64); parent != 0 && !starts[parent] {
				t.Errorf("line %d: parent %v started after child: %s", i+1, parent, line)
			}
		case "end":
			if !starts[ev["id"].(float64)] {
				t.Errorf("line %d: end without start: %s", i+1, line)
			}
			if _, ok := ev["dur_us"]; !ok {
				t.Errorf("line %d: end missing dur_us: %s", i+1, line)
			}
		case "event":
			if _, ok := ev["id"]; ok {
				t.Errorf("line %d: point event must not carry an id: %s", i+1, line)
			}
		default:
			t.Errorf("line %d: unknown ev %q", i+1, ev["ev"])
		}
	}
}

// TestTracerSinkError verifies the first write error latches and later
// events are dropped rather than half-written.
func TestTracerSinkError(t *testing.T) {
	sinkErr := errors.New("disk full")
	tr := obs.NewTracerWithClock(failWriter{sinkErr}, fakeClock())
	sp := tr.StartSpan("s")
	sp.End()
	tr.Event("e")
	if err := tr.Err(); !errors.Is(err, sinkErr) {
		t.Errorf("Err() = %v, want wrapped %v", err, sinkErr)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }
