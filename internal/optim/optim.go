// Package optim provides the training machinery for the Goldfish
// reproduction: SGD with momentum (the paper trains with η=0.001, β=0.9),
// global-norm gradient clipping, learning-rate schedules, and the paper's
// early-termination mechanism guided by excess empirical risk (Eq. 7).
package optim

import (
	"fmt"
	"math"

	"goldfish/internal/nn"
)

// SGDConfig configures an SGD optimizer.
type SGDConfig struct {
	// LR is the learning rate. Must be positive.
	LR float64
	// Momentum is the classical momentum coefficient β (0 disables it).
	Momentum float64
	// WeightDecay is the L2 penalty coefficient (0 disables it).
	WeightDecay float64
	// ClipNorm caps the global gradient norm before each step (0 disables
	// clipping). The unlearning objective contains a gradient-ascent term
	// on removed data, so clipping keeps steps bounded.
	ClipNorm float64
}

// Validate reports configuration errors.
func (c SGDConfig) Validate() error {
	if c.LR <= 0 {
		return fmt.Errorf("optim: learning rate must be positive, got %g", c.LR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("optim: momentum must be in [0,1), got %g", c.Momentum)
	}
	if c.WeightDecay < 0 {
		return fmt.Errorf("optim: negative weight decay %g", c.WeightDecay)
	}
	if c.ClipNorm < 0 {
		return fmt.Errorf("optim: negative clip norm %g", c.ClipNorm)
	}
	return nil
}

// SGD is a stochastic-gradient-descent optimizer with momentum. One SGD
// instance serves one network; velocity buffers are allocated lazily to
// match the parameter layout.
type SGD struct {
	cfg SGDConfig
	vel [][]float64
}

// NewSGD returns an optimizer with the given configuration.
func NewSGD(cfg SGDConfig) (*SGD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SGD{cfg: cfg}, nil
}

// Config returns the current configuration.
func (s *SGD) Config() SGDConfig { return s.cfg }

// SetLR updates the learning rate (used by schedules).
func (s *SGD) SetLR(lr float64) error {
	if lr <= 0 {
		return fmt.Errorf("optim: learning rate must be positive, got %g", lr)
	}
	s.cfg.LR = lr
	return nil
}

// Step applies one update to the parameters using their accumulated
// gradients, then leaves the gradients untouched (callers usually follow
// with ZeroGrads). Velocity buffers are created on first use.
func (s *SGD) Step(params []*nn.Param) {
	if s.vel == nil {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, p.W.Size())
		}
	}
	if len(s.vel) != len(params) {
		panic(fmt.Sprintf("optim: SGD bound to %d params, got %d", len(s.vel), len(params)))
	}

	scale := 1.0
	if s.cfg.ClipNorm > 0 {
		norm := GradNorm(params)
		if norm > s.cfg.ClipNorm {
			scale = s.cfg.ClipNorm / norm
		}
	}

	for i, p := range params {
		w, g, v := p.W.Data(), p.G.Data(), s.vel[i]
		for j := range w {
			grad := g[j] * scale
			if s.cfg.WeightDecay > 0 {
				grad += s.cfg.WeightDecay * w[j]
			}
			v[j] = s.cfg.Momentum*v[j] - s.cfg.LR*grad
			w[j] += v[j]
		}
	}
}

// Reset clears the momentum state (used when the student model is
// re-initialized for a new unlearning round).
func (s *SGD) Reset() { s.vel = nil }

// GradNorm returns the global L2 norm of all parameter gradients.
func GradNorm(params []*nn.Param) float64 {
	var sum float64
	for _, p := range params {
		for _, g := range p.G.Data() {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// StepDecay returns base·factor^(epoch/every) — a classic staircase
// schedule. every must be positive.
func StepDecay(base, factor float64, every, epoch int) float64 {
	if every <= 0 {
		panic(fmt.Sprintf("optim: StepDecay every must be positive, got %d", every))
	}
	return base * math.Pow(factor, float64(epoch/every))
}

// CosineDecay anneals base to floor over total epochs following a half
// cosine.
func CosineDecay(base, floor float64, epoch, total int) float64 {
	if total <= 0 || epoch >= total {
		return floor
	}
	if epoch < 0 {
		epoch = 0
	}
	t := float64(epoch) / float64(total)
	return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*t))
}

// EarlyStopper implements the paper's early-termination mechanism (Eq. 7).
// During local training it records the loss of each local epoch; training
// may stop once the excess empirical risk
//
//	err = |mean_i L(ωᶜ(i)) − L(ω^{t−1})|
//
// drops to at most Delta, where L(ω^{t−1}) is the reference loss of the
// previous global model on the same data.
type EarlyStopper struct {
	// Delta is the stopping threshold δ. Must be non-negative.
	Delta float64
	// RefLoss is L(ω^{t−1}), the previous global model's loss.
	RefLoss float64

	losses []float64
}

// NewEarlyStopper creates a stopper with threshold delta against refLoss.
func NewEarlyStopper(delta, refLoss float64) (*EarlyStopper, error) {
	if delta < 0 {
		return nil, fmt.Errorf("optim: early-termination threshold must be ≥ 0, got %g", delta)
	}
	return &EarlyStopper{Delta: delta, RefLoss: refLoss}, nil
}

// Observe records the loss of one completed local epoch.
func (e *EarlyStopper) Observe(loss float64) { e.losses = append(e.losses, loss) }

// ExcessRisk returns |mean(observed) − RefLoss|, or +Inf before any
// observation.
func (e *EarlyStopper) ExcessRisk() float64 {
	if len(e.losses) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, l := range e.losses {
		s += l
	}
	return math.Abs(s/float64(len(e.losses)) - e.RefLoss)
}

// ShouldStop reports whether the excess empirical risk is within Delta.
func (e *EarlyStopper) ShouldStop() bool { return e.ExcessRisk() <= e.Delta }

// Epochs returns how many losses have been observed.
func (e *EarlyStopper) Epochs() int { return len(e.losses) }
