package optim

import (
	"math"
	"math/rand"
	"testing"

	"goldfish/internal/nn"
	"goldfish/internal/tensor"
)

func TestSGDConfigValidate(t *testing.T) {
	good := SGDConfig{LR: 0.1, Momentum: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []SGDConfig{
		{LR: 0},
		{LR: -1},
		{LR: 0.1, Momentum: 1},
		{LR: 0.1, Momentum: -0.1},
		{LR: 0.1, WeightDecay: -1},
		{LR: 0.1, ClipNorm: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
	if _, err := NewSGD(SGDConfig{}); err == nil {
		t.Error("NewSGD with zero LR should fail")
	}
}

// trainQuadratic runs SGD on L = ½‖w − target‖² and returns the final
// distance to the target.
func trainQuadratic(t *testing.T, cfg SGDConfig, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(nn.NewDense(1, 4, rng))
	target := []float64{1, -2, 3, 0.5, 0, 0, 0, 0} // weights then biases
	opt, err := NewSGD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := net.Params()
	for s := 0; s < steps; s++ {
		net.ZeroGrads()
		i := 0
		for _, p := range params {
			for j := range p.W.Data() {
				p.G.Data()[j] = p.W.Data()[j] - target[i]
				i++
			}
		}
		opt.Step(params)
	}
	var dist float64
	i := 0
	for _, p := range params {
		for _, w := range p.W.Data() {
			d := w - target[i]
			dist += d * d
			i++
		}
	}
	return math.Sqrt(dist)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	final := trainQuadratic(t, SGDConfig{LR: 0.1}, 200)
	if final > 1e-6 {
		t.Errorf("SGD did not converge: final distance %g", final)
	}
}

func TestMomentumAccelerates(t *testing.T) {
	plain := trainQuadratic(t, SGDConfig{LR: 0.02}, 60)
	mom := trainQuadratic(t, SGDConfig{LR: 0.02, Momentum: 0.9}, 60)
	if mom >= plain {
		t.Errorf("momentum (%g) should beat plain SGD (%g) at equal budget", mom, plain)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewNetwork(nn.NewDense(2, 2, rng))
	before := tensor.FromSlice(net.ParamVector(), net.NumParams()).L2Norm()
	opt, err := NewSGD(SGDConfig{LR: 0.1, WeightDecay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		net.ZeroGrads() // zero task gradient; only decay acts
		opt.Step(net.Params())
	}
	after := tensor.FromSlice(net.ParamVector(), net.NumParams()).L2Norm()
	if after >= before/2 {
		t.Errorf("weight decay should shrink weights: %g → %g", before, after)
	}
}

func TestClipNormBoundsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewNetwork(nn.NewDense(4, 4, rng))
	before := net.ParamVector()
	opt, err := NewSGD(SGDConfig{LR: 1, ClipNorm: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Huge gradient.
	for _, p := range net.Params() {
		p.G.Fill(100)
	}
	opt.Step(net.Params())
	after := net.ParamVector()
	var move float64
	for i := range before {
		d := after[i] - before[i]
		move += d * d
	}
	move = math.Sqrt(move)
	// With LR=1 and clip 0.5, the step norm must be ≤ 0.5 (plus epsilon).
	if move > 0.5+1e-9 {
		t.Errorf("clipped step moved %g, want ≤ 0.5", move)
	}
}

func TestGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewNetwork(nn.NewDense(1, 2, rng))
	for _, p := range net.Params() {
		p.G.Fill(3)
	}
	// 2 weights + 2 biases = 4 values of 3 → norm = sqrt(4*9) = 6.
	if got := GradNorm(net.Params()); math.Abs(got-6) > 1e-12 {
		t.Errorf("GradNorm = %g, want 6", got)
	}
}

func TestSGDReset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := nn.NewNetwork(nn.NewDense(1, 1, rng))
	opt, err := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	net.Params()[0].G.Fill(1)
	opt.Step(net.Params())
	opt.Reset()
	// After reset, a zero-gradient step must not move weights (no stale
	// velocity).
	w := net.Params()[0].W.Data()[0]
	net.ZeroGrads()
	opt.Step(net.Params())
	if net.Params()[0].W.Data()[0] != w {
		t.Error("stale velocity applied after Reset")
	}
}

func TestSetLR(t *testing.T) {
	opt, err := NewSGD(SGDConfig{LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetLR(0.01); err != nil {
		t.Fatal(err)
	}
	if opt.Config().LR != 0.01 {
		t.Errorf("LR = %g after SetLR", opt.Config().LR)
	}
	if err := opt.SetLR(0); err == nil {
		t.Error("SetLR(0) should fail")
	}
}

func TestStepDecay(t *testing.T) {
	if got := StepDecay(1, 0.1, 10, 0); got != 1 {
		t.Errorf("epoch 0: %g, want 1", got)
	}
	if got := StepDecay(1, 0.1, 10, 25); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("epoch 25: %g, want 0.01", got)
	}
}

func TestCosineDecay(t *testing.T) {
	if got := CosineDecay(1, 0.1, 0, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("start: %g, want 1", got)
	}
	if got := CosineDecay(1, 0.1, 100, 100); got != 0.1 {
		t.Errorf("end: %g, want 0.1", got)
	}
	mid := CosineDecay(1, 0.1, 50, 100)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Errorf("mid: %g, want 0.55", mid)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for e := 0; e <= 100; e += 5 {
		v := CosineDecay(1, 0.1, e, 100)
		if v > prev+1e-12 {
			t.Fatalf("cosine decay not monotone at epoch %d", e)
		}
		prev = v
	}
}

func TestEarlyStopper(t *testing.T) {
	es, err := NewEarlyStopper(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if es.ShouldStop() {
		t.Error("should not stop before any observation")
	}
	if !math.IsInf(es.ExcessRisk(), 1) {
		t.Error("excess risk should be +Inf with no data")
	}
	es.Observe(2.0)
	if es.ShouldStop() {
		t.Error("|2.0 − 0.5| = 1.5 > 0.1 must not stop")
	}
	// Pull the running mean towards the reference.
	for i := 0; i < 20; i++ {
		es.Observe(0.45)
	}
	if got := es.ExcessRisk(); got > 0.1 {
		t.Fatalf("excess risk %g should be within 0.1 after convergence", got)
	}
	if !es.ShouldStop() {
		t.Error("should stop once within delta")
	}
	if es.Epochs() != 21 {
		t.Errorf("Epochs = %d, want 21", es.Epochs())
	}
}

func TestEarlyStopperValidation(t *testing.T) {
	if _, err := NewEarlyStopper(-1, 0); err == nil {
		t.Error("negative delta should fail")
	}
}
