// Package persist stores and restores model checkpoints: the flat state
// vector of a network (parameters plus BatchNorm running statistics)
// together with metadata and an integrity checksum, gob-encoded.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"encoding/gob"
)

// formatVersion guards against loading checkpoints from incompatible
// releases.
const formatVersion = 1

// ErrCorrupt is returned when a checkpoint fails its integrity check.
var ErrCorrupt = errors.New("persist: checkpoint corrupt")

// Checkpoint is a stored model snapshot.
type Checkpoint struct {
	// Format is the checkpoint format version.
	Format int
	// Arch describes the architecture the state belongs to (informational;
	// the caller must rebuild a matching network).
	Arch string
	// Meta carries free-form metadata (round number, dataset, …).
	Meta map[string]string
	// State is the flat model state vector (nn.Network.StateVector).
	State []float64
	// Checksum is the FNV-1a hash of Arch and State.
	Checksum uint64
}

// checksumChunk bounds the scratch buffer checksum serializes state floats
// into: 1024 floats = 8 KiB per hash pass.
const checksumChunk = 1024

// checksum hashes the architecture string and state bits. The state is
// serialized chunk-wise into one reused buffer so the hash ingests 8 KiB per
// Write instead of 8 bytes per float (the byte stream — and therefore the
// hash value — is unchanged from the per-float version).
func checksum(arch string, state []float64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(arch))
	buf := make([]byte, 0, checksumChunk*8)
	for len(state) > 0 {
		n := len(state)
		if n > checksumChunk {
			n = checksumChunk
		}
		buf = buf[:n*8]
		for i, v := range state[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		_, _ = h.Write(buf)
		state = state[n:]
	}
	return h.Sum64()
}

// Save writes a checkpoint for the given architecture and state.
func Save(w io.Writer, arch string, state []float64, meta map[string]string) error {
	if len(state) == 0 {
		return fmt.Errorf("persist: refusing to save empty state")
	}
	cp := Checkpoint{
		Format:   formatVersion,
		Arch:     arch,
		Meta:     meta,
		State:    state,
		Checksum: checksum(arch, state),
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("persist: encoding checkpoint: %w", err)
	}
	return nil
}

// Load reads and verifies a checkpoint.
func Load(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("persist: decoding checkpoint: %w", err)
	}
	if cp.Format != formatVersion {
		return nil, fmt.Errorf("persist: unsupported format %d (want %d)", cp.Format, formatVersion)
	}
	if cp.Checksum != checksum(cp.Arch, cp.State) {
		return nil, ErrCorrupt
	}
	return &cp, nil
}

// SaveFile writes a checkpoint to path, creating or truncating it.
func SaveFile(path, arch string, state []float64, meta map[string]string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("persist: closing %s: %w", path, cerr)
		}
	}()
	return Save(f, arch, state, meta)
}

// LoadFile reads and verifies a checkpoint from path.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Load(f)
}
