package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	state := []float64{1.5, -2.25, 0, 3.75}
	meta := map[string]string{"round": "7", "dataset": "mnist"}
	if err := Save(&buf, "lenet5", state, meta); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Arch != "lenet5" {
		t.Errorf("Arch = %q", cp.Arch)
	}
	if cp.Meta["round"] != "7" {
		t.Errorf("Meta = %v", cp.Meta)
	}
	if len(cp.State) != 4 || cp.State[1] != -2.25 {
		t.Errorf("State = %v", cp.State)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "mlp", []float64{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	// Flip one byte somewhere in the encoded state.
	raw := buf.Bytes()
	raw[len(raw)-5] ^= 0xFF
	_, err := Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("corrupted checkpoint loaded without error")
	}
	// Either the gob decode fails or the checksum trips; when it decodes,
	// the sentinel must be ErrCorrupt.
	if !errors.Is(err, ErrCorrupt) && err == nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestSaveEmptyStateRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "mlp", nil, nil); err == nil {
		t.Error("empty state accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	state := []float64{4, 5, 6}
	if err := SaveFile(path, "resnet32", state, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State[2] != 6 || cp.Arch != "resnet32" {
		t.Errorf("round trip mismatch: %+v", cp)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := checksum("arch", []float64{1, 2, 3})
	if b := checksum("arch", []float64{1, 2, 4}); a == b {
		t.Error("checksum insensitive to state change")
	}
	if b := checksum("other", []float64{1, 2, 3}); a == b {
		t.Error("checksum insensitive to arch change")
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	var buf bytes.Buffer
	cp := Checkpoint{
		Format:   99,
		Arch:     "mlp",
		State:    []float64{1},
		Checksum: checksum("mlp", []float64{1}),
	}
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("wrong format version accepted")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input accepted")
	}
}
