package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	state := []float64{1.5, -2.25, 0, 3.75}
	meta := map[string]string{"round": "7", "dataset": "mnist"}
	if err := Save(&buf, "lenet5", state, meta); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Arch != "lenet5" {
		t.Errorf("Arch = %q", cp.Arch)
	}
	if cp.Meta["round"] != "7" {
		t.Errorf("Meta = %v", cp.Meta)
	}
	if len(cp.State) != 4 || cp.State[1] != -2.25 {
		t.Errorf("State = %v", cp.State)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "mlp", []float64{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	// Flip one byte somewhere in the encoded state.
	raw := buf.Bytes()
	raw[len(raw)-5] ^= 0xFF
	_, err := Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("corrupted checkpoint loaded without error")
	}
	// Either the gob decode fails or the checksum trips; when it decodes,
	// the sentinel must be ErrCorrupt.
	if !errors.Is(err, ErrCorrupt) && err == nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestSaveEmptyStateRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "mlp", nil, nil); err == nil {
		t.Error("empty state accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	state := []float64{4, 5, 6}
	if err := SaveFile(path, "resnet32", state, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State[2] != 6 || cp.Arch != "resnet32" {
		t.Errorf("round trip mismatch: %+v", cp)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := checksum("arch", []float64{1, 2, 3})
	if b := checksum("arch", []float64{1, 2, 4}); a == b {
		t.Error("checksum insensitive to state change")
	}
	if b := checksum("other", []float64{1, 2, 3}); a == b {
		t.Error("checksum insensitive to arch change")
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	var buf bytes.Buffer
	cp := Checkpoint{
		Format:   99,
		Arch:     "mlp",
		State:    []float64{1},
		Checksum: checksum("mlp", []float64{1}),
	}
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("wrong format version accepted")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input accepted")
	}
}

// Reference implementation of the pre-buffering checksum (8 bytes per hash
// Write): the buffered pass must produce the identical byte stream, so every
// existing checkpoint on disk stays loadable.
func checksumPerFloat(arch string, state []float64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(arch))
	var buf [8]byte
	for _, v := range state {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

func TestChecksumBufferedMatchesPerFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Cover empty, sub-chunk, exact-chunk, and multi-chunk state sizes.
	for _, n := range []int{0, 1, 7, checksumChunk - 1, checksumChunk, checksumChunk + 1, 3*checksumChunk + 17} {
		state := make([]float64, n)
		for i := range state {
			state[i] = rng.NormFloat64()
		}
		if got, want := checksum("lenet5", state), checksumPerFloat("lenet5", state); got != want {
			t.Errorf("n=%d: buffered checksum %x != per-float %x", n, got, want)
		}
	}
}

// Regression: a single flipped bit in a stored checkpoint file must surface
// as ErrCorrupt. The test searches (from the end of the file, where the
// state bytes live) for a flip position that still gob-decodes — that is the
// dangerous case, where only the checksum stands between the caller and
// silently corrupted weights.
func TestBitFlippedFileFailsWithErrCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	state := make([]float64, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range state {
		state[i] = rng.NormFloat64()
	}
	if err := SaveFile(path, "lenet5", state, map[string]string{"round": "9"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	found := false
	for pos := len(raw) - 2; pos > len(raw)/2 && !found; pos-- {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), raw...)
			flipped[pos] ^= 1 << bit
			cpErr := func() error {
				_, lerr := Load(bytes.NewReader(flipped))
				return lerr
			}()
			if cpErr == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded cleanly", pos, bit)
			}
			if errors.Is(cpErr, ErrCorrupt) {
				found = true
				break
			}
			// Otherwise the flip broke the gob framing itself; keep looking
			// for a decodable corruption.
		}
	}
	if !found {
		t.Fatal("no single-bit flip produced a decodable-but-corrupt checkpoint; cannot exercise ErrCorrupt")
	}
}
