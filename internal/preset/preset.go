// Package preset maps the paper's dataset/model pairings and
// hyperparameters onto this reproduction's scale knob. It is shared by the
// experiment harness, the CLI tools and the public facade so that every
// entry point trains the same configuration.
package preset

import (
	"fmt"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/loss"
	"goldfish/internal/model"
	"goldfish/internal/optim"
)

// Preset bundles a ready-to-run experimental configuration.
type Preset struct {
	// Dataset is the dataset name ("mnist", "fmnist", "cifar10",
	// "cifar100").
	Dataset string
	// Spec is the synthetic dataset specification at the chosen scale.
	Spec data.SyntheticSpec
	// Model is the architecture configuration (width/depth already scaled).
	Model model.Config
	// LR is the learning rate (paper: 0.001 at ScalePaper).
	LR float64
	// Batch is the mini-batch size (paper: 100 at ScalePaper).
	Batch int
	// Epochs is the local epochs per federated round.
	Epochs int
	// Rounds is the default global round budget.
	Rounds int
	// Clients is the default client count (paper: 5).
	Clients int
	// Seed drives all randomness derived from this preset.
	Seed int64
}

// Hyper returns the per-scale training hyperparameters. Paper values apply
// at data.ScalePaper; smaller scales use faster settings so CPU runs
// converge within their reduced budgets.
func Hyper(scale data.Scale) (lr float64, batch, epochs, rounds int) {
	switch scale {
	case data.ScaleTiny:
		return 0.1, 32, 2, 6
	case data.ScaleMedium:
		return 0.01, 64, 2, 15
	case data.ScalePaper:
		return 0.001, 100, 2, 40
	default: // ScaleSmall
		return 0.05, 32, 2, 8
	}
}

// ArchFor maps the paper's dataset→model pairing (§IV-A): LeNet-5 for
// MNIST/FMNIST, modified LeNet-5 for CIFAR-10, ResNet-56 for CIFAR-100.
func ArchFor(dataset string) model.Arch {
	switch dataset {
	case "cifar10":
		return model.ArchLeNet5Mod
	case "cifar100":
		return model.ArchResNet56
	default:
		return model.ArchLeNet5
	}
}

// ModelConfig builds the architecture configuration for a dataset spec at
// the given scale, shrinking widths/depths below data.ScalePaper.
func ModelConfig(arch model.Arch, spec data.SyntheticSpec, scale data.Scale, seed int64) model.Config {
	cfg := model.Config{
		Arch:    arch,
		InC:     spec.Channels,
		InH:     spec.Size,
		InW:     spec.Size,
		Classes: spec.Classes,
		Seed:    seed,
	}
	switch scale {
	case data.ScalePaper:
		// paper widths and depths
	case data.ScaleMedium:
		cfg.Width = 0.5
		if arch == model.ArchResNet32 || arch == model.ArchResNet56 {
			cfg.DepthN = 2
		}
	default: // tiny, small
		cfg.Width = 0.5
		if arch == model.ArchResNet32 || arch == model.ArchResNet56 {
			cfg.Width = 0.25
			cfg.DepthN = 1
		}
	}
	return cfg
}

// For resolves the preset for a dataset and architecture at the given
// scale. Passing an empty arch selects the paper's pairing via ArchFor.
func For(dataset string, arch model.Arch, scale data.Scale, seed int64) (Preset, error) {
	if scale == "" {
		scale = data.ScaleSmall
	}
	if seed == 0 {
		seed = 1
	}
	if arch == "" {
		arch = ArchFor(dataset)
	}
	spec, err := data.SpecByName(dataset, scale)
	if err != nil {
		return Preset{}, err
	}
	spec.Seed += seed * 1000
	lr, batch, epochs, rounds := Hyper(scale)
	return Preset{
		Dataset: dataset,
		Spec:    spec,
		Model:   ModelConfig(arch, spec, scale, seed),
		LR:      lr,
		Batch:   batch,
		Epochs:  epochs,
		Rounds:  rounds,
		Clients: 5,
		Seed:    seed,
	}, nil
}

// Generate materializes the preset's train and test datasets.
func (p Preset) Generate() (train, test *data.Dataset, err error) {
	return data.Generate(p.Spec)
}

// ClientConfig returns the Goldfish client configuration for this preset:
// the paper's loss defaults (µc=0.25, µd=1.0, T=3) with the preset's
// optimizer and batch settings.
func (p Preset) ClientConfig() core.Config {
	return core.Config{
		Model:       p.Model,
		Loss:        loss.NewGoldfish(),
		Opt:         optim.SGDConfig{LR: p.LR, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: p.Epochs,
		BatchSize:   p.Batch,
		TempAlpha:   1,
		Seed:        p.Seed,
	}
}

// Validate reports preset errors.
func (p Preset) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.LR <= 0 || p.Batch <= 0 || p.Epochs <= 0 || p.Rounds <= 0 || p.Clients <= 0 {
		return fmt.Errorf("preset: invalid hyperparameters %+v", p)
	}
	return nil
}
