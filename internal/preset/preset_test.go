package preset

import (
	"testing"

	"goldfish/internal/data"
	"goldfish/internal/model"
)

func TestForDefaults(t *testing.T) {
	p, err := For("mnist", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.Arch != model.ArchLeNet5 {
		t.Errorf("arch = %s, want lenet5", p.Model.Arch)
	}
	if p.Clients != 5 {
		t.Errorf("clients = %d, want 5", p.Clients)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default preset invalid: %v", err)
	}
	if err := p.ClientConfig().Validate(); err != nil {
		t.Errorf("client config invalid: %v", err)
	}
}

func TestForArchOverride(t *testing.T) {
	p, err := For("cifar10", model.ArchResNet32, data.ScaleTiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.Arch != model.ArchResNet32 {
		t.Errorf("arch = %s", p.Model.Arch)
	}
	if p.Model.Width != 0.25 || p.Model.DepthN != 1 {
		t.Errorf("tiny ResNet not scaled down: %+v", p.Model)
	}
}

func TestForUnknownDataset(t *testing.T) {
	if _, err := For("bogus", "", data.ScaleTiny, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestHyperPaperValues(t *testing.T) {
	lr, batch, _, _ := Hyper(data.ScalePaper)
	if lr != 0.001 || batch != 100 {
		t.Errorf("paper hyper = lr %g batch %d, want 0.001/100", lr, batch)
	}
}

func TestArchFor(t *testing.T) {
	cases := map[string]model.Arch{
		"mnist":    model.ArchLeNet5,
		"fmnist":   model.ArchLeNet5,
		"cifar10":  model.ArchLeNet5Mod,
		"cifar100": model.ArchResNet56,
	}
	for ds, want := range cases {
		if got := ArchFor(ds); got != want {
			t.Errorf("ArchFor(%s) = %s, want %s", ds, got, want)
		}
	}
}

func TestModelConfigScaling(t *testing.T) {
	spec, err := data.SpecCIFAR100(data.ScalePaper)
	if err != nil {
		t.Fatal(err)
	}
	paper := ModelConfig(model.ArchResNet56, spec, data.ScalePaper, 1)
	if paper.Width != 0 || paper.DepthN != 0 {
		t.Errorf("paper scale must keep full width/depth: %+v", paper)
	}
	small := ModelConfig(model.ArchResNet56, spec, data.ScaleSmall, 1)
	if small.Width >= 1 || small.DepthN == 0 {
		t.Errorf("small scale must shrink ResNets: %+v", small)
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	p, err := For("fmnist", "", data.ScaleTiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != p.Spec.Train || test.Len() != p.Spec.Test {
		t.Errorf("sizes %d/%d, want %d/%d", train.Len(), test.Len(), p.Spec.Train, p.Spec.Test)
	}
}
