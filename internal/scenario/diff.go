package scenario

import (
	"fmt"
	"io"
	"math"
	"strings"

	"goldfish/internal/stats"
)

// DefaultAlpha is the significance level Diff uses when DiffOptions.Alpha
// is unset.
const DefaultAlpha = 0.05

// DiffOptions tunes report diffing.
type DiffOptions struct {
	// Alpha is the Welch t-test significance level (default DefaultAlpha).
	Alpha float64
	// MinDelta is a practical-significance threshold that triggers
	// independently of the t-test: any mean shift of at least MinDelta is
	// flagged even when the t-test cannot detect it (a single seed, or too
	// much seed variance for the sample size), and a statistically
	// significant shift is flagged by the t-test no matter how small. Zero
	// disables the threshold, leaving the t-test as the only trigger.
	MinDelta float64
}

// MetricDelta is one metric's old → new movement on one cell.
type MetricDelta struct {
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Delta float64 `json:"delta"` // New - Old
}

// CellDelta is the per-cell row of a report diff. Metric deltas are nil when
// either side lacks the metric or the cell failed on either side.
type CellDelta struct {
	Strategy      string       `json:"strategy"`
	Seed          int64        `json:"seed"`
	Shards        int          `json:"shards"`
	Attack        string       `json:"attack,omitempty"`
	Accuracy      *MetricDelta `json:"accuracy,omitempty"`
	ASR           *MetricDelta `json:"attack_success_rate,omitempty"`
	MembershipGap *MetricDelta `json:"membership_gap,omitempty"`
	OldError      string       `json:"old_error,omitempty"`
	NewError      string       `json:"new_error,omitempty"`
}

// Metric names used in MetricTest.Metric.
const (
	MetricAccuracy      = "accuracy"
	MetricASR           = "asr"
	MetricMembershipGap = "membership_gap"
)

// MetricTest is one (strategy, τ, attack, metric) significance test across
// the seed axis: the old report's per-seed values against the new report's,
// compared with Welch's t-test (paper Tables VII–IX machinery from
// internal/stats).
type MetricTest struct {
	Strategy string  `json:"strategy"`
	Shards   int     `json:"shards"`
	Attack   string  `json:"attack,omitempty"`
	Metric   string  `json:"metric"`
	N        int     `json:"n"` // matched seeds per side
	MeanOld  float64 `json:"mean_old"`
	MeanNew  float64 `json:"mean_new"`
	Delta    float64 `json:"delta"` // MeanNew - MeanOld
	// T and P are the Welch t-test statistic and p-value; meaningful only
	// when Tested is true (a t-test needs ≥2 seeds per side).
	T      float64 `json:"t_stat,omitempty"`
	P      float64 `json:"p_value,omitempty"`
	Tested bool    `json:"tested"`
	// Significant marks a shift that clears either the statistical bar
	// (p < Alpha) or the practical one (|Delta| ≥ MinDelta, when a floor is
	// set) — the two triggers are independent; Regression additionally
	// marks it as a worsening (accuracy down, ASR up, |membership gap| up).
	Significant bool `json:"significant"`
	Regression  bool `json:"regression"`
}

// DiffReport is the cell-by-cell comparison of two scenario reports.
type DiffReport struct {
	Name     string  `json:"name"`
	Alpha    float64 `json:"alpha"`
	MinDelta float64 `json:"min_delta,omitempty"`
	// Cells are per-cell metric deltas over the matrix intersection, in the
	// new report's matrix order.
	Cells []CellDelta `json:"cells"`
	// Tests are the per-(strategy, τ, attack, metric) significance tests.
	Tests []MetricTest `json:"tests"`
	// NewlyFailing lists cells that succeeded in the old report but carry an
	// error in the new one — always treated as a regression.
	NewlyFailing []string `json:"newly_failing,omitempty"`
	// OnlyInOld and OnlyInNew list cells present in one report only (axes
	// changed between the runs); those cells are not compared.
	OnlyInOld []string `json:"only_in_old,omitempty"`
	OnlyInNew []string `json:"only_in_new,omitempty"`
}

// Regressions returns the significant worsenings: the metric tests flagged
// Significant && Regression. Newly failing cells are reported separately in
// NewlyFailing.
func (d *DiffReport) Regressions() []MetricTest {
	var out []MetricTest
	for _, t := range d.Tests {
		if t.Significant && t.Regression {
			out = append(out, t)
		}
	}
	return out
}

// HasRegressions reports whether the diff should gate (fail) a CI run:
// any significant metric regression or any newly failing cell.
func (d *DiffReport) HasRegressions() bool {
	return len(d.NewlyFailing) > 0 || len(d.Regressions()) > 0
}

// Diff compares two scenario reports cell-by-cell: per-cell accuracy, attack
// success rate and membership-gap deltas over the matrix intersection, plus
// per-(strategy, τ, attack, metric) Welch t-tests across the seed axis so a
// committed baseline report can gate CI on unlearning-efficacy regressions.
// Cells are matched by (strategy, seed, τ, attack); the specs need not be identical
// (axes may have grown since the baseline), but the intersection must be
// non-empty. Diffing a report against itself yields all-zero deltas and no
// regressions.
func Diff(oldR, newR *Report, opts DiffOptions) (*DiffReport, error) {
	if oldR == nil || newR == nil {
		return nil, fmt.Errorf("scenario: diff needs two reports")
	}
	if opts.Alpha == 0 {
		opts.Alpha = DefaultAlpha
	}
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("scenario: alpha %g out of (0,1)", opts.Alpha)
	}
	if opts.MinDelta < 0 {
		return nil, fmt.Errorf("scenario: negative min delta %g", opts.MinDelta)
	}
	oldRows := make(map[cellKey]*CellResult, len(oldR.Cells))
	for i := range oldR.Cells {
		row := &oldR.Cells[i]
		oldRows[cellKey{row.Strategy, row.Seed, row.Shards, row.Attack}] = row
	}
	d := &DiffReport{Name: newR.Name, Alpha: opts.Alpha, MinDelta: opts.MinDelta}
	matched := map[cellKey]bool{}
	for i := range newR.Cells {
		nr := &newR.Cells[i]
		k := cellKey{nr.Strategy, nr.Seed, nr.Shards, nr.Attack}
		or, ok := oldRows[k]
		if !ok {
			d.OnlyInNew = append(d.OnlyInNew, k.String())
			continue
		}
		matched[k] = true
		cd := CellDelta{Strategy: nr.Strategy, Seed: nr.Seed, Shards: nr.Shards, Attack: nr.Attack,
			OldError: or.Error, NewError: nr.Error}
		if or.Error == "" && nr.Error == "" {
			cd.Accuracy = delta(or.Accuracy, nr.Accuracy)
			cd.ASR = deltaOpt(or.ASR, nr.ASR)
			cd.MembershipGap = deltaOpt(or.MembershipGap, nr.MembershipGap)
		} else if or.Error == "" && nr.Error != "" {
			d.NewlyFailing = append(d.NewlyFailing, k.String())
		}
		d.Cells = append(d.Cells, cd)
	}
	for _, c := range oldR.Spec.Cells() {
		k := cellKey{c.Strategy, c.Seed, c.Shards, c.Attack}
		if _, ok := oldRows[k]; ok && !matched[k] {
			d.OnlyInOld = append(d.OnlyInOld, k.String())
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("scenario: the reports share no matrix cells")
	}

	// Group the matched, error-free cells by (strategy, τ, attack) — the
	// seed axis supplies the samples — in the new report's deterministic
	// axis order.
	type group struct {
		strategy string
		shards   int
		attack   string
	}
	samples := map[group]map[string][2][]float64{}
	for _, cd := range d.Cells {
		if cd.Accuracy == nil {
			continue // errored on a side, or metrics unavailable
		}
		g := group{cd.Strategy, cd.Shards, cd.Attack}
		if samples[g] == nil {
			samples[g] = map[string][2][]float64{}
		}
		add := func(metric string, o, n float64) {
			s := samples[g][metric]
			s[0] = append(s[0], o)
			s[1] = append(s[1], n)
			samples[g][metric] = s
		}
		add(MetricAccuracy, cd.Accuracy.Old, cd.Accuracy.New)
		if cd.ASR != nil {
			add(MetricASR, cd.ASR.Old, cd.ASR.New)
		}
		if cd.MembershipGap != nil {
			// Membership leakage is a magnitude: an unlearned model should
			// sit near zero gap, in either direction.
			add(MetricMembershipGap, math.Abs(cd.MembershipGap.Old), math.Abs(cd.MembershipGap.New))
		}
	}
	for _, strat := range newR.Spec.Strategies {
		for _, sh := range newR.Spec.ShardList() {
			for _, atk := range newR.Spec.AttackList() {
				g := group{strat, sh, atk}
				for _, metric := range []string{MetricAccuracy, MetricASR, MetricMembershipGap} {
					s, ok := samples[g][metric]
					if !ok || len(s[0]) == 0 {
						continue
					}
					d.Tests = append(d.Tests, newMetricTest(g.strategy, g.shards, g.attack, metric, s[0], s[1], opts))
				}
			}
		}
	}
	return d, nil
}

func delta(o, n float64) *MetricDelta {
	return &MetricDelta{Old: o, New: n, Delta: n - o}
}

func deltaOpt(o, n *float64) *MetricDelta {
	if o == nil || n == nil {
		return nil
	}
	return delta(*o, *n)
}

// newMetricTest runs one group's significance test. With ≥2 seeds per side
// it is a Welch t-test; with one seed no test is possible and only an
// explicit MinDelta floor can flag the shift.
func newMetricTest(strategy string, shards int, attack, metric string, olds, news []float64, opts DiffOptions) MetricTest {
	t := MetricTest{
		Strategy: strategy, Shards: shards, Attack: attack, Metric: metric,
		N:       len(olds),
		MeanOld: stats.Mean(olds), MeanNew: stats.Mean(news),
	}
	t.Delta = t.MeanNew - t.MeanOld
	// A statistically significant shift triggers regardless of MinDelta;
	// the epsilon keeps float-rounding noise (near-zero deltas with
	// near-zero variance) from reading as significant.
	const deltaEpsilon = 1e-9
	if len(olds) >= 2 && len(news) >= 2 {
		if res, err := stats.WelchTTest(news, olds); err == nil && !math.IsNaN(res.P) {
			t.Tested = true
			t.T = clampFinite(res.T)
			t.P = res.P
			t.Significant = res.P < opts.Alpha && math.Abs(t.Delta) > deltaEpsilon
		}
	}
	// The practical threshold triggers on its own: a shift this large is a
	// finding whether or not the seed sample is big enough to prove it.
	if opts.MinDelta > 0 && math.Abs(t.Delta) >= opts.MinDelta {
		t.Significant = true
	}
	if t.Significant {
		switch metric {
		case MetricAccuracy:
			t.Regression = t.Delta < 0
		default: // asr, membership_gap: larger is worse
			t.Regression = t.Delta > 0
		}
	}
	return t
}

// clampFinite keeps the t statistic JSON-encodable (±Inf arises from
// zero-variance samples with different means).
func clampFinite(x float64) float64 {
	if math.IsInf(x, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(x, -1) {
		return -math.MaxFloat64
	}
	return x
}

// RenderText writes a human-readable diff: the significance-test table with
// regressions flagged, plus any newly failing or unmatched cells.
func (d *DiffReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "=== report diff %s (α=%g", d.Name, d.Alpha)
	if d.MinDelta > 0 {
		fmt.Fprintf(w, ", min Δ=%g", d.MinDelta)
	}
	fmt.Fprintf(w, ", %d cells compared) ===\n", len(d.Cells))
	cols := []string{"strategy", "tau", "attack", "metric", "n", "old", "new", "delta", "p", "flag"}
	rows := make([][]string, 0, len(d.Tests))
	for _, t := range d.Tests {
		p := "-"
		if t.Tested {
			p = fmt.Sprintf("%.4f", t.P)
		}
		flag := ""
		switch {
		case t.Significant && t.Regression:
			flag = "REGRESSION"
		case t.Significant:
			flag = "improved"
		}
		atk := t.Attack
		if atk == "" {
			atk = "-"
		}
		rows = append(rows, []string{
			t.Strategy,
			fmt.Sprintf("%d", t.Shards),
			atk,
			t.Metric,
			fmt.Sprintf("%d", t.N),
			fmt.Sprintf("%.4f", t.MeanOld),
			fmt.Sprintf("%.4f", t.MeanNew),
			fmt.Sprintf("%+.4f", t.Delta),
			p,
			flag,
		})
	}
	renderTable(w, cols, rows)
	for _, c := range d.NewlyFailing {
		fmt.Fprintf(w, "  NEWLY FAILING: %s\n", c)
	}
	if len(d.OnlyInOld) > 0 {
		fmt.Fprintf(w, "  only in baseline (%d): %s\n", len(d.OnlyInOld), strings.Join(d.OnlyInOld, "; "))
	}
	if len(d.OnlyInNew) > 0 {
		fmt.Fprintf(w, "  only in new (%d): %s\n", len(d.OnlyInNew), strings.Join(d.OnlyInNew, "; "))
	}
}
