package scenario

import (
	"strings"
	"testing"
)

// diffReport builds a report whose per-cell metrics come from f, with a tiny
// per-seed jitter so the seed axis carries low-variance samples (making
// genuine shifts statistically detectable with few seeds).
func diffReport(t *testing.T, spec Spec, f func(c Cell) CellResult) *Report {
	t.Helper()
	cells := spec.Cells()
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		outcomes[i] = Outcome{Result: f(c), State: []float64{1}}
	}
	rep, err := Assemble(spec, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func diffSpec() Spec {
	return Spec{
		Name:       "diff",
		Dataset:    "mnist",
		Scale:      "tiny",
		Rounds:     4,
		Strategies: []string{"goldfish", "retrain"},
		Seeds:      []int64{1, 2, 3},
	}
}

func baseCell(c Cell) CellResult {
	jitter := 0.001 * float64(c.Seed)
	asr := 0.05 + jitter
	gap := 0.02 + jitter
	return CellResult{
		Rounds:        4,
		Accuracy:      0.90 + jitter,
		ASR:           &asr,
		MembershipGap: &gap,
	}
}

func TestDiffSelfIsEmpty(t *testing.T) {
	rep := diffReport(t, diffSpec(), baseCell)
	d, err := Diff(rep, rep, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.HasRegressions() {
		t.Errorf("self-diff has regressions: %+v", d.Regressions())
	}
	if len(d.Cells) != len(rep.Cells) {
		t.Errorf("compared %d cells, want %d", len(d.Cells), len(rep.Cells))
	}
	for _, cd := range d.Cells {
		if cd.Accuracy == nil || cd.Accuracy.Delta != 0 {
			t.Errorf("self-diff cell %s/seed %d has accuracy delta %+v", cd.Strategy, cd.Seed, cd.Accuracy)
		}
	}
	if len(d.Tests) == 0 {
		t.Fatal("no significance tests")
	}
	for _, mt := range d.Tests {
		if !mt.Tested {
			t.Errorf("%s/%s not tested with 3 seeds", mt.Strategy, mt.Metric)
		}
		if mt.Significant {
			t.Errorf("self-diff %s/%s flagged significant (p=%g)", mt.Strategy, mt.Metric, mt.P)
		}
		if mt.P != 1 {
			t.Errorf("self-diff %s/%s p=%g, want 1 (identical samples)", mt.Strategy, mt.Metric, mt.P)
		}
	}
	if len(d.OnlyInOld)+len(d.OnlyInNew)+len(d.NewlyFailing) != 0 {
		t.Error("self-diff reports unmatched or failing cells")
	}
}

func TestDiffFlagsAccuracyRegression(t *testing.T) {
	spec := diffSpec()
	old := diffReport(t, spec, baseCell)
	cur := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		if c.Strategy == "goldfish" {
			r.Accuracy -= 0.10 // a real drop, far above the seed jitter
		}
		return r
	})
	d, err := Diff(old, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := d.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the goldfish accuracy drop", regs)
	}
	if regs[0].Strategy != "goldfish" || regs[0].Metric != MetricAccuracy {
		t.Errorf("flagged %s/%s", regs[0].Strategy, regs[0].Metric)
	}
	if !d.HasRegressions() {
		t.Error("HasRegressions false despite a flagged regression")
	}
	// An accuracy IMPROVEMENT must be significant but not a regression.
	better := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		r.Accuracy += 0.10
		return r
	})
	d, err = Diff(old, better, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.HasRegressions() {
		t.Errorf("improvement flagged as regression: %+v", d.Regressions())
	}
	var sig bool
	for _, mt := range d.Tests {
		if mt.Metric == MetricAccuracy && mt.Significant {
			sig = true
		}
	}
	if !sig {
		t.Error("a 0.10 accuracy improvement was not significant")
	}
}

func TestDiffFlagsASRAndMembershipRegressions(t *testing.T) {
	spec := diffSpec()
	old := diffReport(t, spec, baseCell)
	cur := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		asr := *r.ASR + 0.30 // backdoor resurfacing
		r.ASR = &asr
		gap := -(*r.MembershipGap) - 0.20 // leakage magnitude up, sign flipped
		r.MembershipGap = &gap
		return r
	})
	d, err := Diff(old, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, mt := range d.Regressions() {
		got[mt.Metric] = true
	}
	if !got[MetricASR] {
		t.Error("ASR increase not flagged as regression")
	}
	if !got[MetricMembershipGap] {
		t.Error("membership-gap magnitude increase not flagged as regression")
	}
	if got[MetricAccuracy] {
		t.Error("unchanged accuracy flagged")
	}
}

func TestDiffSingleSeedNeedsMinDelta(t *testing.T) {
	spec := diffSpec()
	spec.Seeds = []int64{1}
	old := diffReport(t, spec, baseCell)
	cur := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		r.Accuracy -= 0.10
		return r
	})
	d, err := Diff(old, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range d.Tests {
		if mt.Tested {
			t.Errorf("%s/%s tested with one seed", mt.Strategy, mt.Metric)
		}
	}
	if d.HasRegressions() {
		t.Error("single-seed diff flagged without a MinDelta floor")
	}
	d, err = Diff(old, cur, DiffOptions{MinDelta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions()) == 0 {
		t.Error("0.10 drop under a 0.05 MinDelta floor not flagged")
	}
}

func TestDiffRecordsFailuresAndAxisChanges(t *testing.T) {
	spec := diffSpec()
	old := diffReport(t, spec, baseCell)
	cur := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		if c.Strategy == "goldfish" && c.Seed == 2 {
			return CellResult{Error: "boom"}
		}
		return r
	})
	d, err := Diff(old, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NewlyFailing) != 1 || !strings.Contains(d.NewlyFailing[0], "goldfish") {
		t.Errorf("NewlyFailing = %v", d.NewlyFailing)
	}
	if !d.HasRegressions() {
		t.Error("a newly failing cell must gate the diff")
	}

	grown := diffSpec()
	grown.Seeds = []int64{1, 2, 3, 4}
	curGrown := diffReport(t, grown, baseCell)
	d, err = Diff(old, curGrown, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyInNew) != len(grown.Strategies) {
		t.Errorf("OnlyInNew = %v, want the two seed-4 cells", d.OnlyInNew)
	}
	if d.HasRegressions() {
		t.Error("axis growth alone flagged as regression")
	}

	disjoint := diffSpec()
	disjoint.Seeds = []int64{7}
	other := diffReport(t, disjoint, baseCell)
	if _, err := Diff(old, other, DiffOptions{}); err == nil {
		t.Error("diff with no shared cells accepted")
	}
}

// TestDiffAttackAxisAndNilASR: cells are matched per attack type, the
// significance tests group by (strategy, τ, attack), ASR resurfacing on one
// probe style is attributed to that style alone, and a side with a nil ASR
// (the probe was unavailable) degrades to a nil delta instead of a panic.
func TestDiffAttackAxisAndNilASR(t *testing.T) {
	spec := diffSpec()
	spec.Attack = &AttackSpec{
		Types: []string{"backdoor", "label-flip"}, Fraction: 0.3, TargetLabel: 0,
	}
	old := diffReport(t, spec, baseCell)
	cur := diffReport(t, spec, func(c Cell) CellResult {
		r := baseCell(c)
		switch {
		case c.Attack == "label-flip" && c.Strategy == "goldfish":
			asr := *r.ASR + 0.30 // the flip resurfaces for goldfish only
			r.ASR = &asr
		case c.Attack == "backdoor" && c.Strategy == "retrain":
			r.ASR = nil // probe unavailable on this side
		}
		return r
	})
	d, err := Diff(old, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cd := range d.Cells {
		if cd.Attack == "" {
			t.Fatalf("cell delta %s/seed %d lost its attack label", cd.Strategy, cd.Seed)
		}
		if cd.Strategy == "retrain" && cd.Attack == "backdoor" {
			if cd.ASR != nil {
				t.Errorf("nil-ASR side produced a delta: %+v", cd.ASR)
			}
			if cd.Accuracy == nil {
				t.Error("accuracy delta lost alongside the nil ASR")
			}
		}
	}
	regs := d.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the goldfish label-flip ASR", regs)
	}
	if regs[0].Strategy != "goldfish" || regs[0].Attack != "label-flip" || regs[0].Metric != MetricASR {
		t.Errorf("flagged %s/%s/%s", regs[0].Strategy, regs[0].Attack, regs[0].Metric)
	}
	// The backdoor plane keeps ASR tests on the strategies that carried the
	// probe on both sides; retrain's nil side contributes no samples.
	for _, mt := range d.Tests {
		if mt.Strategy == "retrain" && mt.Attack == "backdoor" && mt.Metric == MetricASR {
			t.Errorf("ASR test ran over a nil-ASR side: %+v", mt)
		}
	}
	var sb strings.Builder
	d.RenderText(&sb)
	if !strings.Contains(sb.String(), "label-flip") {
		t.Errorf("RenderText omits the attack column:\n%s", sb.String())
	}
}

func TestDiffOptionValidationAndRender(t *testing.T) {
	rep := diffReport(t, diffSpec(), baseCell)
	if _, err := Diff(rep, rep, DiffOptions{Alpha: 1.5}); err == nil {
		t.Error("alpha 1.5 accepted")
	}
	if _, err := Diff(rep, rep, DiffOptions{MinDelta: -1}); err == nil {
		t.Error("negative MinDelta accepted")
	}
	if _, err := Diff(nil, rep, DiffOptions{}); err == nil {
		t.Error("nil report accepted")
	}
	d, err := Diff(rep, rep, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	d.RenderText(&sb)
	out := sb.String()
	for _, want := range []string{"goldfish", "accuracy", "membership_gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderText missing %q:\n%s", want, out)
		}
	}
}
