package scenario

import (
	"path/filepath"
	"testing"
)

// TestExampleSpecsParseAndValidate keeps every committed scenario file
// loadable: a spec that rots breaks this test, not a CI run hours in.
func TestExampleSpecsParseAndValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 example specs, found %d: %v", len(paths), paths)
	}
	seen := map[string]bool{}
	for _, path := range paths {
		spec, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if spec.Name == "" {
			t.Errorf("%s: spec has no name", path)
		}
		if seen[spec.Name] {
			t.Errorf("%s: duplicate scenario name %q", path, spec.Name)
		}
		seen[spec.Name] = true
		if len(spec.Cells()) == 0 {
			t.Errorf("%s: empty matrix", path)
		}
	}

	// The CI smoke gate needs a genuinely concurrent matrix: at least two
	// strategies crossed with at least two seeds.
	smoke, err := Load(filepath.Join("..", "..", "examples", "scenarios", "smoke.json"))
	if err != nil {
		t.Fatalf("smoke.json: %v", err)
	}
	if len(smoke.Strategies) < 2 {
		t.Errorf("smoke.json has %d strategies, need ≥2", len(smoke.Strategies))
	}
	if len(smoke.SeedList()) < 2 {
		t.Errorf("smoke.json has %d seeds, need ≥2", len(smoke.SeedList()))
	}
	if smoke.Scale != "tiny" {
		t.Errorf("smoke.json runs at scale %q; keep it tiny so CI stays fast", smoke.Scale)
	}
}
