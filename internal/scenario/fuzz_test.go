package scenario

import (
	"strings"
	"testing"
)

// FuzzParse hardens the spec parser: arbitrary JSON must never panic, every
// rejection must be a wrapped "scenario:" error (so CLI and API callers can
// attribute it), and anything Parse accepts must re-validate — Parse's
// contract is parse+Validate in one step. The seed corpus below plus the
// committed files under testdata/fuzz/FuzzParse replay as regular test cases
// on every `go test` run, which is the deterministic regression gate; run
// `go test -fuzz=FuzzParse ./internal/scenario` to explore further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Valid specs across the feature surface.
		`{"dataset":"mnist","strategies":["goldfish"]}`,
		`{"name":"s","dataset":"mnist","scale":"tiny","strategies":["goldfish","retrain"],"seeds":[1,2],"shards":[1,4]}`,
		`{"dataset":"cifar10","strategies":["goldfish"],"repetitions":3,"partition":{"type":"dirichlet","alpha":0.5}}`,
		`{"dataset":"mnist","strategies":["goldfish"],"attack":{"type":"backdoor","client":0,"fraction":0.3,"target_label":0}}`,
		`{"dataset":"mnist","strategies":["goldfish"],"attack":{"types":["backdoor","label-flip","targeted-class"],"fraction":0.3,"target_label":0,"source_class":1,"strength":0.6}}`,
		`{"dataset":"mnist","rounds":4,"strategies":["goldfish"],"attack":{"type":"label-flip","fraction":0.5},"schedule":[{"round":2,"type":"sample","target":"poisoned"}]}`,
		`{"dataset":"mnist","rounds":4,"strategies":["goldfish"],"schedule":[{"round":1,"type":"class","class":3},{"round":2,"type":"client","client":1}]}`,
		// Malformed and hostile inputs.
		``,
		`null`,
		`[]`,
		`"dataset"`,
		`{`,
		`{"dataset":"mnist"`,
		`{"dataset":"mnist","strategies":["goldfish"]}{"x":1}`,
		`{"dataset":"mnist","strategies":["goldfish"],"sheds":[1]}`,
		`{"dataset":"mnist","strategies":["goldfish","goldfish"]}`,
		`{"dataset":"mnist","strategies":["goldfish"],"seeds":[0]}`,
		`{"dataset":"mnist","strategies":["goldfish"],"attack":{"type":"???"}}`,
		`{"dataset":"mnist","strategies":["goldfish"],"attack":{"type":"backdoor","types":["label-flip"],"fraction":0.1}}`,
		`{"dataset":"mnist","strategies":["goldfish"],"attack":{"type":"targeted-class","fraction":0.1,"target_label":2,"source_class":2}}`,
		`{"dataset":"mnist","strategies":["goldfish"],"schedule":[{"round":-1,"type":"sample","rows":[0]}]}`,
		`{"dataset":"mnist","strategies":["goldfish"],"rounds":-3}`,
		`{"dataset":"mnist","strategies":["goldfish"],"repetitions":4611686018427387904}`,
		`{"dataset":"mnist","strategies":["goldfish"],"seeds":[9223372036854775807,-9223372036854775808]}`,
		"{\"dataset\":\"\u0000\",\"strategies\":[\"\xff\"]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Parse(b) // must not panic on any input
		if err != nil {
			if !strings.Contains(err.Error(), "scenario:") {
				t.Errorf("rejection not wrapped as a scenario error: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Parse accepted a spec Validate rejects: %v", err)
		}
		// The resolved axes of an accepted spec must be well-formed enough
		// to expand the matrix.
		if len(s.Cells()) == 0 {
			t.Error("accepted spec expands to an empty matrix")
		}
	})
}
