package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"goldfish/internal/obs"
)

// Cell is one point of the run matrix: a strategy trained at a seed with a
// local shard count under one attack probe, over the spec's shared
// dataset/partition/schedule.
type Cell struct {
	// Strategy is the unlearner registry name.
	Strategy string
	// Seed drives the cell's data generation, partitioning and model
	// initialization. Cells sharing a seed see identical data and
	// partitions, which is what makes cross-strategy comparison fair;
	// poisoning additionally depends on the cell's attack type.
	Seed int64
	// Shards is τ, the local SISA shard count.
	Shards int
	// Attack is the attack-probe type poisoning the cell's data ("" when
	// the spec has no attack).
	Attack string
	// Index is the cell's position in Spec.Cells() order.
	Index int
}

// Cells expands the spec's run matrix in deterministic order:
// strategy-major, then seed, then shard count, then attack type.
func (s Spec) Cells() []Cell {
	seeds := s.SeedList()
	shards := s.ShardList()
	attacks := s.AttackList()
	out := make([]Cell, 0, len(s.Strategies)*len(seeds)*len(shards)*len(attacks))
	for _, strat := range s.Strategies {
		for _, seed := range seeds {
			for _, sh := range shards {
				for _, atk := range attacks {
					out = append(out, Cell{Strategy: strat, Seed: seed, Shards: sh, Attack: atk, Index: len(out)})
				}
			}
		}
	}
	return out
}

// Outcome is one executed cell: the metrics row for the report plus the
// final global state vector kept aside for cross-cell model comparison.
type Outcome struct {
	// Result is the cell's report row (Strategy/Seed/Shards are filled in
	// by Execute).
	Result CellResult
	// State is the final global model state, nil when the cell failed.
	State []float64
	// Canceled marks a cell that never produced a deterministic outcome
	// because the context was canceled before or during its run. Canceled
	// cells are excluded from partial reports (AssembleCells), since a
	// resumed run would produce a different — real — row for them.
	Canceled bool
}

// Runner executes one cell. It must be safe for concurrent invocation and
// derive all randomness from the cell's seed, so the matrix is deterministic
// regardless of scheduling.
type Runner func(ctx context.Context, cell Cell) (Outcome, error)

// Execute runs every cell of the spec's matrix concurrently on a worker
// pool bounded by Spec.Workers (default GOMAXPROCS), returning outcomes in
// Cells() order. A cell failure is recorded in its outcome's Error rather
// than aborting the matrix; ctx cancellation stops scheduling new cells and
// is returned once started cells finish.
func Execute(ctx context.Context, spec Spec, run Runner) ([]Outcome, error) {
	return ExecuteCells(ctx, spec, spec.Cells(), run)
}

// ExecuteCells runs the given subset of the spec's matrix (typically one
// machine shard from Spec.ShardCells) on a fixed pool of Spec.Workers
// goroutines pulling cells from a channel, so a 10k-cell matrix parks at
// most `workers` goroutines, not 10k. outcomes[i] corresponds to cells[i].
// Cells reached after ctx cancellation are marked Canceled instead of run;
// the context error is returned once in-flight cells finish.
//
//goldfish:hotpath
func ExecuteCells(ctx context.Context, spec Spec, cells []Cell, run Runner) ([]Outcome, error) {
	if run == nil {
		return nil, fmt.Errorf("scenario: nil runner")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	ob := obs.FromContext(ctx)
	out := make([]Outcome, len(cells))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				// Per-cell lifecycle goes to the observability side channel
				// only; the outcome rows stay byte-deterministic.
				sp := ob.StartSpan("scenario/cell",
					obs.Str("strategy", c.Strategy), obs.I64("seed", c.Seed),
					obs.Int("shards", c.Shards), obs.Str("attack", c.Attack))
				t0 := ob.Elapsed()
				var o Outcome
				if err := ctx.Err(); err != nil {
					o.Result.Error = err.Error()
					o.Canceled = true
				} else if res, err := run(ctx, c); err != nil {
					o = res
					o.Result.Error = err.Error()
					o.State = nil
					// A runner error after cancellation is the
					// interruption surfacing, not a real cell failure.
					o.Canceled = ctx.Err() != nil
				} else {
					o = res
				}
				o.Result.Strategy, o.Result.Seed, o.Result.Shards, o.Result.Attack = c.Strategy, c.Seed, c.Shards, c.Attack
				out[i] = o
				ob.Histogram("scenario.cell_ms", obs.MillisBuckets).Observe(float64((ob.Elapsed() - t0).Microseconds()) / 1e3)
				ob.Counter("scenario.cells").Inc()
				if o.Result.Error != "" {
					ob.Counter("scenario.cell_errors").Inc()
				}
				sp.End()
			}
		}()
	}
	// Feeding never deadlocks on cancellation: workers keep draining the
	// channel, marking post-cancellation cells Canceled without running them.
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("scenario: %w", err)
	}
	return out, nil
}
