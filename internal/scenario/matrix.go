package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Cell is one point of the run matrix: a strategy trained at a seed with a
// local shard count, over the spec's shared dataset/partition/schedule.
type Cell struct {
	// Strategy is the unlearner registry name.
	Strategy string
	// Seed drives the cell's data generation, partitioning and model
	// initialization. Cells sharing a seed see identical data, partitions
	// and poisoning, which is what makes cross-strategy comparison fair.
	Seed int64
	// Shards is τ, the local SISA shard count.
	Shards int
	// Index is the cell's position in Spec.Cells() order.
	Index int
}

// Cells expands the spec's run matrix in deterministic order:
// strategy-major, then seed, then shard count.
func (s Spec) Cells() []Cell {
	seeds := s.SeedList()
	shards := s.ShardList()
	out := make([]Cell, 0, len(s.Strategies)*len(seeds)*len(shards))
	for _, strat := range s.Strategies {
		for _, seed := range seeds {
			for _, sh := range shards {
				out = append(out, Cell{Strategy: strat, Seed: seed, Shards: sh, Index: len(out)})
			}
		}
	}
	return out
}

// Outcome is one executed cell: the metrics row for the report plus the
// final global state vector kept aside for cross-cell model comparison.
type Outcome struct {
	// Result is the cell's report row (Strategy/Seed/Shards are filled in
	// by Execute).
	Result CellResult
	// State is the final global model state, nil when the cell failed.
	State []float64
}

// Runner executes one cell. It must be safe for concurrent invocation and
// derive all randomness from the cell's seed, so the matrix is deterministic
// regardless of scheduling.
type Runner func(ctx context.Context, cell Cell) (Outcome, error)

// Execute runs every cell of the spec's matrix concurrently on a worker
// pool bounded by Spec.Workers (default GOMAXPROCS), returning outcomes in
// Cells() order. A cell failure is recorded in its outcome's Error rather
// than aborting the matrix; ctx cancellation stops scheduling new cells and
// is returned once started cells finish.
func Execute(ctx context.Context, spec Spec, run Runner) ([]Outcome, error) {
	if run == nil {
		return nil, fmt.Errorf("scenario: nil runner")
	}
	cells := spec.Cells()
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	out := make([]Outcome, len(cells))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		go func(c Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var o Outcome
			if err := ctx.Err(); err != nil {
				o.Result.Error = err.Error()
			} else if res, err := run(ctx, c); err != nil {
				o = res
				o.Result.Error = err.Error()
				o.State = nil
			} else {
				o = res
			}
			o.Result.Strategy, o.Result.Seed, o.Result.Shards = c.Strategy, c.Seed, c.Shards
			out[c.Index] = o
		}(c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("scenario: %w", err)
	}
	return out, nil
}
