package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
)

// cellKey addresses one matrix cell by its axes. Spec.Validate rejects
// duplicate values on every axis, so the key is unique within a matrix.
type cellKey struct {
	strategy string
	seed     int64
	shards   int
	attack   string
}

func (k cellKey) String() string {
	s := fmt.Sprintf("%s/seed %d/τ=%d", k.strategy, k.seed, k.shards)
	if k.attack != "" {
		s += "/" + k.attack
	}
	return s
}

// Merge recombines partial reports of one spec — machine shards from
// ShardCells runs and/or the completed prefix of an interrupted run — into a
// single report byte-identical to a single-machine run of the whole matrix.
//
// Every input must embed the same spec (compared on canonical JSON, so the
// scheduling-only Workers knob is ignored); a cell present in two inputs is
// an overlap error, a matrix cell present in none is a missing-cell error
// naming the gap, so a botched split fails loudly instead of producing a
// silently short report. Rows are reordered into matrix order regardless of
// which input carried them, and the shard/incomplete markers of the inputs
// are dropped from the merged result.
//
// One overlap is legitimate: resuming an interrupted run. When either input
// of an overlapping pair is marked Incomplete and the two rows are
// identical — which determinism guarantees for a re-run of the same spec —
// the duplicate is deduped instead of rejected, so `-merge interrupted.json
// rerun.json` recovers the run. Differing rows still error (the code or
// spec changed between the runs).
func Merge(reports ...*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("scenario: merge needs at least one report")
	}
	for i, r := range reports {
		if r == nil {
			return nil, fmt.Errorf("scenario: merge input %d is nil", i)
		}
	}
	spec := reports[0].Spec
	spec.Workers = 0
	want, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	cells := spec.Cells()
	index := make(map[cellKey]int, len(cells))
	for _, c := range cells {
		index[cellKey{c.Strategy, c.Seed, c.Shards, c.Attack}] = c.Index
	}
	rows := make([]*CellResult, len(cells))
	source := make([]int, len(cells))
	for ri, r := range reports {
		rspec := r.Spec
		rspec.Workers = 0
		got, err := json.Marshal(rspec)
		if err != nil {
			return nil, fmt.Errorf("scenario: encoding spec: %w", err)
		}
		if !bytes.Equal(got, want) {
			return nil, fmt.Errorf("scenario: merge input %d was run from a different spec than input 0", ri)
		}
		for _, row := range r.Cells {
			k := cellKey{row.Strategy, row.Seed, row.Shards, row.Attack}
			i, ok := index[k]
			if !ok {
				return nil, fmt.Errorf("scenario: merge input %d has cell %s, which is not in the spec's matrix", ri, k)
			}
			if rows[i] != nil {
				if source[i] == ri {
					// Duplication inside one report is corruption, never a
					// resume overlap.
					return nil, fmt.Errorf("scenario: cell %s appears twice in merge input %d", k, ri)
				}
				if reflect.DeepEqual(*rows[i], row) &&
					(reports[source[i]].Incomplete || r.Incomplete) {
					continue // resume dedupe: identical row from an interrupted run
				}
				return nil, fmt.Errorf("scenario: cell %s appears in both merge input %d and input %d",
					k, source[i], ri)
			}
			row := row
			rows[i] = &row
			source[i] = ri
		}
	}
	var missing []string
	for i, c := range cells {
		if rows[i] == nil {
			missing = append(missing, cellKey{c.Strategy, c.Seed, c.Shards, c.Attack}.String())
		}
	}
	if total := len(missing); total > 0 {
		const show = 8
		suffix := ""
		if total > show {
			suffix = ", …"
			missing = missing[:show]
		}
		return nil, fmt.Errorf("scenario: merge is missing %d of %d matrix cells: %s%s",
			total, len(cells), strings.Join(missing, "; "), suffix)
	}
	out := make([]CellResult, len(cells))
	for i, row := range rows {
		out[i] = *row
	}
	return &Report{Name: spec.Name, Spec: spec, Cells: out}, nil
}
