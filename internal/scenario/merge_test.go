package scenario

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fakeOutcome builds a deterministic outcome for a cell, so shard partials
// and a single-machine run see identical per-cell results.
func fakeOutcome(c Cell) Outcome {
	var o Outcome
	o.Result.Rounds = 4
	o.Result.Accuracy = 0.5 + 0.01*float64(c.Seed) + 0.001*float64(c.Shards) + 0.0001*float64(len(c.Attack))
	o.State = []float64{float64(c.Seed), float64(c.Shards), float64(len(c.Strategy))}
	return o
}

// fakeCompare derives a comparison purely from the two states, mirroring the
// determinism contract of the real comparer.
func fakeCompare(cell Cell, state, ref []float64) (*Comparison, error) {
	return &Comparison{JSD: state[2] - ref[2], L2: state[0], T: 1, P: 0.5}, nil
}

func fullFakeReport(t *testing.T, spec Spec) *Report {
	t.Helper()
	cells := spec.Cells()
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		outcomes[i] = fakeOutcome(c)
	}
	rep, err := Assemble(spec, outcomes, fakeCompare)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func shardFakeReport(t *testing.T, spec Spec, ref ShardRef) *Report {
	t.Helper()
	cells, err := spec.ShardCells(ref)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		outcomes[i] = fakeOutcome(c)
	}
	rep, err := AssembleCells(spec, ref, cells, outcomes, fakeCompare)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestMergeShardsByteIdentical is the tentpole property: for every shard
// count k, running the matrix as k partials and merging them produces JSON
// byte-identical to the single-machine report, with VsRetrain populated
// inside every partial.
func TestMergeShardsByteIdentical(t *testing.T) {
	spec := shardSpec() // 3 strategies × 3 seeds × 2 τ = 18 cells, 6 groups
	want, err := fullFakeReport(t, spec).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 7; k++ {
		parts := make([]*Report, 0, k)
		for i := 1; i <= k; i++ {
			p := shardFakeReport(t, spec, ShardRef{Index: i, Count: k})
			if err := p.Complete(); err != nil {
				t.Fatalf("k=%d shard %d incomplete: %v", k, i, err)
			}
			if p.Shard != fmt.Sprintf("%d/%d", i, k) {
				t.Errorf("k=%d shard %d marker = %q", k, i, p.Shard)
			}
			for _, row := range p.Cells {
				if row.Strategy != RetrainReference && row.VsRetrain == nil {
					t.Errorf("k=%d shard %d: %s/seed %d/τ=%d missing VsRetrain in the partial",
						k, i, row.Strategy, row.Seed, row.Shards)
				}
			}
			parts = append(parts, p)
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got, err := merged.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("k=%d: merged report differs from the single-machine report", k)
		}
	}
}

// TestMergeShardsAttackAxisByteIdentical: the tentpole property holds with
// an attack axis — k partials of an attack-sweep matrix merge back into
// bytes identical to the single-machine report, and a row whose attack label
// does not belong to the matrix is rejected instead of silently adopted.
func TestMergeShardsAttackAxisByteIdentical(t *testing.T) {
	spec := shardSpec()
	spec.Attack = &AttackSpec{
		Types: []string{"backdoor", "label-flip"}, Fraction: 0.3, TargetLabel: 0,
	}
	want, err := fullFakeReport(t, spec).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		parts := make([]*Report, 0, k)
		for i := 1; i <= k; i++ {
			parts = append(parts, shardFakeReport(t, spec, ShardRef{Index: i, Count: k}))
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got, err := merged.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("k=%d: merged attack-sweep bytes differ from the single-machine report", k)
		}
	}
	// A row addressed to an attack type outside the matrix fails loudly.
	a := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 2})
	b := shardFakeReport(t, spec, ShardRef{Index: 2, Count: 2})
	b.Cells[0].Attack = "targeted-class"
	if _, err := Merge(a, b); err == nil || !strings.Contains(err.Error(), "not in the spec's matrix") {
		t.Errorf("Merge with a foreign attack label = %v", err)
	}
}

// TestMergeRoundTripsThroughJSON merges reports reloaded from disk, the way
// the CLI does across machines.
func TestMergeRoundTripsThroughJSON(t *testing.T) {
	spec := shardSpec()
	dir := t.TempDir()
	var parts []*Report
	for i := 1; i <= 2; i++ {
		p := shardFakeReport(t, spec, ShardRef{Index: i, Count: 2})
		path := filepath.Join(dir, fmt.Sprintf("part%d.json", i))
		if err := p.WriteJSON(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadReport(path)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, loaded)
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fullFakeReport(t, spec).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merge of JSON-round-tripped partials differs from the single-machine report")
	}
}

func TestMergeRejectsOverlap(t *testing.T) {
	spec := shardSpec()
	p1 := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 2})
	p2 := shardFakeReport(t, spec, ShardRef{Index: 2, Count: 2})
	full := fullFakeReport(t, spec)
	if _, err := Merge(p1, p1, p2); err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Errorf("duplicate partial accepted: %v", err)
	}
	if _, err := Merge(full, p1); err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Errorf("full+partial overlap accepted: %v", err)
	}
}

func TestMergeRejectsMissingCells(t *testing.T) {
	spec := shardSpec()
	p1 := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 3})
	p3 := shardFakeReport(t, spec, ShardRef{Index: 3, Count: 3})
	_, err := Merge(p1, p3)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("merge with a missing shard accepted: %v", err)
	}
	// The error must name at least one concrete gap.
	if !strings.Contains(err.Error(), "seed") {
		t.Errorf("missing-cell error does not name cells: %v", err)
	}
}

func TestMergeRejectsSpecMismatch(t *testing.T) {
	spec := shardSpec()
	p1 := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 2})
	other := spec
	other.Seeds = []int64{1, 2, 6}
	p2 := shardFakeReport(t, other, ShardRef{Index: 2, Count: 2})
	if _, err := Merge(p1, p2); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("spec mismatch accepted: %v", err)
	}
}

func TestMergeRejectsForeignAndNilInputs(t *testing.T) {
	spec := shardSpec()
	p1 := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 1})
	bogus := &Report{Name: spec.Name, Spec: p1.Spec, Cells: []CellResult{
		{Strategy: "goldfish", Seed: 99, Shards: 1},
	}}
	if _, err := Merge(p1, bogus); err == nil || !strings.Contains(err.Error(), "not in the spec's matrix") {
		t.Errorf("foreign cell accepted: %v", err)
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge(p1, nil); err == nil {
		t.Error("nil input accepted")
	}
}

// TestMergeIgnoresWorkersKnob: partials run at different -workers settings
// must still merge (the knob is canonicalized out of reports anyway).
func TestMergeIgnoresWorkersKnob(t *testing.T) {
	spec := shardSpec()
	s1 := spec
	s1.Workers = 2
	s2 := spec
	s2.Workers = 16
	p1 := shardFakeReport(t, s1, ShardRef{Index: 1, Count: 2})
	p2 := shardFakeReport(t, s2, ShardRef{Index: 2, Count: 2})
	if _, err := Merge(p1, p2); err != nil {
		t.Errorf("workers knob broke the merge: %v", err)
	}
}

// TestMergeAcceptsIncompleteInputsCovering: the resume path — an interrupted
// run's partial plus a complementary partial merge into a complete report.
func TestMergeAcceptsIncompleteInputsCovering(t *testing.T) {
	spec := shardSpec()
	cells, err := spec.ShardCells(ShardRef{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, len(cells))
	groupDone := func(c Cell) bool { return c.Seed != 5 } // pretend seed-5 groups were interrupted
	for i, c := range cells {
		if groupDone(c) {
			outcomes[i] = fakeOutcome(c)
		} else {
			outcomes[i] = Outcome{Canceled: true}
		}
	}
	interrupted, err := AssembleCells(spec, ShardRef{Index: 1, Count: 2}, cells, outcomes, fakeCompare)
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted.Incomplete {
		t.Fatal("interrupted partial not marked incomplete")
	}
	if err := interrupted.Complete(); err == nil {
		t.Error("incomplete report passed Complete")
	}
	// Merge with partials that exactly cover the gap (a full rerun of the
	// shard also works — see TestMergeDedupesInterruptedRerun).
	var rest []*Report
	rest = append(rest, shardFakeReport(t, spec, ShardRef{Index: 2, Count: 2}))
	// The dropped cells: rebuild them as a hand-carried partial (no shard
	// marker, as a resumed run of just those cells would produce).
	var gapCells []Cell
	for i, c := range cells {
		if outcomes[i].Canceled {
			gapCells = append(gapCells, c)
		}
	}
	gapOutcomes := make([]Outcome, len(gapCells))
	for i, c := range gapCells {
		gapOutcomes[i] = fakeOutcome(c)
	}
	gap, err := AssembleCells(spec, ShardRef{}, gapCells, gapOutcomes, fakeCompare)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(append([]*Report{interrupted, gap}, rest...)...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fullFakeReport(t, spec).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed merge differs from the single-machine report")
	}
}

// TestMergeDedupesInterruptedRerun is the CLI-shaped resume flow: a shard
// run is interrupted (partial marked incomplete), the SAME shard is re-run
// to completion, and merging the interrupted partial + the complete rerun +
// the other shard dedupes the byte-identical overlap instead of rejecting it.
func TestMergeDedupesInterruptedRerun(t *testing.T) {
	spec := shardSpec()
	ref := ShardRef{Index: 1, Count: 2}
	cells, err := spec.ShardCells(ref)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		if c.Seed == 5 {
			outcomes[i] = Outcome{Canceled: true} // interrupted mid-shard
		} else {
			outcomes[i] = fakeOutcome(c)
		}
	}
	interrupted, err := AssembleCells(spec, ref, cells, outcomes, fakeCompare)
	if err != nil {
		t.Fatal(err)
	}
	rerun := shardFakeReport(t, spec, ref) // same shard, completed this time
	other := shardFakeReport(t, spec, ShardRef{Index: 2, Count: 2})
	merged, err := Merge(interrupted, rerun, other)
	if err != nil {
		t.Fatalf("resume merge rejected: %v", err)
	}
	got, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fullFakeReport(t, spec).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resume merge differs from the single-machine report")
	}

	// A CONFLICTING duplicate (the code or spec changed between the runs)
	// must still be rejected, even against an incomplete input.
	conflicting := shardFakeReport(t, spec, ref)
	conflicting.Cells[0].Accuracy += 1
	if _, err := Merge(interrupted, conflicting, other); err == nil ||
		!strings.Contains(err.Error(), "appears in both") {
		t.Errorf("conflicting duplicate accepted: %v", err)
	}
	// And two COMPLETE reports never dedupe, identical rows or not.
	if _, err := Merge(rerun, rerun, other); err == nil ||
		!strings.Contains(err.Error(), "appears in both") {
		t.Errorf("identical complete duplicates accepted: %v", err)
	}
}

// TestParseReportMigratesLegacyAttackRows: a report written before rows
// carried an "attack" stamp (single-type attack spec, rows keyed attack="")
// must load, adopt the spec's type, and pass Complete — not be rejected as
// outside the matrix.
func TestParseReportMigratesLegacyAttackRows(t *testing.T) {
	legacy := []byte(`{
  "name": "legacy",
  "spec": {
    "name": "legacy",
    "dataset": "mnist",
    "scale": "tiny",
    "rounds": 2,
    "attack": {"type": "backdoor", "client": 0, "fraction": 0.3, "target_label": 0},
    "strategies": ["goldfish"],
    "seeds": [1]
  },
  "cells": [
    {"strategy": "goldfish", "seed": 1, "shards": 1, "rounds": 2, "removed_rows": 0, "accuracy": 0.5}
  ]
}`)
	r, err := ParseReport(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cells[0].Attack; got != "backdoor" {
		t.Errorf("legacy row migrated to attack %q, want backdoor", got)
	}
	if err := r.Complete(); err != nil {
		t.Errorf("migrated legacy report failed Complete: %v", err)
	}
}

func TestParseReportRejectsDuplicateAndForeignRows(t *testing.T) {
	spec := shardSpec()
	rep := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 2})
	dup := *rep
	dup.Cells = append(append([]CellResult{}, rep.Cells...), rep.Cells[0])
	b, err := dup.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReport(b); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicated row accepted: %v", err)
	}
	foreign := *rep
	foreign.Cells = append([]CellResult{}, rep.Cells...)
	foreign.Cells[0].Seed = 99
	if b, err = foreign.MarshalIndent(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReport(b); err == nil || !strings.Contains(err.Error(), "not in the spec's matrix") {
		t.Errorf("foreign row accepted: %v", err)
	}
}

// TestMergeRejectsIntraInputDuplicates: a cell listed twice inside ONE
// report is corruption, never a resume overlap — even on an incomplete
// input with identical rows.
func TestMergeRejectsIntraInputDuplicates(t *testing.T) {
	spec := shardSpec()
	p1 := shardFakeReport(t, spec, ShardRef{Index: 1, Count: 2})
	p2 := shardFakeReport(t, spec, ShardRef{Index: 2, Count: 2})
	corrupt := *p1
	corrupt.Incomplete = true
	corrupt.Cells = append(append([]CellResult{}, p1.Cells...), p1.Cells[0])
	if _, err := Merge(&corrupt, p2); err == nil || !strings.Contains(err.Error(), "appears twice in merge input") {
		t.Errorf("intra-input duplicate accepted: %v", err)
	}
}
