package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// RetrainReference is the strategy name used as the comparison reference for
// model-similarity metrics: when a spec's strategy axis includes it, every
// other strategy's cell is compared against the retrain cell of the same
// seed and shard count.
const RetrainReference = "retrain"

// Comparison holds model-similarity statistics of a cell's final model
// against the retrain reference of the same seed and shard count (paper
// Tables VII–IX).
type Comparison struct {
	// JSD is the mean per-sample Jensen–Shannon divergence.
	JSD float64 `json:"jsd"`
	// L2 is the mean per-sample Euclidean distance of probability vectors.
	L2 float64 `json:"l2"`
	// T and P are the Welch t-test statistic and p-value over prediction
	// confidences.
	T float64 `json:"t_stat"`
	P float64 `json:"p_value"`
}

// CellResult is one row of the report.
type CellResult struct {
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	// Rounds is the number of federation rounds the cell ran.
	Rounds int `json:"rounds"`
	// RemovedRows counts samples deleted by the schedule; RemovedClients
	// counts client-level departures.
	RemovedRows    int `json:"removed_rows"`
	RemovedClients int `json:"removed_clients,omitempty"`
	// Accuracy is final test accuracy. PreDeletionAccuracy snapshots it just
	// before the first deletion request (nil without a schedule).
	Accuracy            float64  `json:"accuracy"`
	PreDeletionAccuracy *float64 `json:"pre_deletion_accuracy,omitempty"`
	// ASR is the backdoor attack success rate (nil without an attack);
	// PreDeletionASR snapshots it before the first deletion.
	ASR            *float64 `json:"attack_success_rate,omitempty"`
	PreDeletionASR *float64 `json:"pre_deletion_attack_success_rate,omitempty"`
	// MembershipGap is the confidence-based membership signal on the forget
	// set (nil when nothing was deleted).
	MembershipGap *float64 `json:"membership_gap,omitempty"`
	// VsRetrain compares the cell's final model against the retrain
	// reference cell of the same seed and shard count.
	VsRetrain *Comparison `json:"vs_retrain,omitempty"`
	// Error records a failed cell; all metric fields are zero then.
	Error string `json:"error,omitempty"`
}

// Report is the structured outcome of a scenario run. For a fixed Spec the
// report is deterministic — cells are ordered by the matrix expansion and
// carry no wall-clock state — so two runs marshal to identical bytes.
type Report struct {
	Name  string       `json:"name"`
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// CompareFunc compares a cell's final state against the retrain reference
// state of the same seed and shard count, over the cell's probe data.
type CompareFunc func(cell Cell, state, ref []float64) (*Comparison, error)

// Assemble builds the report from executed outcomes: it fills the VsRetrain
// comparison for every non-reference cell whose retrain counterpart
// succeeded (when the strategy axis includes "retrain" and compare is
// non-nil) and returns the cells in matrix order.
func Assemble(spec Spec, outcomes []Outcome, compare CompareFunc) (*Report, error) {
	cells := spec.Cells()
	if len(outcomes) != len(cells) {
		return nil, fmt.Errorf("scenario: %d outcomes for %d cells", len(outcomes), len(cells))
	}
	// Canonicalize execution knobs out of the embedded spec: the worker
	// bound affects scheduling only, and reports must be byte-identical at
	// any parallelism.
	spec.Workers = 0
	hasRef := false
	for _, s := range spec.Strategies {
		if s == RetrainReference {
			hasRef = true
		}
	}
	// Index retrain outcomes by (seed, shards).
	type key struct {
		seed   int64
		shards int
	}
	refs := map[key]int{}
	if hasRef {
		for _, c := range cells {
			if c.Strategy == RetrainReference {
				refs[key{c.Seed, c.Shards}] = c.Index
			}
		}
	}
	rows := make([]CellResult, len(cells))
	for _, c := range cells {
		o := outcomes[c.Index]
		row := o.Result
		// Label the row from the matrix itself; outcomes are positional.
		row.Strategy, row.Seed, row.Shards = c.Strategy, c.Seed, c.Shards
		if hasRef && compare != nil && c.Strategy != RetrainReference && row.Error == "" && o.State != nil {
			if ri, ok := refs[key{c.Seed, c.Shards}]; ok && outcomes[ri].State != nil {
				cmp, err := compare(c, o.State, outcomes[ri].State)
				if err != nil {
					row.Error = fmt.Sprintf("comparing against retrain: %v", err)
				} else {
					row.VsRetrain = cmp
				}
			}
		}
		rows[c.Index] = row
	}
	return &Report{Name: spec.Name, Spec: spec, Cells: rows}, nil
}

// Complete verifies the report covers the spec's full matrix with no failed
// cells, returning a descriptive error otherwise. CI gates on this.
func (r *Report) Complete() error {
	cells := r.Spec.Cells()
	if len(r.Cells) != len(cells) {
		return fmt.Errorf("scenario: report has %d cells, matrix has %d", len(r.Cells), len(cells))
	}
	for i, c := range cells {
		row := r.Cells[i]
		if row.Strategy != c.Strategy || row.Seed != c.Seed || row.Shards != c.Shards {
			return fmt.Errorf("scenario: cell %d is %s/seed %d/τ=%d, want %s/seed %d/τ=%d",
				i, row.Strategy, row.Seed, row.Shards, c.Strategy, c.Seed, c.Shards)
		}
		if row.Error != "" {
			return fmt.Errorf("scenario: cell %s/seed %d/τ=%d failed: %s",
				row.Strategy, row.Seed, row.Shards, row.Error)
		}
	}
	return nil
}

// MarshalIndent renders the report as deterministic, indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the report to path.
func (r *Report) WriteJSON(path string) error {
	b, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// RenderText writes a human-readable summary table of the matrix.
func (r *Report) RenderText(w io.Writer) {
	fmt.Fprintf(w, "=== scenario %s — %s (%d cells) ===\n", r.Name, r.Spec.Dataset, len(r.Cells))
	cols := []string{"strategy", "seed", "tau", "rounds", "removed", "acc", "asr", "memgap", "jsd-vs-retrain", "error"}
	rows := make([][]string, 0, len(r.Cells))
	opt := func(v *float64) string {
		if v == nil {
			return "-"
		}
		return fmt.Sprintf("%.4f", *v)
	}
	for _, c := range r.Cells {
		removed := fmt.Sprintf("%d", c.RemovedRows)
		if c.RemovedClients > 0 {
			removed += fmt.Sprintf("+%dcl", c.RemovedClients)
		}
		jsd := "-"
		if c.VsRetrain != nil {
			jsd = fmt.Sprintf("%.4f", c.VsRetrain.JSD)
		}
		rows = append(rows, []string{
			c.Strategy,
			fmt.Sprintf("%d", c.Seed),
			fmt.Sprintf("%d", c.Shards),
			fmt.Sprintf("%d", c.Rounds),
			removed,
			fmt.Sprintf("%.4f", c.Accuracy),
			opt(c.ASR),
			opt(c.MembershipGap),
			jsd,
			c.Error,
		})
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
