package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// renderTable writes an aligned left-padded text table with a separator
// under the header row.
func renderTable(w io.Writer, cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// RetrainReference is the strategy name used as the comparison reference for
// model-similarity metrics: when a spec's strategy axis includes it, every
// other strategy's cell is compared against the retrain cell of the same
// seed, shard count and attack type.
const RetrainReference = "retrain"

// Comparison holds model-similarity statistics of a cell's final model
// against the retrain reference of the same seed and shard count (paper
// Tables VII–IX).
type Comparison struct {
	// JSD is the mean per-sample Jensen–Shannon divergence.
	JSD float64 `json:"jsd"`
	// L2 is the mean per-sample Euclidean distance of probability vectors.
	L2 float64 `json:"l2"`
	// T and P are the Welch t-test statistic and p-value over prediction
	// confidences.
	T float64 `json:"t_stat"`
	P float64 `json:"p_value"`
}

// CellResult is one row of the report.
type CellResult struct {
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	// Attack is the cell's attack-probe type (omitted without an attack).
	Attack string `json:"attack,omitempty"`
	// Rounds is the number of federation rounds the cell ran.
	Rounds int `json:"rounds"`
	// RemovedRows counts samples deleted by the schedule; RemovedClients
	// counts client-level departures.
	RemovedRows    int `json:"removed_rows"`
	RemovedClients int `json:"removed_clients,omitempty"`
	// Accuracy is final test accuracy. PreDeletionAccuracy snapshots it just
	// before the first deletion request (nil without a schedule).
	Accuracy            float64  `json:"accuracy"`
	PreDeletionAccuracy *float64 `json:"pre_deletion_accuracy,omitempty"`
	// ASR is the cell's attack success rate, measured by its attack type's
	// own probe (nil without an attack); PreDeletionASR snapshots it before
	// the first deletion.
	ASR            *float64 `json:"attack_success_rate,omitempty"`
	PreDeletionASR *float64 `json:"pre_deletion_attack_success_rate,omitempty"`
	// MembershipGap is the confidence-based membership signal on the forget
	// set (nil when nothing was deleted).
	MembershipGap *float64 `json:"membership_gap,omitempty"`
	// VsRetrain compares the cell's final model against the retrain
	// reference cell of the same seed, shard count and attack type.
	VsRetrain *Comparison `json:"vs_retrain,omitempty"`
	// Error records a failed cell; all metric fields are zero then.
	Error string `json:"error,omitempty"`
}

// Report is the structured outcome of a scenario run. For a fixed Spec the
// report is deterministic — cells are ordered by the matrix expansion and
// carry no wall-clock state — so two runs marshal to identical bytes. A
// report may cover only part of the matrix: one machine shard (Shard "i/n")
// and/or the completed prefix of an interrupted run (Incomplete). Both
// markers are empty on full reports and on merged reports, which keeps a
// Merge of shard partials byte-identical to a single-machine run.
type Report struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`
	// Shard is "i/n" when the report holds one machine shard of the matrix
	// (Spec.ShardCells), empty for whole-matrix and merged reports.
	Shard string `json:"shard,omitempty"`
	// Incomplete marks an interrupted run: the report holds only the cells
	// that finished deterministically before cancellation.
	Incomplete bool         `json:"incomplete,omitempty"`
	Cells      []CellResult `json:"cells"`
}

// CompareFunc compares a cell's final state against the retrain reference
// state of the same seed, shard count and attack type, over the cell's probe
// data.
type CompareFunc func(cell Cell, state, ref []float64) (*Comparison, error)

// Assemble builds the report from executed outcomes: it fills the VsRetrain
// comparison for every non-reference cell whose retrain counterpart
// succeeded (when the strategy axis includes "retrain" and compare is
// non-nil) and returns the cells in matrix order.
func Assemble(spec Spec, outcomes []Outcome, compare CompareFunc) (*Report, error) {
	return AssembleCells(spec, ShardRef{}, spec.Cells(), outcomes, compare)
}

// AssembleCells builds a (possibly partial) report from the executed subset
// of the matrix: cells is the subset that ran (typically Spec.ShardCells for
// shard runs, Spec.Cells for whole-matrix runs) and outcomes[i] is the
// outcome of cells[i].
//
// Canceled outcomes — cells an interrupted run never finished — are dropped
// from the report and mark it Incomplete, so every row a partial report does
// carry is exactly the row a completed run would carry; a non-reference cell
// whose retrain counterpart was canceled is likewise dropped, since its
// VsRetrain comparison cannot be computed the way a completed run would.
// That invariant is what lets Merge recombine partials into a report
// byte-identical to a single-machine run.
func AssembleCells(spec Spec, shard ShardRef, cells []Cell, outcomes []Outcome, compare CompareFunc) (*Report, error) {
	if len(outcomes) != len(cells) {
		return nil, fmt.Errorf("scenario: %d outcomes for %d cells", len(outcomes), len(cells))
	}
	if !shard.IsZero() {
		if err := shard.Validate(); err != nil {
			return nil, err
		}
	}
	// Canonicalize execution knobs out of the embedded spec: the worker
	// bound affects scheduling only, and reports must be byte-identical at
	// any parallelism.
	spec.Workers = 0
	hasRef := false
	for _, s := range spec.Strategies {
		if s == RetrainReference {
			hasRef = true
		}
	}
	// Index retrain outcomes by (seed, shards, attack), positions within the
	// subset: cells of different attack types train on differently poisoned
	// data, so each attack plane carries its own retrain reference.
	type key struct {
		seed   int64
		shards int
		attack string
	}
	refs := map[key]int{}
	if hasRef {
		for i, c := range cells {
			if c.Strategy == RetrainReference {
				refs[key{c.Seed, c.Shards, c.Attack}] = i
			}
		}
	}
	rows := make([]CellResult, 0, len(cells))
	incomplete := false
	for i, c := range cells {
		o := outcomes[i]
		if o.Canceled {
			incomplete = true
			continue
		}
		row := o.Result
		// Label the row from the matrix itself; outcomes are positional.
		row.Strategy, row.Seed, row.Shards, row.Attack = c.Strategy, c.Seed, c.Shards, c.Attack
		if hasRef && compare != nil && c.Strategy != RetrainReference && row.Error == "" && o.State != nil {
			if ri, ok := refs[key{c.Seed, c.Shards, c.Attack}]; ok {
				if outcomes[ri].Canceled {
					// The reference never finished; a completed run would
					// have compared against it, so this row is unusable.
					incomplete = true
					continue
				}
				if outcomes[ri].State != nil {
					cmp, err := compare(c, o.State, outcomes[ri].State)
					if err != nil {
						row.Error = fmt.Sprintf("comparing against retrain: %v", err)
					} else {
						row.VsRetrain = cmp
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return &Report{Name: spec.Name, Spec: spec, Shard: shard.String(), Incomplete: incomplete, Cells: rows}, nil
}

// ExpectedCells returns the matrix subset the report claims to cover: the
// full matrix, or the report's machine shard when Shard is set.
func (r *Report) ExpectedCells() ([]Cell, error) {
	if r.Shard == "" {
		return r.Spec.Cells(), nil
	}
	ref, err := ParseShardRef(r.Shard)
	if err != nil {
		return nil, err
	}
	return r.Spec.ShardCells(ref)
}

// Complete verifies the report covers its expected matrix subset (the full
// matrix, or its machine shard) with no failed cells, returning a
// descriptive error otherwise. CI gates on this.
func (r *Report) Complete() error {
	if r.Incomplete {
		return fmt.Errorf("scenario: report is marked incomplete (interrupted run)")
	}
	cells, err := r.ExpectedCells()
	if err != nil {
		return err
	}
	if len(r.Cells) != len(cells) {
		return fmt.Errorf("scenario: report has %d cells, matrix has %d", len(r.Cells), len(cells))
	}
	for i, c := range cells {
		row := r.Cells[i]
		if row.Strategy != c.Strategy || row.Seed != c.Seed || row.Shards != c.Shards || row.Attack != c.Attack {
			return fmt.Errorf("scenario: cell %d is %s, want %s",
				i, cellKey{row.Strategy, row.Seed, row.Shards, row.Attack},
				cellKey{c.Strategy, c.Seed, c.Shards, c.Attack})
		}
		if row.Error != "" {
			return fmt.Errorf("scenario: cell %s failed: %s",
				cellKey{row.Strategy, row.Seed, row.Shards, row.Attack}, row.Error)
		}
	}
	return nil
}

// MarshalIndent renders the report as deterministic, indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the report to path.
func (r *Report) WriteJSON(path string) error {
	b, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// ParseReport decodes a report (full or partial) from JSON, rejecting
// unknown fields and validating the embedded spec, the shard reference and
// the rows — every row must name a distinct cell of the spec's matrix — so
// a corrupted or hand-edited report fails loudly before it can skew a Merge
// or a Diff's t-test samples.
func ParseReport(b []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("scenario: parsing report: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the report object")
	}
	if err := r.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: report spec: %w", err)
	}
	if r.Shard != "" {
		if _, err := ParseShardRef(r.Shard); err != nil {
			return nil, err
		}
	}
	// Reports written before rows carried an attack stamp key as attack=""
	// while the matrix keys by the spec's attack type. With a single-type
	// attack the migration is unambiguous (multi-type specs postdate the
	// stamp), so adopt the spec's type instead of rejecting every legacy
	// baseline with a misleading matrix-membership error.
	if att := r.Spec.AttackList(); len(att) == 1 && att[0] != "" {
		for i := range r.Cells {
			if r.Cells[i].Attack == "" {
				r.Cells[i].Attack = att[0]
			}
		}
	}
	matrix := map[cellKey]bool{}
	for _, c := range r.Spec.Cells() {
		matrix[cellKey{c.Strategy, c.Seed, c.Shards, c.Attack}] = true
	}
	seen := map[cellKey]bool{}
	for _, row := range r.Cells {
		k := cellKey{row.Strategy, row.Seed, row.Shards, row.Attack}
		if !matrix[k] {
			return nil, fmt.Errorf("scenario: report cell %s is not in the spec's matrix", k)
		}
		if seen[k] {
			return nil, fmt.Errorf("scenario: report cell %s appears twice", k)
		}
		seen[k] = true
	}
	return &r, nil
}

// LoadReport reads and parses a report file written by WriteJSON.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	r, err := ParseReport(b)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return r, nil
}

// RenderText writes a human-readable summary table of the matrix.
func (r *Report) RenderText(w io.Writer) {
	note := ""
	if r.Shard != "" {
		note = fmt.Sprintf(", shard %s", r.Shard)
	}
	if r.Incomplete {
		note += ", INCOMPLETE"
	}
	fmt.Fprintf(w, "=== scenario %s — %s (%d cells%s) ===\n", r.Name, r.Spec.Dataset, len(r.Cells), note)
	cols := []string{"strategy", "seed", "tau", "attack", "rounds", "removed", "acc", "asr", "memgap", "jsd-vs-retrain", "error"}
	rows := make([][]string, 0, len(r.Cells))
	opt := func(v *float64) string {
		if v == nil {
			return "-"
		}
		return fmt.Sprintf("%.4f", *v)
	}
	for _, c := range r.Cells {
		removed := fmt.Sprintf("%d", c.RemovedRows)
		if c.RemovedClients > 0 {
			removed += fmt.Sprintf("+%dcl", c.RemovedClients)
		}
		jsd := "-"
		if c.VsRetrain != nil {
			jsd = fmt.Sprintf("%.4f", c.VsRetrain.JSD)
		}
		atk := c.Attack
		if atk == "" {
			atk = "-"
		}
		rows = append(rows, []string{
			c.Strategy,
			fmt.Sprintf("%d", c.Seed),
			fmt.Sprintf("%d", c.Shards),
			atk,
			fmt.Sprintf("%d", c.Rounds),
			removed,
			fmt.Sprintf("%.4f", c.Accuracy),
			opt(c.ASR),
			opt(c.MembershipGap),
			jsd,
			c.Error,
		})
	}
	renderTable(w, cols, rows)
}
