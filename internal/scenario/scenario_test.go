package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Name:       "t",
		Dataset:    "mnist",
		Scale:      "tiny",
		Rounds:     4,
		Strategies: []string{"goldfish", "retrain"},
		Seeds:      []int64{1, 2},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no dataset", func(s *Spec) { s.Dataset = "" }},
		{"bad scale", func(s *Spec) { s.Scale = "huge" }},
		{"no strategies", func(s *Spec) { s.Strategies = nil }},
		{"empty strategy", func(s *Spec) { s.Strategies = []string{""} }},
		{"dup strategy", func(s *Spec) { s.Strategies = []string{"goldfish", "goldfish"} }},
		{"seed zero", func(s *Spec) { s.Seeds = []int64{0} }},
		{"dup seed", func(s *Spec) { s.Seeds = []int64{3, 3} }},
		{"seeds and reps", func(s *Spec) { s.Repetitions = 2 }},
		{"neg reps", func(s *Spec) { s.Seeds = nil; s.Repetitions = -1 }},
		{"huge reps", func(s *Spec) { s.Seeds = nil; s.Repetitions = 1 << 62 }},
		{"huge matrix", func(s *Spec) { s.Seeds = nil; s.Repetitions = MaxCells }},
		{"zero shard", func(s *Spec) { s.Shards = []int{0} }},
		{"dup shard", func(s *Spec) { s.Shards = []int{2, 2} }},
		{"neg clients", func(s *Spec) { s.Clients = -1 }},
		{"neg rounds", func(s *Spec) { s.Rounds = -1 }},
		{"neg workers", func(s *Spec) { s.Workers = -1 }},
		{"bad partitioner", func(s *Spec) { s.Partition = &PartitionSpec{Type: "sorted"} }},
		{"het skew", func(s *Spec) { s.Partition = &PartitionSpec{Type: PartitionHeterogeneous, Skew: 2} }},
		{"dirichlet alpha", func(s *Spec) { s.Partition = &PartitionSpec{Type: PartitionDirichlet} }},
		{"bad attack type", func(s *Spec) { s.Attack = &AttackSpec{Type: "gradient-inversion", Fraction: 0.1} }},
		{"no attack type", func(s *Spec) { s.Attack = &AttackSpec{Fraction: 0.1} }},
		{"type and types", func(s *Spec) {
			s.Attack = &AttackSpec{Type: "backdoor", Types: []string{"label-flip"}, Fraction: 0.1}
		}},
		{"dup attack type", func(s *Spec) {
			s.Attack = &AttackSpec{Types: []string{"backdoor", "backdoor"}, Fraction: 0.1}
		}},
		{"bad type in types", func(s *Spec) {
			s.Attack = &AttackSpec{Types: []string{"backdoor", "gradient-inversion"}, Fraction: 0.1}
		}},
		{"attack fraction", func(s *Spec) { s.Attack = &AttackSpec{Type: "backdoor", Fraction: 0} }},
		{"neg attack client", func(s *Spec) { s.Attack = &AttackSpec{Type: "backdoor", Fraction: 0.1, Client: -1} }},
		{"neg attack patch", func(s *Spec) { s.Attack = &AttackSpec{Type: "backdoor", Fraction: 0.1, PatchSize: -1} }},
		{"targeted source equals target", func(s *Spec) {
			s.Attack = &AttackSpec{Type: "targeted-class", Fraction: 0.1, TargetLabel: 1, SourceClass: 1}
		}},
		{"targeted bad strength", func(s *Spec) {
			s.Attack = &AttackSpec{Type: "targeted-class", Fraction: 0.1, SourceClass: 1, Strength: 2}
		}},
		{"schedule neg round", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: -1, Type: DeleteSample, Rows: []int{0}}}
		}},
		{"schedule beyond budget", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: 9, Type: DeleteSample, Rows: []int{0}}}
		}},
		{"schedule bad type", func(s *Spec) { s.Schedule = []DeletionSpec{{Round: 1, Type: "tensor"}} }},
		{"sample no rows", func(s *Spec) { s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample}} }},
		{"sample neg row", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample, Rows: []int{-1}}}
		}},
		{"sample bad target", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample, Target: "everything"}}
		}},
		{"poisoned without attack", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample, Target: TargetPoisoned}}
		}},
		{"poisoned wrong client", func(s *Spec) {
			s.Attack = &AttackSpec{Type: "backdoor", Client: 0, Fraction: 0.1}
			s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample, Client: 1, Target: TargetPoisoned}}
		}},
		{"random bad fraction", func(s *Spec) {
			s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteSample, Target: TargetRandom, Fraction: 1.5}}
		}},
		{"class negative", func(s *Spec) { s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteClass, Class: -1}} }},
		{"client negative", func(s *Spec) { s.Schedule = []DeletionSpec{{Round: 1, Type: DeleteClient, Client: -1}} }},
		{"unsorted schedule", func(s *Spec) {
			s.Schedule = []DeletionSpec{
				{Round: 3, Type: DeleteClass, Class: 1},
				{Round: 1, Type: DeleteClass, Class: 2},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("%s: invalid spec accepted", tc.name)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"dataset":"mnist","strategies":["goldfish"],"sheds":[1]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"dataset":"mnist"`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	s, err := Parse([]byte(`{"dataset":"mnist","strategies":["goldfish"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SeedList(); len(got) != 1 || got[0] != 1 {
		t.Errorf("default SeedList = %v, want [1]", got)
	}
	if got := s.ShardList(); len(got) != 1 || got[0] != 1 {
		t.Errorf("default ShardList = %v, want [1]", got)
	}
}

func TestSeedListRepetitions(t *testing.T) {
	s := Spec{Repetitions: 3}
	if got := s.SeedList(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SeedList = %v, want [1 2 3]", got)
	}
}

func TestCellsOrderAndIndex(t *testing.T) {
	s := validSpec()
	s.Shards = []int{1, 4}
	cells := s.Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("len(cells) = %d, want 8", len(cells))
	}
	want := []Cell{
		{"goldfish", 1, 1, "", 0}, {"goldfish", 1, 4, "", 1}, {"goldfish", 2, 1, "", 2}, {"goldfish", 2, 4, "", 3},
		{"retrain", 1, 1, "", 4}, {"retrain", 1, 4, "", 5}, {"retrain", 2, 1, "", 6}, {"retrain", 2, 4, "", 7},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Errorf("cells[%d] = %+v, want %+v", i, c, want[i])
		}
	}
}

// TestCellsAttackAxis: listing several attack types multiplies the matrix by
// an attack dimension, attack-minor, and every cell is stamped with its type.
func TestCellsAttackAxis(t *testing.T) {
	s := validSpec()
	s.Attack = &AttackSpec{Types: []string{"backdoor", "label-flip"}, Fraction: 0.2, TargetLabel: 0}
	cells := s.Cells()
	if len(cells) != 2*2*1*2 {
		t.Fatalf("len(cells) = %d, want 8", len(cells))
	}
	want := []Cell{
		{"goldfish", 1, 1, "backdoor", 0}, {"goldfish", 1, 1, "label-flip", 1},
		{"goldfish", 2, 1, "backdoor", 2}, {"goldfish", 2, 1, "label-flip", 3},
		{"retrain", 1, 1, "backdoor", 4}, {"retrain", 1, 1, "label-flip", 5},
		{"retrain", 2, 1, "backdoor", 6}, {"retrain", 2, 1, "label-flip", 7},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Errorf("cells[%d] = %+v, want %+v", i, c, want[i])
		}
	}
	// A single-type attack stamps every cell with that type.
	s.Attack = &AttackSpec{Type: "backdoor", Fraction: 0.2, TargetLabel: 0}
	for _, c := range s.Cells() {
		if c.Attack != "backdoor" {
			t.Fatalf("cell %+v missing its attack stamp", c)
		}
	}
}

func TestExecuteRunsAllCellsBounded(t *testing.T) {
	s := validSpec()
	s.Workers = 2
	var inFlight, peak int32
	outcomes, err := Execute(context.Background(), s, func(ctx context.Context, c Cell) (Outcome, error) {
		cur := atomic.AddInt32(&inFlight, 1)
		defer atomic.AddInt32(&inFlight, -1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		var o Outcome
		o.Result.Accuracy = float64(c.Seed)
		o.State = []float64{1}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 4 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for i, c := range s.Cells() {
		r := outcomes[i].Result
		if r.Strategy != c.Strategy || r.Seed != c.Seed || r.Shards != c.Shards {
			t.Errorf("outcome %d labelled %s/%d/%d, want %s/%d/%d",
				i, r.Strategy, r.Seed, r.Shards, c.Strategy, c.Seed, c.Shards)
		}
		if r.Accuracy != float64(c.Seed) {
			t.Errorf("outcome %d accuracy %g, want %g", i, r.Accuracy, float64(c.Seed))
		}
	}
	if peak > 2 {
		t.Errorf("worker pool peaked at %d concurrent cells, bound is 2", peak)
	}
}

func TestExecuteRecordsCellErrors(t *testing.T) {
	s := validSpec()
	outcomes, err := Execute(context.Background(), s, func(ctx context.Context, c Cell) (Outcome, error) {
		if c.Strategy == "retrain" {
			var o Outcome
			o.State = []float64{1} // must be dropped on error
			return o, errors.New("boom")
		}
		return Outcome{State: []float64{2}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range s.Cells() {
		o := outcomes[i]
		if c.Strategy == "retrain" {
			if o.Result.Error != "boom" {
				t.Errorf("cell %d error = %q, want boom", i, o.Result.Error)
			}
			if o.State != nil {
				t.Errorf("cell %d kept state despite error", i)
			}
		} else if o.Result.Error != "" {
			t.Errorf("cell %d unexpected error %q", i, o.Result.Error)
		}
	}
	rep, err := Assemble(s, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Complete() = %v, want the failed cell surfaced", err)
	}
}

func TestExecuteHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := validSpec()
	if _, err := Execute(ctx, s, func(ctx context.Context, c Cell) (Outcome, error) {
		return Outcome{}, nil
	}); err == nil {
		t.Error("cancelled Execute returned nil error")
	}
}

func TestAssembleComparesAgainstRetrain(t *testing.T) {
	s := validSpec() // strategies: goldfish, retrain; seeds 1,2
	cells := s.Cells()
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		outcomes[i] = Outcome{State: []float64{float64(c.Seed)}}
	}
	var mu sync.Mutex
	compared := map[string]bool{}
	rep, err := Assemble(s, outcomes, func(cell Cell, state, ref []float64) (*Comparison, error) {
		if state[0] != ref[0] {
			return nil, fmt.Errorf("seed mismatch: state %g vs ref %g", state[0], ref[0])
		}
		mu.Lock()
		compared[fmt.Sprintf("%s/%d", cell.Strategy, cell.Seed)] = true
		mu.Unlock()
		return &Comparison{JSD: 0.5}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		row := rep.Cells[i]
		if c.Strategy == RetrainReference {
			if row.VsRetrain != nil {
				t.Errorf("retrain cell %d compared against itself", i)
			}
		} else if row.VsRetrain == nil || row.VsRetrain.JSD != 0.5 {
			t.Errorf("cell %d missing comparison: %+v", i, row.VsRetrain)
		}
	}
	if len(compared) != 2 {
		t.Errorf("compared cells: %v, want both goldfish seeds", compared)
	}
	// Without a retrain strategy on the axis, no comparisons happen.
	s2 := validSpec()
	s2.Strategies = []string{"goldfish", "fisher"}
	outcomes2 := make([]Outcome, len(s2.Cells()))
	for i := range outcomes2 {
		outcomes2[i] = Outcome{State: []float64{1}}
	}
	rep2, err := Assemble(s2, outcomes2, func(Cell, []float64, []float64) (*Comparison, error) {
		t.Error("compare called without a retrain reference")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rep2.Cells {
		if row.VsRetrain != nil {
			t.Errorf("cell %d compared without reference", i)
		}
	}
}

func TestCompleteDetectsMissingCells(t *testing.T) {
	s := validSpec()
	rep := &Report{Name: s.Name, Spec: s, Cells: nil}
	if err := rep.Complete(); err == nil {
		t.Error("empty report passed Complete")
	}
	outcomes := make([]Outcome, len(s.Cells()))
	full, err := Assemble(s, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Complete(); err != nil {
		t.Fatal(err)
	}
	// A swapped row is a mislabelled matrix, not a complete one.
	full.Cells[0], full.Cells[1] = full.Cells[1], full.Cells[0]
	if err := full.Complete(); err == nil {
		t.Error("mislabelled report passed Complete")
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	s := validSpec()
	outcomes := make([]Outcome, len(s.Cells()))
	for i := range outcomes {
		asr := 0.25
		outcomes[i].Result.Accuracy = 0.5
		outcomes[i].Result.ASR = &asr
	}
	rep, err := Assemble(s, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("report marshalling is not deterministic")
	}
	var sb strings.Builder
	rep.RenderText(&sb)
	if !strings.Contains(sb.String(), "goldfish") || !strings.Contains(sb.String(), "retrain") {
		t.Errorf("RenderText missing strategies:\n%s", sb.String())
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"dataset":"mnist","strategies":["goldfish"]}{"dataset":"x"}`)); err == nil {
		t.Error("concatenated spec objects accepted")
	}
	if _, err := Parse([]byte(`{"dataset":"mnist","strategies":["goldfish"]} junk`)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := Parse([]byte("{\"dataset\":\"mnist\",\"strategies\":[\"goldfish\"]}\n\n")); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

func TestAssembleCanonicalizesWorkers(t *testing.T) {
	s := validSpec()
	outcomes := make([]Outcome, len(s.Cells()))
	s.Workers = 2
	a, err := Assemble(s, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 8
	b, err := Assemble(s, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("reports differ across worker bounds; the execution knob leaked into the report")
	}
	if a.Spec.Workers != 0 {
		t.Errorf("embedded spec kept Workers=%d", a.Spec.Workers)
	}
}

// TestExecuteFixedWorkerPool pins the satellite fix: Execute must run a
// fixed pool of `workers` goroutines pulling cells from a channel, not spawn
// one goroutine per cell up front — a 10k-cell sharded matrix must not park
// 10k goroutines on the semaphore.
func TestExecuteFixedWorkerPool(t *testing.T) {
	s := Spec{
		Name:        "pool",
		Dataset:     "mnist",
		Scale:       "tiny",
		Rounds:      1,
		Strategies:  []string{"a", "b"},
		Repetitions: 500, // 1000 cells
		Workers:     3,
	}
	before := runtime.NumGoroutine()
	var peak int32
	outcomes, err := Execute(context.Background(), s, func(ctx context.Context, c Cell) (Outcome, error) {
		g := int32(runtime.NumGoroutine())
		for {
			p := atomic.LoadInt32(&peak)
			if g <= p || atomic.CompareAndSwapInt32(&peak, p, g) {
				break
			}
		}
		return Outcome{State: []float64{1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1000 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	// Pool of 3 plus the feeder and test goroutines; anywhere near 1000
	// means per-cell goroutines are back.
	if int(peak) > before+20 {
		t.Errorf("observed %d goroutines during a 1000-cell matrix with 3 workers (baseline %d)", peak, before)
	}
}

// TestExecuteCellsSubsetAndCancellation: a mid-matrix cancellation marks the
// unrun cells Canceled, and AssembleCells drops them into an Incomplete
// partial whose surviving rows match a completed run's rows exactly.
func TestExecuteCellsSubsetAndCancellation(t *testing.T) {
	s := validSpec() // goldfish+retrain × seeds 1,2
	s.Workers = 1    // deterministic: cells run one at a time, in order
	cells := s.Cells()
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	outcomes, err := ExecuteCells(ctx, s, cells, func(ctx context.Context, c Cell) (Outcome, error) {
		if atomic.AddInt32(&ran, 1) == 2 {
			cancel() // interrupt after the second cell completes
		}
		var o Outcome
		o.Result.Accuracy = float64(c.Index)
		o.State = []float64{1}
		return o, nil
	})
	if err == nil {
		t.Fatal("cancelled ExecuteCells returned nil error")
	}
	var canceled int
	for _, o := range outcomes {
		if o.Canceled {
			canceled++
		}
	}
	if canceled == 0 || canceled > 2 {
		t.Fatalf("%d canceled outcomes, want 1-2", canceled)
	}
	rep, err := AssembleCells(s, ShardRef{}, cells, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete {
		t.Error("partial report not marked incomplete")
	}
	if len(rep.Cells) != len(cells)-canceled {
		t.Errorf("partial has %d rows, want %d", len(rep.Cells), len(cells)-canceled)
	}
	for _, row := range rep.Cells {
		if row.Error != "" {
			t.Errorf("finished row %s/seed %d carries error %q", row.Strategy, row.Seed, row.Error)
		}
	}
	if err := rep.Complete(); err == nil {
		t.Error("incomplete partial passed Complete")
	}
}

// TestAssembleCellsDropsOrphanedComparand: a finished non-reference cell
// whose retrain reference was canceled must be dropped too — a completed run
// would have given it a VsRetrain comparison that the partial cannot compute.
func TestAssembleCellsDropsOrphanedComparand(t *testing.T) {
	s := validSpec()
	cells := s.Cells()
	outcomes := make([]Outcome, len(cells))
	for i, c := range cells {
		if c.Strategy == RetrainReference && c.Seed == 2 {
			outcomes[i] = Outcome{Canceled: true}
		} else {
			outcomes[i] = Outcome{State: []float64{1}}
		}
	}
	rep, err := AssembleCells(s, ShardRef{}, cells, outcomes, func(cell Cell, state, ref []float64) (*Comparison, error) {
		return &Comparison{JSD: 0.1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete {
		t.Error("report with a canceled reference not marked incomplete")
	}
	for _, row := range rep.Cells {
		if row.Seed == 2 && row.Strategy != RetrainReference {
			t.Errorf("%s/seed 2 kept despite its canceled retrain reference", row.Strategy)
		}
		if row.Seed == 1 && row.Strategy != RetrainReference && row.VsRetrain == nil {
			t.Errorf("%s/seed 1 missing comparison", row.Strategy)
		}
	}
}

// TestCompleteShardReport: a shard partial is complete when it covers
// exactly its shard's cells.
func TestCompleteShardReport(t *testing.T) {
	s := validSpec()
	ref := ShardRef{Index: 1, Count: 2}
	cells, err := s.ShardCells(ref)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, len(cells))
	rep, err := AssembleCells(s, ref, cells, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Errorf("complete shard partial failed Complete: %v", err)
	}
	rep.Cells = rep.Cells[:len(rep.Cells)-1]
	if err := rep.Complete(); err == nil {
		t.Error("short shard partial passed Complete")
	}
	rep.Shard = "2/0"
	if err := rep.Complete(); err == nil {
		t.Error("bogus shard marker passed Complete")
	}
}

func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport([]byte(`{"name":"x"`)); err == nil {
		t.Error("truncated report accepted")
	}
	if _, err := ParseReport([]byte(`{"name":"x","spec":{"dataset":"mnist","strategies":["g"]},"cells":[],"junk":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseReport([]byte(`{"name":"x","spec":{"dataset":""},"cells":[]}`)); err == nil {
		t.Error("invalid embedded spec accepted")
	}
	if _, err := ParseReport([]byte(`{"name":"x","spec":{"dataset":"mnist","strategies":["g"]},"shard":"9/2","cells":[]}`)); err == nil {
		t.Error("invalid shard marker accepted")
	}
	if _, err := LoadReport("/nonexistent/report.json"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestExecuteCellsLateCancellation: a cancellation that lands only after
// every cell has finished leaves no outcome marked Canceled, so the
// assembled report is NOT Incomplete — it equals an uninterrupted run, and
// RunScenarioShard relies on that to suppress the spurious interrupt.
func TestExecuteCellsLateCancellation(t *testing.T) {
	s := validSpec()
	s.Workers = 1
	cells := s.Cells()
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	outcomes, err := ExecuteCells(ctx, s, cells, func(ctx context.Context, c Cell) (Outcome, error) {
		if int(atomic.AddInt32(&ran, 1)) == len(cells) {
			cancel() // interrupt arrives while the LAST cell is finishing
		}
		return Outcome{State: []float64{1}}, nil
	})
	if err == nil {
		t.Fatal("late-cancelled ExecuteCells returned nil error")
	}
	for i, o := range outcomes {
		if o.Canceled {
			t.Errorf("cell %d marked Canceled despite finishing", i)
		}
	}
	rep, err := AssembleCells(s, ShardRef{}, cells, outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Error("fully-finished run marked incomplete")
	}
	if err := rep.Complete(); err != nil {
		t.Errorf("fully-finished run failed Complete: %v", err)
	}
}
