package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardRef identifies one machine shard of a distributed matrix run: shard
// Index of Count, 1-based, written "i/n" on the command line and in partial
// reports. (This is the distributed-execution shard; the Spec's Shards axis
// is τ, the per-client SISA shard count — an unrelated knob.)
type ShardRef struct {
	Index int
	Count int
}

// ParseShardRef parses an "i/n" shard reference with 1 ≤ i ≤ n.
func ParseShardRef(s string) (ShardRef, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return ShardRef{}, fmt.Errorf("scenario: shard %q is not of the form i/n", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return ShardRef{}, fmt.Errorf("scenario: shard index %q: %w", i, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return ShardRef{}, fmt.Errorf("scenario: shard count %q: %w", n, err)
	}
	r := ShardRef{Index: idx, Count: cnt}
	if err := r.Validate(); err != nil {
		return ShardRef{}, err
	}
	return r, nil
}

// IsZero reports whether the reference is unset (a whole-matrix run).
func (r ShardRef) IsZero() bool { return r == ShardRef{} }

// Validate checks 1 ≤ Index ≤ Count.
func (r ShardRef) Validate() error {
	if r.Count < 1 {
		return fmt.Errorf("scenario: shard count %d must be ≥1", r.Count)
	}
	if r.Index < 1 || r.Index > r.Count {
		return fmt.Errorf("scenario: shard index %d out of [1,%d]", r.Index, r.Count)
	}
	return nil
}

// String renders the reference as "i/n" ("" when unset).
func (r ShardRef) String() string {
	if r.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", r.Index, r.Count)
}

// ShardCells returns the deterministic subset of the spec's matrix assigned
// to the given machine shard, in Cells() order with original matrix indices.
//
// The unit of assignment is the (seed, τ, attack) group — every strategy's
// cell for one seed, SISA shard count and attack probe — handed round-robin
// to shards in seed-major, τ-middle, attack-minor order. Grouping this way
// co-locates each "retrain" reference cell with all the cells that compare
// against it, so VsRetrain stays computable inside a single shard and a
// merged report is byte-identical to an unsharded run. A zero ref selects
// the whole matrix; a shard beyond the group count is valid but empty.
func (s Spec) ShardCells(ref ShardRef) ([]Cell, error) {
	cells := s.Cells()
	if ref.IsZero() {
		return cells, nil
	}
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	shards := s.ShardList()
	attacks := s.AttackList()
	seedPos := make(map[int64]int, len(s.SeedList()))
	for i, seed := range s.SeedList() {
		seedPos[seed] = i
	}
	shardPos := make(map[int]int, len(shards))
	for i, sh := range shards {
		shardPos[sh] = i
	}
	attackPos := make(map[string]int, len(attacks))
	for i, a := range attacks {
		attackPos[a] = i
	}
	var out []Cell
	for _, c := range cells {
		group := (seedPos[c.Seed]*len(shards)+shardPos[c.Shards])*len(attacks) + attackPos[c.Attack]
		if group%ref.Count == ref.Index-1 {
			out = append(out, c)
		}
	}
	return out, nil
}
