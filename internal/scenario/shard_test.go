package scenario

import (
	"fmt"
	"testing"
)

func TestParseShardRef(t *testing.T) {
	good := map[string]ShardRef{
		"1/1":   {1, 1},
		"2/3":   {2, 3},
		"3/3":   {3, 3},
		" 1/2 ": {1, 2}, // tolerated whitespace
	}
	for in, want := range good {
		got, err := ParseShardRef(in)
		if err != nil {
			t.Errorf("ParseShardRef(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseShardRef(%q) = %+v, want %+v", in, got, want)
		}
		if got.String() != fmt.Sprintf("%d/%d", want.Index, want.Count) {
			t.Errorf("String() = %q", got.String())
		}
	}
	for _, in := range []string{"", "1", "0/2", "3/2", "-1/2", "1/0", "a/b", "1/2/3", "1.5/2"} {
		if _, err := ParseShardRef(in); err == nil {
			t.Errorf("ParseShardRef(%q) accepted", in)
		}
	}
	if !(ShardRef{}).IsZero() {
		t.Error("zero ShardRef not IsZero")
	}
	if (ShardRef{}).String() != "" {
		t.Error("zero ShardRef renders non-empty")
	}
}

func shardSpec() Spec {
	return Spec{
		Name:       "shards",
		Dataset:    "mnist",
		Scale:      "tiny",
		Rounds:     4,
		Strategies: []string{"goldfish", "fisher", "retrain"},
		Seeds:      []int64{1, 2, 5},
		Shards:     []int{1, 2},
	}
}

// TestShardCellsPartition is the core sharding property: for any shard
// count, the shards partition the matrix — every cell lands in exactly one
// shard, with its original matrix index, in matrix order.
func TestShardCellsPartition(t *testing.T) {
	spec := shardSpec()
	all := spec.Cells()
	for n := 1; n <= 9; n++ { // 6 groups, so n > 6 leaves empty shards
		seen := make([]int, len(all))
		for i := 1; i <= n; i++ {
			cells, err := spec.ShardCells(ShardRef{Index: i, Count: n})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			last := -1
			for _, c := range cells {
				if c != all[c.Index] {
					t.Errorf("shard %d/%d carries cell %+v, matrix has %+v", i, n, c, all[c.Index])
				}
				if c.Index <= last {
					t.Errorf("shard %d/%d not in matrix order", i, n)
				}
				last = c.Index
				seen[c.Index]++
			}
		}
		for idx, count := range seen {
			if count != 1 {
				t.Errorf("n=%d: cell %d assigned to %d shards", n, idx, count)
			}
		}
	}
}

// TestShardCellsColocatesRetrain checks the constraint that makes VsRetrain
// computable per shard: every shard containing a non-reference cell also
// contains the retrain cell of the same (seed, τ).
func TestShardCellsColocatesRetrain(t *testing.T) {
	spec := shardSpec()
	for n := 1; n <= 7; n++ {
		for i := 1; i <= n; i++ {
			cells, err := spec.ShardCells(ShardRef{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			type key struct {
				seed   int64
				shards int
			}
			refs := map[key]bool{}
			for _, c := range cells {
				if c.Strategy == RetrainReference {
					refs[key{c.Seed, c.Shards}] = true
				}
			}
			for _, c := range cells {
				if c.Strategy != RetrainReference && !refs[key{c.Seed, c.Shards}] {
					t.Errorf("shard %d/%d has %s/seed %d/τ=%d without its retrain reference",
						i, n, c.Strategy, c.Seed, c.Shards)
				}
			}
		}
	}
}

// TestShardCellsAttackAxis extends both sharding properties to the attack
// dimension: with an attack axis the shards still partition the matrix
// exactly, and every shard keeps the retrain reference of each
// (seed, τ, attack) group co-located with its comparands — references of one
// attack plane must not be used for another, since the planes train on
// differently poisoned data.
func TestShardCellsAttackAxis(t *testing.T) {
	spec := shardSpec()
	spec.Attack = &AttackSpec{
		Types: []string{"backdoor", "label-flip", "targeted-class"}, Fraction: 0.3, TargetLabel: 0, SourceClass: 1,
	}
	all := spec.Cells()
	if len(all) != 3*3*2*3 {
		t.Fatalf("matrix has %d cells, want 54", len(all))
	}
	for n := 1; n <= 8; n++ {
		seen := make([]int, len(all))
		for i := 1; i <= n; i++ {
			cells, err := spec.ShardCells(ShardRef{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			type key struct {
				seed   int64
				shards int
				attack string
			}
			refs := map[key]bool{}
			for _, c := range cells {
				if c != all[c.Index] {
					t.Errorf("shard %d/%d carries cell %+v, matrix has %+v", i, n, c, all[c.Index])
				}
				seen[c.Index]++
				if c.Strategy == RetrainReference {
					refs[key{c.Seed, c.Shards, c.Attack}] = true
				}
			}
			for _, c := range cells {
				if c.Strategy != RetrainReference && !refs[key{c.Seed, c.Shards, c.Attack}] {
					t.Errorf("shard %d/%d has %s/seed %d/τ=%d/%s without its retrain reference",
						i, n, c.Strategy, c.Seed, c.Shards, c.Attack)
				}
			}
		}
		for idx, count := range seen {
			if count != 1 {
				t.Errorf("n=%d: cell %d assigned to %d shards", n, idx, count)
			}
		}
	}
}

func TestShardCellsZeroRefAndValidation(t *testing.T) {
	spec := shardSpec()
	cells, err := spec.ShardCells(ShardRef{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(spec.Cells()) {
		t.Errorf("zero ref selected %d of %d cells", len(cells), len(spec.Cells()))
	}
	if _, err := spec.ShardCells(ShardRef{Index: 3, Count: 2}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := spec.ShardCells(ShardRef{Index: 0, Count: 2}); err == nil {
		t.Error("zero shard index accepted")
	}
	// More shards than groups: valid, just empty.
	cells, err = spec.ShardCells(ShardRef{Index: 7, Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Errorf("shard beyond the group count got %d cells", len(cells))
	}
}

func TestShardCellsDeterministic(t *testing.T) {
	spec := shardSpec()
	a, err := spec.ShardCells(ShardRef{Index: 2, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.ShardCells(ShardRef{Index: 2, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
