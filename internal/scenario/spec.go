// Package scenario turns unlearning experiments into data: a declarative
// JSON Spec describes the dataset, client partitioning, optional attack
// injection (one or several attack-probe styles from internal/attack), a
// deletion schedule (sample-, class- or client-level requests at given
// rounds) and the strategy × seed × shard × attack axes of a run matrix.
// Expanding a Spec yields Cells; Execute runs them concurrently on a bounded
// worker pool via a caller-supplied Runner (the public goldfish.RunScenario
// builds cells on goldfish.New); the assembled Report is deterministic for a
// fixed Spec, so two runs of the same file are byte-identical.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"goldfish/internal/attack"
)

// Partitioner names accepted by PartitionSpec.Type.
const (
	PartitionIID           = "iid"
	PartitionHeterogeneous = "heterogeneous"
	PartitionDirichlet     = "dirichlet"
)

// Deletion request levels accepted by DeletionSpec.Type.
const (
	DeleteSample = "sample"
	DeleteClass  = "class"
	DeleteClient = "client"
)

// Sample-deletion row-selection modes accepted by DeletionSpec.Target.
const (
	TargetRows     = ""         // explicit Rows list
	TargetPoisoned = "poisoned" // the attack's poisoned rows
	TargetRandom   = "random"   // a random Fraction of the remaining rows
)

// PartitionSpec selects how the training data splits across clients.
type PartitionSpec struct {
	// Type is "iid" (default), "heterogeneous" (size + preference skew,
	// paper Fig. 8) or "dirichlet" (per-class Dirichlet label skew).
	Type string `json:"type"`
	// Skew is the heterogeneous partitioner's knob, in (0,1].
	Skew float64 `json:"skew,omitempty"`
	// Alpha is the Dirichlet concentration; smaller is more skewed.
	Alpha float64 `json:"alpha,omitempty"`
}

// AttackSpec injects a poisoning attack into one client's partition — the
// probe verifying that unlearning actually removes the poison's influence.
// Attack types come from the internal/attack registry ("backdoor",
// "label-flip", "targeted-class"); Types makes the attack a first-class
// matrix axis, so one spec sweeps several probe styles over shared knobs.
type AttackSpec struct {
	// Type selects a single attack type (attack registry name).
	Type string `json:"type,omitempty"`
	// Types is the attack matrix axis: every cell of the strategy × seed ×
	// shard matrix is repeated once per listed attack type. Mutually
	// exclusive with Type.
	Types []string `json:"types,omitempty"`
	// Client is the partition index to poison.
	Client int `json:"client"`
	// Fraction of the client's eligible rows to poison, in (0,1].
	Fraction float64 `json:"fraction"`
	// TargetLabel is the class the attack drives predictions towards.
	TargetLabel int `json:"target_label"`
	// PatchSize is the backdoor trigger patch side length (default 3).
	PatchSize int `json:"patch_size,omitempty"`
	// PatchValue is the pixel value of the backdoor patch (default 3).
	PatchValue float64 `json:"patch_value,omitempty"`
	// SourceClass is the class the targeted-class attack perturbs towards
	// the target.
	SourceClass int `json:"source_class,omitempty"`
	// Strength is the targeted-class feature blend in [0,1]; 0 selects the
	// default 0.5.
	Strength float64 `json:"strength,omitempty"`
}

// TypeList resolves the attack-type axis: Types when set, else [Type].
func (a *AttackSpec) TypeList() []string {
	if len(a.Types) > 0 {
		return a.Types
	}
	return []string{a.Type}
}

// Config converts the spec's shared knobs into an attack configuration.
func (a *AttackSpec) Config() attack.Config {
	return attack.Config{
		Fraction:    a.Fraction,
		TargetLabel: a.TargetLabel,
		PatchSize:   a.PatchSize,
		PatchValue:  a.PatchValue,
		SourceClass: a.SourceClass,
		Strength:    a.Strength,
	}
}

// DeletionSpec is one scheduled deletion request.
type DeletionSpec struct {
	// Round is the number of completed rounds after which the request is
	// submitted (0 = before training starts).
	Round int `json:"round"`
	// Type is "sample", "class" or "client".
	Type string `json:"type"`
	// Client is the target client position (sample and client requests).
	Client int `json:"client,omitempty"`
	// Rows are explicit original-dataset row indices (sample requests with
	// an empty Target).
	Rows []int `json:"rows,omitempty"`
	// Target selects rows for sample requests: "" (use Rows), "poisoned"
	// (the attack's poisoned rows) or "random" (a Fraction of the rows
	// remaining on the client).
	Target string `json:"target,omitempty"`
	// Fraction is the share of remaining rows removed by "random", in
	// (0,1].
	Fraction float64 `json:"fraction,omitempty"`
	// Class is the label removed everywhere by class requests.
	Class int `json:"class,omitempty"`
}

// Spec is a declarative unlearning experiment matrix.
type Spec struct {
	// Name identifies the scenario in reports.
	Name string `json:"name"`
	// Dataset is a preset name: "mnist", "fmnist", "cifar10", "cifar100".
	Dataset string `json:"dataset"`
	// Scale is the experiment scale ("tiny", "small", "medium", "paper";
	// default "small").
	Scale string `json:"scale,omitempty"`
	// Arch overrides the preset's dataset→architecture pairing.
	Arch string `json:"arch,omitempty"`
	// Clients overrides the preset's client count.
	Clients int `json:"clients,omitempty"`
	// Rounds is the total round budget (default: the preset's).
	Rounds int `json:"rounds,omitempty"`
	// Partition selects the client partitioner (default IID).
	Partition *PartitionSpec `json:"partition,omitempty"`
	// Attack optionally poisons one client's partition; listing several
	// attack types adds an attack axis to the run matrix.
	Attack *AttackSpec `json:"attack,omitempty"`
	// Schedule lists deletion requests by round.
	Schedule []DeletionSpec `json:"schedule,omitempty"`
	// Strategies is the unlearner axis (registry names).
	Strategies []string `json:"strategies"`
	// Seeds is the repetition axis; empty with Repetitions=N selects seeds
	// 1..N, and both empty selects seed 1.
	Seeds []int64 `json:"seeds,omitempty"`
	// Repetitions generates seeds 1..N when Seeds is empty.
	Repetitions int `json:"repetitions,omitempty"`
	// Shards is the τ axis of local SISA sharding; empty selects [1].
	Shards []int `json:"shards,omitempty"`
	// Workers bounds concurrent cell execution (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Parse decodes and validates a Spec from JSON, rejecting unknown fields so
// typos in experiment files fail loudly.
func Parse(b []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a Spec file.
func Load(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// SeedList resolves the repetition axis: explicit Seeds, else 1..Repetitions,
// else [1].
func (s Spec) SeedList() []int64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	n := s.Repetitions
	if n <= 0 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// ShardList resolves the τ axis (default [1]).
func (s Spec) ShardList() []int {
	if len(s.Shards) > 0 {
		return s.Shards
	}
	return []int{1}
}

// AttackList resolves the attack-type axis: [""] without an attack (the
// matrix has a single, unattacked plane), else the spec's attack types.
func (s Spec) AttackList() []string {
	if s.Attack == nil {
		return []string{""}
	}
	return s.Attack.TypeList()
}

// MaxCells bounds the size of a spec's run matrix. The cap exists so
// Validate can reject absurd axis products (e.g. a huge Repetitions) with an
// error instead of letting Cells/SeedList panic or exhaust memory on
// allocation.
const MaxCells = 1_000_000

// Validate reports spec errors. Errors only the resolved preset can detect
// (client counts vs data size, unknown dataset names) surface at run time.
func (s Spec) Validate() error {
	if s.Dataset == "" {
		return fmt.Errorf("scenario: spec needs a dataset")
	}
	switch s.Scale {
	case "", "tiny", "small", "medium", "paper":
	default:
		return fmt.Errorf("scenario: unknown scale %q", s.Scale)
	}
	if len(s.Strategies) == 0 {
		return fmt.Errorf("scenario: spec needs at least one strategy")
	}
	seenStrat := map[string]bool{}
	for _, st := range s.Strategies {
		if st == "" {
			return fmt.Errorf("scenario: empty strategy name")
		}
		if seenStrat[st] {
			return fmt.Errorf("scenario: duplicate strategy %q", st)
		}
		seenStrat[st] = true
	}
	seenSeed := map[int64]bool{}
	for _, seed := range s.Seeds {
		if seed == 0 {
			return fmt.Errorf("scenario: seed 0 is reserved (selects the default); use explicit seeds")
		}
		if seenSeed[seed] {
			return fmt.Errorf("scenario: duplicate seed %d", seed)
		}
		seenSeed[seed] = true
	}
	if s.Repetitions < 0 {
		return fmt.Errorf("scenario: negative repetitions %d", s.Repetitions)
	}
	if len(s.Seeds) > 0 && s.Repetitions > 0 {
		return fmt.Errorf("scenario: seeds and repetitions are mutually exclusive")
	}
	seenShards := map[int]bool{}
	for _, sh := range s.Shards {
		if sh <= 0 {
			return fmt.Errorf("scenario: shard count %d must be positive", sh)
		}
		if seenShards[sh] {
			return fmt.Errorf("scenario: duplicate shard count %d", sh)
		}
		seenShards[sh] = true
	}
	if s.Clients < 0 {
		return fmt.Errorf("scenario: negative client count %d", s.Clients)
	}
	if s.Rounds < 0 {
		return fmt.Errorf("scenario: negative round budget %d", s.Rounds)
	}
	if s.Workers < 0 {
		return fmt.Errorf("scenario: negative worker count %d", s.Workers)
	}
	if p := s.Partition; p != nil {
		switch p.Type {
		case "", PartitionIID:
		case PartitionHeterogeneous:
			if p.Skew <= 0 || p.Skew > 1 {
				return fmt.Errorf("scenario: heterogeneous skew %g out of (0,1]", p.Skew)
			}
		case PartitionDirichlet:
			if p.Alpha <= 0 {
				return fmt.Errorf("scenario: dirichlet alpha %g must be positive", p.Alpha)
			}
		default:
			return fmt.Errorf("scenario: unknown partitioner %q", p.Type)
		}
	}
	if a := s.Attack; a != nil {
		if a.Type != "" && len(a.Types) > 0 {
			return fmt.Errorf("scenario: attack type and types are mutually exclusive")
		}
		if a.Client < 0 {
			return fmt.Errorf("scenario: attack client %d negative", a.Client)
		}
		seenAttack := map[string]bool{}
		for _, typ := range a.TypeList() {
			if typ == "" {
				return fmt.Errorf("scenario: attack needs a type (registered: %v)", attack.Types())
			}
			if seenAttack[typ] {
				return fmt.Errorf("scenario: duplicate attack type %q", typ)
			}
			seenAttack[typ] = true
			atk, err := attack.New(typ)
			if err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			if err := atk.Validate(a.Config()); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
		}
	}
	// Bound the matrix before any axis is materialized: SeedList allocates
	// Repetitions entries and Cells allocates the full axis product, so an
	// absurd spec must fail here, not panic in make.
	seedN := len(s.Seeds)
	if seedN == 0 {
		if seedN = s.Repetitions; seedN <= 0 {
			seedN = 1
		}
	}
	cellN := int64(1)
	for _, axis := range []int{len(s.Strategies), seedN, len(s.ShardList()), len(s.AttackList())} {
		// Bounding every factor keeps the running product ≤ MaxCells² and
		// therefore free of int64 overflow.
		if int64(axis) > MaxCells {
			return fmt.Errorf("scenario: the spec's run matrix exceeds %d cells", MaxCells)
		}
		if cellN *= int64(axis); cellN > MaxCells {
			return fmt.Errorf("scenario: the spec's run matrix exceeds %d cells", MaxCells)
		}
	}
	for i, d := range s.Schedule {
		if d.Round < 0 {
			return fmt.Errorf("scenario: schedule[%d]: negative round %d", i, d.Round)
		}
		if s.Rounds > 0 && d.Round > s.Rounds {
			return fmt.Errorf("scenario: schedule[%d]: round %d beyond budget %d", i, d.Round, s.Rounds)
		}
		switch d.Type {
		case DeleteSample:
			if d.Client < 0 {
				return fmt.Errorf("scenario: schedule[%d]: negative client %d", i, d.Client)
			}
			switch d.Target {
			case TargetRows:
				if len(d.Rows) == 0 {
					return fmt.Errorf("scenario: schedule[%d]: sample deletion needs rows or a target", i)
				}
				for _, r := range d.Rows {
					if r < 0 {
						return fmt.Errorf("scenario: schedule[%d]: negative row %d", i, r)
					}
				}
			case TargetPoisoned:
				if s.Attack == nil {
					return fmt.Errorf("scenario: schedule[%d]: target \"poisoned\" needs an attack", i)
				}
				if d.Client != s.Attack.Client {
					return fmt.Errorf("scenario: schedule[%d]: poisoned rows live on client %d, not %d",
						i, s.Attack.Client, d.Client)
				}
			case TargetRandom:
				if d.Fraction <= 0 || d.Fraction > 1 {
					return fmt.Errorf("scenario: schedule[%d]: random fraction %g out of (0,1]", i, d.Fraction)
				}
			default:
				return fmt.Errorf("scenario: schedule[%d]: unknown target %q", i, d.Target)
			}
		case DeleteClass:
			if d.Class < 0 {
				return fmt.Errorf("scenario: schedule[%d]: negative class %d", i, d.Class)
			}
		case DeleteClient:
			if d.Client < 0 {
				return fmt.Errorf("scenario: schedule[%d]: negative client %d", i, d.Client)
			}
		default:
			return fmt.Errorf("scenario: schedule[%d]: unknown deletion type %q", i, d.Type)
		}
	}
	// The schedule must be applied in deterministic order; require it sorted
	// by round so the file reads the way it executes.
	if !sort.SliceIsSorted(s.Schedule, func(a, b int) bool {
		return s.Schedule[a].Round < s.Schedule[b].Round
	}) {
		return fmt.Errorf("scenario: schedule must be sorted by round")
	}
	return nil
}
