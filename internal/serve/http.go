package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
)

// HTTP surface of the service, mounted on the observability mux
// (goldfish-server -serve -obs-addr):
//
//	POST /unlearn               → 202 + ticket, 400 invalid, 429 + Retry-After when full
//	GET  /unlearn/stats         → queue depth, counters, forgetting-latency quantiles
//	GET  /unlearn/requests/{id} → the ticket's current lifecycle state

// Mount registers the service's handlers on mux.
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/unlearn", s.handleEnqueue)
	mux.HandleFunc("/unlearn/stats", s.handleStats)
	mux.HandleFunc("/unlearn/requests/", s.handleTicket)
}

// httpError is the JSON error body.
type httpError struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status. Once the header is out a failed
// encode has no channel left to report on; the truncated body is the signal.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// handleEnqueue accepts one deletion request.
func (s *Service) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST a deletion request"})
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid request body: " + err.Error()})
		return
	}
	t, err := s.Enqueue(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds())))
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, t)
}

// handleStats reports the service summary.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "GET the service stats"})
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleTicket reports one ticket's lifecycle state.
func (s *Service) handleTicket(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "GET a ticket by id"})
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/unlearn/requests/")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad ticket id " + strconv.Quote(raw)})
		return
	}
	t, ok := s.Lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such ticket (settled tickets age out)"})
		return
	}
	writeJSON(w, http.StatusOK, t)
}
