package serve

import (
	"fmt"
	"math/rand"
	"sort"
)

// Load profiles: deterministic deletion-request generators for the SLO
// harness (`goldfish-bench -exp serve`). A profile, given a round number,
// yields the requests "arriving" at that round boundary; the same seed
// yields the same request stream, so load runs are reproducible while the
// measured latencies stay a side channel.

// ProfileConfig shapes a generated request stream.
type ProfileConfig struct {
	// Clients is the federation's participant count at the start.
	Clients int
	// RowsPerClient holds each participant's original dataset size.
	RowsPerClient []int
	// Classes is the label-class count.
	Classes int
	// Seed drives row/client selection. Same seed, same stream.
	Seed int64
	// Rate is the sample-request count per round for the steady and
	// interleaved profiles. Defaults to 2.
	Rate int
	// BurstRound is the boundary the burst profile fires at. Defaults to 2.
	BurstRound int
	// BurstSize is the burst profile's request count. Defaults to 12
	// (harnesses size it past the queue capacity to exercise backpressure).
	BurstSize int
}

// Profile generates one named load profile's request stream.
type Profile struct {
	name string
	cfg  ProfileConfig
	rng  *rand.Rand
	// used tracks rows already requested per client, so the stream never
	// asks to delete the same row twice (which the federation rejects).
	used []map[int]bool
	// removedLast counts client removals issued so far; the interleaved
	// profile always removes the current LAST position, so no other
	// client's position shifts.
	removedLast int
	classesDone int
}

// ProfileNames lists the available profiles.
func ProfileNames() []string {
	return []string{"idle", "steady", "burst", "interleaved"}
}

// NewProfile builds a named profile ("idle", "steady", "burst",
// "interleaved") over the given federation shape.
func NewProfile(name string, cfg ProfileConfig) (*Profile, error) {
	switch name {
	case "idle", "steady", "burst", "interleaved":
	default:
		return nil, fmt.Errorf("serve: unknown load profile %q (have %v)", name, ProfileNames())
	}
	if cfg.Clients <= 0 || len(cfg.RowsPerClient) != cfg.Clients {
		return nil, fmt.Errorf("serve: profile needs Clients and one RowsPerClient entry each, got %d/%d",
			cfg.Clients, len(cfg.RowsPerClient))
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 2
	}
	if cfg.BurstRound <= 0 {
		cfg.BurstRound = 2
	}
	if cfg.BurstSize <= 0 {
		cfg.BurstSize = 12
	}
	p := &Profile{
		name: name,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed*7919 + 17)),
		used: make([]map[int]bool, cfg.Clients),
	}
	for i := range p.used {
		p.used[i] = map[int]bool{}
	}
	return p, nil
}

// Name returns the profile's name.
func (p *Profile) Name() string { return p.name }

// Requests returns the deletion requests arriving at the given round
// boundary, in a deterministic order.
func (p *Profile) Requests(round int) []Request {
	switch p.name {
	case "idle":
		return nil
	case "steady":
		return p.sampleRequests(p.cfg.Rate)
	case "burst":
		if round != p.cfg.BurstRound {
			return nil
		}
		return p.sampleRequests(p.cfg.BurstSize)
	case "interleaved":
		reqs := p.sampleRequests(p.cfg.Rate)
		// Every third boundary from round 2: alternate a class deletion
		// with a client removal, the paper's mixed-workload shape.
		if round >= 2 && (round-2)%3 == 0 {
			if (round-2)%6 == 0 && p.classesDone < p.cfg.Classes {
				reqs = append(reqs, Request{Kind: KindClass, Class: p.classesDone})
				p.classesDone++
			} else if last := p.cfg.Clients - 1 - p.removedLast; last >= 1 {
				// Keep at least one participant; removing the last
				// position never shifts anyone else's.
				reqs = append(reqs, Request{Kind: KindClient, Client: last})
				p.removedLast++
			}
		}
		return reqs
	}
	return nil
}

// sampleRequests draws n sample-deletion requests over fresh rows.
func (p *Profile) sampleRequests(n int) []Request {
	var reqs []Request
	live := p.cfg.Clients - p.removedLast
	for i := 0; i < n; i++ {
		client := p.rng.Intn(live)
		rows := p.freshRows(client, 1+p.rng.Intn(2))
		if len(rows) == 0 {
			continue // client exhausted; thin the stream rather than error
		}
		reqs = append(reqs, Request{Kind: KindSample, Client: client, Rows: rows})
	}
	return reqs
}

// freshRows picks up to n not-yet-requested rows of a client, marking them
// used.
func (p *Profile) freshRows(client, n int) []int {
	free := make([]int, 0, p.cfg.RowsPerClient[client])
	for r := 0; r < p.cfg.RowsPerClient[client]; r++ {
		if !p.used[client][r] {
			free = append(free, r)
		}
	}
	if len(free) == 0 {
		return nil
	}
	if n > len(free) {
		n = len(free)
	}
	p.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	rows := append([]int(nil), free[:n]...)
	sort.Ints(rows)
	for _, r := range rows {
		p.used[client][r] = true
	}
	return rows
}
