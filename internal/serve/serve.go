// Package serve turns a federated-unlearning run into a long-lived service:
// a bounded ingest queue of deletion requests (sample rows, whole classes,
// whole clients) that fold into the federation at round boundaries. All
// requests pending when a round starts coalesce into one batched unlearning
// step — duplicates and subsumed requests merged — applied through the
// unlearn.Federation deletion plumbing; a full queue pushes back explicitly
// (ErrQueueFull / HTTP 429) instead of growing without bound.
//
// Every accepted request becomes a Ticket tracking its lifecycle
// (queued → applied → recovered, or failed) with per-request rounds-to-forget
// and time-to-forget landing in the serve.* observability histograms — the
// substrate for the p50/p99 forgetting-latency SLO report
// (internal/bench RunServe, `goldfish-bench -exp serve`).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"goldfish/internal/obs"
	"goldfish/internal/unlearn"
)

// Kind classifies a deletion request.
type Kind string

// The three deletion-request kinds.
const (
	// KindSample deletes specific rows of one client's ORIGINAL dataset.
	KindSample Kind = "sample"
	// KindClass deletes every remaining sample of one label class, across
	// all clients.
	KindClass Kind = "class"
	// KindClient removes one participant entirely, unlearning its remaining
	// data.
	KindClient Kind = "client"
)

// Request is one deletion request as submitted (the HTTP body of
// POST /unlearn, or the in-process Enqueue argument).
type Request struct {
	// Kind selects what is deleted: "sample", "class" or "client".
	Kind Kind `json:"kind"`
	// Client is the target participant's current position (sample and
	// client kinds).
	Client int `json:"client,omitempty"`
	// Rows are original-dataset row indices to delete (sample kind).
	Rows []int `json:"rows,omitempty"`
	// Class is the label class to delete (class kind).
	Class int `json:"class,omitempty"`
}

// Status is a ticket's lifecycle state.
type Status string

// Ticket lifecycle states.
const (
	// StatusQueued: accepted, waiting for the next round boundary.
	StatusQueued Status = "queued"
	// StatusApplied: folded into the federation; recovery rounds pending.
	StatusApplied Status = "applied"
	// StatusRecovered: the configured recovery rounds completed — the
	// request is forgotten, its latency settled into the histograms.
	StatusRecovered Status = "recovered"
	// StatusFailed: the batched application was rejected by the federation.
	StatusFailed Status = "failed"
)

// Ticket is the auditable record of one accepted deletion request.
type Ticket struct {
	// ID is the service-unique request id, in acceptance order.
	ID int64 `json:"id"`
	// Request is the request as submitted.
	Request
	// Status is the current lifecycle state.
	Status Status `json:"status"`
	// Coalesced marks a request whose effect was merged into another
	// request of the same batch (duplicate or subsumed); it shares that
	// application's fate.
	Coalesced bool `json:"coalesced,omitempty"`
	// EnqueuedRound is the number of completed rounds at acceptance.
	EnqueuedRound int `json:"enqueued_round"`
	// AppliedRound is the round boundary the request was folded in at.
	AppliedRound int `json:"applied_round,omitempty"`
	// RecoveredRound is the round boundary the request settled at.
	RecoveredRound int `json:"recovered_round,omitempty"`
	// Err is the federation's rejection (failed tickets).
	Err string `json:"error,omitempty"`

	// Observer-relative timestamps feeding the time-to-forget histogram.
	enqueuedAt time.Duration
	appliedAt  time.Duration
}

// ErrQueueFull is returned by Enqueue when the ingest queue is at capacity;
// the caller should retry after roughly one round (HTTP: 429 + Retry-After).
var ErrQueueFull = errors.New("serve: deletion queue full")

// Config configures a Service.
type Config struct {
	// Federation is the run the service feeds deletions into. Required.
	// The service installs itself as the federation's round-boundary hook;
	// drive the federation from one goroutine as usual — only Enqueue and
	// the read-side accessors are safe to call concurrently.
	Federation *unlearn.Federation
	// QueueCap bounds the number of queued (not yet applied) requests;
	// Enqueue rejects beyond it. Defaults to 64.
	QueueCap int
	// RecoveryRounds is how many rounds after application a request is
	// considered recovered ("forgotten") and its latency settles. Defaults
	// to 1.
	RecoveryRounds int
	// Observer receives the serve.* instruments (queue depth, request
	// counters, forgetting-latency histograms). Pass the observer the run's
	// context carries so everything lands in one registry; nil uses a
	// private metrics-only observer (Stats still works).
	Observer *obs.Observer
}

// counts aggregates the request counters mirrored to the observer (kept
// locally so Stats works without scanning the registry).
type counts struct {
	Accepted  int64
	Rejected  int64
	Coalesced int64
	Applied   int64
	Recovered int64
	Failed    int64
}

// view is the enqueue-time validation snapshot of the federation's shape,
// refreshed under the service lock at every round boundary. Enqueue must not
// touch the federation itself: it runs on caller goroutines while the run
// goroutine may be mutating membership.
type view struct {
	clients int
	partLen []int
	classes int
}

// Service is the deletion-request service: a bounded queue drained into the
// federation at every round boundary. Create one with New; it attaches
// itself via Federation.SetBeforeRound. Enqueue, Stats, Lookup, QueueDepth
// and RetryAfter are safe for concurrent use.
type Service struct {
	fed      *unlearn.Federation
	obs      *obs.Observer
	queueCap int
	recovery int

	mu       sync.Mutex
	nextID   int64
	queue    []*Ticket
	inflight []*Ticket
	history  []*Ticket
	counts   counts
	view     view
	round    int
	// Round-boundary times (observer-relative) estimating round duration
	// for Retry-After.
	lastRoundAt time.Duration
	prevRoundAt time.Duration
	roundsSeen  int
}

// historyCap bounds the settled-ticket ring (memory stays bounded no matter
// how long the service runs).
const historyCap = 256

// New validates the configuration and attaches the service to its
// federation's round boundary.
func New(cfg Config) (*Service, error) {
	if cfg.Federation == nil {
		return nil, fmt.Errorf("serve: nil federation")
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("serve: negative queue capacity %d", cfg.QueueCap)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.RecoveryRounds < 0 {
		return nil, fmt.Errorf("serve: negative recovery rounds %d", cfg.RecoveryRounds)
	}
	if cfg.RecoveryRounds == 0 {
		cfg.RecoveryRounds = 1
	}
	o := cfg.Observer
	if o == nil {
		o = obs.New(nil) // metrics-only: Stats and quantiles still work
	}
	s := &Service{
		fed:      cfg.Federation,
		obs:      o,
		queueCap: cfg.QueueCap,
		recovery: cfg.RecoveryRounds,
		round:    cfg.Federation.Round(),
	}
	s.refreshViewLocked()
	s.fed.SetBeforeRound(s.BeforeRound)
	return s, nil
}

// refreshViewLocked re-reads the federation's shape. Callers must either
// hold s.mu or be the only goroutine with the service (New).
func (s *Service) refreshViewLocked() {
	n := s.fed.NumClients()
	v := view{clients: n, partLen: make([]int, n)}
	for i := 0; i < n; i++ {
		if p := s.fed.Partition(i); p != nil {
			v.partLen[i] = p.Len()
			v.classes = p.Classes
		}
	}
	s.view = v
}

// Enqueue validates and queues a deletion request, returning its ticket (a
// copy; the service keeps the canonical record — follow it with Lookup).
// A full queue returns ErrQueueFull. Safe for concurrent use, including
// while the federation is running.
func (s *Service) Enqueue(req Request) (Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validateLocked(req); err != nil {
		return Ticket{}, err
	}
	if len(s.queue) >= s.queueCap {
		s.counts.Rejected++
		s.obs.Counter("serve.requests.rejected").Inc()
		return Ticket{}, ErrQueueFull
	}
	s.nextID++
	t := &Ticket{
		ID:            s.nextID,
		Request:       req,
		Status:        StatusQueued,
		EnqueuedRound: s.round,
		enqueuedAt:    s.obs.Elapsed(),
	}
	s.queue = append(s.queue, t)
	s.counts.Accepted++
	s.obs.Counter("serve.requests.accepted").Inc()
	s.obs.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
	return *t, nil
}

// validateLocked checks a request against the round-boundary view of the
// federation. The view can be one batch stale (membership may change before
// this request applies), so this is a fast sanity filter; the batched
// application is the authoritative check and failures there mark the ticket
// failed.
func (s *Service) validateLocked(req Request) error {
	switch req.Kind {
	case KindSample:
		if req.Client < 0 || req.Client >= s.view.clients {
			return fmt.Errorf("serve: client %d out of range [0,%d)", req.Client, s.view.clients)
		}
		if len(req.Rows) == 0 {
			return fmt.Errorf("serve: client %d: empty row list", req.Client)
		}
		for _, r := range req.Rows {
			if r < 0 || r >= s.view.partLen[req.Client] {
				return fmt.Errorf("serve: client %d: row %d out of range [0,%d)",
					req.Client, r, s.view.partLen[req.Client])
			}
		}
	case KindClass:
		if req.Class < 0 || req.Class >= s.view.classes {
			return fmt.Errorf("serve: class %d out of range [0,%d)", req.Class, s.view.classes)
		}
	case KindClient:
		if req.Client < 0 || req.Client >= s.view.clients {
			return fmt.Errorf("serve: client %d out of range [0,%d)", req.Client, s.view.clients)
		}
	default:
		return fmt.Errorf("serve: unknown request kind %q", req.Kind)
	}
	return nil
}

// BeforeRound is the federation's round-boundary hook (installed by New):
// it settles recovered tickets, then drains and coalesces the queue into
// one batched unlearning step. Exposed so harnesses can compose it with
// their own hooks via Federation.SetBeforeRound.
func (s *Service) BeforeRound(ctx context.Context, round int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = round
	s.prevRoundAt, s.lastRoundAt = s.lastRoundAt, s.obs.Elapsed()
	s.roundsSeen++
	s.settleLocked(round)

	if len(s.queue) == 0 {
		return nil
	}
	drained := s.queue
	s.queue = nil
	s.obs.Gauge("serve.queue_depth").Set(0)
	s.applyBatchLocked(drained, round)
	s.refreshViewLocked()
	return nil
}

// Settle resolves tickets whose recovery rounds completed by the end of a
// run. BeforeRound settles continuously while rounds keep coming; call this
// after the final Run returns so the last batch's recoveries are counted
// (there is no next round boundary to do it).
func (s *Service) Settle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.settleLocked(s.fed.Round())
}

// settleLocked marks inflight tickets recovered once `round` completed
// rounds include their recovery window, observing the forgetting-latency
// histograms.
func (s *Service) settleLocked(round int) {
	remaining := s.inflight[:0]
	for _, t := range s.inflight {
		if round < t.AppliedRound+s.recovery {
			remaining = append(remaining, t)
			continue
		}
		t.Status = StatusRecovered
		t.RecoveredRound = round
		now := s.obs.Elapsed()
		rounds := t.RecoveredRound - t.EnqueuedRound
		ms := float64((now - t.enqueuedAt).Microseconds()) / 1e3
		s.counts.Recovered++
		s.obs.Counter("serve.requests.recovered").Inc()
		s.obs.Histogram("serve.rounds_to_forget", obs.RoundBuckets).Observe(float64(rounds))
		s.obs.Histogram("serve.time_to_forget_ms", obs.MillisBuckets).Observe(ms)
		s.obs.Event("serve/forgotten", obs.Int("id", int(t.ID)), obs.Int("rounds", rounds), obs.F64("ms", ms))
		s.retireLocked(t)
	}
	s.inflight = remaining
}

// group is one coalesced application: the tickets riding on it share its
// fate (applied together, failed together).
type group struct {
	tickets []*Ticket
	rows    []int // sample groups: the merged row set
}

// applyBatchLocked coalesces the drained tickets and applies the batch in a
// deterministic order: per-client sample deletions (ascending client),
// class deletions (ascending class), client removals (descending position,
// so earlier removals cannot shift later targets). Sample deletions go
// first because class deletions re-query the remaining rows — overlap
// resolves naturally instead of double-removing. A failed application marks
// only its own group's tickets failed; the round proceeds.
func (s *Service) applyBatchLocked(drained []*Ticket, round int) {
	samples := map[int]*group{}
	classes := map[int]*group{}
	removals := map[int]*group{}

	// Pass 1: client removals and class deletions, deduplicated.
	for _, t := range drained {
		switch t.Kind {
		case KindClient:
			if g, ok := removals[t.Client]; ok {
				s.coalesceLocked(t, g)
				continue
			}
			removals[t.Client] = &group{tickets: []*Ticket{t}}
		case KindClass:
			if g, ok := classes[t.Class]; ok {
				s.coalesceLocked(t, g)
				continue
			}
			classes[t.Class] = &group{tickets: []*Ticket{t}}
		}
	}
	// Pass 2: sample deletions — subsumed by a pending removal of the same
	// client, otherwise merged into that client's row union.
	for _, t := range drained {
		if t.Kind != KindSample {
			continue
		}
		if g, ok := removals[t.Client]; ok {
			s.coalesceLocked(t, g) // the whole client is going away
			continue
		}
		g, ok := samples[t.Client]
		if !ok {
			g = &group{}
			samples[t.Client] = g
		}
		fresh := false
		for _, r := range t.Rows {
			if !contains(g.rows, r) {
				g.rows = append(g.rows, r)
				fresh = true
			}
		}
		if !fresh {
			s.coalesceLocked(t, g) // every row already requested this batch
			continue
		}
		g.tickets = append(g.tickets, t)
	}

	for _, client := range sortedKeys(samples) {
		g := samples[client]
		sort.Ints(g.rows)
		s.finishGroupLocked(g, s.fed.RequestDeletionRows(client, g.rows), round)
	}
	for _, class := range sortedKeys(classes) {
		_, err := s.fed.RequestClassDeletion(class)
		s.finishGroupLocked(classes[class], err, round)
	}
	removalOrder := sortedKeys(removals)
	for i := len(removalOrder) - 1; i >= 0; i-- {
		client := removalOrder[i]
		s.finishGroupLocked(removals[client], s.fed.RemoveClient(client, true), round)
	}
}

// coalesceLocked merges ticket t into group g: its effect is covered by the
// group's application, whose fate it shares.
func (s *Service) coalesceLocked(t *Ticket, g *group) {
	t.Coalesced = true
	s.counts.Coalesced++
	s.obs.Counter("serve.requests.coalesced").Inc()
	g.tickets = append(g.tickets, t)
}

// finishGroupLocked records one application's outcome on every ticket of
// its group.
func (s *Service) finishGroupLocked(g *group, err error, round int) {
	now := s.obs.Elapsed()
	for _, t := range g.tickets {
		if err != nil {
			t.Status = StatusFailed
			t.Err = err.Error()
			s.counts.Failed++
			s.obs.Counter("serve.requests.failed").Inc()
			s.retireLocked(t)
			continue
		}
		t.Status = StatusApplied
		t.AppliedRound = round
		t.appliedAt = now
		s.counts.Applied++
		s.obs.Counter("serve.requests.applied").Inc()
		s.inflight = append(s.inflight, t)
	}
}

// retireLocked moves a settled ticket into the bounded history ring.
func (s *Service) retireLocked(t *Ticket) {
	if len(s.history) >= historyCap {
		copy(s.history, s.history[1:])
		s.history = s.history[:historyCap-1]
	}
	s.history = append(s.history, t)
}

// Lookup returns a copy of the ticket with the given id, searching the
// queue, the inflight set and the bounded history (old settled tickets age
// out).
func (s *Service) Lookup(id int64) (Ticket, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, set := range [][]*Ticket{s.queue, s.inflight, s.history} {
		for _, t := range set {
			if t.ID == id {
				return *t, true
			}
		}
	}
	return Ticket{}, false
}

// QueueDepth returns the number of queued (not yet applied) requests.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// QueueCap returns the queue capacity.
func (s *Service) QueueCap() int { return s.queueCap }

// RecoveryRounds returns the configured recovery window.
func (s *Service) RecoveryRounds() int { return s.recovery }

// RetryAfter estimates how long a rejected caller should wait before
// retrying: roughly one round (the queue drains at round boundaries),
// estimated from the last two boundaries and never less than a second.
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roundsSeen < 2 {
		return time.Second
	}
	est := s.lastRoundAt - s.prevRoundAt
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second)
}

// Quantiles summarizes one forgetting-latency histogram.
type Quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Stats is a point-in-time summary of the service (GET /unlearn/stats).
type Stats struct {
	// Round is the latest round boundary the service has seen.
	Round int `json:"round"`
	// QueueDepth / QueueCap describe the ingest queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Inflight is the number of applied requests awaiting recovery.
	Inflight int `json:"inflight"`
	// Request counters over the service's lifetime.
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
	Applied   int64 `json:"applied"`
	Recovered int64 `json:"recovered"`
	Failed    int64 `json:"failed"`
	// RoundsToForget / TimeToForgetMs are the settled forgetting-latency
	// quantiles (bucket-resolution estimates).
	RoundsToForget Quantiles `json:"rounds_to_forget"`
	TimeToForgetMs Quantiles `json:"time_to_forget_ms"`
}

// Stats assembles the current summary.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Round:      s.round,
		QueueDepth: len(s.queue),
		QueueCap:   s.queueCap,
		Inflight:   len(s.inflight),
		Accepted:   s.counts.Accepted,
		Rejected:   s.counts.Rejected,
		Coalesced:  s.counts.Coalesced,
		Applied:    s.counts.Applied,
		Recovered:  s.counts.Recovered,
		Failed:     s.counts.Failed,
	}
	snap := s.obs.Snapshot()
	for _, h := range snap.Histograms {
		q := Quantiles{Count: h.Count, P50: h.P50, P99: h.P99}
		switch h.Name {
		case "serve.rounds_to_forget":
			st.RoundsToForget = q
		case "serve.time_to_forget_ms":
			st.TimeToForgetMs = q
		}
	}
	return st
}

// contains reports whether sorted-or-not slice xs holds x (row unions stay
// small — queue-capacity bounded — so linear scans beat allocating maps).
func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sortedKeys returns m's keys in ascending order: batch application order
// must not depend on map iteration.
func sortedKeys(m map[int]*group) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
