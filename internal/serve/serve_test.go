package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/loss"
	"goldfish/internal/model"
	"goldfish/internal/optim"
	"goldfish/internal/unlearn"
)

// testConfig mirrors the unlearn package's fast tiny-data configuration.
func testConfig(classes int) core.Config {
	return core.Config{
		Model:       model.Config{Arch: model.ArchMLP, InC: 1, InH: 12, InW: 12, Classes: classes, Seed: 1},
		Loss:        loss.NewGoldfish(),
		Opt:         optim.SGDConfig{LR: 0.1, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: 3,
		BatchSize:   32,
		TempAlpha:   1,
		Seed:        1,
	}
}

// newTestFederation builds a tiny federation; strategy "" selects the
// default (goldfish).
func newTestFederation(t *testing.T, strategy string, clients int) *unlearn.Federation {
	t.Helper()
	spec, err := data.SpecMNIST(data.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.PartitionIID(train, clients, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := unlearn.Config{Client: testConfig(10)}
	if strategy != "" {
		cfg.Unlearner, err = unlearn.New(strategy)
		if err != nil {
			t.Fatal(err)
		}
	}
	f, err := unlearn.NewFederation(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCoalescedBatchMatchesSequential is the coalescing-correctness test:
// a batch full of duplicate and subsumed requests, folded in by the service
// at one round boundary, must produce bit-identical model state to issuing
// the deduplicated deletions directly against a second identically-seeded
// federation. The retrain baseline makes the comparison airtight — its
// final model depends only on the remaining data and the deletion-call
// sequence.
func TestCoalescedBatchMatchesSequential(t *testing.T) {
	const rounds = 3
	ctx := context.Background()

	served := newTestFederation(t, "retrain", 3)
	direct := newTestFederation(t, "retrain", 3)

	// A class every participant still holds plenty of.
	class := served.Partition(0).LabelsFor([]int{0})[0]

	svc, err := New(Config{Federation: served, QueueCap: 16, RecoveryRounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The redundant request mix: overlapping row sets, an exact duplicate,
	// a duplicate class deletion, and samples subsumed by a client removal.
	reqs := []Request{
		{Kind: KindSample, Client: 0, Rows: []int{1, 3}},
		{Kind: KindSample, Client: 0, Rows: []int{3, 5}}, // overlaps; merges
		{Kind: KindSample, Client: 1, Rows: []int{2}},
		{Kind: KindSample, Client: 1, Rows: []int{2}}, // duplicate; coalesces
		{Kind: KindClass, Class: class},
		{Kind: KindClass, Class: class},               // duplicate; coalesces
		{Kind: KindClient, Client: 2},                 //
		{Kind: KindSample, Client: 2, Rows: []int{0}}, // subsumed; coalesces
	}
	tickets := make([]Ticket, len(reqs))
	for i, r := range reqs {
		if tickets[i], err = svc.Enqueue(r); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := served.Run(ctx, rounds, nil); err != nil {
		t.Fatal(err)
	}
	svc.Settle()

	// The deduplicated equivalent, in the service's application order:
	// samples ascending client, classes, removals descending position.
	if err := direct.RequestDeletionRows(0, []int{1, 3, 5}); err != nil {
		t.Fatal(err)
	}
	if err := direct.RequestDeletionRows(1, []int{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.RequestClassDeletion(class); err != nil {
		t.Fatal(err)
	}
	if err := direct.RemoveClient(2, true); err != nil {
		t.Fatal(err)
	}
	if err := direct.Run(ctx, rounds, nil); err != nil {
		t.Fatal(err)
	}

	if got, want := served.Global(), direct.Global(); !reflect.DeepEqual(got, want) {
		t.Errorf("coalesced batch diverged from sequential deletions: %d vs %d params, first %g vs %g",
			len(got), len(want), got[0], want[0])
	}
	for i := 0; i < served.NumClients(); i++ {
		if got, want := served.RemainingRows(i), direct.RemainingRows(i); !reflect.DeepEqual(got, want) {
			t.Errorf("client %d remaining rows diverged: %v vs %v", i, got, want)
		}
	}

	// Lifecycle accounting: nothing failed, the three redundant requests
	// coalesced, and everything recovered after its recovery round.
	st := svc.Stats()
	if st.Failed != 0 {
		t.Errorf("failed = %d, want 0", st.Failed)
	}
	if st.Coalesced != 3 {
		t.Errorf("coalesced = %d, want 3", st.Coalesced)
	}
	if st.Applied != int64(len(reqs)) || st.Recovered != int64(len(reqs)) {
		t.Errorf("applied/recovered = %d/%d, want %d/%d", st.Applied, st.Recovered, len(reqs), len(reqs))
	}
	if st.RoundsToForget.Count != int64(len(reqs)) || st.RoundsToForget.P50 <= 0 {
		t.Errorf("rounds-to-forget quantiles = %+v, want count %d and positive p50", st.RoundsToForget, len(reqs))
	}
	for i, want := range []bool{false, false, false, true, false, true, false, true} {
		got, ok := svc.Lookup(tickets[i].ID)
		if !ok {
			t.Fatalf("ticket %d vanished", tickets[i].ID)
		}
		if got.Status != StatusRecovered {
			t.Errorf("ticket %d status = %s, want recovered", got.ID, got.Status)
		}
		if got.Coalesced != want {
			t.Errorf("ticket %d coalesced = %v, want %v", got.ID, got.Coalesced, want)
		}
	}
}

// TestBackpressure checks the bounded queue: beyond capacity Enqueue
// rejects with ErrQueueFull, a round boundary drains the queue, and the
// service accepts again afterwards.
func TestBackpressure(t *testing.T) {
	f := newTestFederation(t, "", 2)
	svc, err := New(Config{Federation: f, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Enqueue(Request{Kind: KindSample, Client: 0, Rows: []int{i}}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, err := svc.Enqueue(Request{Kind: KindSample, Client: 0, Rows: []int{9}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity enqueue: err = %v, want ErrQueueFull", err)
	}
	if d := svc.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	if err := f.Run(context.Background(), 1, nil); err != nil {
		t.Fatal(err)
	}
	if d := svc.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after round = %d, want 0 (drained)", d)
	}
	if _, err := svc.Enqueue(Request{Kind: KindSample, Client: 0, Rows: []int{9}}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	st := svc.Stats()
	if st.Rejected != 1 || st.Accepted != 3 {
		t.Errorf("accepted/rejected = %d/%d, want 3/1", st.Accepted, st.Rejected)
	}
	if svc.RetryAfter() <= 0 {
		t.Errorf("RetryAfter = %v, want positive", svc.RetryAfter())
	}
}

// TestEnqueueValidation checks the fast-reject paths.
func TestEnqueueValidation(t *testing.T) {
	f := newTestFederation(t, "", 2)
	svc, err := New(Config{Federation: f})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []Request{
		{Kind: "bogus"},
		{Kind: KindSample, Client: 5, Rows: []int{0}},
		{Kind: KindSample, Client: 0},
		{Kind: KindSample, Client: 0, Rows: []int{1 << 30}},
		{Kind: KindClass, Class: -1},
		{Kind: KindClass, Class: 10},
		{Kind: KindClient, Client: -1},
	} {
		if _, err := svc.Enqueue(req); err == nil {
			t.Errorf("Enqueue(%+v) accepted, want error", req)
		}
	}
	if st := svc.Stats(); st.Accepted != 0 {
		t.Errorf("accepted = %d, want 0 (invalid requests are not queued)", st.Accepted)
	}
}

// TestConcurrentBurst hammers Enqueue and the read-side accessors from many
// goroutines while the federation runs — the -race regression for the
// queue's locking. Every accepted request must end the run accounted for:
// applied, failed, or still queued.
func TestConcurrentBurst(t *testing.T) {
	f := newTestFederation(t, "", 3)
	svc, err := New(Config{Federation: f, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(context.Background(), 4, nil) }()

	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				row := (w*perWorker + i) % 20
				_, err := svc.Enqueue(Request{Kind: KindSample, Client: w % 3, Rows: []int{row}})
				if err != nil && !errors.Is(err, ErrQueueFull) && !strings.Contains(err.Error(), "out of range") {
					t.Errorf("worker %d: unexpected enqueue error: %v", w, err)
				}
				_ = svc.QueueDepth()
				_ = svc.Stats()
				_, _ = svc.Lookup(int64(i + 1))
				_ = svc.RetryAfter()
			}
		}(w)
	}
	wg.Wait()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	svc.Settle()

	st := svc.Stats()
	if st.Accepted != st.Applied+st.Failed+int64(st.QueueDepth) {
		t.Errorf("accounting: accepted %d != applied %d + failed %d + queued %d",
			st.Accepted, st.Applied, st.Failed, st.QueueDepth)
	}
	if st.Accepted == 0 {
		t.Error("no requests accepted at all")
	}
}

// TestHTTPEndpoints drives the mounted HTTP surface end to end.
func TestHTTPEndpoints(t *testing.T) {
	f := newTestFederation(t, "", 2)
	svc, err := New(Config{Federation: f, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	svc.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/unlearn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Accepted request → 202 with a ticket.
	resp := post(`{"kind":"sample","client":0,"rows":[1,2]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid POST: status = %d, want 202", resp.StatusCode)
	}
	var tk Ticket
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if tk.ID != 1 || tk.Status != StatusQueued || tk.Kind != KindSample {
		t.Errorf("ticket = %+v, want id 1 queued sample", tk)
	}

	// Full queue → 429 with Retry-After.
	resp = post(`{"kind":"sample","client":1,"rows":[0]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-capacity POST: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	_ = resp.Body.Close()

	// Invalid bodies → 400.
	for _, body := range []string{`{"kind":"bogus"}`, `{"kind":"sample","client":0,"rows":[0],"extra":1}`, `not json`} {
		resp = post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status = %d, want 400", body, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}

	// Wrong methods → 405.
	for _, url := range []string{"/unlearn", "/unlearn/stats", "/unlearn/requests/1"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s: status = %d, want 405", url, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Stats reflect the accepted and rejected requests.
	resp, body := get("/unlearn/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stats: status = %d, want 200", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Rejected != 1 || st.QueueDepth != 1 || st.QueueCap != 1 {
		t.Errorf("stats = %+v, want accepted 1 rejected 1 depth 1/1", st)
	}

	// Ticket lookup: present, absent, malformed.
	if resp, _ := get("/unlearn/requests/1"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET ticket 1: status = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get("/unlearn/requests/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET ticket 999: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/unlearn/requests/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET ticket abc: status = %d, want 400", resp.StatusCode)
	}
}

// TestProfiles checks the deterministic load generators: same seed, same
// stream; burst fires only at its round; interleaved mixes kinds and only
// ever removes the last participant position.
func TestProfiles(t *testing.T) {
	cfg := ProfileConfig{Clients: 4, RowsPerClient: []int{30, 30, 30, 30}, Classes: 10, Seed: 42}

	if _, err := NewProfile("bogus", cfg); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := NewProfile("steady", ProfileConfig{Clients: 2, RowsPerClient: []int{5}}); err == nil {
		t.Error("mismatched RowsPerClient accepted")
	}

	for _, name := range ProfileNames() {
		a, err := NewProfile(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := NewProfile(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			ra, rb := a.Requests(round), b.Requests(round)
			if !reflect.DeepEqual(ra, rb) {
				t.Errorf("%s round %d: same seed diverged: %v vs %v", name, round, ra, rb)
			}
		}
	}

	idle, _ := NewProfile("idle", cfg)
	for round := 0; round < 5; round++ {
		if reqs := idle.Requests(round); len(reqs) != 0 {
			t.Errorf("idle round %d produced %d requests", round, len(reqs))
		}
	}

	burst, _ := NewProfile("burst", ProfileConfig{
		Clients: 4, RowsPerClient: []int{30, 30, 30, 30}, Classes: 10, Seed: 1, BurstRound: 2, BurstSize: 12,
	})
	for round := 0; round < 5; round++ {
		reqs := burst.Requests(round)
		if round != 2 && len(reqs) != 0 {
			t.Errorf("burst round %d produced %d requests, want 0", round, len(reqs))
		}
		if round == 2 && len(reqs) != 12 {
			t.Errorf("burst round 2 produced %d requests, want 12", len(reqs))
		}
	}

	inter, _ := NewProfile("interleaved", cfg)
	kinds := map[Kind]int{}
	removals := 0
	for round := 0; round < 20; round++ {
		for _, r := range inter.Requests(round) {
			kinds[r.Kind]++
			if r.Kind == KindClient {
				want := cfg.Clients - 1 - removals
				if r.Client != want {
					t.Errorf("round %d: removal targets client %d, want last position %d", round, r.Client, want)
				}
				if want < 1 {
					t.Error("removal would empty the federation")
				}
				removals++
			}
			if r.Kind == KindSample {
				for _, row := range r.Rows {
					if row < 0 || row >= 30 {
						t.Errorf("sample row %d out of range", row)
					}
				}
			}
		}
	}
	for _, k := range []Kind{KindSample, KindClass, KindClient} {
		if kinds[k] == 0 {
			t.Errorf("interleaved never produced a %s request", k)
		}
	}
}
