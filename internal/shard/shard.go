// Package shard implements the paper's data-partition optimization (§III-B
// "Optimization", Figs. 2–3): each client splits its local data into τ
// shards, trains one model per shard, and publishes the size-weighted
// average (Eq. 8). On deletion only the shards containing removed samples
// retrain, restarting from the checkpoint of the untouched shards (Eq. 9);
// shard weights can be recovered from a new aggregate by subtraction
// (Eq. 10).
package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"goldfish/internal/data"
	"goldfish/internal/nn"
)

// Shard is one data shard and its model.
type Shard struct {
	// Indices are row indices into the client's local dataset.
	Indices []int
	// Model is the shard's network.
	Model *nn.Network
}

// Manager owns a client's shards and implements the Eq. 8–10 arithmetic.
type Manager struct {
	shards    []Shard
	paramSize int
}

// NewManager partitions [0, datasetLen) into numShards random shards and
// clones template once per shard.
func NewManager(template *nn.Network, datasetLen, numShards int, rng *rand.Rand) (*Manager, error) {
	if template == nil {
		return nil, fmt.Errorf("shard: nil template network")
	}
	idx, err := data.ShardIndices(datasetLen, numShards, rng)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	m := &Manager{paramSize: len(template.StateVector())}
	m.shards = make([]Shard, numShards)
	for i := range m.shards {
		m.shards[i] = Shard{Indices: idx[i], Model: template.Clone()}
	}
	return m, nil
}

// NumShards returns the shard count τ.
func (m *Manager) NumShards() int { return len(m.shards) }

// Shard returns shard i.
func (m *Manager) Shard(i int) *Shard { return &m.shards[i] }

// TotalSamples returns |Dᶜ|, the number of samples across all shards.
func (m *Manager) TotalSamples() int {
	total := 0
	for _, s := range m.shards {
		total += len(s.Indices)
	}
	return total
}

// Aggregate implements Eq. 8: ωᶜ = Σᵢ (|Dᶜᵢ|/|Dᶜ|)·ωᶜᵢ, returning the
// size-weighted average of shard parameter vectors.
func (m *Manager) Aggregate() []float64 {
	total := m.TotalSamples()
	out := make([]float64, m.paramSize)
	if total == 0 {
		return out
	}
	for _, s := range m.shards {
		w := float64(len(s.Indices)) / float64(total)
		for j, v := range s.Model.StateVector() {
			out[j] += w * v
		}
	}
	return out
}

// Checkpoint implements Eq. 9: the partial aggregate over shards NOT in
// excluded, still normalized by the full |Dᶜ|. Retraining restarts from this
// checkpoint instead of a fresh initialization.
func (m *Manager) Checkpoint(excluded map[int]bool) []float64 {
	total := m.TotalSamples()
	out := make([]float64, m.paramSize)
	if total == 0 {
		return out
	}
	for i, s := range m.shards {
		if excluded[i] {
			continue
		}
		w := float64(len(s.Indices)) / float64(total)
		for j, v := range s.Model.StateVector() {
			out[j] += w * v
		}
	}
	return out
}

// RecoverShard implements Eq. 10: given a full aggregate ωᶜ, recover shard
// i's parameter vector as (|Dᶜ|/|Dᶜᵢ|)·(ωᶜ − Σ_{j≠i} (|Dᶜⱼ|/|Dᶜ|)·ωᶜⱼ).
func (m *Manager) RecoverShard(i int, aggregate []float64) ([]float64, error) {
	if i < 0 || i >= len(m.shards) {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", i, len(m.shards))
	}
	if len(aggregate) != m.paramSize {
		return nil, fmt.Errorf("shard: aggregate has %d params, want %d", len(aggregate), m.paramSize)
	}
	size := len(m.shards[i].Indices)
	if size == 0 {
		return nil, fmt.Errorf("shard: shard %d is empty", i)
	}
	rest := m.Checkpoint(map[int]bool{i: true})
	total := float64(m.TotalSamples())
	scale := total / float64(size)
	out := make([]float64, m.paramSize)
	for j := range out {
		out[j] = scale * (aggregate[j] - rest[j])
	}
	return out, nil
}

// AffectedShards returns the (sorted) indices of shards containing any of
// the removed dataset rows.
func (m *Manager) AffectedShards(removed []int) []int {
	rm := make(map[int]bool, len(removed))
	for _, r := range removed {
		rm[r] = true
	}
	var out []int
	for i, s := range m.shards {
		for _, idx := range s.Indices {
			if rm[idx] {
				out = append(out, i)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// DeleteSamples removes the given dataset rows from every shard's index
// list and returns the number of rows actually removed. The caller is
// responsible for retraining affected shards (see RetrainAffected).
func (m *Manager) DeleteSamples(removed []int) int {
	rm := make(map[int]bool, len(removed))
	for _, r := range removed {
		rm[r] = true
	}
	deleted := 0
	for i := range m.shards {
		kept := m.shards[i].Indices[:0]
		for _, idx := range m.shards[i].Indices {
			if rm[idx] {
				deleted++
				continue
			}
			kept = append(kept, idx)
		}
		m.shards[i].Indices = kept
	}
	return deleted
}

// TrainFunc trains one shard's model on the given dataset rows.
type TrainFunc func(shardIdx int, model *nn.Network, indices []int) error

// RetrainAffected retrains the given shards concurrently (the paper notes
// multi-shard retraining parallelizes; Fig. 3). It waits for all retraining
// goroutines and returns the first error encountered.
func (m *Manager) RetrainAffected(affected []int, train TrainFunc) error {
	if len(affected) == 0 {
		return nil
	}
	errs := make([]error, len(affected))
	var wg sync.WaitGroup
	for k, idx := range affected {
		if idx < 0 || idx >= len(m.shards) {
			return fmt.Errorf("shard: retrain index %d out of range [0,%d)", idx, len(m.shards))
		}
		wg.Add(1)
		go func(k, idx int) {
			defer wg.Done()
			s := &m.shards[idx]
			errs[k] = train(idx, s.Model, s.Indices)
		}(k, idx)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: retraining shard %d: %w", affected[k], err)
		}
	}
	return nil
}

// SetShardParams loads a parameter vector into shard i's model.
func (m *Manager) SetShardParams(i int, params []float64) error {
	if i < 0 || i >= len(m.shards) {
		return fmt.Errorf("shard: index %d out of range [0,%d)", i, len(m.shards))
	}
	if err := m.shards[i].Model.SetStateVector(params); err != nil {
		return fmt.Errorf("shard: loading shard %d: %w", i, err)
	}
	return nil
}

// ShardChoice implements the paper's shard-count selection objective
// (§IV-B): given, for each candidate shard count, the reduced number of
// retraining rounds rr and the accuracy loss al relative to the unsharded
// model, it returns the index of the candidate maximizing rr·c1 − al·c2,
// where c1 is the benefit of one saved round and c2 the cost of one unit of
// accuracy loss (both user preferences).
func ShardChoice(reducedRounds, accuracyLoss []float64, c1, c2 float64) (int, error) {
	if len(reducedRounds) == 0 || len(reducedRounds) != len(accuracyLoss) {
		return 0, fmt.Errorf("shard: candidate lists must be non-empty and equal length, got %d/%d",
			len(reducedRounds), len(accuracyLoss))
	}
	if c1 < 0 || c2 < 0 {
		return 0, fmt.Errorf("shard: preference weights must be non-negative, got c1=%g c2=%g", c1, c2)
	}
	best := 0
	bestVal := reducedRounds[0]*c1 - accuracyLoss[0]*c2
	for i := 1; i < len(reducedRounds); i++ {
		if v := reducedRounds[i]*c1 - accuracyLoss[i]*c2; v > bestVal {
			best = i
			bestVal = v
		}
	}
	return best, nil
}
