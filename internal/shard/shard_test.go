package shard

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"goldfish/internal/nn"
)

func newTemplate(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewNetwork(nn.NewDense(4, 3, rng))
}

func randomizeShards(m *Manager, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m.NumShards(); i++ {
		v := make([]float64, m.Shard(i).Model.NumParams())
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := m.SetShardParams(i, v); err != nil {
			panic(err)
		}
	}
}

func TestNewManagerPartitions(t *testing.T) {
	m, err := NewManager(newTemplate(1), 100, 6, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 6 {
		t.Fatalf("NumShards = %d", m.NumShards())
	}
	if m.TotalSamples() != 100 {
		t.Fatalf("TotalSamples = %d", m.TotalSamples())
	}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		for _, idx := range m.Shard(i).Indices {
			if seen[idx] {
				t.Fatalf("index %d in two shards", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("shards cover %d indices, want 100", len(seen))
	}
}

func TestNewManagerErrors(t *testing.T) {
	if _, err := NewManager(nil, 10, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil template accepted")
	}
	if _, err := NewManager(newTemplate(1), 2, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("more shards than samples accepted")
	}
}

func TestAggregateEqualShardsIsIdentity(t *testing.T) {
	m, err := NewManager(newTemplate(2), 30, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// All shards share identical parameters → aggregate equals them.
	ref := m.Shard(0).Model.ParamVector()
	for i := 1; i < 3; i++ {
		if err := m.SetShardParams(i, ref); err != nil {
			t.Fatal(err)
		}
	}
	agg := m.Aggregate()
	for j := range ref {
		if math.Abs(agg[j]-ref[j]) > 1e-12 {
			t.Fatalf("aggregate differs at %d: %g vs %g", j, agg[j], ref[j])
		}
	}
}

func TestAggregateWeighting(t *testing.T) {
	// Two shards, sizes 1 and 3; shard params all-1 and all-5.
	m, err := NewManager(newTemplate(3), 4, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Force shard sizes 1 and 3.
	m.shards[0].Indices = []int{0}
	m.shards[1].Indices = []int{1, 2, 3}
	n := m.Shard(0).Model.NumParams()
	ones := make([]float64, n)
	fives := make([]float64, n)
	for j := range ones {
		ones[j] = 1
		fives[j] = 5
	}
	if err := m.SetShardParams(0, ones); err != nil {
		t.Fatal(err)
	}
	if err := m.SetShardParams(1, fives); err != nil {
		t.Fatal(err)
	}
	agg := m.Aggregate()
	want := 0.25*1 + 0.75*5
	for _, v := range agg {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("aggregate = %g, want %g", v, want)
		}
	}
}

// Property (Eq. 10 inverts Eq. 8): recovering shard i from the full
// aggregate reproduces its parameters exactly.
func TestQuickRecoverShardInvertsAggregate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 2 + rng.Intn(5)
		samples := shards * (2 + rng.Intn(10))
		m, err := NewManager(newTemplate(seed), samples, shards, rng)
		if err != nil {
			return false
		}
		randomizeShards(m, seed+1)
		agg := m.Aggregate()
		i := rng.Intn(shards)
		got, err := m.RecoverShard(i, agg)
		if err != nil {
			return false
		}
		want := m.Shard(i).Model.ParamVector()
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointExcludes(t *testing.T) {
	m, err := NewManager(newTemplate(4), 40, 4, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	randomizeShards(m, 5)
	full := m.Aggregate()
	ck := m.Checkpoint(map[int]bool{1: true})
	// full − checkpoint = weighted shard-1 params.
	w := float64(len(m.Shard(1).Indices)) / float64(m.TotalSamples())
	p1 := m.Shard(1).Model.ParamVector()
	for j := range full {
		if math.Abs(full[j]-ck[j]-w*p1[j]) > 1e-9 {
			t.Fatalf("checkpoint arithmetic wrong at %d", j)
		}
	}
}

func TestRecoverShardErrors(t *testing.T) {
	m, err := NewManager(newTemplate(5), 20, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecoverShard(5, m.Aggregate()); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := m.RecoverShard(0, []float64{1}); err == nil {
		t.Error("short aggregate accepted")
	}
	m.shards[0].Indices = nil
	if _, err := m.RecoverShard(0, m.Aggregate()); err == nil {
		t.Error("empty shard accepted")
	}
}

func TestAffectedShards(t *testing.T) {
	m, err := NewManager(newTemplate(6), 30, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// Take two sample indices from shard 2 and one from shard 0.
	removed := []int{m.Shard(2).Indices[0], m.Shard(2).Indices[1], m.Shard(0).Indices[0]}
	affected := m.AffectedShards(removed)
	if len(affected) != 2 || affected[0] != 0 || affected[1] != 2 {
		t.Errorf("AffectedShards = %v, want [0 2]", affected)
	}
	if got := m.AffectedShards(nil); len(got) != 0 {
		t.Errorf("no removals should affect nothing, got %v", got)
	}
}

func TestDeleteSamples(t *testing.T) {
	m, err := NewManager(newTemplate(7), 30, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	removed := []int{m.Shard(1).Indices[0], m.Shard(1).Indices[1]}
	n := m.DeleteSamples(removed)
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if m.TotalSamples() != 28 {
		t.Errorf("TotalSamples = %d, want 28", m.TotalSamples())
	}
	for _, idx := range m.Shard(1).Indices {
		if idx == removed[0] || idx == removed[1] {
			t.Error("removed index still present")
		}
	}
	// Deleting again is a no-op.
	if n := m.DeleteSamples(removed); n != 0 {
		t.Errorf("second delete removed %d, want 0", n)
	}
}

func TestRetrainAffectedRunsAll(t *testing.T) {
	m, err := NewManager(newTemplate(8), 40, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	err = m.RetrainAffected([]int{0, 2, 3}, func(shardIdx int, model *nn.Network, indices []int) error {
		atomic.AddInt32(&calls, 1)
		if model == nil || len(indices) == 0 {
			t.Error("bad arguments to train func")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("train called %d times, want 3", calls)
	}
	// No affected shards: no calls, no error.
	if err := m.RetrainAffected(nil, func(int, *nn.Network, []int) error {
		t.Error("should not be called")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRetrainAffectedPropagatesError(t *testing.T) {
	m, err := NewManager(newTemplate(9), 20, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = m.RetrainAffected([]int{0, 1}, func(shardIdx int, _ *nn.Network, _ []int) error {
		if shardIdx == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	if err := m.RetrainAffected([]int{99}, func(int, *nn.Network, []int) error { return nil }); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

func TestShardChoice(t *testing.T) {
	// Candidates τ=1,6,18: more shards save more rounds but cost accuracy.
	rr := []float64{0, 3, 5}
	al := []float64{0, 1, 6}
	// Round savings dominate → τ=6 wins (3·2−1·1=5 beats 0 and 5·2−6·1=4).
	got, err := ShardChoice(rr, al, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ShardChoice = %d, want 1", got)
	}
	// Accuracy dominates → τ=1 wins.
	got, err = ShardChoice(rr, al, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("accuracy-dominant ShardChoice = %d, want 0", got)
	}
	if _, err := ShardChoice(nil, nil, 1, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := ShardChoice(rr, al[:2], 1, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ShardChoice(rr, al, -1, 1); err == nil {
		t.Error("negative weight accepted")
	}
}

// Eq. 10 round-trip at the bit level: publish the Eq. 8 aggregate, then
// recover every shard's weights by subtraction. With power-of-two shard
// sizes and dyadic parameter values all the arithmetic is exact in float64,
// so recovery must reproduce each shard's parameters bit for bit — the
// guarantee that lets a server hand a client back its own shard models from
// nothing but the published aggregate.
func TestRecoverShardBitwiseRoundTrip(t *testing.T) {
	const shards = 4
	m, err := NewManager(newTemplate(10), 32, shards, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		if got := len(m.Shard(i).Indices); got != 8 {
			t.Fatalf("shard %d has %d samples, want 8 (equal power-of-two sizes)", i, got)
		}
	}
	// Dyadic parameters: multiples of 1/16 in [-2, 2]. Every product with the
	// 1/4 shard weight and every partial sum is exactly representable.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < shards; i++ {
		v := make([]float64, m.Shard(i).Model.NumParams())
		for j := range v {
			v[j] = float64(rng.Intn(65)-32) / 16
		}
		if err := m.SetShardParams(i, v); err != nil {
			t.Fatal(err)
		}
	}
	agg := m.Aggregate()
	for i := 0; i < shards; i++ {
		got, err := m.RecoverShard(i, agg)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Shard(i).Model.ParamVector()
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("shard %d param %d: recovered %x (%g), stored %x (%g)",
					i, j, math.Float64bits(got[j]), got[j], math.Float64bits(want[j]), want[j])
			}
		}
	}
}
