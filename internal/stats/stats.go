// Package stats implements the statistical machinery the Goldfish evaluation
// needs: descriptive statistics, Kullback–Leibler and Jensen–Shannon
// divergences between discrete distributions, and Welch's t-test (with the
// regularized incomplete beta function used for the Student-t CDF).
//
// Everything is pure stdlib; special functions are implemented with the
// standard continued-fraction / series expansions (Numerical Recipes style)
// on top of math.Lgamma.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrInsufficientData is returned when a statistic needs more samples than
// were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs. It returns 0
// when fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// PopulationVariance returns the biased (n) variance of xs, the quantity the
// Goldfish confusion loss uses on prediction vectors. It returns 0 for an
// empty slice.
func PopulationVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns
// ErrInsufficientData for an empty slice.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrInsufficientData
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// distEpsilon guards the divergences against zero probabilities.
const distEpsilon = 1e-12

// KLDivergence returns the Kullback–Leibler divergence KL(p‖q) in nats.
// Inputs should be probability vectors of equal length; they are clamped at
// a tiny epsilon rather than producing infinities.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL length mismatch %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrInsufficientData
	}
	var s float64
	for i := range p {
		pi := math.Max(p[i], distEpsilon)
		qi := math.Max(q[i], distEpsilon)
		s += pi * math.Log(pi/qi)
	}
	return s, nil
}

// JSDivergence returns the Jensen–Shannon divergence between probability
// vectors p and q in nats. It is symmetric and bounded by ln 2 ≈ 0.6931.
func JSDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: JSD length mismatch %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrInsufficientData
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	kpm, err := KLDivergence(p, m)
	if err != nil {
		return 0, err
	}
	kqm, err := KLDivergence(q, m)
	if err != nil {
		return 0, err
	}
	jsd := 0.5*kpm + 0.5*kqm
	if jsd < 0 { // numerical noise
		jsd = 0
	}
	return jsd, nil
}

// L2Distance returns the Euclidean distance between vectors p and q.
func L2Distance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: L2 length mismatch %d vs %d", len(p), len(q))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// TTestResult holds the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs a two-sample t-test with unequal variances. Each
// sample needs at least two observations.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("welch t-test needs ≥2 samples per group (got %d, %d): %w",
			len(a), len(b), ErrInsufficientData)
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: means equal ⇒ p = 1; otherwise the
		// difference is infinitely significant.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := StudentTPValue(t, df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom, via the regularized incomplete beta function:
// P(|T| ≥ |t|) = I_{df/(df+t²)}(df/2, 1/2).
func StudentTPValue(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	if df <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4). a and b
// must be positive; x must lie in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Histogram bins values into n equal-width buckets over [lo, hi] and
// returns a normalized probability vector. Values outside the range are
// clamped to the boundary buckets. It returns an error if n < 1 or hi ≤ lo.
func Histogram(xs []float64, n int, lo, hi float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs ≥1 bucket, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g, %g] is empty", lo, hi)
	}
	h := make([]float64, n)
	if len(xs) == 0 {
		return h, nil
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h[i]++
	}
	inv := 1 / float64(len(xs))
	for i := range h {
		h[i] *= inv
	}
	return h, nil
}
