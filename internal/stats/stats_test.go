package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := PopulationVariance(xs); got != 4 {
		t.Errorf("PopulationVariance = %g, want 4", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance(single) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g,%g, want -1,7", lo, hi)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestKLDivergenceBasics(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got, err := KLDivergence(p, p); err != nil || math.Abs(got) > 1e-12 {
		t.Errorf("KL(p,p) = %g, %v; want 0", got, err)
	}
	q := []float64{0.9, 0.1}
	got, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %g, want %g", got, want)
	}
	if _, err := KLDivergence(p, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestJSDBounds(t *testing.T) {
	// Maximally different distributions approach ln 2.
	p := []float64{1, 0}
	q := []float64{0, 1}
	got, err := JSDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Ln2) > 1e-6 {
		t.Errorf("JSD(disjoint) = %g, want ln2 = %g", got, math.Ln2)
	}
	same, err := JSDivergence(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if same > 1e-10 {
		t.Errorf("JSD(p,p) = %g, want ~0", same)
	}
}

// Property: JSD is symmetric and within [0, ln2].
func TestQuickJSDSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p := randDist(rng, n)
		q := randDist(rng, n)
		a, err1 := JSDivergence(p, q)
		b, err2 := JSDivergence(q, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= math.Ln2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: KL(p‖q) ≥ 0 (Gibbs' inequality).
func TestQuickKLNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p := randDist(rng, n)
		q := randDist(rng, n)
		kl, err := KLDivergence(p, q)
		return err == nil && kl >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randDist(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	var s float64
	for i := range p {
		p[i] = rng.Float64() + 1e-3
		s += p[i]
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

func TestL2Distance(t *testing.T) {
	got, err := L2Distance([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("L2 = %g, want 5", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, tc := range []struct{ a, b, x float64 }{
		{2, 3, 0.3}, {0.5, 0.5, 0.7}, {5, 1, 0.2},
	} {
		l := RegIncBeta(tc.a, tc.b, tc.x)
		r := 1 - RegIncBeta(tc.b, tc.a, 1-tc.x)
		if math.Abs(l-r) > 1e-10 {
			t.Errorf("symmetry violated at a=%g b=%g x=%g: %g vs %g", tc.a, tc.b, tc.x, l, r)
		}
	}
	// I_{0.5}(a,a) = 0.5 for any a.
	for _, a := range []float64{0.5, 1, 2, 10} {
		if got := RegIncBeta(a, a, 0.5); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("I_0.5(%g,%g) = %g, want 0.5", a, a, got)
		}
	}
}

func TestStudentTPValueReferenceValues(t *testing.T) {
	// Reference two-sided p-values (scipy.stats.t.sf(|t|, df)*2).
	cases := []struct{ tstat, df, want float64 }{
		{0, 10, 1.0},
		{1.812461, 10, 0.1},   // t_{0.95,10}
		{2.228139, 10, 0.05},  // t_{0.975,10}
		{1.959964, 1e6, 0.05}, // approaches normal
	}
	for _, c := range cases {
		got := StudentTPValue(c.tstat, c.df)
		if math.Abs(got-c.want) > 2e-4 {
			t.Errorf("p(t=%g, df=%g) = %g, want %g", c.tstat, c.df, got, c.want)
		}
	}
}

func TestWelchTTestDistinguishes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 100)
	b := make([]float64, 100)
	c := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 3 // clearly shifted
		c[i] = rng.NormFloat64()     // same distribution as a
	}
	shifted, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.P > 1e-6 {
		t.Errorf("shifted samples should have tiny p, got %g", shifted.P)
	}
	same, err := WelchTTest(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if same.P < 0.01 {
		t.Errorf("same-distribution samples should have larger p, got %g", same.P)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for tiny sample")
	}
	res, err := WelchTTest([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constant samples: p = %g, want 1", res.P)
	}
	res, err = WelchTTest([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("different constant samples: p = %g, want 0", res.P)
	}
}

// Property: p-values are in [0,1] and decrease as |t| grows.
func TestQuickPValueMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + rng.Float64()*50
		t1 := rng.Float64() * 3
		t2 := t1 + 0.5 + rng.Float64()*3
		p1 := StudentTPValue(t1, df)
		p2 := StudentTPValue(t2, df)
		return p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1 && p2 <= p1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5}, {1.959964, 0.975}, {-1.959964, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := Histogram([]float64{0.1, 0.2, 0.9, 1.5, -0.5}, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// -0.5 clamps to bucket 0, 1.5 clamps to bucket 1.
	if math.Abs(h[0]-0.6) > 1e-12 || math.Abs(h[1]-0.4) > 1e-12 {
		t.Errorf("Histogram = %v, want [0.6 0.4]", h)
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("histogram sums to %g", sum)
	}
	if _, err := Histogram(nil, 0, 0, 1); err == nil {
		t.Error("0 buckets should error")
	}
	if _, err := Histogram(nil, 2, 1, 1); err == nil {
		t.Error("empty range should error")
	}
}
