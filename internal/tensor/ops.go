package tensor

import (
	"fmt"
	"math"
)

// The three matrix kernels below share one execution scheme: the output is
// split into contiguous row panels that run on the shared worker pool (see
// pool.go), and within a panel the reduction dimension is tiled so the
// panel of b being consumed stays cache-resident. Both transformations
// preserve the per-element floating-point accumulation order of the naive
// triple loop, so serial and parallel runs — and runs before and after this
// blocking — are bitwise identical.

// Reduction/column tile sizes, sized so one tile of b (tile × row-width
// float64s) fits comfortably in a per-core cache alongside the output panel.
const (
	matmulKC = 256 // reduction-dimension tile for MatMul / MatMulTransA
	matmulJB = 48  // b-row tile for MatMulTransB
)

// checkMatMul2D validates a 2-D kernel operand pair against the expected
// inner dimensions and returns (or allocates) the (m,n) destination.
func checkMatMul2D(op string, dst, a, b *Tensor, m, n int, innerOK bool) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D operands, got %v and %v", op, a.shape, b.shape))
	}
	if !innerOK {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v · %v", op, a.shape, b.shape))
	}
	if dst == nil {
		return New(m, n) //goldfish:allocok — nil-dst convenience path; hot callers pass a reusable dst
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return dst
}

// dims2 returns a tensor's leading two dimensions, tolerating lower ranks
// (checkMatMul2D reports the descriptive error in that case).
func dims2(t *Tensor) (int, int) {
	if len(t.shape) != 2 {
		return 0, 0
	}
	return t.shape[0], t.shape[1]
}

// MatMul returns the matrix product a·b for 2-D tensors of shapes (m,k) and
// (k,n). It panics if either operand is not 2-D or the inner dimensions
// disagree.
func MatMul(a, b *Tensor) *Tensor { return MatMulInto(nil, a, b) }

// MatMulInto computes a·b into dst and returns it. dst must have shape
// (m,n) or be nil, in which case a new tensor is allocated; passing a
// reusable dst eliminates the per-call output allocation on hot paths.
// dst must not alias a or b.
//
//goldfish:hotpath
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a)
	k2, n := dims2(b)
	out := checkMatMul2D("MatMul", dst, a, b, m, n, k == k2)
	ad, bd, od := a.data, b.data, out.data
	parallelRows(m, m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			clear(od[i*n : (i+1)*n])
		}
		for p0 := 0; p0 < k; p0 += matmulKC {
			p1 := p0 + matmulKC
			if p1 > k {
				p1 = k
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k+p0 : i*k+p1]
				orow := od[i*n : i*n+n]
				for pp, av := range arow {
					if av == 0 {
						continue
					}
					p := p0 + pp
					brow := bd[p*n : p*n+n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// MatMulTransB returns a·bᵀ for a of shape (m,k) and b of shape (n,k).
func MatMulTransB(a, b *Tensor) *Tensor { return MatMulTransBInto(nil, a, b) }

// MatMulTransBInto computes a·bᵀ into dst (shape (m,n), or nil to
// allocate) and returns it. dst must not alias a or b.
//
//goldfish:hotpath
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a)
	n, k2 := dims2(b)
	out := checkMatMul2D("MatMulTransB", dst, a, b, m, n, k == k2)
	ad, bd, od := a.data, b.data, out.data
	parallelRows(m, m*n*k, func(lo, hi int) {
		for j0 := 0; j0 < n; j0 += matmulJB {
			j1 := j0 + matmulJB
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : i*k+k]
				orow := od[i*n : i*n+n]
				for j := j0; j < j1; j++ {
					brow := bd[j*k : j*k+k]
					var s float64
					for p, av := range arow {
						s += av * brow[p]
					}
					orow[j] = s
				}
			}
		}
	})
	return out
}

// MatMulTransA returns aᵀ·b for a of shape (k,m) and b of shape (k,n).
func MatMulTransA(a, b *Tensor) *Tensor { return MatMulTransAInto(nil, a, b) }

// MatMulTransAInto computes aᵀ·b into dst (shape (m,n), or nil to
// allocate) and returns it. dst must not alias a or b.
//
//goldfish:hotpath
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	k, m := dims2(a)
	k2, n := dims2(b)
	out := checkMatMul2D("MatMulTransA", dst, a, b, m, n, k == k2)
	ad, bd, od := a.data, b.data, out.data
	parallelRows(m, m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			clear(od[i*n : (i+1)*n])
		}
		for p0 := 0; p0 < k; p0 += matmulKC {
			p1 := p0 + matmulKC
			if p1 > k {
				p1 = k
			}
			for i := lo; i < hi; i++ {
				orow := od[i*n : i*n+n]
				for p := p0; p < p1; p++ {
					av := ad[p*m+i]
					if av == 0 {
						continue
					}
					brow := bd[p*n : p*n+n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires a 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Row returns row i of a 2-D tensor as a slice aliasing the tensor's data.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row requires a 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	return t.data[i*n : (i+1)*n]
}

// SoftmaxRows returns row-wise softmax(logits/temp) for a 2-D tensor.
// temp must be positive.
func SoftmaxRows(logits *Tensor, temp float64) *Tensor {
	return SoftmaxRowsInto(nil, logits, temp) //goldfish:allocok — convenience wrapper; result escapes to caller
}

// SoftmaxRowsInto computes row-wise softmax(logits/temp) into dst and returns
// it. dst is resized via EnsureShape (nil allocates); passing a reusable dst
// eliminates the per-call output allocation on hot paths. dst must not alias
// logits. temp must be positive.
//
//goldfish:hotpath
func SoftmaxRowsInto(dst, logits *Tensor, temp float64) *Tensor {
	if len(logits.shape) != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows requires a 2-D tensor, got %v", logits.shape))
	}
	if temp <= 0 {
		panic(fmt.Sprintf("tensor: SoftmaxRows temperature must be positive, got %g", temp))
	}
	m, n := logits.shape[0], logits.shape[1]
	out := EnsureShape(dst, m, n)
	parallelRows(m, 8*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := logits.data[i*n : (i+1)*n]
			dst := out.data[i*n : (i+1)*n]
			softmaxInto(dst, src, temp)
		}
	})
	return out
}

// softmaxInto writes softmax(src/temp) into dst using the max-subtraction
// trick for numerical stability.
func softmaxInto(dst, src []float64, temp float64) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp((v - maxv) / temp)
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows returns row-wise log-softmax of a 2-D tensor.
//
//goldfish:hotpath
func LogSoftmaxRows(logits *Tensor) *Tensor {
	if len(logits.shape) != 2 {
		panic(fmt.Sprintf("tensor: LogSoftmaxRows requires a 2-D tensor, got %v", logits.shape))
	}
	m, n := logits.shape[0], logits.shape[1]
	out := New(m, n) //goldfish:allocok — result escapes to caller by API contract
	parallelRows(m, 8*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := logits.data[i*n : (i+1)*n]
			dst := out.data[i*n : (i+1)*n]
			maxv := src[0]
			for _, v := range src[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for _, v := range src {
				sum += math.Exp(v - maxv)
			}
			lse := maxv + math.Log(sum)
			for j, v := range src {
				dst[j] = v - lse
			}
		}
	})
	return out
}

// ArgMaxRows returns, for each row of a 2-D tensor, the index of its maximum
// element.
func ArgMaxRows(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]int, m) //goldfish:allocok — result escapes to caller; hot callers stream per batch
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SumRows returns a length-n vector with the column sums of an (m,n) tensor.
func SumRows(t *Tensor) *Tensor {
	return SumRowsInto(nil, t) //goldfish:allocok — convenience wrapper; result escapes to caller
}

// SumRowsInto writes the column sums of an (m,n) tensor into dst (a length-n
// vector, resized via EnsureShape; nil allocates) and returns it. dst must
// not alias t.
func SumRowsInto(dst, t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows requires a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := EnsureShape(dst, n)
	clear(out.data)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// SliceRows returns a new (len(idx), n) tensor containing the selected rows
// of an (m, …) tensor; trailing dimensions are preserved. Row indices may
// repeat.
func SliceRows(t *Tensor, idx []int) *Tensor {
	return SliceRowsInto(nil, t, idx) //goldfish:allocok — convenience wrapper; result escapes to caller
}

// SliceRowsInto copies the selected rows of t into dst (resized via
// EnsureShape to (len(idx), …trailing dims); nil allocates) and returns it.
// dst must not alias t. Row indices may repeat.
func SliceRowsInto(dst, t *Tensor, idx []int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: SliceRows on scalar tensor")
	}
	rowLen := 1
	for _, d := range t.shape[1:] {
		rowLen *= d
	}
	outShape := append([]int{len(idx)}, t.shape[1:]...) //goldfish:allocok — shape header only
	out := EnsureShape(dst, outShape...)
	for i, r := range idx {
		if r < 0 || r >= t.shape[0] {
			panic(fmt.Sprintf("tensor: SliceRows index %d out of range [0,%d)", r, t.shape[0]))
		}
		copy(out.data[i*rowLen:(i+1)*rowLen], t.data[r*rowLen:(r+1)*rowLen])
	}
	return out
}

// Concat concatenates tensors along dimension 0. All trailing dimensions
// must match.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	rowShape := ts[0].shape[1:]
	rowLen := 1
	for _, d := range rowShape {
		rowLen *= d
	}
	total := 0
	for _, t := range ts {
		if len(t.shape) != len(ts[0].shape) {
			panic("tensor: Concat rank mismatch")
		}
		for i, d := range t.shape[1:] {
			if d != rowShape[i] {
				panic(fmt.Sprintf("tensor: Concat trailing shape mismatch %v vs %v", t.shape, ts[0].shape))
			}
		}
		total += t.shape[0]
	}
	outShape := append([]int{total}, rowShape...) //goldfish:allocok — shape header only
	out := New(outShape...)                       //goldfish:allocok — result escapes to caller by API contract
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}
