package tensor

import (
	"fmt"
	"math"
)

// MatMul returns the matrix product a·b for 2-D tensors of shapes (m,k) and
// (k,n). It panics if either operand is not 2-D or the inner dimensions
// disagree.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ for a of shape (m,k) and b of shape (n,k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b for a of shape (k,m) and b of shape (k,n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ · %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires a 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Row returns row i of a 2-D tensor as a slice aliasing the tensor's data.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row requires a 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	return t.data[i*n : (i+1)*n]
}

// SoftmaxRows returns row-wise softmax(logits/temp) for a 2-D tensor.
// temp must be positive.
func SoftmaxRows(logits *Tensor, temp float64) *Tensor {
	if len(logits.shape) != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows requires a 2-D tensor, got %v", logits.shape))
	}
	if temp <= 0 {
		panic(fmt.Sprintf("tensor: SoftmaxRows temperature must be positive, got %g", temp))
	}
	m, n := logits.shape[0], logits.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		src := logits.data[i*n : (i+1)*n]
		dst := out.data[i*n : (i+1)*n]
		softmaxInto(dst, src, temp)
	}
	return out
}

// softmaxInto writes softmax(src/temp) into dst using the max-subtraction
// trick for numerical stability.
func softmaxInto(dst, src []float64, temp float64) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp((v - maxv) / temp)
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows returns row-wise log-softmax of a 2-D tensor.
func LogSoftmaxRows(logits *Tensor) *Tensor {
	if len(logits.shape) != 2 {
		panic(fmt.Sprintf("tensor: LogSoftmaxRows requires a 2-D tensor, got %v", logits.shape))
	}
	m, n := logits.shape[0], logits.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		src := logits.data[i*n : (i+1)*n]
		dst := out.data[i*n : (i+1)*n]
		maxv := src[0]
		for _, v := range src[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(v - maxv)
		}
		lse := maxv + math.Log(sum)
		for j, v := range src {
			dst[j] = v - lse
		}
	}
	return out
}

// ArgMaxRows returns, for each row of a 2-D tensor, the index of its maximum
// element.
func ArgMaxRows(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SumRows returns a length-n vector with the column sums of an (m,n) tensor.
func SumRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows requires a 2-D tensor, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// SliceRows returns a new (len(idx), n) tensor containing the selected rows
// of an (m, …) tensor; trailing dimensions are preserved. Row indices may
// repeat.
func SliceRows(t *Tensor, idx []int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: SliceRows on scalar tensor")
	}
	rowLen := 1
	for _, d := range t.shape[1:] {
		rowLen *= d
	}
	outShape := append([]int{len(idx)}, t.shape[1:]...)
	out := New(outShape...)
	for i, r := range idx {
		if r < 0 || r >= t.shape[0] {
			panic(fmt.Sprintf("tensor: SliceRows index %d out of range [0,%d)", r, t.shape[0]))
		}
		copy(out.data[i*rowLen:(i+1)*rowLen], t.data[r*rowLen:(r+1)*rowLen])
	}
	return out
}

// Concat concatenates tensors along dimension 0. All trailing dimensions
// must match.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	rowShape := ts[0].shape[1:]
	rowLen := 1
	for _, d := range rowShape {
		rowLen *= d
	}
	total := 0
	for _, t := range ts {
		if len(t.shape) != len(ts[0].shape) {
			panic("tensor: Concat rank mismatch")
		}
		for i, d := range t.shape[1:] {
			if d != rowShape[i] {
				panic(fmt.Sprintf("tensor: Concat trailing shape mismatch %v vs %v", t.shape, ts[0].shape))
			}
		}
		total += t.shape[0]
	}
	outShape := append([]int{total}, rowShape...)
	out := New(outShape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}
