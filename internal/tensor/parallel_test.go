package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// naiveMatMul is the reference triple loop the blocked kernels must
// reproduce bitwise (their tiling preserves per-element accumulation order).
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[p*n+j]
			}
		}
	}
	return out
}

// TestParallelKernelsMatchSerial is the kernel parity gate: every matmul
// variant must produce identical results (within 1e-12; in fact bitwise)
// under the worker pool and under GOLDFISH_SERIAL-style serial execution.
// CI fails if this test is skipped.
func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 2},
		{17, 33, 9},
		{64, 128, 96},
		{128, 257, 130}, // above the parallel threshold, odd panel splits
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			a := New(s.m, s.k).RandNormal(rng, 0, 1)
			b := New(s.k, s.n).RandNormal(rng, 0, 1)
			at := Transpose2D(a)
			bt := Transpose2D(b)

			prev := ForceSerial(true)
			serial := MatMul(a, b)
			serialTB := MatMulTransB(a, bt)
			serialTA := MatMulTransA(at, b)
			ForceSerial(false)
			par := MatMul(a, b)
			parTB := MatMulTransB(a, bt)
			parTA := MatMulTransA(at, b)
			ForceSerial(prev)

			if d := serial.MaxAbsDiff(par); d > 1e-12 {
				t.Errorf("MatMul parallel vs serial differ by %g", d)
			}
			if d := serialTB.MaxAbsDiff(parTB); d > 1e-12 {
				t.Errorf("MatMulTransB parallel vs serial differ by %g", d)
			}
			if d := serialTA.MaxAbsDiff(parTA); d > 1e-12 {
				t.Errorf("MatMulTransA parallel vs serial differ by %g", d)
			}
			// All variants must also agree with the naive reference exactly.
			want := naiveMatMul(a, b)
			for name, got := range map[string]*Tensor{
				"MatMul": par, "MatMulTransB": parTB, "MatMulTransA": parTA,
			} {
				if d := want.MaxAbsDiff(got); d != 0 {
					t.Errorf("%s differs from naive reference by %g (want bitwise identity)", name, d)
				}
			}
		})
	}
}

func TestMatMulIntoReusesDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(9, 13).RandNormal(rng, 0, 1)
	b := New(13, 6).RandNormal(rng, 0, 1)
	dst := New(9, 6).Fill(123) // stale garbage must be overwritten
	got := MatMulInto(dst, a, b)
	if got != dst {
		t.Fatal("MatMulInto must return its destination")
	}
	if d := got.MaxAbsDiff(MatMul(a, b)); d != 0 {
		t.Errorf("MatMulInto differs from MatMul by %g", d)
	}

	bt := Transpose2D(b) // (6, 13)
	dtb := New(9, 6).Fill(-7)
	if d := MatMulTransBInto(dtb, a, bt).MaxAbsDiff(MatMulTransB(a, bt)); d != 0 {
		t.Errorf("MatMulTransBInto differs from MatMulTransB by %g", d)
	}
	c := New(9, 6).RandNormal(rng, 0, 1)
	dta := New(13, 6).Fill(99)
	if d := MatMulTransAInto(dta, a, c).MaxAbsDiff(MatMulTransA(a, c)); d != 0 {
		t.Errorf("MatMulTransAInto differs from MatMulTransA by %g", d)
	}
}

func TestMatMulIntoBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong destination shape")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 4))
}

func TestEnsureShape(t *testing.T) {
	if got := EnsureShape(nil, 2, 3); got.Size() != 6 {
		t.Fatalf("EnsureShape(nil) size = %d, want 6", got.Size())
	}
	big := New(4, 4)
	backing := big.Data()
	small := EnsureShape(big, 2, 3)
	if small.Size() != 6 || small.Dim(0) != 2 || small.Dim(1) != 3 {
		t.Fatalf("EnsureShape reuse got shape %v", small.Shape())
	}
	if &small.Data()[0] != &backing[0] {
		t.Error("EnsureShape should reuse backing storage when capacity allows")
	}
	grown := EnsureShape(small, 5, 5)
	if grown.Size() != 25 {
		t.Fatalf("EnsureShape grow size = %d", grown.Size())
	}
}

// TestKernelsConcurrentUse exercises the shared worker pool from many
// goroutines at once; run under -race this is the data-race gate for the
// pool itself.
func TestKernelsConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(70, 90).RandNormal(rng, 0, 1)
	b := New(90, 50).RandNormal(rng, 0, 1)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				if d := MatMul(a, b).MaxAbsDiff(want); d != 0 {
					t.Errorf("concurrent MatMul diverged by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func benchMatMul(b *testing.B, m, k, n int, serial bool) {
	rng := rand.New(rand.NewSource(1))
	x := New(m, k).RandNormal(rng, 0, 1)
	y := New(k, n).RandNormal(rng, 0, 1)
	dst := New(m, n)
	prev := ForceSerial(serial)
	defer ForceSerial(prev)
	b.SetBytes(int64(8 * m * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMulSerial64(b *testing.B)    { benchMatMul(b, 64, 512, 512, true) }
func BenchmarkMatMulParallel64(b *testing.B)  { benchMatMul(b, 64, 512, 512, false) }
func BenchmarkMatMulSerial128(b *testing.B)   { benchMatMul(b, 128, 512, 512, true) }
func BenchmarkMatMulParallel128(b *testing.B) { benchMatMul(b, 128, 512, 512, false) }
